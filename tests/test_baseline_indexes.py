"""NSG, TauMNG, RoarGraph, BruteForceIndex, and exact toy graphs."""

import numpy as np
import pytest

from repro.distances import Metric, pairwise_distances
from repro.evalx import compute_ground_truth, recall_at_k
from repro.graphs import (
    NSG,
    BruteForceIndex,
    RoarGraph,
    TauMNG,
    exact_mrng,
    exact_rng,
)
from repro.graphs.exact import is_strongly_connected
from repro.graphs.search import greedy_search


def _recall_of(index, queries, gt, k, ef):
    found = np.vstack([index.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt.top(k).ids)


class TestNSG:
    @pytest.fixture(scope="class")
    def nsg(self, tiny_ds):
        return NSG(tiny_ds.base, tiny_ds.metric, R=12, L=30, knn_k=12)

    def test_degree_bounded(self, nsg):
        for u in range(nsg.size):
            # +1: the spanning-connect step may add one link past R
            assert len(nsg.adjacency.base_neighbors(u)) <= nsg.R + 1

    def test_connected_from_medoid(self, nsg):
        neighbors = [nsg.adjacency.neighbors(u).tolist() for u in range(nsg.size)]
        assert is_strongly_connected(neighbors, nsg.size, start=nsg.medoid())

    def test_recall_on_base_points(self, tiny_ds, nsg):
        queries = tiny_ds.base[:25]
        gt = compute_ground_truth(tiny_ds.base, queries, 5, tiny_ds.metric)
        assert _recall_of(nsg, queries, gt, 5, 40) > 0.95

    def test_reasonable_recall_on_ood(self, tiny_ds, tiny_gt, nsg):
        assert _recall_of(nsg, tiny_ds.test_queries, tiny_gt, 10, 80) > 0.7

    def test_invalid_params(self, tiny_ds):
        with pytest.raises(ValueError):
            NSG(tiny_ds.base, tiny_ds.metric, R=0)


class TestTauMNG:
    def test_builds_and_searches(self, tiny_ds, tiny_gt):
        index = TauMNG(tiny_ds.base, tiny_ds.metric, R=12, L=30, knn_k=12,
                       tau=0.01)
        assert _recall_of(index, tiny_ds.test_queries, tiny_gt, 10, 80) > 0.6

    def test_tau_zero_matches_nsg_edges(self, tiny_ds):
        nsg = NSG(tiny_ds.base, tiny_ds.metric, R=10, L=25, knn_k=10)
        tmng = TauMNG(tiny_ds.base, tiny_ds.metric, R=10, L=25, knn_k=10, tau=0.0)
        same = sum(nsg.adjacency.base_neighbors(u) == tmng.adjacency.base_neighbors(u)
                   for u in range(nsg.size))
        assert same > 0.9 * nsg.size  # identical up to tie-breaking noise

    def test_larger_tau_more_edges(self, tiny_ds):
        small = TauMNG(tiny_ds.base, tiny_ds.metric, R=16, L=25, knn_k=10, tau=0.0)
        large = TauMNG(tiny_ds.base, tiny_ds.metric, R=16, L=25, knn_k=10, tau=0.05)
        assert large.adjacency.n_base_edges() >= small.adjacency.n_base_edges()

    def test_negative_tau_rejected(self, tiny_ds):
        with pytest.raises(ValueError):
            TauMNG(tiny_ds.base, tiny_ds.metric, tau=-1.0)

    def test_suggest_tau(self):
        assert TauMNG.suggest_tau(np.array([0.1, 0.2, 0.3])) == pytest.approx(0.1)


class TestRoarGraph:
    @pytest.fixture(scope="class")
    def roar(self, tiny_ds):
        return RoarGraph(tiny_ds.base, tiny_ds.metric, tiny_ds.train_queries,
                         M=12, n_query_neighbors=16, knn_k=8)

    def test_connected(self, roar):
        neighbors = [roar.adjacency.neighbors(u).tolist() for u in range(roar.size)]
        assert is_strongly_connected(neighbors, roar.size, start=roar.medoid())

    def test_recall_on_ood(self, tiny_ds, tiny_gt, roar):
        assert _recall_of(roar, tiny_ds.test_queries, tiny_gt, 10, 80) > 0.75

    def test_query_pivots_receive_edges(self, tiny_ds, roar):
        """Pivot nodes (historical queries' 1-NNs) must carry out-edges."""
        gt = compute_ground_truth(tiny_ds.base, tiny_ds.train_queries, 1,
                                  tiny_ds.metric)
        pivots = set(int(i) for i in gt.ids[:, 0])
        assert all(len(roar.adjacency.base_neighbors(p)) > 0 for p in pivots)

    def test_invalid_params(self, tiny_ds):
        with pytest.raises(ValueError):
            RoarGraph(tiny_ds.base, tiny_ds.metric, tiny_ds.train_queries, M=0)


class TestBruteForce:
    def test_exact(self, tiny_ds, tiny_gt):
        index = BruteForceIndex(tiny_ds.base, tiny_ds.metric)
        assert _recall_of(index, tiny_ds.test_queries, tiny_gt, 10, 10) == 1.0

    def test_k_clamped_to_corpus(self):
        index = BruteForceIndex(np.zeros((3, 2), dtype=np.float32), Metric.L2)
        r = index.search(np.zeros(2, dtype=np.float32), k=10)
        assert len(r.ids) == 3

    def test_invalid_k(self):
        index = BruteForceIndex(np.zeros((3, 2), dtype=np.float32), Metric.L2)
        with pytest.raises(ValueError):
            index.search(np.zeros(2, dtype=np.float32), k=0)


class TestExactGraphs:
    def _points(self, n=40, d=2, seed=0):
        return np.random.default_rng(seed).standard_normal((n, d)).astype(np.float32)

    def test_rng_lune_property(self):
        pts = self._points()
        edges = exact_rng(pts)
        d = pairwise_distances(pts, pts, Metric.L2)
        for u in range(len(pts)):
            for v in edges[u]:
                duv = d[u, v]
                lune = (np.maximum(d[u], d[v]) < duv)
                lune[u] = lune[v] = False
                assert not lune.any()

    def test_rng_symmetric(self):
        edges = exact_rng(self._points())
        for u in range(len(edges)):
            for v in edges[u]:
                assert u in edges[v]

    def test_mrng_superset_of_nothing_and_nonempty(self):
        out = exact_mrng(self._points())
        assert all(len(row) >= 1 for row in out)

    def test_mrng_greedy_search_finds_exact_nn_of_base_points(self):
        """Fu et al.'s guarantee: for query == base point, greedy search on
        MRNG from any start finds it."""
        pts = self._points(n=30)
        out = exact_mrng(pts)
        from repro.distances import DistanceComputer
        dc = DistanceComputer(pts, Metric.L2)

        def neighbors(u):
            return np.array(out[u], dtype=np.int64)

        for target in range(0, 30, 5):
            r = greedy_search(dc, neighbors, [0], pts[target], k=1, ef=1)
            assert r.ids[0] == target

    def test_mrng_subgraph_of_rng_candidates(self):
        """Every RNG edge appears in MRNG out-lists (MRNG prunes less per
        node ordering, RNG lune edges always survive)."""
        pts = self._points(n=25)
        rng_edges = exact_rng(pts)
        mrng = exact_mrng(pts)
        for u in range(25):
            for v in rng_edges[u]:
                assert v in mrng[u]
