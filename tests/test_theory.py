"""Theory demonstrations: Delaunay guarantees and Theorem 3.

Sec. 3/4 of the paper rest on classical facts about the Delaunay graph:
greedy search on DG finds the exact nearest neighbor of *any* query, and
(Theorem 3) removing any DG edge creates a query whose neighborhood graph
degenerates into isolated points — hence global guarantees are hopeless in
high dimension and per-query fixing is the tractable route.
"""

import numpy as np
import pytest

from repro.core.qng import build_qng, isolated_points
from repro.distances import DistanceComputer, Metric
from repro.graphs.exact import delaunay_graph
from repro.graphs.search import greedy_search


@pytest.fixture(scope="module")
def world():
    points = np.random.default_rng(7).standard_normal((80, 2)).astype(np.float32)
    return points, delaunay_graph(points), DistanceComputer(points, Metric.L2)


def _neighbors_fn(edges):
    def fn(u):
        return np.array(sorted(edges[u]), dtype=np.int64)
    return fn


class TestDelaunayGuarantee:
    def test_greedy_search_always_finds_exact_nn(self, world):
        """Malkov & Yashunin's DG property: pure greedy (ef=1) from any
        start lands on the exact NN of any query."""
        points, edges, dc = world
        fn = _neighbors_fn(edges)
        rng = np.random.default_rng(1)
        queries = rng.standard_normal((40, 2)).astype(np.float32)
        for start in (0, 13, 55):
            for q in queries:
                found = greedy_search(dc, fn, [start], q, k=1, ef=1).ids[0]
                exact = int(np.argmin(((points - q) ** 2).sum(axis=1)))
                assert found == exact

    def test_dg_connected(self, world):
        points, edges, _ = world
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in edges[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        assert len(seen) == len(points)

    def test_dimension_guard(self):
        with pytest.raises(ValueError):
            delaunay_graph(np.zeros((10, 5), dtype=np.float32))


class TestTheorem3:
    def test_removing_a_dg_edge_breaks_some_query_neighborhood(self, world):
        """Theorem 3: after deleting a DG edge (u, v), there is a query
        whose 2-NN neighborhood graph consists of two isolated nodes.

        Constructive witness: for a Delaunay edge whose midpoint has u and v
        as its two nearest points, removing the edge leaves QNG_2 edgeless.
        """
        points, edges, dc = world
        witness_found = False
        for u in range(len(points)):
            for v in edges[u]:
                if v < u:
                    continue
                midpoint = (points[u] + points[v]) / 2
                d = ((points - midpoint) ** 2).sum(axis=1)
                top2 = set(np.argsort(d, kind="stable")[:2].tolist())
                if top2 != {u, v}:
                    continue
                # delete the edge (both directions, it's undirected)
                pruned = [set(s) for s in edges]
                pruned[u].discard(v)
                pruned[v].discard(u)
                nn_ids = np.array(sorted(top2, key=lambda i: d[i]))
                local = build_qng(_neighbors_fn(pruned), nn_ids)
                assert isolated_points(local) == 2
                witness_found = True
                break
            if witness_found:
                break
        assert witness_found, "no Delaunay edge with a midpoint witness found"
