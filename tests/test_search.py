"""Greedy search (Algorithm 1): correctness on hand-built graphs."""

import numpy as np
import pytest

from repro.distances import DistanceComputer, Metric
from repro.graphs.search import VisitedTable, greedy_search


def _line_graph(n=10):
    """Points on a line, each node linked to its immediate neighbors."""
    data = np.arange(n, dtype=np.float32)[:, None]
    dc = DistanceComputer(data, Metric.L2)
    adj = {i: [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)}

    def neighbors(u):
        return np.array(adj[u], dtype=np.int64)

    return dc, neighbors


def _complete_graph(n, dim, seed=0):
    data = np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)
    dc = DistanceComputer(data, Metric.L2)
    everyone = np.arange(n, dtype=np.int64)

    def neighbors(u):
        return everyone[everyone != u]

    return dc, neighbors


class TestVisitedTable:
    def test_epoch_reset_is_o1(self):
        t = VisitedTable(5)
        t.next_epoch()
        t.mark(2)
        assert t.is_visited(2)
        t.next_epoch()
        assert not t.is_visited(2)

    def test_filter_unvisited_marks(self):
        t = VisitedTable(5)
        t.next_epoch()
        ids = np.array([0, 1, 2])
        fresh = t.filter_unvisited(ids)
        assert fresh.tolist() == [0, 1, 2]
        assert t.filter_unvisited(ids).tolist() == []

    def test_grow(self):
        t = VisitedTable(2)
        t.grow(5)
        t.next_epoch()
        t.mark(4)
        assert t.is_visited(4)


class TestGreedySearchLine:
    def test_walks_to_target(self):
        dc, neighbors = _line_graph(10)
        result = greedy_search(dc, neighbors, [0], np.array([7.2], np.float32),
                               k=2, ef=4)
        assert result.ids[0] == 7
        assert set(result.ids.tolist()) == {7, 8} or set(result.ids.tolist()) == {7, 6}

    def test_results_sorted_by_distance(self):
        dc, neighbors = _line_graph(10)
        result = greedy_search(dc, neighbors, [0], np.array([5.0], np.float32),
                               k=5, ef=8)
        assert (np.diff(result.distances) >= 0).all()

    def test_small_ef_can_stall(self):
        """With ef=1 a greedy walk on a line reaches the target anyway (the
        line is monotone), but never returns more than k results."""
        dc, neighbors = _line_graph(10)
        result = greedy_search(dc, neighbors, [0], np.array([9.0], np.float32),
                               k=1, ef=1)
        assert result.ids.tolist() == [9]

    def test_hops_counted(self):
        dc, neighbors = _line_graph(10)
        result = greedy_search(dc, neighbors, [0], np.array([9.0], np.float32),
                               k=1, ef=2)
        assert result.n_hops >= 9


class TestGreedySearchComplete:
    def test_exact_on_complete_graph(self):
        """On a complete graph one expansion sees everything: exact top-k."""
        dc, neighbors = _complete_graph(30, 4)
        q = np.random.default_rng(5).standard_normal(4).astype(np.float32)
        result = greedy_search(dc, neighbors, [0], q, k=5, ef=10)
        expected = np.argsort(dc.to_query(np.arange(30), dc.prepare_query(q)))[:5]
        assert set(result.ids.tolist()) == set(expected.tolist())

    def test_ndc_counted(self):
        dc, neighbors = _complete_graph(20, 4)
        dc.reset_ndc()
        greedy_search(dc, neighbors, [0], np.zeros(4, np.float32), k=3, ef=5)
        assert dc.ndc > 0


class TestSearchOptions:
    def test_excluded_nodes_not_in_results(self):
        dc, neighbors = _line_graph(10)
        result = greedy_search(dc, neighbors, [0], np.array([7.0], np.float32),
                               k=3, ef=6, excluded={7})
        assert 7 not in result.ids.tolist()
        # ...but 7 still navigates: its neighbors are found
        assert {6, 8} <= set(result.ids.tolist())

    def test_collect_visited(self):
        dc, neighbors = _line_graph(10)
        result = greedy_search(dc, neighbors, [0], np.array([9.0], np.float32),
                               k=1, ef=3, collect_visited=True)
        assert result.visited_ids is not None
        assert len(result.visited_ids) == len(result.visited_distances)
        # every visited node's recorded distance matches recomputation
        q = dc.prepare_query(np.array([9.0], np.float32))
        assert np.allclose(result.visited_distances,
                           dc.to_query(result.visited_ids, q))

    def test_results_subset_of_visited(self):
        dc, neighbors = _complete_graph(25, 3)
        result = greedy_search(dc, neighbors, [0], np.zeros(3, np.float32),
                               k=5, ef=8, collect_visited=True)
        assert set(result.ids.tolist()) <= set(result.visited_ids.tolist())

    def test_duplicate_entries_deduped(self):
        dc, neighbors = _line_graph(5)
        result = greedy_search(dc, neighbors, [0, 0, 1], np.array([1.0], np.float32),
                               k=2, ef=4)
        assert len(set(result.ids.tolist())) == len(result.ids)

    def test_reusable_visited_table(self):
        dc, neighbors = _line_graph(10)
        table = VisitedTable(10)
        r1 = greedy_search(dc, neighbors, [0], np.array([9.0], np.float32),
                           k=1, ef=3, visited=table)
        r2 = greedy_search(dc, neighbors, [0], np.array([3.0], np.float32),
                           k=1, ef=3, visited=table)
        assert r1.ids[0] == 9 and r2.ids[0] == 3

    def test_ef_clamped_to_k(self):
        dc, neighbors = _line_graph(10)
        result = greedy_search(dc, neighbors, [0], np.array([2.0], np.float32),
                               k=4, ef=1)
        assert len(result.ids) == 4

    def test_invalid_args(self):
        dc, neighbors = _line_graph(5)
        with pytest.raises(ValueError):
            greedy_search(dc, neighbors, [0], np.zeros(1, np.float32), k=0, ef=5)
        with pytest.raises(ValueError):
            greedy_search(dc, neighbors, [], np.zeros(1, np.float32), k=1, ef=5)

    def test_isolated_entry_returns_entry(self):
        data = np.array([[0.0], [1.0]], dtype=np.float32)
        dc = DistanceComputer(data, Metric.L2)

        def neighbors(u):
            return np.empty(0, dtype=np.int64)

        result = greedy_search(dc, neighbors, [1], np.zeros(1, np.float32), k=1, ef=2)
        assert result.ids.tolist() == [1]


class TestVisitedTableGrowth:
    """Regression: a reused VisitedTable predating incremental insertion must
    grow before stamping, or searching toward new ids raises IndexError."""

    def test_reused_table_grows_after_append(self):
        data = np.arange(5, dtype=np.float32)[:, None]
        dc = DistanceComputer(data, Metric.L2)
        adj = {i: [j for j in (i - 1, i + 1) if 0 <= j < 5] for i in range(5)}

        def neighbors(u):
            return np.array(adj.get(u, []), dtype=np.int64)

        table = VisitedTable(dc.size)
        greedy_search(dc, neighbors, [0], np.array([3.0], np.float32),
                      k=1, ef=2, visited=table)
        new_id = dc.append(np.array([[5.0]], np.float32))
        adj[4].append(new_id)
        adj[new_id] = [4]
        result = greedy_search(dc, neighbors, [new_id],
                               np.array([5.0], np.float32),
                               k=1, ef=2, visited=table)
        assert result.ids[0] == new_id

    def test_index_search_after_external_append(self):
        """GraphIndex.search reuses self._visited across incremental
        insertions done via dc.append + adjacency.grow."""
        from repro.graphs.base import GraphIndex

        class _Fixed(GraphIndex):
            def entry_points(self, query):
                return [0]

        data = np.arange(4, dtype=np.float32)[:, None]
        index = _Fixed(data, Metric.L2)
        for u in range(3):
            index.adjacency.add_base_edge(u, u + 1)
            index.adjacency.add_base_edge(u + 1, u)
        index.search(np.array([2.0], np.float32), k=1, ef=2)
        new_id = index.dc.append(np.array([[4.0]], np.float32))
        index.adjacency.grow(1)
        index.adjacency.add_base_edge(3, new_id)
        index.adjacency.add_base_edge(new_id, 3)
        result = index.search(np.array([4.0], np.float32), k=1, ef=4)
        assert result.ids[0] == new_id


class TestDisconnectedGraph:
    def test_unreachable_component_missed(self):
        """Two disjoint cliques: search starting in one never finds the other
        — the failure mode NGFix exists to repair."""
        data = np.vstack([np.zeros((3, 2)), np.ones((3, 2)) * 10]).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adj = {0: [1, 2], 1: [0, 2], 2: [0, 1],
               3: [4, 5], 4: [3, 5], 5: [3, 4]}

        def neighbors(u):
            return np.array(adj[u], dtype=np.int64)

        q = np.full(2, 10.0, dtype=np.float32)  # true NNs live in clique 2
        result = greedy_search(dc, neighbors, [0], q, k=3, ef=10)
        assert set(result.ids.tolist()) == {0, 1, 2}
