"""Sharded serving: protocol framing, top-k merge, router, chaos recovery."""

from __future__ import annotations

import asyncio
import socket
import time

import numpy as np
import pytest

from repro.cluster import (
    WORKER_OP_POINT,
    ClusterError,
    ClusterRouter,
    FrontDoor,
    decode,
    encode,
    hash_partition,
    merge_stats,
    merge_topk,
    merge_topk_batch,
    recv_msg,
    send_msg,
    shard_budget_ms,
)
from repro.store import VectorStore

DIM = 16


@pytest.fixture(scope="module")
def cluster_data():
    rng = np.random.default_rng(11)
    base = rng.standard_normal((300, DIM)).astype(np.float32)
    queries = rng.standard_normal((24, DIM)).astype(np.float32)
    return base, queries


@pytest.fixture(scope="module")
def shared_router(cluster_data):
    """Read-only 3-shard router over the module dataset (do not mutate)."""
    base, _ = cluster_data
    router = ClusterRouter(dim=DIM, metric="l2", n_shards=3,
                           M=8, ef_construction=40, seed=5)
    router.load(base)
    yield router
    router.close()


class TestProtocol:
    def test_round_trip_arrays_and_plain(self):
        msg = {
            "op": "search", "k": 7, "nested": {"a": [1, 2]},
            "q": np.arange(12, dtype=np.float32).reshape(3, 4),
            "ids": np.array([5, -1, 9], dtype=np.int64),
            "flags": np.array([True, False]),
        }
        a, b = socket.socketpair()
        send_msg(a, msg)
        got = recv_msg(b)
        assert got["op"] == "search" and got["k"] == 7
        assert got["nested"] == {"a": [1, 2]}
        np.testing.assert_array_equal(got["q"], msg["q"])
        np.testing.assert_array_equal(got["ids"], msg["ids"])
        np.testing.assert_array_equal(got["flags"], msg["flags"])
        assert got["q"].dtype == np.float32 and got["ids"].dtype == np.int64
        a.close(), b.close()

    def test_empty_arrays_and_zero_payload(self):
        frame = encode({"ids": np.empty((0, 5), dtype=np.int64), "x": None})
        header_len = int.from_bytes(frame[:4], "big")
        got = decode(frame[4:4 + header_len], frame[4 + header_len:])
        assert got["ids"].shape == (0, 5) and got["x"] is None

    def test_peer_death_is_connection_error(self):
        a, b = socket.socketpair()
        send_msg(a, {"op": "ping"})
        a.close()
        recv_msg(b)  # the complete frame still arrives
        with pytest.raises(ConnectionError):
            recv_msg(b)  # then EOF
        b.close()

    def test_mid_frame_close_is_connection_error(self):
        a, b = socket.socketpair()
        frame = encode({"q": np.ones((4, 8), dtype=np.float32)})
        a.sendall(frame[: len(frame) - 10])
        a.close()
        with pytest.raises(ConnectionError):
            recv_msg(b)
        b.close()


def _reference_merge(ids_blocks, dists_blocks, k, excluded=None):
    """Per-row python merge: sort, dedupe keeping best, drop excluded."""
    excluded = set() if excluded is None else set(excluded.tolist())
    n = ids_blocks[0].shape[0]
    out_ids = np.full((n, k), -1, dtype=np.int64)
    out_d = np.full((n, k), np.inf)
    for r in range(n):
        pairs = {}
        for ids, dists in zip(ids_blocks, dists_blocks):
            for g, d in zip(ids[r].tolist(), dists[r].tolist()):
                if g < 0 or g in excluded:
                    continue
                if g not in pairs or d < pairs[g]:
                    pairs[g] = d
        ranked = sorted(pairs.items(), key=lambda t: (t[1], t[0]))[:k]
        for j, (g, d) in enumerate(ranked):
            out_ids[r, j] = g
            out_d[r, j] = d
    return out_ids, out_d


class TestMergeTopk:
    def test_duplicates_across_replicas_keep_best_distance(self):
        a_ids = np.array([[3, 7, 9]], dtype=np.int64)
        a_d = np.array([[0.5, 0.9, 1.4]])
        b_ids = np.array([[7, 3, 11]], dtype=np.int64)
        b_d = np.array([[0.4, 0.8, 1.0]])  # better 7, worse 3
        ids, dists = merge_topk_batch([a_ids, b_ids], [a_d, b_d], k=4)
        np.testing.assert_array_equal(ids[0], [7, 3, 11, 9])
        np.testing.assert_allclose(dists[0], [0.4, 0.5, 1.0, 1.4])

    def test_k_larger_than_any_shard_result(self):
        a = (np.array([[1, 2]], dtype=np.int64), np.array([[0.1, 0.2]]))
        b = (np.array([[3]], dtype=np.int64), np.array([[0.15]]))
        ids, dists = merge_topk_batch([a[0], b[0]], [a[1], b[1]], k=10)
        np.testing.assert_array_equal(ids[0][:3], [1, 3, 2])
        assert (ids[0][3:] == -1).all() and np.isinf(dists[0][3:]).all()

    def test_empty_shard_partial(self):
        empty = np.full((2, 3), -1, dtype=np.int64)
        empty_d = np.full((2, 3), np.inf)
        live = np.array([[4, 5, 6], [7, 8, 9]], dtype=np.int64)
        live_d = np.array([[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]])
        ids, dists = merge_topk_batch([empty, live], [empty_d, live_d], k=3)
        np.testing.assert_array_equal(ids, live)
        np.testing.assert_allclose(dists, live_d)

    def test_tombstones_are_filtered(self):
        ids = np.array([[1, 2, 3]], dtype=np.int64)
        d = np.array([[0.1, 0.2, 0.3]])
        got, _ = merge_topk_batch([ids], [d], k=3,
                                  excluded=np.array([2], dtype=np.int64))
        np.testing.assert_array_equal(got[0], [1, 3, -1])

    def test_all_blocks_empty(self):
        ids, dists = merge_topk_batch(
            [np.full((3, 2), -1, dtype=np.int64)], [np.full((3, 2), np.inf)],
            k=4)
        assert (ids == -1).all() and np.isinf(dists).all()

    def test_matches_reference_fuzz(self):
        rng = np.random.default_rng(3)
        for trial in range(25):
            n_blocks = int(rng.integers(1, 5))
            rows = int(rng.integers(1, 6))
            k = int(rng.integers(1, 9))
            blocks_i, blocks_d = [], []
            for _ in range(n_blocks):
                width = int(rng.integers(1, 7))
                ids = rng.integers(-1, 40, size=(rows, width)).astype(np.int64)
                d = np.round(rng.random((rows, width)) * 4, 3)
                d[ids < 0] = np.inf
                blocks_i.append(ids)
                blocks_d.append(d)
            excluded = np.unique(
                rng.integers(0, 40, size=rng.integers(0, 5))).astype(np.int64)
            got_i, got_d = merge_topk_batch(blocks_i, blocks_d, k,
                                            excluded=excluded)
            ref_i, ref_d = _reference_merge(blocks_i, blocks_d, k,
                                            excluded=excluded)
            # Equal-distance ids may legally order either way; compare as
            # (distance, membership) rather than exact id order.
            np.testing.assert_allclose(got_d, ref_d)
            for r in range(rows):
                assert set(got_i[r].tolist()) == set(ref_i[r].tolist())

    def test_single_query_wrapper(self):
        ids, dists = merge_topk([[5, 6]], [[0.2, 0.1]], k=2)
        np.testing.assert_array_equal(ids, [6, 5])
        np.testing.assert_allclose(dists, [0.1, 0.2])


class TestMergeStats:
    def test_numbers_sum_and_dicts_recurse(self):
        merged = merge_stats([
            {"n": 2, "compressed": {"adc_scored": 10, "rerank_ndc": 3}},
            {"n": 5, "compressed": {"adc_scored": 7, "rerank_ndc": 1}},
        ])
        assert merged["n"] == 7
        assert merged["compressed"] == {"adc_scored": 17, "rerank_ndc": 4}

    def test_bools_and_identity_keys(self):
        merged = merge_stats([
            {"built": True, "shard_id": 0, "pq_sig": "ab", "alive": True},
            {"built": True, "shard_id": 1, "pq_sig": "ab", "alive": False},
        ])
        assert merged["built"] is True and merged["alive"] is False
        assert merged["shard_id"] == [0, 1]   # enumerated, not summed
        assert merged["pq_sig"] == "ab"       # unanimous -> collapsed

    def test_diverging_strings_become_lists(self):
        merged = merge_stats([{"pq_sig": "aa"}, {"pq_sig": "bb"}])
        assert merged["pq_sig"] == ["aa", "bb"]

    def test_missing_keys_merge_over_present(self):
        merged = merge_stats([{"a": 1}, {"a": 2, "b": 4}, {}])
        assert merged == {"a": 3, "b": 4}

    def test_empty(self):
        assert merge_stats([]) == {}
        assert merge_stats([None, "x"]) == {}


class TestPartitioningAndBudget:
    def test_hash_partition_balanced_and_deterministic(self):
        gids = np.arange(1000)
        parts = hash_partition(gids, 4)
        counts = np.bincount(parts, minlength=4)
        assert counts.max() - counts.min() <= 1
        np.testing.assert_array_equal(parts, hash_partition(gids, 4))

    def test_shard_budget_math(self):
        assert shard_budget_ms(100.0) == pytest.approx(85.0)
        assert shard_budget_ms(100.0, merge_reserve=0.5) == pytest.approx(50.0)
        assert shard_budget_ms(0.0) == pytest.approx(0.1)  # floor, not zero


class TestRouter:
    def test_router_matches_partitioned_oracle(self, cluster_data,
                                               shared_router):
        """Bit-equality: router results == per-partition stores + merge."""
        base, queries = cluster_data
        router = shared_router
        k, ef = 10, 40
        got = router.search_batch(queries, k, ef)

        gids = np.arange(base.shape[0], dtype=np.int64)
        parts = hash_partition(gids, router.n_shards)
        blocks_i, blocks_d = [], []
        for s in range(router.n_shards):
            part_gids = gids[parts == s]
            store = VectorStore(dim=DIM, metric="l2", M=8,
                                ef_construction=40, seed=5 + s)
            store.add(base[parts == s])
            store.build()
            results = store.search_batch(queries, k, ef, batch_size=256)
            ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
            d = np.full((queries.shape[0], k), np.inf)
            for i, r in enumerate(results):
                m = min(k, len(r.ids))
                ids[i, :m] = part_gids[r.ids[:m]]
                d[i, :m] = r.distances[:m]
            blocks_i.append(ids)
            blocks_d.append(d)
        oracle_i, oracle_d = merge_topk_batch(blocks_i, blocks_d, k)
        for i, result in enumerate(got):
            valid = oracle_i[i] >= 0
            np.testing.assert_array_equal(result.ids, oracle_i[i][valid])
            np.testing.assert_array_equal(result.distances,
                                          oracle_d[i][valid])
            assert not result.degraded

    def test_k_larger_than_shard_results_end_to_end(self, shared_router,
                                                    cluster_data):
        _, queries = cluster_data
        results = shared_router.search_batch(queries[:4], k=150, ef=160)
        for r in results:
            assert len(r.ids) > 100  # more than any single 100-row shard
            assert len(np.unique(r.ids)) == len(r.ids)
            assert (np.diff(r.distances) >= 0).all()

    def test_search_many_padding(self, shared_router, cluster_data):
        _, queries = cluster_data
        ids, dists = shared_router.search_many(queries[:3], k=5, ef=40)
        assert ids.shape == (3, 5) and (ids >= 0).all()
        assert np.isfinite(dists).all()

    def test_add_delete_and_tombstone_filter(self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, M=8,
                           ef_construction=40, seed=1) as router:
            gids = router.load(base[:200])
            assert gids == list(range(200))
            new = router.add(base[200:210])
            assert new == list(range(200, 210))
            first = router.search(queries[0], k=5, ef=40)
            victims = first.ids[:2].tolist()
            router.delete(victims)
            after = router.search_batch(queries, k=5, ef=40)
            for r in after:
                assert not set(victims) & set(r.ids.tolist())

    def test_observe_and_stats_rollup(self, shared_router, cluster_data):
        _, queries = cluster_data
        assert shared_router.observe(queries[0])
        stats = shared_router.stats()
        assert len(stats["shards"]) == shared_router.n_shards
        merged = stats["merged"]
        assert merged["alive"] is True
        assert merged["n_gids"] == 300
        assert stats["router"]["live_replicas"] == shared_router.n_shards

    def test_deadline_degrades_not_raises(self, shared_router, cluster_data):
        _, queries = cluster_data
        results = shared_router.search_batch(queries, k=5, ef=40,
                                             deadline_ms=1e-6)
        assert len(results) == len(queries)
        # best-so-far under an already-blown budget: flagged, never raised
        assert any(r.degraded for r in results)

    def test_dimension_mismatch_raises(self, shared_router):
        with pytest.raises(ValueError, match="dimension"):
            shared_router.add(np.ones((1, DIM + 1), dtype=np.float32))


class TestSharedPQ:
    def test_codebook_shipped_to_every_shard(self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="cosine", n_shards=3,
                           compressed=True, pq_m=4, pq_ks=16, rerank=30,
                           M=8, ef_construction=40, seed=2) as router:
            router.load(base)
            stats = router.stats()
            sigs = {s["pq_sig"] for s in stats["shards"]}
            assert len(sigs) == 1 and sigs.pop() != ""
            results = router.search_batch(queries[:8], k=5, ef=40)
            assert all(len(r.ids) == 5 for r in results)
            assert router.adc_scored > 0
            merged = router.stats()["merged"]["compressed"]
            assert merged["adc_scored"] == sum(
                s["compressed"]["adc_scored"]
                for s in router.stats()["shards"])

    def test_respawned_shard_readopts_shared_codebook(self, cluster_data):
        base, _ = cluster_data
        with ClusterRouter(dim=DIM, metric="cosine", n_shards=2,
                           compressed=True, pq_m=4, pq_ks=16,
                           M=8, ef_construction=40, seed=2) as router:
            router.load(base)
            before = {s["pq_sig"] for s in router.stats()["shards"]}
            router.handles[0][0].process.kill()
            router.respawn(0, 0)
            after = {s["pq_sig"] for s in router.stats()["shards"]}
            assert after == before and len(after) == 1

    def test_store_apply_pq_rejects_bad_codebooks(self):
        from repro.quantization.pq import ProductQuantizer
        store = VectorStore(dim=DIM, metric="l2")
        with pytest.raises(ValueError, match="fitted"):
            store.apply_pq(ProductQuantizer(m=4, ks=8))
        rng = np.random.default_rng(0)
        wrong = ProductQuantizer(m=4, ks=8, metric="l2")
        wrong.fit(rng.standard_normal((64, DIM * 2)).astype(np.float32))
        with pytest.raises(ValueError, match="dimension"):
            store.apply_pq(wrong)


class TestFrontDoor:
    def test_coalesces_and_matches_direct_path(self, shared_router,
                                               cluster_data):
        _, queries = cluster_data
        door = FrontDoor(shared_router, window_ms=5.0, max_batch=64,
                         k=5, ef=40)

        async def serve():
            return await asyncio.gather(
                *(door.search(q) for q in queries))

        results = asyncio.run(serve())
        assert door.n_dispatched == len(queries)
        assert door.n_blocks < len(queries)  # actually coalesced
        direct = shared_router.search_batch(queries, k=5, ef=40)
        for got, want in zip(results, direct):
            np.testing.assert_array_equal(got.ids, want.ids)

    def test_max_batch_dispatches_early(self, shared_router, cluster_data):
        _, queries = cluster_data
        door = FrontDoor(shared_router, window_ms=10_000.0, max_batch=4,
                         k=5, ef=40)

        async def serve():
            return await asyncio.gather(*(door.search(q)
                                          for q in queries[:8]))

        t0 = time.perf_counter()
        results = asyncio.run(serve())
        assert time.perf_counter() - t0 < 5.0  # size cut, not the window
        assert len(results) == 8 and door.n_blocks == 2
        assert door.stats()["mean_batch"] == pytest.approx(4.0)

    def test_lone_query_pays_only_the_window(self, shared_router,
                                             cluster_data):
        _, queries = cluster_data
        door = FrontDoor(shared_router, window_ms=1.0, max_batch=64,
                         k=5, ef=40)

        async def one():
            return await door.search(queries[0])

        result = asyncio.run(one())
        assert len(result.ids) == 5 and door.n_blocks == 1


@pytest.mark.timeout(120)
class TestChaos:
    def test_replica_masks_shard_death(self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=2,
                           M=8, ef_construction=40, seed=3) as router:
            router.load(base)
            want = [r.ids.copy() for r in router.search_batch(queries, 5, 40)]
            router.handles[0][0].rpc({"op": "arm_faults", "rules": [
                {"point": WORKER_OP_POINT, "action": "kill", "nth": 1}]})
            for _ in range(4):  # round-robin hits the armed replica
                results = router.search_batch(queries, 5, 40)
                assert not any(r.degraded for r in results)
                for got, ids in zip(results, want):
                    np.testing.assert_array_equal(got.ids, ids)
            assert router.live_replicas() == 3
            assert router.n_retries >= 1

    def test_kill_mid_churn_degrade_recover(self, cluster_data, tmp_path):
        """The ISSUE's chaos scenario: kill a shard under churn, survive
        degraded, recover from the shard's own WAL with gap-free seqs."""
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=1,
                           base_dir=tmp_path, M=8, ef_construction=40,
                           seed=3) as router:
            router.load(base[:280])
            gids = np.arange(280)
            dead_part = 1
            victims = [int(g) for g in gids if g % 2 == 0][:3]  # partition 0

            # Healthy churn, then arm the kill on partition 1's only replica.
            router.delete(victims[:1])
            router.add(base[280:282])
            healthy = router.search_batch(queries, 5, 40)
            assert not any(r.degraded for r in healthy)
            router.handles[dead_part][0].rpc(
                {"op": "arm_faults", "rules": [
                    {"point": WORKER_OP_POINT, "action": "kill", "nth": 1}]})

            # Outage window: searches degrade but stay valid (survivor ids
            # only, sorted distances); no exception ever escapes.
            degraded_seen = 0
            for round_ in range(3):
                results = router.search_batch(queries, 5, 40)
                for r in results:
                    if r.degraded:
                        degraded_seen += 1
                        assert all(int(g) % 2 == 0 for g in r.ids)
                    assert (np.diff(r.distances) >= 0).all()
                # Churn continues against the surviving partition; writes
                # for the dead partition are refused (no ack possible) and
                # buffered for catch-up.
                router.delete([victims[1 + round_ % 2]])
                with pytest.raises(ClusterError, match="no live replica"):
                    router.add(base[282:284])  # gids 282/283 span partitions
            assert degraded_seen > 0
            assert router.live_replicas() == 1

            # Self-recovery from the shard's own WAL: gap-free seqs.
            report = router.respawn(dead_part, 0)
            assert report is not None and report["consistent"] is True
            assert report["errors"] == []
            assert router.live_replicas() == 2

            # Degraded only during the outage: full answers come back and
            # catch-up replay restored the buffered mutations (idempotent
            # per gid, so the refused adds land exactly once).
            results = router.search_batch(queries, 5, 40)
            assert not any(r.degraded for r in results)
            deleted = set(victims[:3][:1] + [victims[1], victims[2]])
            for r in results:
                assert not deleted & set(int(g) for g in r.ids)

    def test_respawn_without_wal_history_reports_inconsistent_error(
            self, cluster_data):
        """Respawn needs the WAL dir; a fresh temp cluster still has one
        per replica, so recovery works even with base_dir=None."""
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2,
                           M=8, ef_construction=40, seed=4) as router:
            router.load(base[:100])
            router.handles[1][0].process.kill()
            report = router.respawn(1, 0)
            assert report["consistent"] is True
            results = router.search_batch(queries[:4], 5, 40)
            assert not any(r.degraded for r in results)
