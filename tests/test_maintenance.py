"""Insertion/deletion maintenance (Sec. 5.5)."""

import numpy as np
import pytest

from repro.core import FixConfig, IndexMaintainer, NGFixer
from repro.evalx import recall_at_k
from repro.graphs import HNSW, NSG

# Maintenance paths interact with background merging; a stuck compaction or
# rebuild must fail fast rather than hang the suite.
pytestmark = pytest.mark.timeout(120)


def _fixer(tiny_ds, n_base=300):
    base = HNSW(tiny_ds.base[:n_base], tiny_ds.metric, M=8, ef_construction=40,
                single_layer=True, seed=3)
    fixer = NGFixer(base, FixConfig(k=8, max_extra_degree=10, preprocess="exact"))
    fixer.fit(tiny_ds.train_queries[:40])
    return fixer


def _recall(fixer, queries, k, ef):
    alive = np.ones(fixer.dc.size, dtype=bool)
    if fixer.adjacency.tombstones:
        alive[list(fixer.adjacency.tombstones)] = False
    if hasattr(fixer, "_deleted"):
        alive[list(fixer._deleted)] = False
    data = fixer.dc.data
    from repro.distances import pairwise_distances
    d = pairwise_distances(np.asarray(queries), data, fixer.dc.metric)
    d[:, ~alive] = np.inf
    gt_ids = np.argsort(d, axis=1, kind="stable")[:, :k]
    found = np.vstack([fixer.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt_ids)


class TestInsertion:
    def test_insert_grows_and_finds(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40])
        ids = maintainer.insert(tiny_ds.base[300:320])
        assert ids == list(range(300, 320))
        assert fixer.dc.size == 320
        r = fixer.search(tiny_ds.base[310], k=1, ef=30)
        assert r.ids[0] == 310

    def test_insert_requires_capable_index(self, tiny_ds):
        base = NSG(tiny_ds.base[:200], tiny_ds.metric, R=10, L=25, knn_k=10)
        fixer = NGFixer(base, FixConfig(k=6, preprocess="exact"))
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:10])
        with pytest.raises(TypeError, match="insertion"):
            maintainer.insert(tiny_ds.base[300:301])

    def test_partial_rebuild_drops_and_refixes(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40], seed=0)
        report = maintainer.partial_rebuild(proportion=0.5, drop_fraction=0.3)
        assert report["dropped_extra_edges"] > 0
        assert report["history_used"] == 20
        assert report["seconds"] > 0

    def test_partial_rebuild_recovers_quality(self, tiny_ds):
        """After inserting 20% new points, partial rebuild improves test
        recall over no rebuild (Fig. 18 shape)."""
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40], seed=0)
        maintainer.insert(tiny_ds.base[300:360])
        before = _recall(fixer, tiny_ds.test_queries, k=8, ef=16)
        maintainer.partial_rebuild(proportion=1.0, drop_fraction=0.2)
        after = _recall(fixer, tiny_ds.test_queries, k=8, ef=16)
        assert after >= before - 0.02  # never materially worse ...
        # ... and the extra-edge pool has been refreshed:
        assert fixer.adjacency.n_extra_edges() > 0

    def test_fraction_validation(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:10])
        with pytest.raises(ValueError):
            maintainer.partial_rebuild(proportion=1.5)

    def test_partial_rebuild_preserves_rfix_edges(self, tiny_ds):
        """Regression: EH=inf RFix navigation edges survive the rebuild's
        random edge drop with their sentinel tag intact."""
        from repro.graphs.adjacency import EH_INFINITE
        fixer = _fixer(tiny_ds)
        u = 0
        v = next(x for x in range(1, fixer.dc.size)
                 if not fixer.adjacency.has_edge(u, x))
        assert fixer.adjacency.add_extra_edge(u, v, eh=EH_INFINITE)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40], seed=0)
        maintainer.partial_rebuild(proportion=0.0, drop_fraction=1.0)
        assert fixer.adjacency.extra_neighbors(u).get(v) == EH_INFINITE


class TestDeletion:
    def test_lazy_deletion_excludes_from_results(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40],
                                     compact_threshold=0.5)
        victim = int(fixer.search(tiny_ds.test_queries[0], k=1, ef=20).ids[0])
        compacted = maintainer.delete([victim])
        assert not compacted
        r = fixer.search(tiny_ds.test_queries[0], k=5, ef=20)
        assert victim not in r.ids.tolist()

    def test_threshold_triggers_compaction(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40],
                                     compact_threshold=0.01, seed=0)
        victims = list(range(10))
        assert maintainer.delete(victims)
        assert not fixer.adjacency.tombstones
        # no edges point at deleted nodes anymore
        for u in range(fixer.dc.size):
            for v in fixer.adjacency.neighbors(u).tolist():
                assert v not in victims

    def test_compaction_repair_preserves_recall(self, tiny_ds):
        """NGFix-repair after physical deletion keeps recall close to the
        pre-deletion level (Fig. 19 shape)."""
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40],
                                     compact_threshold=0.5, seed=0)
        rng = np.random.default_rng(0)
        victims = rng.choice(300, size=45, replace=False).tolist()
        maintainer.delete(victims)
        report = maintainer.compact(repair=True)
        assert report["deleted"] == 45
        assert report["repaired_regions"] == 45
        fixer._deleted = set(victims)
        recall = _recall(fixer, tiny_ds.test_queries, k=8, ef=24)
        assert recall > 0.55

    def test_compact_without_repair_is_faster_but_weaker_or_equal(self, tiny_ds):
        f1, f2 = _fixer(tiny_ds), _fixer(tiny_ds)
        victims = list(range(30))
        for f, repair in ((f1, True), (f2, False)):
            m = IndexMaintainer(f, tiny_ds.train_queries[:40],
                                compact_threshold=0.5, seed=0)
            m.delete(victims)
            m.compact(repair=repair)
            f._deleted = set(victims)
        r_repair = _recall(f1, tiny_ds.test_queries, k=8, ef=24)
        r_plain = _recall(f2, tiny_ds.test_queries, k=8, ef=24)
        assert r_repair >= r_plain - 0.05

    def test_delete_out_of_range(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:10])
        with pytest.raises(IndexError):
            maintainer.delete([10_000])

    def test_compact_empty_is_noop(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:10])
        assert maintainer.compact()["deleted"] == 0

    def test_delete_invalidates_attached_cache(self, tiny_ds):
        """Regression: cached answers referencing a deleted id are evicted at
        tombstone time, so the searcher never resurrects the point."""
        from repro.core.hash_cache import CachedSearcher
        fixer = _fixer(tiny_ds)
        searcher = CachedSearcher(fixer)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:40],
                                     compact_threshold=0.5, cache=searcher)
        query = tiny_ds.test_queries[0]
        first = searcher.search(query, k=5, ef=20)
        searcher.cache.put(query, first.ids, first.distances)
        victim = int(first.ids[0])
        maintainer.delete([victim])
        assert len(searcher.cache) == 0
        again = searcher.search(query, k=5, ef=20)
        assert victim not in again.ids.tolist()

    def test_entry_point_moved_if_deleted(self, tiny_ds):
        fixer = _fixer(tiny_ds)
        maintainer = IndexMaintainer(fixer, tiny_ds.train_queries[:10],
                                     compact_threshold=0.5, seed=0)
        entry = fixer.entry
        maintainer.delete([entry])
        maintainer.compact(repair=False)
        assert fixer.entry != entry
