"""Epoch-based serving layer: pins, overlay, scheduler, store wiring.

The load-bearing guarantees under test:

- **Epoch consistency** — a search against a pinned epoch returns
  bit-identical results no matter how many inserts/deletes/fixes land in the
  overlay after the pin (property-tested over random interleaves).
- **Tombstone safety** — a deleted id never surfaces in post-deletion
  results, pinned-before-deletion views still (correctly) serve it.
- **Zero O(E) refreezes on the query path** — serving never rebuilds the
  CSR; only scheduler merges do.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import VectorStore
from repro.graphs.adjacency import AdjacencyStore, ObservedTombstones
from repro.graphs.search import greedy_search
from repro.serving import DeltaOverlay, EpochManager, MaintenanceScheduler

pytestmark = pytest.mark.timeout(120)

DIM = 16
N_BASE = 150
_rng = np.random.default_rng(11)
BASE = _rng.standard_normal((N_BASE, DIM)).astype(np.float32)
EXTRA = _rng.standard_normal((80, DIM)).astype(np.float32)
QUERIES = _rng.standard_normal((12, DIM)).astype(np.float32)


def make_store(merge_every=50, mode="inline", serving=True):
    store = VectorStore(dim=DIM, metric="l2", M=8, ef_construction=40,
                        serving=serving, scheduler_mode=mode,
                        merge_every=merge_every)
    store.add(BASE)
    store.build()
    return store


def pinned_search(store, pin, query, k=10, ef=30):
    view = pin.view
    return greedy_search(store.dc, view, [pin.epoch.entry], query,
                         k=k, ef=ef, excluded=view.excluded())


class TestDeltaOverlay:
    def test_publish_after_append_sequencing(self):
        overlay = DeltaOverlay(base_n_nodes=10)
        assert overlay.seq == 0
        overlay.record_node(3, np.array([1, 2], dtype=np.int64))
        overlay.record_node(3, np.array([1, 2, 5], dtype=np.int64))
        overlay.record_tombstone(7)
        assert overlay.seq == 3
        # Each pinned seq resolves the exact prefix.
        assert overlay.resolve(3, 0) is None
        assert overlay.resolve(3, 1).tolist() == [1, 2]
        assert overlay.resolve(3, 2).tolist() == [1, 2, 5]
        assert overlay.resolve(3, 99).tolist() == [1, 2, 5]
        assert overlay.tombstones_at(2) == set()
        assert overlay.tombstones_at(3) == {7}

    def test_untouched_node_resolves_none(self):
        overlay = DeltaOverlay(base_n_nodes=10)
        overlay.record_node(1, np.array([2], dtype=np.int64))
        assert overlay.resolve(0, overlay.seq) is None


class TestObservedTombstones:
    def test_additions_logged_to_overlay(self):
        store = AdjacencyStore(8)
        overlay = DeltaOverlay(8)
        store.attach_overlay(overlay)
        assert isinstance(store.tombstones, ObservedTombstones)
        store.tombstones.add(3)
        store.tombstones.update({3, 5})  # 3 is a duplicate — logged once
        assert overlay.tombstones_at(overlay.seq) == {3, 5}
        assert overlay.seq == 2

    def test_detach_stops_logging(self):
        store = AdjacencyStore(8)
        overlay = DeltaOverlay(8)
        store.attach_overlay(overlay)
        store.detach_overlay()
        store.tombstones.add(2)
        store.add_base_edge(0, 1)
        assert overlay.seq == 0


class TestEpochView:
    def test_overlay_wins_over_csr(self):
        adjacency = AdjacencyStore(4)
        adjacency.add_base_edge(0, 1)
        manager = EpochManager(adjacency, entry=0)
        pin0 = manager.pin()
        adjacency.add_base_edge(0, 2)
        pin1 = manager.pin()
        assert pin0.view.neighbors(0).tolist() == [1]
        assert pin1.view.neighbors(0).tolist() == [1, 2]
        # Nodes beyond the epoch horizon read empty until they get edges.
        adjacency.grow(1)
        pin2 = manager.pin()
        assert pin2.view.neighbors(4).size == 0
        adjacency.set_base_neighbors(4, [0])
        assert manager.pin().view.neighbors(4).tolist() == [0]

    def test_neighbors_block_matches_per_node(self):
        adjacency = AdjacencyStore(5)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            adjacency.add_base_edge(u, v)
        manager = EpochManager(adjacency, entry=0)
        adjacency.add_base_edge(1, 4)
        adjacency.grow(1)
        adjacency.set_base_neighbors(5, [2, 3])
        view = manager.pin().view
        nodes = np.array([0, 1, 5, 4], dtype=np.int64)
        flat, counts = view.neighbors_block(nodes)
        per_node = [view.neighbors(int(u)).tolist() for u in nodes]
        assert counts.tolist() == [len(p) for p in per_node]
        assert flat.tolist() == [x for p in per_node for x in p]

    def test_block_fast_path_on_clean_overlay(self):
        adjacency = AdjacencyStore(4)
        adjacency.add_base_edge(0, 1)
        manager = EpochManager(adjacency, entry=0)
        view = manager.pin().view
        flat, counts = view.neighbors_block(np.array([0, 1], dtype=np.int64))
        assert flat.tolist() == [1] and counts.tolist() == [1, 0]


class TestEpochManager:
    def test_pin_counting_and_release_idempotent(self):
        adjacency = AdjacencyStore(3)
        manager = EpochManager(adjacency, entry=0)
        pin = manager.pin()
        with manager.pin():
            assert manager.active_pins() == 2
        pin.release()
        pin.release()
        assert manager.active_pins() == 0

    def test_cut_swaps_epoch_and_overlay(self):
        adjacency = AdjacencyStore(3)
        manager = EpochManager(adjacency, entry=0)
        adjacency.add_base_edge(0, 1)
        assert manager.overlay.seq == 1
        old = manager.pin()
        manager.cut(entry=0)
        assert manager.overlay.seq == 0  # fresh overlay
        assert manager.current.epoch_id == old.epoch.epoch_id + 1
        # The old pin still reads through its (now retired) overlay.
        assert old.view.neighbors(0).tolist() == [1]


class TestServingStore:
    def test_search_results_match_live_graph(self):
        store = make_store()
        live = store._fixer
        for q in QUERIES:
            served = [i for i, _, _ in store.search(q, k=5, ef=30)]
            direct = live.search(q, k=5, ef=30).ids.tolist()
            assert served == direct

    def test_batch_matches_sequential_serving(self):
        store = make_store()
        batch = store.search_batch(QUERIES, k=5, ef=30, batch_size=4)
        for q, res in zip(QUERIES, batch):
            seq = [i for i, _, _ in store.search(q, k=5, ef=30)]
            assert res.ids.tolist() == seq

    def test_deleted_id_never_surfaces(self):
        store = make_store()
        q = QUERIES[0]
        victim = store.search(q, k=1, ef=30)[0][0]
        store.delete([victim])
        for ef in (10, 30, 60):
            assert victim not in [i for i, _, _ in store.search(q, k=10, ef=ef)]
        for res in store.search_batch(QUERIES, k=10, ef=30):
            assert victim not in res.ids.tolist()

    def test_insert_becomes_visible(self):
        store = make_store()
        new_id = store.add(EXTRA[:1])[0]
        res = store.search(EXTRA[0], k=1, ef=40)
        assert res[0][0] == new_id

    def test_no_query_path_freezes(self):
        store = make_store(merge_every=10_000)
        adjacency = store._fixer.adjacency
        store.add(EXTRA[:5])
        store.delete([0])
        frozen_before = adjacency.n_freezes
        store.search_batch(QUERIES, k=5, ef=30, batch_size=4)
        for q in QUERIES:
            store.search(q, k=5, ef=30)
        assert adjacency.n_freezes == frozen_before

    def test_merge_threshold_cuts_epoch(self):
        store = make_store(merge_every=5)
        epoch0 = store.epochs.current.epoch_id
        store.add(EXTRA[:8])  # dozens of edge mutations > threshold
        assert store.scheduler.n_merges >= 1
        assert store.epochs.current.epoch_id > epoch0

    def test_observe_runs_online_repair(self):
        store = make_store()
        store.observe(QUERIES[0])
        assert store.scheduler.n_repairs == 1
        assert store.scheduler.stats()["queued"] == 0

    def test_fit_history_is_bulk_and_cuts_epoch(self):
        store = make_store()
        epoch0 = store.epochs.current.epoch_id
        store.fit_history(QUERIES)
        assert store.epochs.current.epoch_id > epoch0
        assert store.epochs.overlay.seq == 0

    def test_serving_disabled_falls_back(self):
        store = make_store(serving=False)
        assert store.scheduler is None and store.epochs is None
        q = QUERIES[0]
        assert [i for i, _, _ in store.search(q, k=5, ef=30)]

    def test_save_load_roundtrip_reattaches_serving(self, tmp_path):
        store = make_store()
        store.delete([5])
        path = store.save(tmp_path / "index.npz")
        loaded = VectorStore.load(path)
        assert loaded.epochs is not None
        q = QUERIES[0]
        ids = [i for i, _, _ in loaded.search(q, k=10, ef=30)]
        assert ids and 5 not in ids

    def test_stats_expose_serving_block(self):
        store = make_store()
        block = store.stats()["serving"]
        assert block["mode"] == "inline"
        assert block["epoch_epoch_id"] >= 1


class TestPinnedConsistency:
    """Tentpole property: pinned results are immutable under overlay churn."""

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.sampled_from(["insert", "delete", "observe"]),
                    min_size=1, max_size=12),
           st.randoms(use_true_random=False))
    def test_pinned_results_bit_identical_under_churn(self, ops, rnd):
        store = make_store(merge_every=15)
        pin = store.epochs.pin()
        reference = [pinned_search(store, pin, q) for q in QUERIES[:4]]

        deleted: list[int] = []
        extra_cursor = 0
        for op in ops:
            if op == "insert" and extra_cursor < len(EXTRA):
                store.add(EXTRA[extra_cursor:extra_cursor + 1])
                extra_cursor += 1
            elif op == "delete":
                alive = [i for i in range(N_BASE) if i not in deleted]
                victim = rnd.choice(alive)
                store.delete([victim])
                deleted.append(victim)
            else:
                store.observe(QUERIES[rnd.randrange(len(QUERIES))])
            # The pinned view must replay the exact pre-churn results after
            # every single mutation, including across epoch merges.
            for q, ref in zip(QUERIES[:4], reference):
                res = pinned_search(store, pin, q)
                np.testing.assert_array_equal(res.ids, ref.ids)
                np.testing.assert_array_equal(res.distances, ref.distances)

        # And the live store never surfaces a tombstoned id.
        for q in QUERIES:
            served = [i for i, _, _ in store.search(q, k=10, ef=40)]
            assert not set(served) & set(deleted)
        pin.release()


class TestThreadScheduler:
    @pytest.mark.timeout(60)
    def test_background_worker_drains_and_merges(self):
        store = make_store(merge_every=10, mode="thread")
        try:
            store.observe(QUERIES[0])
            store.add(EXTRA[:4])
            assert store.scheduler.flush(timeout=30)
            assert store.scheduler.n_repairs == 1
            assert store.scheduler.n_merges >= 1
            # Serving keeps working while the worker runs.
            ids = [i for i, _, _ in store.search(QUERIES[1], k=5, ef=30)]
            assert len(ids) == 5
        finally:
            store.scheduler.stop()

    @pytest.mark.timeout(60)
    def test_stop_is_idempotent(self):
        store = make_store(mode="thread")
        store.scheduler.stop()
        store.scheduler.stop()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            MaintenanceScheduler(None, None, mode="eager")

    def test_invalid_merge_every_rejected(self):
        with pytest.raises(ValueError, match="merge_every"):
            MaintenanceScheduler(None, None, merge_every=0)


class _PoisonOnce:
    """Fixer proxy whose first fix_query raises, then delegates."""

    def __init__(self, fixer):
        self._fixer = fixer
        self.raised = False

    def __getattr__(self, name):
        return getattr(self._fixer, name)

    def fix_query(self, query):
        if not self.raised:
            self.raised = True
            raise RuntimeError("poisoned repair")
        return self._fixer.fix_query(query)


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.01)
    return True


class TestWorkerResilience:
    """A poisoned repair must not silently kill background maintenance."""

    @pytest.mark.timeout(60)
    def test_worker_survives_poisoned_repair(self):
        store = make_store(mode="thread")
        scheduler = store.scheduler
        try:
            scheduler.fixer = _PoisonOnce(scheduler.fixer)
            store.observe(QUERIES[0])
            assert scheduler.flush(timeout=30)
            assert _wait_for(lambda: scheduler.n_worker_errors == 1)
            stats = scheduler.stats()
            assert stats["worker_errors"] == 1
            assert "poisoned repair" in stats["worker_last_error"]
            assert stats["worker_alive"] is True
            assert stats["worker_heartbeat_age_seconds"] < 30
            # The worker keeps draining: the next repair goes through.
            store.observe(QUERIES[1])
            assert scheduler.flush(timeout=30)
            assert _wait_for(lambda: scheduler.n_repairs == 1)
            # Serving never blinked.
            assert len(store.search(QUERIES[2], k=5, ef=30)) == 5
        finally:
            scheduler.stop()

    def test_inline_mode_propagates_repair_error(self):
        """Inline callers see the failure directly — no swallowing there."""
        store = make_store(mode="inline")
        store.scheduler.fixer = _PoisonOnce(store.scheduler.fixer)
        with pytest.raises(RuntimeError, match="poisoned repair"):
            store.observe(QUERIES[0])
        assert store.scheduler.stats()["worker_alive"] is True

    def test_worker_alive_false_after_stop(self):
        store = make_store(mode="thread")
        assert store.scheduler.worker_alive()
        store.scheduler.stop()
        assert not store.scheduler.worker_alive()


class TestBulkAbortSafety:
    """A failing bulk body must not publish a half-built graph."""

    def test_exception_propagates_and_nothing_publishes(self):
        store = make_store()
        scheduler = store.scheduler
        epoch_before = scheduler.manager.current.epoch_id
        merges_before = scheduler.n_merges
        before = [store.search(q, k=5, ef=30) for q in QUERIES[:3]]
        with pytest.raises(RuntimeError, match="bulk body died"):
            with scheduler.bulk():
                raise RuntimeError("bulk body died")
        assert scheduler.manager.current.epoch_id == epoch_before
        assert scheduler.n_merges == merges_before
        assert scheduler.n_bulk_aborts == 1
        assert scheduler.stats()["bulk_aborts"] == 1
        # The pre-bulk epoch keeps serving bit-identical results.
        after = [store.search(q, k=5, ef=30) for q in QUERIES[:3]]
        assert after == before

    def test_partial_bulk_stays_invisible_until_next_cut(self):
        store = make_store(merge_every=10_000)
        scheduler = store.scheduler
        with pytest.raises(RuntimeError, match="died midway"):
            with scheduler.bulk():
                self.partial_id = store.add(EXTRA[:1])[0]
                raise RuntimeError("died midway")
        # The insert landed in the live graph while logging was suspended,
        # so serving (pre-bulk epoch + resumed overlay) must not see it...
        ids = [i for i, _, _ in store.search(EXTRA[0], k=3, ef=40)]
        assert self.partial_id not in ids
        # ...until a deliberate cut folds the live graph in.
        scheduler.merge_now()
        res = store.search(EXTRA[0], k=1, ef=40)
        assert res[0][0] == self.partial_id

    def test_overlay_logging_resumes_after_abort(self):
        store = make_store(merge_every=10_000)
        scheduler = store.scheduler
        with pytest.raises(RuntimeError):
            with scheduler.bulk():
                raise RuntimeError("boom")
        # Post-abort mutations go through the re-attached overlay and are
        # immediately visible — no epoch cut required.
        epoch_before = scheduler.manager.current.epoch_id
        new_id = store.add(EXTRA[1:2])[0]
        res = store.search(EXTRA[1], k=1, ef=40)
        assert res[0][0] == new_id
        assert scheduler.manager.current.epoch_id == epoch_before

    def test_success_path_still_cuts(self):
        store = make_store()
        scheduler = store.scheduler
        epoch_before = scheduler.manager.current.epoch_id
        with scheduler.bulk():
            pass
        assert scheduler.manager.current.epoch_id == epoch_before + 1
        assert scheduler.n_bulk_aborts == 0
