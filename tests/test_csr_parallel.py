"""Frozen-CSR search ≡ dynamic-store search, and parallel ≡ serial builds.

Two equivalence contracts guard the PR's perf layer:

1. Searching over a frozen :class:`CSRGraphView` returns bit-identical
   (ids, distances, NDC, hops) to searching the live ``AdjacencyStore`` —
   across graph classes, metrics, tombstones, and post-fix extra edges.
2. Every ``n_workers`` knob produces the same artifact as a serial run:
   identical graphs, identical ground truth, identical NDC accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import NSG, FixConfig, NGFixer, RoarGraph, TauMNG
from repro.distances import DistanceComputer, Metric
from repro.evalx import compute_ground_truth, evaluate_index
from repro.graphs import HNSW, Vamana
from repro.graphs.adjacency import FREEZE_AFTER_READS, AdjacencyStore
from repro.graphs.search import BatchSearchEngine, VisitedTable, greedy_search
from repro.utils.parallel import chunk_bounds, parallel_map


@st.composite
def store_with_extras(draw):
    """Random store holding base edges plus EH-tagged extra edges."""
    n = draw(st.integers(8, 40))
    dim = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, dim)).astype(np.float32)
    adjacency = AdjacencyStore(n)
    deg = draw(st.integers(1, 6))
    for u in range(n):
        for v in rng.choice(n, size=min(deg, n - 1), replace=False):
            if int(v) != u:
                adjacency.add_base_edge(u, int(v))
    for _ in range(draw(st.integers(0, 3 * n))):
        u, v = rng.integers(0, n, size=2)
        adjacency.add_extra_edge(int(u), int(v), float(rng.integers(1, 20)))
    metric = draw(st.sampled_from(list(Metric)))
    return data, adjacency, metric, seed


def _assert_same_results(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    # Bit-level, not allclose: both paths share one distance kernel.
    np.testing.assert_array_equal(a.distances, b.distances)
    assert a.n_hops == b.n_hops


class TestCSRLayout:
    @settings(max_examples=40, deadline=None)
    @given(store_with_extras())
    def test_freeze_preserves_neighbor_order(self, world):
        _, adjacency, _, _ = world
        view = adjacency.freeze()
        for u in range(adjacency.n_nodes):
            np.testing.assert_array_equal(view.neighbors(u),
                                          adjacency.neighbors(u))
            np.testing.assert_array_equal(view(u), adjacency.neighbors(u))
            assert view.out_degree(u) == adjacency.out_degree(u)

    @settings(max_examples=40, deadline=None)
    @given(store_with_extras(), st.integers(0, 2**16))
    def test_neighbors_block_matches_per_node(self, world, seed):
        _, adjacency, _, _ = world
        view = adjacency.freeze()
        rng = np.random.default_rng(seed)
        nodes = rng.integers(0, adjacency.n_nodes, size=7)
        flat, counts = view.neighbors_block(nodes)
        per_node = [view.neighbors(int(u)) for u in nodes]
        np.testing.assert_array_equal(counts,
                                      [a.size for a in per_node])
        if flat.size:
            np.testing.assert_array_equal(flat, np.concatenate(per_node))

    @settings(max_examples=20, deadline=None)
    @given(store_with_extras())
    def test_extra_edge_tags(self, world):
        _, adjacency, _, _ = world
        view = adjacency.freeze()
        assert int(view.extra_edge_mask().sum()) == adjacency.n_extra_edges()
        assert view.n_edges == (adjacency.n_base_edges()
                                + adjacency.n_extra_edges())
        assert view.nbytes() > 0


class TestFrozenSearchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(store_with_extras(), st.integers(1, 6), st.integers(2, 24))
    def test_greedy_over_view_matches_dynamic(self, world, k, ef):
        data, adjacency, metric, seed = world
        dc = DistanceComputer(data, metric)
        view = adjacency.freeze()
        visited = VisitedTable(dc.size)
        queries = np.random.default_rng(seed + 2).standard_normal(
            (4, data.shape[1])).astype(np.float32)
        for q in queries:
            dc.reset_ndc()
            dyn = greedy_search(dc, adjacency.neighbors, [0], q, k=k, ef=ef,
                                visited=visited)
            ndc_dyn = dc.reset_ndc()
            frz = greedy_search(dc, view, [0], q, k=k, ef=ef, visited=visited)
            assert dc.reset_ndc() == ndc_dyn
            _assert_same_results(dyn, frz)

    @settings(max_examples=25, deadline=None)
    @given(store_with_extras(), st.integers(1, 5), st.integers(2, 16),
           st.integers(1, 7))
    def test_batch_engine_over_view_matches_dynamic(self, world, k, ef,
                                                    batch_size):
        data, adjacency, metric, seed = world
        n = data.shape[0]
        rng = np.random.default_rng(seed + 3)
        excluded = set(int(v) for v in
                       rng.choice(n, size=min(4, n - 1), replace=False))
        dc = DistanceComputer(data, metric)
        queries = rng.standard_normal((5, data.shape[1])).astype(np.float32)

        dyn_engine = BatchSearchEngine(dc, adjacency.neighbors,
                                       lambda q: [0],
                                       excluded_fn=lambda: excluded,
                                       batch_size=batch_size)
        dyn = dyn_engine.search_batch(queries, k, ef)
        ndc_dyn = dc.reset_ndc()

        view = adjacency.freeze()
        csr_engine = BatchSearchEngine(dc, adjacency.neighbors,
                                       lambda q: [0],
                                       excluded_fn=lambda: excluded,
                                       batch_size=batch_size,
                                       graph_fn=lambda: view)
        frz = csr_engine.search_batch(queries, k, ef)
        assert dc.reset_ndc() == ndc_dyn
        for a, b in zip(dyn, frz):
            _assert_same_results(a, b)

    @pytest.mark.parametrize("builder", ["hnsw", "nsg", "tau-mng",
                                         "roargraph", "vamana"])
    def test_all_graph_classes(self, tiny_ds, builder):
        """index.search over the frozen view ≡ the raw dynamic path."""
        if builder == "hnsw":
            index = HNSW(tiny_ds.base, tiny_ds.metric, M=8,
                         ef_construction=40, single_layer=True, seed=3)
        elif builder == "nsg":
            index = NSG(tiny_ds.base, tiny_ds.metric, R=12, L=24, knn_k=12)
        elif builder == "tau-mng":
            index = TauMNG(tiny_ds.base, tiny_ds.metric, R=12, L=24,
                           knn_k=12, tau=0.05)
        elif builder == "roargraph":
            index = RoarGraph(tiny_ds.base, tiny_ds.metric,
                              tiny_ds.train_queries, M=12,
                              n_query_neighbors=16, knn_k=8)
        else:
            index = Vamana(tiny_ds.base, tiny_ds.metric, R=12, L=24, seed=0)
        queries = tiny_ds.test_queries[:12]
        visited = VisitedTable(index.dc.size)
        refs = []
        index.dc.reset_ndc()
        for q in queries:  # raw dynamic path, bypassing the freeze policy
            qq = index.dc.prepare_query(q)
            refs.append(greedy_search(
                index.dc, index.adjacency.neighbors, index.entry_points(qq),
                qq, k=10, ef=40, visited=visited, prepared=True))
        ndc_ref = index.dc.reset_ndc()

        index.freeze()
        assert index.adjacency.csr_view() is not None
        frz = [index.search(q, k=10, ef=40) for q in queries]
        assert index.dc.reset_ndc() == ndc_ref
        for a, b in zip(refs, frz):
            _assert_same_results(a, b)

        bat = index.search_batch(queries, 10, 40, batch_size=5)
        assert index.dc.reset_ndc() == ndc_ref
        for a, b in zip(refs, bat):
            _assert_same_results(a, b)

    def test_post_fix_extras_and_tombstones(self, tiny_ds, fresh_hnsw, rng):
        """Fixed graph + tombstones: frozen path still matches the dynamic."""
        fixer = NGFixer(fresh_hnsw, FixConfig(k=5, max_extra_degree=6,
                                              preprocess="exact", rounds=(5,)))
        fixer.fit(tiny_ds.train_queries[:30])
        assert fixer.adjacency.n_extra_edges() > 0
        fixer.adjacency.tombstones.update(
            int(v) for v in rng.choice(tiny_ds.base.shape[0], size=10,
                                       replace=False))
        queries = tiny_ds.test_queries[:10]
        visited = VisitedTable(fixer.dc.size)
        refs = []
        fixer.dc.reset_ndc()
        for q in queries:
            qq = fixer.dc.prepare_query(q)
            refs.append(greedy_search(
                fixer.dc, fixer.adjacency.neighbors, [fixer.entry], qq,
                k=5, ef=25, visited=visited,
                excluded=fixer.adjacency.tombstones, prepared=True))
        ndc_ref = fixer.dc.reset_ndc()
        fixer.adjacency.freeze()
        frz = [fixer.search(q, k=5, ef=25) for q in queries]
        assert fixer.dc.reset_ndc() == ndc_ref
        for a, b in zip(refs, frz):
            _assert_same_results(a, b)
        for r in frz:  # tombstones really are excluded on the frozen path
            assert not set(r.ids.tolist()) & fixer.adjacency.tombstones


MUTATIONS = {
    "set_base": lambda a: a.set_base_neighbors(0, [1, 2]),
    "add_base": lambda a: a.add_base_edge(0, 5),
    "add_extra": lambda a: a.add_extra_edge(0, 6, 3.0),
    "remove_extra": lambda a: a.remove_extra_edge(1, 3),
    "evict": lambda a: a.evict_lowest_eh(1),
    "drop_fraction": lambda a: a.drop_extra_fraction(
        1.0, np.random.default_rng(0)),
    "remove_nodes": lambda a: a.remove_node_edges({3}),
    "grow": lambda a: a.grow(2),
}


class TestFreezeLifecycle:
    def _store(self):
        adjacency = AdjacencyStore(8)
        for u in range(8):
            adjacency.add_base_edge(u, (u + 1) % 8)
        adjacency.add_extra_edge(1, 3, 4.0)
        adjacency.add_extra_edge(1, 4, 2.0)
        return adjacency

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_every_mutation_dirties_the_view(self, name):
        adjacency = self._store()
        frozen = adjacency.freeze()
        assert adjacency.csr_view() is frozen
        version = adjacency.mutation_version
        MUTATIONS[name](adjacency)
        assert adjacency.csr_view() is None
        assert adjacency.mutation_version > version
        # The refrozen view reflects the mutation.
        for u in range(adjacency.n_nodes):
            np.testing.assert_array_equal(adjacency.freeze().neighbors(u),
                                          adjacency.neighbors(u))

    def test_refreeze_policy(self):
        adjacency = self._store()
        assert adjacency.traversal() is None  # first clean read: stay dynamic
        view = None
        for _ in range(FREEZE_AFTER_READS):
            view = adjacency.traversal()
        assert view is not None  # reads settled: frozen
        assert adjacency.traversal() is view  # cached thereafter
        adjacency.add_base_edge(0, 3)
        assert adjacency.csr_view() is None  # mutation dirtied it
        assert adjacency.traversal() is None  # and reset the read counter

    def test_mutation_stamps(self):
        adjacency = self._store()
        v0 = adjacency.mutation_version
        assert adjacency.last_touched([0, 1, 2]) <= v0
        adjacency.add_base_edge(2, 5)
        assert adjacency.last_touched([0, 1]) <= v0  # untouched nodes
        assert adjacency.last_touched([2]) > v0
        assert adjacency.last_touched([]) == 0

    def test_copy_is_independent(self):
        adjacency = self._store()
        adjacency.freeze()
        dup = adjacency.copy()
        assert dup.csr_view() is None  # copies refreeze on their own
        dup.add_base_edge(0, 4)
        assert adjacency.csr_view() is not None  # original stays frozen

    def test_ro_accessors_view_internal_state(self):
        adjacency = self._store()
        assert adjacency.base_neighbors_ro(0) is not adjacency.base_neighbors(0)
        assert adjacency.base_neighbors_ro(0) == adjacency.base_neighbors(0)
        assert adjacency.extra_neighbors_ro(1) == adjacency.extra_neighbors(1)
        assert adjacency.base_degree(0) == len(adjacency.base_neighbors_ro(0))

    def test_single_pass_eviction_semantics(self):
        adjacency = AdjacencyStore(8)
        adjacency.add_extra_edge(0, 4, 2.0)
        adjacency.add_extra_edge(0, 3, 2.0)  # tie: smaller target id first
        adjacency.add_extra_edge(0, 5, float("inf"))  # never evicted
        adjacency.add_extra_edge(0, 6, 1.0)
        assert adjacency.evict_lowest_eh(0) == (6, 1.0)
        assert adjacency.evict_lowest_eh(0) == (3, 2.0)
        assert adjacency.evict_lowest_eh(0) == (4, 2.0)
        assert adjacency.evict_lowest_eh(0) is None  # only inf left
        assert 5 in adjacency.extra_neighbors_ro(0)


class TestVisitedMarkMany:
    def test_mark_many_equals_mark_loop(self):
        a, b = VisitedTable(50), VisitedTable(50)
        a.next_epoch()
        b.next_epoch()
        ids = np.array([3, 7, 7, 21, 49])
        a.mark_many(ids)
        for i in ids:
            b.mark(int(i))
        np.testing.assert_array_equal(a._stamps, b._stamps)
        assert all(a.is_visited(int(i)) for i in ids)
        a.next_epoch()
        assert not a.is_visited(3)


class TestParallelEqualsSerial:
    N_WORKERS = 3

    def test_ground_truth_bitwise(self, tiny_ds):
        serial = compute_ground_truth(tiny_ds.base, tiny_ds.test_queries, 10,
                                      tiny_ds.metric, batch_size=16)
        forked = compute_ground_truth(tiny_ds.base, tiny_ds.test_queries, 10,
                                      tiny_ds.metric, batch_size=16,
                                      n_workers=self.N_WORKERS)
        np.testing.assert_array_equal(serial.ids, forked.ids)
        np.testing.assert_array_equal(serial.distances, forked.distances)

    @pytest.mark.parametrize("cls", ["nsg", "tau-mng", "roargraph"])
    def test_builds_identical(self, tiny_ds, cls):
        def build(n_workers):
            if cls == "nsg":
                return NSG(tiny_ds.base, tiny_ds.metric, R=10, L=20,
                           knn_k=10, n_workers=n_workers)
            if cls == "tau-mng":
                return TauMNG(tiny_ds.base, tiny_ds.metric, R=10, L=20,
                              knn_k=10, tau=0.05, n_workers=n_workers)
            return RoarGraph(tiny_ds.base, tiny_ds.metric,
                             tiny_ds.train_queries[:40], M=10,
                             n_query_neighbors=12, knn_k=8,
                             n_workers=n_workers)
        serial, forked = build(1), build(self.N_WORKERS)
        assert serial.dc.ndc == forked.dc.ndc
        for u in range(serial.size):
            assert (serial.adjacency.base_neighbors_ro(u)
                    == forked.adjacency.base_neighbors_ro(u))

    @pytest.mark.parametrize("preprocess", ["exact", "approx"])
    def test_fit_identical(self, tiny_ds, preprocess):
        def fit(n_workers):
            base = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                        single_layer=True, seed=3)
            fixer = NGFixer(base, FixConfig(
                k=5, max_extra_degree=6, preprocess=preprocess, rounds=(5,),
                n_workers=n_workers))
            fixer.fit(tiny_ds.train_queries[:40])
            return fixer
        serial, forked = fit(1), fit(self.N_WORKERS)
        assert serial.dc.ndc == forked.dc.ndc
        assert serial.preprocess_ndc == forked.preprocess_ndc
        for u in range(tiny_ds.base.shape[0]):
            assert (serial.adjacency.base_neighbors_ro(u)
                    == forked.adjacency.base_neighbors_ro(u))
            assert (serial.adjacency.extra_neighbors_ro(u)
                    == forked.adjacency.extra_neighbors_ro(u))

    def test_evaluate_index_identical(self, tiny_ds, tiny_gt, shared_hnsw):
        serial = evaluate_index(shared_hnsw, tiny_ds.test_queries, tiny_gt,
                                k=10, ef=30)
        forked = evaluate_index(shared_hnsw, tiny_ds.test_queries, tiny_gt,
                                k=10, ef=30, n_workers=self.N_WORKERS)
        assert serial.recall == forked.recall
        assert serial.rderr == forked.rderr
        assert serial.ndc_per_query == forked.ndc_per_query


class TestParallelMapUtility:
    def test_order_preserved(self):
        out = parallel_map(lambda x: x * x, range(17), n_workers=3)
        assert out == [x * x for x in range(17)]

    def test_serial_fallback(self):
        assert parallel_map(lambda x: x + 1, [1, 2], n_workers=1) == [2, 3]
        assert parallel_map(lambda x: x + 1, [], n_workers=4) == []

    def test_nested_calls_degrade_to_serial(self):
        def outer(x):
            return parallel_map(lambda y: y + x, [10, 20], n_workers=4)
        assert parallel_map(outer, [1, 2], n_workers=2) == [[11, 21], [12, 22]]

    def test_chunk_bounds_cover_range(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert chunk_bounds(0, 4) == []
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)
