"""NSW baseline index and the explain_query diagnostic."""

import numpy as np
import pytest

from repro import NSW, FixConfig, NGFixer, explain_query
from repro.evalx import compute_ground_truth, recall_at_k


class TestNSW:
    @pytest.fixture(scope="class")
    def nsw(self, tiny_ds):
        return NSW(tiny_ds.base, tiny_ds.metric, f=8, ef_construction=30,
                   seed=0)

    def test_bidirectional_links(self, nsw):
        for u in range(nsw.size):
            for v in nsw.adjacency.base_neighbors(u):
                assert u in nsw.adjacency.base_neighbors(v)

    def test_recall_on_base_points(self, tiny_ds, nsw):
        queries = tiny_ds.base[:25]
        gt = compute_ground_truth(tiny_ds.base, queries, 5, tiny_ds.metric)
        found = np.vstack([nsw.search(q, k=5, ef=40).ids for q in queries])
        assert recall_at_k(found, gt.ids) > 0.9

    def test_ood_recall(self, tiny_ds, tiny_gt, nsw):
        found = np.vstack([nsw.search(q, k=10, ef=80).ids[:10]
                           for q in tiny_ds.test_queries])
        assert recall_at_k(found, tiny_gt.top(10).ids) > 0.7

    def test_denser_than_hnsw(self, tiny_ds, nsw, shared_hnsw):
        """No pruning -> NSW degree exceeds f (reverse links pile up)."""
        assert nsw.adjacency.average_out_degree() >= nsw.f

    def test_validation(self, tiny_ds):
        with pytest.raises(ValueError):
            NSW(tiny_ds.base, tiny_ds.metric, f=0)


class TestExplainQuery:
    def test_fields_present(self, shared_hnsw, tiny_ds):
        report = explain_query(shared_hnsw, tiny_ds.test_queries[0], k=8)
        assert report["verdict"] in ("easy", "needs-ngfix", "needs-rfix")
        assert report["recommended_ef"] >= 8
        assert 0 <= report["qng"]["avg_reachable_fraction"] <= 1
        assert report["phase1"]["entry"] >= 0

    def test_easy_query_on_fixed_graph(self, tiny_ds, fresh_hnsw):
        """After fixing a query's own neighborhood, explain says 'easy'."""
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact",
                                              max_extra_degree=24))
        fixer.fit(tiny_ds.train_queries)
        reports = [explain_query(fixer, q, k=8)
                   for q in tiny_ds.train_queries[:20]]
        assert sum(r["verdict"] == "easy" for r in reports) >= 18

    def test_hard_query_detected_on_unfixed_graph(self, shared_hnsw, tiny_ds):
        reports = [explain_query(shared_hnsw, q, k=8)
                   for q in tiny_ds.test_queries]
        assert any(r["verdict"] != "easy" for r in reports)

    def test_recommended_ef_sufficient_when_easy(self, shared_hnsw, tiny_ds,
                                                 tiny_gt):
        """Corollary 1 in action: for an 'easy' verdict the recommended ef
        recovers the full top-k."""
        for i, q in enumerate(tiny_ds.test_queries):
            report = explain_query(shared_hnsw, q, k=8)
            if report["verdict"] != "easy":
                continue
            result = shared_hnsw.search(q, k=8, ef=report["recommended_ef"])
            truth = set(tiny_gt.ids[i][:8].tolist())
            recall = len(set(result.ids.tolist()) & truth) / 8
            assert recall >= 0.75

    def test_ndc_not_charged_for_diagnosis_gt(self, shared_hnsw, tiny_ds):
        shared_hnsw.dc.reset_ndc()
        explain_query(shared_hnsw, tiny_ds.test_queries[0], k=8)
        # only the phase-1 probe search counts, not the brute-force pass
        assert shared_hnsw.dc.ndc < shared_hnsw.dc.size

    def test_invalid_k(self, shared_hnsw, tiny_ds):
        with pytest.raises(ValueError):
            explain_query(shared_hnsw, tiny_ds.test_queries[0], k=0)


class TestFilteredSearch:
    def test_where_filters_payloads(self, tiny_ds):
        from repro.store import VectorStore
        store = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=8,
                            ef_construction=40)
        store.add(tiny_ds.base,
                  payloads=[{"parity": i % 2} for i in range(tiny_ds.n)])
        store.build()
        hits = store.search(tiny_ds.test_queries[0], k=5,
                            where=lambda p: p["parity"] == 0)
        assert len(hits) == 5
        assert all(h[2]["parity"] == 0 for h in hits)
        assert all(h[0] % 2 == 0 for h in hits)

    def test_overly_selective_filter_returns_fewer(self, tiny_ds):
        from repro.store import VectorStore
        store = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=8,
                            ef_construction=40)
        store.add(tiny_ds.base,
                  payloads=[{"keep": i == 7} for i in range(tiny_ds.n)])
        store.build()
        hits = store.search(tiny_ds.test_queries[0], k=5,
                            where=lambda p: p["keep"])
        assert len(hits) <= 1
