"""fvecs/ivecs/bvecs readers and writers."""

import numpy as np
import pytest

from repro.datasets import read_vecs, write_vecs


class TestRoundtrip:
    def test_fvecs(self, tmp_path):
        data = np.random.default_rng(0).standard_normal((20, 7)).astype(np.float32)
        path = write_vecs(tmp_path / "x.fvecs", data)
        assert np.array_equal(read_vecs(path), data)

    def test_ivecs(self, tmp_path):
        data = np.random.default_rng(1).integers(-100, 100, (10, 4)).astype(np.int32)
        path = write_vecs(tmp_path / "x.ivecs", data)
        assert np.array_equal(read_vecs(path), data)

    def test_bvecs(self, tmp_path):
        data = np.random.default_rng(2).integers(0, 255, (15, 8)).astype(np.uint8)
        path = write_vecs(tmp_path / "x.bvecs", data)
        assert np.array_equal(read_vecs(path), data)

    def test_max_vectors_truncates(self, tmp_path):
        data = np.arange(40, dtype=np.float32).reshape(10, 4)
        path = write_vecs(tmp_path / "x.fvecs", data)
        out = read_vecs(path, max_vectors=3)
        assert np.array_equal(out, data[:3])

    def test_single_vector(self, tmp_path):
        data = np.ones((1, 5), dtype=np.float32)
        assert read_vecs(write_vecs(tmp_path / "x.fvecs", data)).shape == (1, 5)


class TestValidation:
    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            write_vecs(tmp_path / "x.npy", np.ones((2, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="suffix"):
            read_vecs(tmp_path / "x.txt")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            read_vecs(path)

    def test_truncated_file(self, tmp_path):
        data = np.ones((3, 4), dtype=np.float32)
        path = write_vecs(tmp_path / "x.fvecs", data)
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(ValueError, match="record size"):
            read_vecs(path)

    def test_inconsistent_headers(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        # two records claiming different dimensions but same byte length
        rec1 = np.int32(2).tobytes() + np.ones(2, dtype=np.float32).tobytes()
        rec2 = np.int32(1).tobytes() + np.ones(2, dtype=np.float32).tobytes()
        path.write_bytes(rec1 + rec2)
        with pytest.raises(ValueError, match="inconsistent"):
            read_vecs(path)

    def test_write_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_vecs(tmp_path / "x.fvecs", np.zeros((0, 3), dtype=np.float32))


class TestPipelineUse:
    def test_index_from_fvecs(self, tmp_path, tiny_ds):
        """End to end: write base to fvecs, reload, build, search."""
        from repro import HNSW
        path = write_vecs(tmp_path / "base.fvecs", tiny_ds.base)
        base = read_vecs(path)
        index = HNSW(base, tiny_ds.metric, M=8, ef_construction=40,
                     single_layer=True, seed=0)
        result = index.search(base[0], k=1, ef=40)
        # normalized cluster data can contain near-coincident points, so
        # assert on distance rather than identity
        assert result.distances[0] <= 1e-6
