"""Failure injection and degenerate-input robustness across the stack."""

import numpy as np
import pytest

from repro import (
    HNSW,
    BruteForceIndex,
    FixConfig,
    NGFixer,
    compute_ground_truth,
)
from repro.core.escape_hardness import escape_hardness
from repro.core.ngfix import ngfix_query
from repro.distances import DistanceComputer, Metric
from repro.graphs.adjacency import AdjacencyStore
from repro.graphs.search import greedy_search


class TestDuplicateVectors:
    """Corpora with exact duplicates must not break builds or fixing."""

    @pytest.fixture(scope="class")
    def dup_data(self):
        rng = np.random.default_rng(0)
        unique = rng.standard_normal((80, 8)).astype(np.float32)
        return np.vstack([unique, unique[:40]])  # 40 exact duplicates

    def test_hnsw_builds_and_searches(self, dup_data):
        index = HNSW(dup_data, Metric.L2, M=6, ef_construction=30,
                     single_layer=True, seed=0)
        result = index.search(dup_data[0], k=5, ef=20)
        assert len(result.ids) == 5
        assert result.distances[0] == pytest.approx(0.0, abs=1e-6)

    def test_ngfix_handles_duplicate_neighbors(self, dup_data):
        index = HNSW(dup_data, Metric.L2, M=6, ef_construction=30,
                     single_layer=True, seed=0)
        fixer = NGFixer(index, FixConfig(k=6, preprocess="exact"))
        fixer.fit(dup_data[:10] + 0.01)  # queries on top of duplicates
        assert fixer.adjacency.n_extra_edges() >= 0  # no crash

    def test_ground_truth_ties_deterministic(self, dup_data):
        gt1 = compute_ground_truth(dup_data, dup_data[:3], 5, Metric.L2)
        gt2 = compute_ground_truth(dup_data, dup_data[:3], 5, Metric.L2)
        assert np.array_equal(gt1.ids, gt2.ids)


class TestSingularGeometry:
    def test_all_identical_points(self):
        data = np.ones((30, 4), dtype=np.float32)
        index = HNSW(data, Metric.L2, M=4, ef_construction=10,
                     single_layer=True, seed=0)
        result = index.search(np.ones(4, dtype=np.float32), k=3, ef=10)
        assert len(result.ids) == 3

    def test_zero_vectors_cosine(self):
        data = np.zeros((10, 4), dtype=np.float32)
        data[0] = 1.0
        dc = DistanceComputer(data, Metric.COSINE)
        q = dc.prepare_query(np.zeros(4, dtype=np.float32))
        assert np.isfinite(dc.all_to_query(q)).all()

    def test_single_dimension(self):
        data = np.arange(50, dtype=np.float32)[:, None]
        index = HNSW(data, Metric.L2, M=4, ef_construction=10,
                     single_layer=True, seed=0)
        result = index.search(np.array([25.4], dtype=np.float32), k=1, ef=10)
        assert result.ids[0] == 25

    def test_two_point_corpus(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
        index = BruteForceIndex(data, Metric.L2)
        assert index.search(np.zeros(2, dtype=np.float32), k=2).ids.tolist() == [0, 1]


class TestHostileGraphStructure:
    def test_search_on_self_loop_free_graph(self):
        """Adjacency refuses self loops, so a malicious set_base_neighbors
        with self references cannot create infinite expansion."""
        adjacency = AdjacencyStore(4)
        adjacency.set_base_neighbors(0, [0, 0, 1])
        assert adjacency.base_neighbors(0) == [1]

    def test_search_terminates_on_cycle(self):
        data = np.random.default_rng(0).standard_normal((6, 3)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adjacency = AdjacencyStore(6)
        for u in range(6):
            adjacency.add_base_edge(u, (u + 1) % 6)
        result = greedy_search(dc, adjacency.neighbors, [0],
                               data[3], k=2, ef=4)
        assert len(result.ids) == 2

    def test_ngfix_on_totally_disconnected_graph(self):
        data = np.random.default_rng(1).standard_normal((30, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adjacency = AdjacencyStore(30)  # zero edges anywhere
        gt = compute_ground_truth(data, data[:1], 15, Metric.L2)
        eh = escape_hardness(adjacency.neighbors, gt.ids[0], 5)
        assert eh.n_unreachable_pairs() == 20
        outcome = ngfix_query(adjacency, dc, eh, max_extra_degree=10)
        assert outcome.fully_reachable

    def test_all_neighbors_tombstoned_still_returns(self):
        data = np.random.default_rng(2).standard_normal((5, 3)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adjacency = AdjacencyStore(5)
        for v in range(1, 5):
            adjacency.add_base_edge(0, v)
        result = greedy_search(dc, adjacency.neighbors, [0], data[2], k=2,
                               ef=4, excluded={1, 2, 3, 4})
        assert result.ids.tolist() == [0]


class TestFixerEdgeCases:
    def test_fit_single_query(self, tiny_ds, fresh_hnsw):
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries[:1])
        assert len(fixer.records) == 1

    def test_fit_twice_idempotent_reachability(self, tiny_ds, fresh_hnsw):
        """A second fit over the same history adds (almost) nothing: the
        defects are already fixed."""
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries[:30])
        first = fixer.adjacency.n_extra_edges()
        fixer.fit(tiny_ds.train_queries[:30])
        second = fixer.adjacency.n_extra_edges()
        assert second <= first + 0.1 * first + 2

    def test_k_larger_than_history_gt(self, tiny_ds, fresh_hnsw):
        """K_max is capped by corpus size errors cleanly."""
        config = FixConfig(k=200, hard_ratio=3.0, preprocess="exact")
        fixer = NGFixer(fresh_hnsw, config)
        with pytest.raises(ValueError):
            fixer.fit(tiny_ds.train_queries[:2])

    def test_queries_equal_to_base_points(self, tiny_ds, fresh_hnsw):
        """ID queries that coincide with base points fix trivially."""
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.base[:10])
        assert all(r.hardness >= 0 for r in fixer.records)
