"""Failure injection and degenerate-input robustness across the stack."""

import numpy as np
import pytest

from repro import (
    HNSW,
    BruteForceIndex,
    FixConfig,
    NGFixer,
    compute_ground_truth,
)
from repro.core.escape_hardness import escape_hardness
from repro.core.ngfix import ngfix_query
from repro.distances import DistanceComputer, Metric
from repro.graphs.adjacency import AdjacencyStore
from repro.graphs.search import greedy_search


class TestDuplicateVectors:
    """Corpora with exact duplicates must not break builds or fixing."""

    @pytest.fixture(scope="class")
    def dup_data(self):
        rng = np.random.default_rng(0)
        unique = rng.standard_normal((80, 8)).astype(np.float32)
        return np.vstack([unique, unique[:40]])  # 40 exact duplicates

    def test_hnsw_builds_and_searches(self, dup_data):
        index = HNSW(dup_data, Metric.L2, M=6, ef_construction=30,
                     single_layer=True, seed=0)
        result = index.search(dup_data[0], k=5, ef=20)
        assert len(result.ids) == 5
        assert result.distances[0] == pytest.approx(0.0, abs=1e-6)

    def test_ngfix_handles_duplicate_neighbors(self, dup_data):
        index = HNSW(dup_data, Metric.L2, M=6, ef_construction=30,
                     single_layer=True, seed=0)
        fixer = NGFixer(index, FixConfig(k=6, preprocess="exact"))
        fixer.fit(dup_data[:10] + 0.01)  # queries on top of duplicates
        assert fixer.adjacency.n_extra_edges() >= 0  # no crash

    def test_ground_truth_ties_deterministic(self, dup_data):
        gt1 = compute_ground_truth(dup_data, dup_data[:3], 5, Metric.L2)
        gt2 = compute_ground_truth(dup_data, dup_data[:3], 5, Metric.L2)
        assert np.array_equal(gt1.ids, gt2.ids)


class TestSingularGeometry:
    def test_all_identical_points(self):
        data = np.ones((30, 4), dtype=np.float32)
        index = HNSW(data, Metric.L2, M=4, ef_construction=10,
                     single_layer=True, seed=0)
        result = index.search(np.ones(4, dtype=np.float32), k=3, ef=10)
        assert len(result.ids) == 3

    def test_zero_vectors_cosine(self):
        data = np.zeros((10, 4), dtype=np.float32)
        data[0] = 1.0
        dc = DistanceComputer(data, Metric.COSINE)
        q = dc.prepare_query(np.zeros(4, dtype=np.float32))
        assert np.isfinite(dc.all_to_query(q)).all()

    def test_single_dimension(self):
        data = np.arange(50, dtype=np.float32)[:, None]
        index = HNSW(data, Metric.L2, M=4, ef_construction=10,
                     single_layer=True, seed=0)
        result = index.search(np.array([25.4], dtype=np.float32), k=1, ef=10)
        assert result.ids[0] == 25

    def test_two_point_corpus(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
        index = BruteForceIndex(data, Metric.L2)
        assert index.search(np.zeros(2, dtype=np.float32), k=2).ids.tolist() == [0, 1]


class TestHostileGraphStructure:
    def test_search_on_self_loop_free_graph(self):
        """Adjacency refuses self loops, so a malicious set_base_neighbors
        with self references cannot create infinite expansion."""
        adjacency = AdjacencyStore(4)
        adjacency.set_base_neighbors(0, [0, 0, 1])
        assert adjacency.base_neighbors(0) == [1]

    def test_search_terminates_on_cycle(self):
        data = np.random.default_rng(0).standard_normal((6, 3)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adjacency = AdjacencyStore(6)
        for u in range(6):
            adjacency.add_base_edge(u, (u + 1) % 6)
        result = greedy_search(dc, adjacency.neighbors, [0],
                               data[3], k=2, ef=4)
        assert len(result.ids) == 2

    def test_ngfix_on_totally_disconnected_graph(self):
        data = np.random.default_rng(1).standard_normal((30, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adjacency = AdjacencyStore(30)  # zero edges anywhere
        gt = compute_ground_truth(data, data[:1], 15, Metric.L2)
        eh = escape_hardness(adjacency.neighbors, gt.ids[0], 5)
        assert eh.n_unreachable_pairs() == 20
        outcome = ngfix_query(adjacency, dc, eh, max_extra_degree=10)
        assert outcome.fully_reachable

    def test_all_neighbors_tombstoned_still_returns(self):
        data = np.random.default_rng(2).standard_normal((5, 3)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adjacency = AdjacencyStore(5)
        for v in range(1, 5):
            adjacency.add_base_edge(0, v)
        result = greedy_search(dc, adjacency.neighbors, [0], data[2], k=2,
                               ef=4, excluded={1, 2, 3, 4})
        assert result.ids.tolist() == [0]


class TestFixerEdgeCases:
    def test_fit_single_query(self, tiny_ds, fresh_hnsw):
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries[:1])
        assert len(fixer.records) == 1

    def test_fit_twice_idempotent_reachability(self, tiny_ds, fresh_hnsw):
        """A second fit over the same history adds (almost) nothing: the
        defects are already fixed."""
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries[:30])
        first = fixer.adjacency.n_extra_edges()
        fixer.fit(tiny_ds.train_queries[:30])
        second = fixer.adjacency.n_extra_edges()
        assert second <= first + 0.1 * first + 2

    def test_k_larger_than_history_gt(self, tiny_ds, fresh_hnsw):
        """K_max is capped by corpus size errors cleanly."""
        config = FixConfig(k=200, hard_ratio=3.0, preprocess="exact")
        fixer = NGFixer(fresh_hnsw, config)
        with pytest.raises(ValueError):
            fixer.fit(tiny_ds.train_queries[:2])

    def test_queries_equal_to_base_points(self, tiny_ds, fresh_hnsw):
        """ID queries that coincide with base points fix trivially."""
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.base[:10])
        assert all(r.hardness >= 0 for r in fixer.records)


# -- chaos: crash-safe durability under churn ---------------------------------
#
# End-to-end proof of the durability contract: a store killed mid-churn
# recovers with every *acknowledged* insert/delete present, tombstoned ids
# never surface in results, and recovered recall matches an uninterrupted
# control run within noise.  (Primitive-level durability tests live in
# test_durability.py.)

import subprocess
import sys

from repro import VectorStore
from repro.durability import recover
from repro.faults import FAULTS, KILL_EXIT_CODE, FaultInjected, FaultPlan

_DIM = 8


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


def _base_vectors(seed=0, n=120):
    return np.random.default_rng(seed).standard_normal(
        (n, _DIM)).astype(np.float32)


def _durable_store(wal_dir, **kwargs):
    store = VectorStore(dim=_DIM, seed=0, scheduler_mode="inline",
                        wal_dir=wal_dir, sync_every=4, **kwargs)
    store.add(_base_vectors())
    store.build()
    return store


def _op_stream(seed, rounds):
    """The deterministic churn schedule both chaos and control replay.

    Round r inserts 3 vectors; odd rounds delete one earlier id (chosen by
    round number, so the schedule is a pure function of the seed).
    """
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((3, _DIM)).astype(np.float32)
            for _ in range(rounds)]


def _apply_rounds(store, batches, start, stop, acked):
    for r in range(start, stop):
        ids = store.add(batches[r],
                        payloads=[{"round": r, "j": j} for j in range(3)])
        acked["inserted"].extend(ids)
        if r % 2 == 1:
            victim = 120 + 3 * (r // 2)  # an id inserted in an earlier round
            if victim not in acked["deleted"]:
                store.delete([victim])
                acked["deleted"].append(victim)


class TestCrashRecoveryMidChurn:
    def test_acked_ops_survive_crash(self, tmp_path):
        """Simulated crash: the store object is abandoned un-closed."""
        wal_dir = tmp_path / "wal"
        store = _durable_store(wal_dir)
        store.checkpoint()
        acked = {"inserted": [], "deleted": []}
        _apply_rounds(store, _op_stream(1, 12), 0, 12, acked)
        del store  # crash: no close(), no final fsync

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        assert recovered._fixer.dc.size == 120 + len(acked["inserted"])
        tombstones = recovered._fixer.index.adjacency.tombstones
        for i in acked["deleted"]:
            assert i in tombstones
        live = [i for i in acked["inserted"] if i not in acked["deleted"]]
        for i in live:
            assert recovered.get_payload(i) is not None
        # Tombstoned ids never surface in results.
        for q in _base_vectors(seed=2, n=10):
            hits = {i for i, _, _ in recovered.search(q, k=10)}
            assert not hits & set(acked["deleted"])
        # Acked live vectors are findable by their own vector.
        found = sum(
            i in {j for j, _, _ in recovered.search(
                recovered._fixer.dc.data[i], k=5)}
            for i in live)
        assert found >= 0.9 * len(live)
        recovered.close()

    def test_recovered_recall_matches_control(self, tmp_path):
        """Crash + recover + finish the churn == never crashing, recall-wise."""
        batches, crash_at, rounds = _op_stream(3, 12), 6, 12

        control = _durable_store(tmp_path / "control-wal")
        acked_c = {"inserted": [], "deleted": []}
        _apply_rounds(control, batches, 0, rounds, acked_c)

        chaos = _durable_store(tmp_path / "chaos-wal")
        acked_x = {"inserted": [], "deleted": []}
        _apply_rounds(chaos, batches, 0, crash_at, acked_x)
        del chaos  # crash between rounds
        recovered, report = recover(tmp_path / "chaos-wal")
        assert report.consistent, report.errors
        _apply_rounds(recovered, batches, crash_at, rounds, acked_x)

        # Identical op schedules -> identical final corpora.
        assert acked_c == acked_x
        assert recovered._fixer.dc.size == control._fixer.dc.size
        np.testing.assert_array_equal(
            recovered._fixer.dc.data, control._fixer.dc.data)

        # Recall within noise of the uninterrupted run (graph structure may
        # differ: replayed inserts rebuild edges through ReplayableIndex).
        queries = _base_vectors(seed=4, n=20)
        deleted = set(acked_c["deleted"])

        def recall(store):
            data = store._fixer.dc.data
            live = np.array([i for i in range(data.shape[0])
                             if i not in deleted])
            hits = 0
            for q in queries:
                gt = live[np.argsort(
                    np.linalg.norm(data[live] - q, axis=1))[:10]]
                got = {i for i, _, _ in store.search(q, k=10, ef=40)}
                hits += len(got & set(gt.tolist()))
            return hits / (10 * len(queries))

        r_control, r_chaos = recall(control), recall(recovered)
        assert r_chaos >= r_control - 0.05, (r_chaos, r_control)
        control.close()
        recovered.close()


class TestFaultInjectionMidFlight:
    def test_merge_fault_leaves_store_serving(self, tmp_path):
        store = _durable_store(tmp_path / "wal")
        plan = FaultPlan().on("scheduler.pre_merge", "raise")
        with FAULTS.injected(plan):
            with pytest.raises(FaultInjected):
                store.scheduler.merge_now()
        # The failed merge neither wedged serving nor corrupted the log.
        assert len(store.search(_base_vectors(seed=1, n=1)[0], k=5)) == 5
        epoch = store.scheduler.merge_now()  # disarmed: merge succeeds
        assert epoch.epoch_id >= 1
        store.close()
        recovered, report = recover(tmp_path / "wal")
        assert report.consistent, report.errors
        recovered.close()

    def test_checkpoint_crash_recovers_from_previous(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = _durable_store(wal_dir)
        first = store.checkpoint()
        acked = {"inserted": [], "deleted": []}
        _apply_rounds(store, _op_stream(5, 4), 0, 4, acked)
        plan = FaultPlan().on("snapshot.pre_manifest", "raise")
        with FAULTS.injected(plan):
            with pytest.raises(FaultInjected):
                store.checkpoint()
        del store  # crash right after the failed checkpoint

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        assert report.snapshot_id == first.snapshot_id  # fell back cleanly
        assert recovered._fixer.dc.size == 120 + len(acked["inserted"])
        for i in acked["deleted"]:
            assert i in recovered._fixer.index.adjacency.tombstones
        recovered.close()


_KILL_CHILD = """
import sys
import numpy as np
from repro.store import VectorStore
from repro.faults import FAULTS, FaultPlan

wal_dir = sys.argv[1]
rng = np.random.default_rng(0)
store = VectorStore(dim=8, seed=0, scheduler_mode="inline",
                    wal_dir=wal_dir, sync_every=2)
store.add(rng.standard_normal((100, 8)).astype(np.float32))
store.build()
store.checkpoint()
# The 8th fsync kills the process dead (os._exit: no cleanup, no atexit).
FAULTS.arm(FaultPlan().on("wal.pre_fsync", "kill", nth=8))
for r in range(1000):
    ids = store.add(rng.standard_normal((2, 8)).astype(np.float32))
    print("ACK insert", *ids, flush=True)
    if r % 3 == 2:
        store.delete([ids[0]])
        print("ACK delete", ids[0], flush=True)
print("SURVIVED", flush=True)  # must be unreachable
"""


_REPAIR_KILL_CHILD = """
import sys
import numpy as np
from repro.store import VectorStore
from repro.faults import FAULTS, FaultPlan

wal_dir = sys.argv[1]
rng = np.random.default_rng(0)
store = VectorStore(dim=8, seed=0, scheduler_mode="inline",
                    wal_dir=wal_dir, sync_every=1)
store.add(rng.standard_normal((100, 8)).astype(np.float32))
store.build()
store.checkpoint()
queries = rng.standard_normal((8, 8)).astype(np.float32)
for q in queries[:4]:
    store.observe(q)   # committed + journaled: replay re-runs these
print("ACK observed 4", flush=True)
store.delete([3, 4, 5])
print("ACK delete 3 4 5", flush=True)
# The next repair dies AFTER being popped but BEFORE committing (and
# therefore before its journal append: repairs are logged post-commit).
FAULTS.arm(FaultPlan().on("scheduler.pre_repair", "kill", nth=1))
store.observe(queries[4])
print("SURVIVED", flush=True)  # must be unreachable
"""


class TestProcessKill:
    def test_kill_mid_repair_is_replay_invisible(self, tmp_path):
        """A crash inside the repair drain loses only the in-flight repair.

        The journal-after-commit ordering means the killed repair never
        reached the WAL: recovery replays the four acknowledged repairs
        and the delete, and the tombstoned ids never resurface.
        """
        from repro.durability.wal import read_wal

        wal_dir = tmp_path / "wal"
        proc = subprocess.run(
            [sys.executable, "-c", _REPAIR_KILL_CHILD, str(wal_dir)],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        assert "SURVIVED" not in proc.stdout
        assert "ACK delete 3 4 5" in proc.stdout

        records = list(read_wal(wal_dir))
        ops = [r.op for r in records]
        # Exactly the four acked repairs made the journal — the one the
        # kill interrupted is absent, so replay simply skips it.
        assert ops.count("observe") == 4
        assert ops.count("delete") == 1

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        tombstones = recovered._fixer.index.adjacency.tombstones
        assert {3, 4, 5} <= set(tombstones)
        for q in np.random.default_rng(7).standard_normal(
                (10, _DIM)).astype(np.float32):
            hits = {i for i, _, _ in recovered.search(q, k=10)}
            assert not hits & {3, 4, 5}
        # The recovered store keeps serving and repairing normally.
        assert recovered.observe(
            np.zeros(_DIM, dtype=np.float32)) is True
        recovered.close()

    def test_killed_process_recovers_all_acked_ops(self, tmp_path):
        """Real process death (os._exit mid-churn), not just an exception."""
        wal_dir = tmp_path / "wal"
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_CHILD, str(wal_dir)],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        assert "SURVIVED" not in proc.stdout

        inserted, deleted = [], []
        for line in proc.stdout.splitlines():
            parts = line.split()
            if parts[:2] == ["ACK", "insert"]:
                inserted.extend(int(p) for p in parts[2:])
            elif parts[:2] == ["ACK", "delete"]:
                deleted.append(int(parts[2]))
        assert inserted  # the child made progress before dying

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        # The contract is one-sided: every ACKed op must be present; the
        # in-flight batch the kill interrupted (journaled but never ACKed)
        # MAY also survive.  sync_every=2 bounds that window to one batch.
        assert (100 + len(inserted)
                <= recovered._fixer.dc.size
                <= 100 + len(inserted) + 2)
        tombstones = recovered._fixer.index.adjacency.tombstones
        for i in deleted:
            assert i in tombstones
        for q in np.random.default_rng(9).standard_normal(
                (10, 8)).astype(np.float32):
            hits = {i for i, _, _ in recovered.search(q, k=10)}
            assert not hits & set(deleted)
        recovered.close()
