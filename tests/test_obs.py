"""Observability layer: registry primitives, traces, exposition, overhead.

The contract under test:

- **Disabled is (almost) free** — with the registry off, every instrument
  call is one attribute load and allocates nothing (tracemalloc-verified).
- **Exposition is dual and valid** — Prometheus text follows the
  ``# HELP``/``# TYPE`` + cumulative-``le`` rules; the JSON snapshot always
  serializes.
- **Handles survive reset()** — module-level instruments cached at import
  time keep reporting after test/benchmark arms zero the registry.
"""

import json
import threading
import tracemalloc

import numpy as np
import pytest

from repro import obs
from repro.obs import MetricsRegistry, QueryTrace, TraceLog


@pytest.fixture
def reg():
    return MetricsRegistry(namespace="t", enabled=True)


@pytest.fixture
def global_obs():
    """Enable the process-wide registry for a test, then restore it."""
    obs.reset()
    obs.enable()
    yield obs.OBS
    obs.disable()
    obs.reset()


class TestCounter:
    def test_inc_and_default_step(self, reg):
        c = reg.counter("reqs", "requests")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_disabled_is_noop(self):
        r = MetricsRegistry(enabled=False)
        c = r.counter("reqs")
        c.inc(100)
        assert c.value == 0

    def test_toggle_mid_stream(self, reg):
        c = reg.counter("reqs")
        c.inc()
        reg.disable()
        c.inc()
        reg.enable()
        c.inc()
        assert c.value == 2


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(7)
        g.inc(2)
        g.dec()
        assert g.read() == 8

    def test_callback_evaluated_on_read(self, reg):
        state = {"v": 1}
        g = reg.gauge_fn("live", lambda: state["v"])
        assert g.read() == 1.0
        state["v"] = 9
        assert g.read() == 9.0

    def test_callback_replacement_newest_wins(self, reg):
        reg.gauge_fn("live", lambda: 1)
        g = reg.gauge_fn("live", lambda: 2)
        assert g.read() == 2.0
        assert len(reg.snapshot()) == 1

    def test_dead_callback_does_not_break_exposition(self, reg):
        reg.gauge_fn("boom", lambda: 1 / 0)
        assert reg.snapshot()["boom"] is None
        assert "t_boom NaN" in reg.prometheus_text()


class TestHistogram:
    def test_cumulative_buckets_and_overflow(self, reg):
        h = reg.histogram("hops", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        snap = reg.snapshot()["hops"]
        assert snap["buckets"] == {"1": 1, "10": 2, "100": 3, "+Inf": 4}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(555.5)

    def test_boundary_lands_in_its_bucket(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1" is inclusive
        assert reg.snapshot()["lat"]["buckets"]["1"] == 1

    def test_unsorted_bounds_are_sorted(self, reg):
        h = reg.histogram("x", buckets=(10, 1, 5))
        assert h.buckets == (1.0, 5.0, 10.0)

    def test_empty_buckets_rejected(self, reg):
        with pytest.raises(ValueError, match="bucket"):
            reg.histogram("x", buckets=())


class TestRegistry:
    def test_instruments_memoized_by_name(self, reg):
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self, reg):
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_reset_zeroes_but_keeps_handles(self, reg):
        c = reg.counter("a")
        h = reg.histogram("b")
        c.inc(3)
        h.observe(1)
        reg.reset()
        assert c.value == 0 and h.count == 0
        c.inc()  # the pre-reset handle still reports
        assert reg.snapshot()["a"] == 1

    def test_snapshot_is_json_serializable(self, reg):
        reg.counter("a").inc()
        reg.gauge("b").set(2.5)
        reg.histogram("c").observe(7)
        parsed = json.loads(reg.to_json())
        assert parsed["a"] == 1 and parsed["b"] == 2.5
        assert parsed["c"]["count"] == 1

    def test_prometheus_text_format(self, reg):
        reg.counter("reqs", "served requests").inc(2)
        reg.gauge("depth").set(3)
        reg.histogram("lat", buckets=(1, 2)).observe(1.5)
        text = reg.prometheus_text()
        assert "# HELP t_reqs_total served requests" in text
        assert "# TYPE t_reqs_total counter" in text
        assert "t_reqs_total 2" in text
        assert "# TYPE t_depth gauge" in text
        assert 't_lat_bucket{le="1"} 0' in text
        assert 't_lat_bucket{le="2"} 1' in text
        assert 't_lat_bucket{le="+Inf"} 1' in text
        assert "t_lat_sum 1.5" in text and "t_lat_count 1" in text
        assert text.endswith("\n")

    def test_thread_safety_smoke(self, reg):
        c = reg.counter("n")

        def hammer():
            for _ in range(2000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_disabled_instrument_calls_allocate_nothing(self):
        r = MetricsRegistry(enabled=False)
        c, g, h = r.counter("a"), r.gauge("b"), r.histogram("c")
        # Warm up (method lookups, bytecode caches).
        for _ in range(10):
            c.inc()
            g.set(1)
            h.observe(1)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            c.inc()
            g.set(1)
            h.observe(1)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = sum(s.size_diff for s in after.compare_to(before, "lineno")
                    if s.size_diff > 0)
        # tracemalloc's own bookkeeping shows up as a few small blocks;
        # 3000 no-op calls must not add measurable allocations on top.
        assert grown < 4096


class TestTraces:
    def test_ring_is_bounded(self):
        log = TraceLog(capacity=3)
        for i in range(10):
            log.record(QueryTrace(k=i))
        assert len(log) == 3
        assert [t.k for t in log.recent()] == [7, 8, 9]
        assert log.n_recorded == 10

    def test_recent_n_and_json(self):
        log = TraceLog(capacity=8)
        log.record(QueryTrace(k=10, n_hops=4, ndc=37))
        parsed = json.loads(log.to_json(n=1))
        assert parsed[0]["k"] == 10 and parsed[0]["ndc"] == 37

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceLog(capacity=0)

    def test_clear_keeps_counter_monotonic(self):
        log = TraceLog(capacity=4)
        log.record(QueryTrace())
        log.clear()
        # The ring empties but the lifetime counter never rewinds: rate and
        # baseline consumers difference n_recorded across reads.
        assert len(log) == 0 and log.n_recorded == 1
        log.record(QueryTrace())
        assert log.n_recorded == 2


class TestServingIntegration:
    """An enabled store populates search/epoch/maintenance metrics end to end."""

    def test_store_traffic_populates_metrics_and_traces(self, global_obs):
        from repro import VectorStore

        rng = np.random.default_rng(3)
        base = rng.standard_normal((120, 8)).astype(np.float32)
        queries = rng.standard_normal((6, 8)).astype(np.float32)
        store = VectorStore(dim=8, metric="l2", M=8, ef_construction=40)
        store.add(base)
        store.build()
        store.search(queries[0], k=5, ef=20)
        store.search_batch(queries, k=5, ef=20, batch_size=4)
        store.observe(queries[0])
        store.flush()

        snap = global_obs.snapshot()
        assert snap["serving_queries"] == 1
        assert snap["batch_queries"] == 6
        assert snap["maintenance_repairs"] == 1
        assert snap["epoch_active_pins"] == 0.0
        assert snap["maintenance_worker_alive"] == 1.0
        assert snap["search_hops"]["count"] >= 1

        text = global_obs.prometheus_text()
        assert "repro_serving_queries_total 1" in text
        assert "repro_epoch_id " in text

        traces = obs.TRACES.recent()
        assert len(traces) == 1
        trace = traces[0]
        assert trace.k == 5 and trace.n_hops > 0 and trace.ndc > 0
        assert trace.epoch_id >= 0 and trace.pin_seconds > 0

    def test_disabled_store_records_nothing(self):
        from repro import VectorStore

        obs.reset()
        rng = np.random.default_rng(4)
        base = rng.standard_normal((80, 8)).astype(np.float32)
        store = VectorStore(dim=8, metric="l2", M=8, ef_construction=40)
        store.add(base)
        store.build()
        store.search(base[0], k=3, ef=20)
        snap = obs.OBS.snapshot()
        assert snap["serving_queries"] == 0
        assert len(obs.TRACES) == 0
