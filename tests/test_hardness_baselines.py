"""Hardness-measure baselines and the EH-validity comparison."""

import numpy as np
import pytest

from repro.core.hardness_baselines import (
    distance_hardness,
    effort_hardness,
    eh_hardness,
    epsilon_hardness,
    hardness_correlations,
)
from repro.evalx import compute_ground_truth


class TestDistanceHardness:
    def test_is_first_gt_column(self, tiny_gt):
        assert np.array_equal(distance_hardness(tiny_gt),
                              tiny_gt.distances[:, 0])


class TestEpsilonHardness:
    def test_at_least_one(self, tiny_ds, tiny_gt):
        values = epsilon_hardness(tiny_ds.base, tiny_ds.test_queries,
                                  tiny_gt, k=10)
        assert (values >= 1.0).all()

    def test_larger_eps_counts_more(self, tiny_ds, tiny_gt):
        small = epsilon_hardness(tiny_ds.base, tiny_ds.test_queries, tiny_gt,
                                 k=10, eps=0.05)
        large = epsilon_hardness(tiny_ds.base, tiny_ds.test_queries, tiny_gt,
                                 k=10, eps=0.5)
        assert (large >= small).all()

    def test_k_bounds(self, tiny_ds, tiny_gt):
        with pytest.raises(ValueError):
            epsilon_hardness(tiny_ds.base, tiny_ds.test_queries, tiny_gt,
                             k=tiny_gt.ids.shape[1] + 1)

    def test_isolated_query_scores_low(self):
        """A query whose top-k stands clear scores ~1; a crowded one more."""
        rng = np.random.default_rng(0)
        base = np.vstack([
            np.zeros((5, 4)),                      # tight cluster near q1
            10 + 0.01 * rng.standard_normal((50, 4)),  # dense far cluster
        ]).astype(np.float32)
        queries = np.array([[0.0, 0, 0, 0], [10.0, 10, 10, 10]],
                           dtype=np.float32)
        gt = compute_ground_truth(base, queries, 5, "l2")
        values = epsilon_hardness(base, queries, gt, k=5, eps=0.3)
        assert values[1] > values[0]


class TestEffortHardness:
    def test_finite_for_easy_queries(self, tiny_ds, shared_hnsw, tiny_gt):
        values = effort_hardness(shared_hnsw, tiny_ds.base[:5],
                                 compute_ground_truth(
                                     tiny_ds.base, tiny_ds.base[:5], 10,
                                     tiny_ds.metric),
                                 k=10, target_recall=0.9)
        assert np.isfinite(values).all()

    def test_monotone_grid(self, tiny_ds, shared_hnsw, tiny_gt):
        """Effort is reported from a fixed grid, so values are grid NDCs."""
        values = effort_hardness(shared_hnsw, tiny_ds.test_queries[:10],
                                 tiny_gt.take(range(10)), k=10)
        assert values.shape == (10,)
        assert (values[np.isfinite(values)] > 0).all()


class TestEhHardness:
    def test_shape_and_positive(self, shared_hnsw, tiny_gt):
        values = eh_hardness(shared_hnsw, tiny_gt, k=10)
        assert values.shape == (tiny_gt.n_queries,)
        assert (values >= 0).all()

    def test_requires_enough_gt_columns(self, shared_hnsw, tiny_gt):
        with pytest.raises(ValueError, match="K_max"):
            eh_hardness(shared_hnsw, tiny_gt.top(10), k=10, hard_ratio=3.0)


class TestCorrelations:
    def test_eh_is_most_predictive(self, tiny_ds, shared_hnsw, tiny_gt):
        """The paper's Sec. 5.2 validity claim: EH correlates with actual
        accuracy at least as strongly as naive hardness proxies."""
        corr = hardness_correlations(shared_hnsw, tiny_ds.base,
                                     tiny_ds.test_queries, tiny_gt,
                                     k=10, ef=15)
        assert set(corr) == {"distance", "epsilon", "effort", "escape_hardness"}
        assert corr["escape_hardness"] < -0.3  # strongly negative
        assert corr["escape_hardness"] <= corr["distance"] + 0.05
        assert corr["escape_hardness"] <= corr["epsilon"] + 0.05
