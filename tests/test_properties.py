"""Property-based tests on cross-module invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.escape_hardness import escape_hardness
from repro.core.ngfix import ngfix_query
from repro.distances import DistanceComputer, Metric, pairwise_distances
from repro.evalx import compute_ground_truth, recall_per_query
from repro.graphs import BruteForceIndex
from repro.graphs.adjacency import AdjacencyStore
from repro.graphs.search import greedy_search


def _random_world(draw, n_min=8, n_max=40, dim_max=6):
    n = draw(st.integers(n_min, n_max))
    dim = draw(st.integers(2, dim_max))
    seed = draw(st.integers(0, 2**16))
    data = np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)
    return data, seed


@st.composite
def world_with_graph(draw):
    data, seed = _random_world(draw)
    n = data.shape[0]
    rng = np.random.default_rng(seed + 1)
    adjacency = AdjacencyStore(n)
    deg = draw(st.integers(1, 6))
    for u in range(n):
        for v in rng.choice(n, size=min(deg, n - 1), replace=False):
            if int(v) != u:
                adjacency.add_base_edge(u, int(v))
    metric = draw(st.sampled_from(list(Metric)))
    return data, adjacency, metric, seed


class TestSearchProperties:
    @settings(max_examples=30, deadline=None)
    @given(world_with_graph(), st.integers(1, 5), st.integers(1, 20))
    def test_search_results_sorted_unique_valid(self, world, k, ef):
        data, adjacency, metric, seed = world
        dc = DistanceComputer(data, metric)
        q = np.random.default_rng(seed + 2).standard_normal(data.shape[1]).astype(np.float32)
        result = greedy_search(dc, adjacency.neighbors, [0], q, k=k, ef=ef)
        assert 1 <= len(result.ids) <= k
        assert len(set(result.ids.tolist())) == len(result.ids)
        assert (np.diff(result.distances) >= -1e-9).all()
        assert ((result.ids >= 0) & (result.ids < data.shape[0])).all()

    @settings(max_examples=20, deadline=None)
    @given(world_with_graph())
    def test_larger_ef_never_hurts_top1(self, world):
        """The best distance found is monotonically non-increasing in ef."""
        data, adjacency, metric, seed = world
        dc = DistanceComputer(data, metric)
        q = np.random.default_rng(seed + 3).standard_normal(data.shape[1]).astype(np.float32)
        best = np.inf
        for ef in (1, 4, 16, 64):
            r = greedy_search(dc, adjacency.neighbors, [0], q, k=1, ef=ef)
            assert r.distances[0] <= best + 1e-9
            best = min(best, r.distances[0])

    @settings(max_examples=20, deadline=None)
    @given(world_with_graph())
    def test_full_ef_on_connected_graph_is_exact(self, world):
        """With ef >= n and a graph reachable from the entry, greedy search
        degenerates to exhaustive scan of the reachable set."""
        data, adjacency, metric, seed = world
        n = data.shape[0]
        # make reachability total with a ring
        for u in range(n):
            adjacency.add_base_edge(u, (u + 1) % n)
        dc = DistanceComputer(data, metric)
        q = np.random.default_rng(seed + 4).standard_normal(data.shape[1]).astype(np.float32)
        r = greedy_search(dc, adjacency.neighbors, [0], q, k=3, ef=n)
        qv = dc.prepare_query(q)
        exact = np.argsort(dc.to_query(np.arange(n), qv), kind="stable")[:3]
        assert set(r.ids.tolist()) == set(exact.tolist())


class TestNgfixProperties:
    @settings(max_examples=20, deadline=None)
    @given(world_with_graph(), st.integers(3, 8))
    def test_ngfix_postcondition_and_budget(self, world, k):
        """After NGFix: all NN pairs ε-reachable (unbounded budget), and at
        most 2(k-1) edges added (Theorem 4)."""
        data, adjacency, metric, seed = world
        if data.shape[0] <= 3 * k:
            return
        dc = DistanceComputer(data, metric)
        q = np.random.default_rng(seed + 5).standard_normal(data.shape[1]).astype(np.float32)
        gt = compute_ground_truth(dc.data, q[None, :], 3 * k, metric)
        eh = escape_hardness(adjacency.neighbors, gt.ids[0], k)
        outcome = ngfix_query(adjacency, dc, eh, max_extra_degree=10**6)
        assert outcome.fully_reachable
        assert len(outcome.edges_added) <= 2 * (k - 1)
        eh2 = escape_hardness(adjacency.neighbors, gt.ids[0], k)
        assert eh2.n_unreachable_pairs() == 0

    @settings(max_examples=15, deadline=None)
    @given(world_with_graph(), st.integers(3, 6), st.integers(1, 4))
    def test_extra_degree_budget_held(self, world, k, budget):
        data, adjacency, metric, seed = world
        if data.shape[0] <= 3 * k:
            return
        dc = DistanceComputer(data, metric)
        rng = np.random.default_rng(seed + 6)
        for _ in range(3):
            q = rng.standard_normal(data.shape[1]).astype(np.float32)
            gt = compute_ground_truth(dc.data, q[None, :], 3 * k, metric)
            eh = escape_hardness(adjacency.neighbors, gt.ids[0], k)
            ngfix_query(adjacency, dc, eh, max_extra_degree=budget)
        for u in range(data.shape[0]):
            assert adjacency.extra_degree(u) <= budget


class TestMaintenanceProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**16), st.integers(1, 8))
    def test_inserted_points_are_findable(self, seed, n_inserts):
        from repro.graphs import HNSW
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((60, 4)).astype(np.float32)
        extra = rng.standard_normal((n_inserts, 4)).astype(np.float32)
        index = HNSW(data, Metric.L2, M=6, ef_construction=25,
                     single_layer=True, seed=0)
        for vec in extra:
            new_id = index.insert(vec)
            result = index.search(vec, k=1, ef=30)
            assert result.ids[0] == new_id

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**16), st.integers(1, 10))
    def test_tombstoned_never_returned(self, seed, n_delete):
        from repro.graphs import HNSW
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((50, 4)).astype(np.float32)
        index = HNSW(data, Metric.L2, M=6, ef_construction=25,
                     single_layer=True, seed=0)
        victims = set(int(v) for v in
                      rng.choice(50, size=n_delete, replace=False))
        index.adjacency.tombstones.update(victims)
        for q in data[:5]:
            result = index.search(q, k=5, ef=20)
            assert not (set(result.ids.tolist()) & victims)


class TestQuantizationProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16), st.sampled_from([2, 4]),
           st.sampled_from([4, 8, 16]))
    def test_codes_in_range_and_decode_shape(self, seed, m, ks):
        from repro.quantization import ProductQuantizer
        data = np.random.default_rng(seed).standard_normal((40, 8)).astype(np.float32)
        pq = ProductQuantizer(m=m, ks=ks, seed=0).fit(data)
        codes = pq.encode(data)
        assert codes.max() < ks
        assert pq.decode(codes).shape == data.shape

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16))
    def test_adc_lower_error_than_random_table(self, seed):
        """ADC with the query's own table correlates with true distances
        far better than with another query's table."""
        from repro.quantization import ProductQuantizer
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((80, 8)).astype(np.float32)
        pq = ProductQuantizer(m=4, ks=16, seed=0).fit(data)
        codes = pq.encode(data)
        q = rng.standard_normal(8).astype(np.float32)
        true = ((data - q) ** 2).sum(axis=1)
        own = pq.adc_distances(codes, pq.adc_table(q))
        err_own = float(np.abs(own - true).mean())
        other = pq.adc_distances(
            codes, pq.adc_table(rng.standard_normal(8).astype(np.float32)))
        err_other = float(np.abs(other - true).mean())
        assert err_own <= err_other + 1e-9


class TestMetricProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 20), st.integers(2, 6), st.integers(0, 2**16),
           st.sampled_from(list(Metric)))
    def test_ground_truth_is_recall_one_against_bruteforce(self, n, dim, seed,
                                                           metric):
        data = np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)
        queries = np.random.default_rng(seed + 1).standard_normal((3, dim)).astype(np.float32)
        k = min(3, n - 1)
        gt = compute_ground_truth(data, queries, k, metric)
        index = BruteForceIndex(data, metric)
        found = np.vstack([index.search(q, k=k).ids for q in queries])
        assert recall_per_query(found, gt.ids).min() == 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(3, 15), st.integers(2, 5), st.integers(0, 2**16))
    def test_pairwise_consistent_with_ground_truth_order(self, n, dim, seed):
        data = np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)
        q = np.random.default_rng(seed + 1).standard_normal((1, dim)).astype(np.float32)
        for metric in Metric:
            gt = compute_ground_truth(data, q, min(3, n - 1), metric)
            d = pairwise_distances(q, data, metric)[0]
            assert gt.ids[0, 0] == int(np.argsort(d, kind="stable")[0])
