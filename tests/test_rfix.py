"""RFix (Algorithm 4): reachability repair for phase-1 failures."""

import numpy as np

from repro.core.rfix import rfix_query, search_reaches_vicinity
from repro.distances import DistanceComputer, Metric
from repro.evalx import compute_ground_truth
from repro.graphs.adjacency import EH_INFINITE, AdjacencyStore
from repro.graphs.search import greedy_search


def _two_arm_world():
    """Entry cluster at origin with two 'arms'; the graph only links the
    wrong arm, so greedy search toward the right arm stalls.

    Layout (2-D): origin cluster {0,1,2}; wrong arm {3,4}; right arm {5,6,7}
    placed opposite.  Base edges chain origin -> wrong arm only.
    """
    pts = np.array([
        [0.0, 0.0], [0.2, 0.1], [0.1, -0.2],       # origin cluster
        [2.0, 2.0], [3.0, 3.0],                      # wrong arm
        [-2.0, -2.0], [-3.0, -3.0], [-3.2, -2.8],    # right arm
    ], dtype=np.float32)
    dc = DistanceComputer(pts, Metric.L2)
    adjacency = AdjacencyStore(len(pts))
    chain = [(0, 1), (1, 0), (1, 2), (2, 1), (0, 3), (3, 0), (3, 4), (4, 3),
             (5, 6), (6, 5), (6, 7), (7, 6)]
    for u, v in chain:
        adjacency.add_base_edge(u, v)
    return dc, adjacency


class TestReachesVicinity:
    def test_boundary(self):
        assert search_reaches_vicinity(1.0, 1.0)
        assert search_reaches_vicinity(0.5, 1.0)
        assert not search_reaches_vicinity(1.1, 1.0)


class TestRfix:
    def test_repairs_stalled_search(self):
        dc, adjacency = _two_arm_world()
        query = np.array([-3.0, -3.0], dtype=np.float32)
        gt = compute_ground_truth(dc.data, query[None, :], 3, Metric.L2)
        # Sanity: search from entry 0 cannot reach the right arm.
        before = greedy_search(dc, adjacency.neighbors, [0], query, k=1, ef=4)
        assert before.ids[0] not in gt.ids[0]

        outcome = rfix_query(adjacency, dc, query, gt.ids[0], gt.distances[0],
                             entry_point=0, search_ef=4, max_extra_degree=8)
        assert outcome.needed_fix
        assert outcome.reached_vicinity
        after = greedy_search(dc, adjacency.neighbors, [0], query, k=3, ef=4)
        assert set(after.ids.tolist()) & set(gt.ids[0].tolist())

    def test_added_edges_have_infinite_eh(self):
        dc, adjacency = _two_arm_world()
        query = np.array([-3.0, -3.0], dtype=np.float32)
        gt = compute_ground_truth(dc.data, query[None, :], 3, Metric.L2)
        outcome = rfix_query(adjacency, dc, query, gt.ids[0], gt.distances[0],
                             entry_point=0, search_ef=4, max_extra_degree=8)
        assert outcome.edges_added
        for u, v in outcome.edges_added:
            assert adjacency.extra_neighbors(u)[v] == EH_INFINITE

    def test_noop_when_search_already_reaches(self):
        dc, adjacency = _two_arm_world()
        query = np.array([2.5, 2.5], dtype=np.float32)  # wrong arm IS reachable
        gt = compute_ground_truth(dc.data, query[None, :], 2, Metric.L2)
        outcome = rfix_query(adjacency, dc, query, gt.ids[0], gt.distances[0],
                             entry_point=0, search_ef=4)
        assert not outcome.needed_fix
        assert outcome.edges_added == []
        assert outcome.rounds == 0

    def test_degree_budget_stops_fixing(self):
        dc, adjacency = _two_arm_world()
        query = np.array([-3.0, -3.0], dtype=np.float32)
        gt = compute_ground_truth(dc.data, query[None, :], 3, Metric.L2)
        outcome = rfix_query(adjacency, dc, query, gt.ids[0], gt.distances[0],
                             entry_point=0, search_ef=4, max_extra_degree=0)
        assert not outcome.reached_vicinity
        assert outcome.edges_added == []

    def test_max_rounds_respected(self):
        dc, adjacency = _two_arm_world()
        query = np.array([-3.0, -3.0], dtype=np.float32)
        gt = compute_ground_truth(dc.data, query[None, :], 3, Metric.L2)
        outcome = rfix_query(adjacency, dc, query, gt.ids[0], gt.distances[0],
                             entry_point=0, search_ef=4, max_rounds=1,
                             max_extra_degree=8)
        assert outcome.rounds <= 1

    def test_on_real_index_all_train_queries_reach(self, tiny_ds, fresh_hnsw,
                                                   tiny_train_gt):
        """After RFix, every historical query's search reaches its vicinity
        (Theorem 5 precondition)."""
        from repro.graphs.base import medoid_id
        entry = medoid_id(fresh_hnsw.dc)
        k = 10
        for i, query in enumerate(tiny_ds.train_queries):
            outcome = rfix_query(
                fresh_hnsw.adjacency, fresh_hnsw.dc, query,
                tiny_train_gt.ids[i][:k], tiny_train_gt.distances[i][:k],
                entry_point=entry, search_ef=k, max_extra_degree=12)
            assert outcome.reached_vicinity
