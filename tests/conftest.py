"""Shared fixtures: a small cross-modal workload and prebuilt indexes.

Session-scoped fixtures amortize index construction across the suite; tests
that mutate a graph must take a fresh copy (see ``fresh_hnsw``).
"""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.datasets import CrossModalConfig, make_cross_modal_dataset
from repro.evalx import compute_ground_truth
from repro.graphs import HNSW

try:
    import pytest_timeout  # noqa: F401
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for ``@pytest.mark.timeout`` sans pytest-timeout.

    Maintenance/serving tests mark a timeout so a stuck background merge or
    a deadlocked scheduler fails fast instead of hanging the whole suite.
    When pytest-timeout is installed (CI) it handles the mark natively; this
    fallback covers environments without it, using the interruptible-ish
    SIGALRM mechanism (main thread, POSIX only — a no-op elsewhere).
    """
    marker = item.get_closest_marker("timeout")
    if (_HAVE_PYTEST_TIMEOUT or marker is None
            or not hasattr(signal, "SIGALRM")):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 60.0

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s timeout mark")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


TINY = CrossModalConfig(
    n_base=400, n_train=80, n_test=40, dim=16, n_clusters=8,
    cluster_std=0.15, gap_scale=0.9, query_spread=0.4, n_facets=2,
    metric="cosine", n_id_queries=20, seed=7,
)


@pytest.fixture(scope="session")
def tiny_ds():
    """A 400-point cross-modal dataset with OOD queries."""
    return make_cross_modal_dataset("tiny", TINY)


@pytest.fixture(scope="session")
def tiny_gt(tiny_ds):
    """Exact top-30 ground truth for the tiny dataset's test queries."""
    return compute_ground_truth(tiny_ds.base, tiny_ds.test_queries, 30, tiny_ds.metric)


@pytest.fixture(scope="session")
def tiny_train_gt(tiny_ds):
    """Exact top-30 ground truth for the tiny dataset's train queries."""
    return compute_ground_truth(tiny_ds.base, tiny_ds.train_queries, 30, tiny_ds.metric)


@pytest.fixture(scope="session")
def shared_hnsw(tiny_ds):
    """Read-only single-layer HNSW over the tiny dataset.

    Tests must NOT mutate this index; use ``fresh_hnsw`` for that.
    """
    return HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                single_layer=True, seed=3)


@pytest.fixture
def fresh_hnsw(tiny_ds):
    """A freshly built HNSW safe to mutate (NGFix/RFix/maintenance tests)."""
    return HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                single_layer=True, seed=3)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
