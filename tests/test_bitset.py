"""BitMatrix: bit-level semantics and transitive closure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.bitset import BitMatrix


def test_set_get_clear():
    m = BitMatrix(8)
    assert not m.get(3, 5)
    m.set(3, 5)
    assert m.get(3, 5)
    assert not m.get(5, 3)
    m.clear(3, 5)
    assert not m.get(3, 5)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        BitMatrix(-1)


def test_zero_size_allowed():
    m = BitMatrix(0)
    assert m.size == 0
    assert m.all_set()


def test_or_row_reports_change():
    m = BitMatrix(4)
    m.set(0, 1)
    m.set(1, 2)
    assert m.or_row(0, 1) is True  # row 0 gains bit 2
    assert m.get(0, 2)
    assert m.or_row(0, 1) is False  # idempotent


def test_row_ones_and_count():
    m = BitMatrix(10)
    for j in (0, 3, 9):
        m.set(2, j)
    assert m.row_ones(2) == [0, 3, 9]
    assert m.count_row(2) == 3
    assert m.count_row(0) == 0


def test_all_set_with_active_subset():
    m = BitMatrix(5)
    for i in (1, 3):
        for j in (1, 3):
            m.set(i, j)
    assert m.all_set(active=[1, 3])
    assert not m.all_set()


def test_warshall_closure_chain():
    # 0 -> 1 -> 2 -> 3 must close to 0 -> {2, 3}.
    m = BitMatrix(4)
    for i in range(4):
        m.set(i, i)
    m.set(0, 1)
    m.set(1, 2)
    m.set(2, 3)
    m.warshall_closure()
    assert m.get(0, 3)
    assert m.get(1, 3)
    assert not m.get(3, 0)


def test_warshall_closure_cycle():
    m = BitMatrix(3)
    for i in range(3):
        m.set(i, i)
    m.set(0, 1)
    m.set(1, 2)
    m.set(2, 0)
    m.warshall_closure()
    assert m.all_set()


def test_to_from_array_roundtrip():
    arr = np.array([[1, 0, 1], [0, 1, 0], [1, 1, 0]], dtype=bool)
    m = BitMatrix.from_array(arr)
    assert np.array_equal(m.to_array(), arr)


def test_from_array_rejects_nonsquare():
    with pytest.raises(ValueError):
        BitMatrix.from_array(np.zeros((2, 3), dtype=bool))


def test_copy_is_independent():
    m = BitMatrix(3)
    m.set(0, 1)
    c = m.copy()
    c.set(1, 2)
    assert not m.get(1, 2)
    assert c.get(0, 1)


def test_equality():
    a, b = BitMatrix(3), BitMatrix(3)
    a.set(0, 1)
    assert a != b
    b.set(0, 1)
    assert a == b
    assert a != BitMatrix(4)
    assert a.__eq__(42) is NotImplemented


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 12), st.data())
def test_warshall_matches_numpy_closure(n, data):
    """Warshall closure over int-bitset rows equals boolean matrix powering."""
    edges = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=3 * n))
    m = BitMatrix(n)
    dense = np.eye(n, dtype=bool)
    for i in range(n):
        m.set(i, i)
    for u, v in edges:
        m.set(u, v)
        dense[u, v] = True
    m.warshall_closure()
    # reference closure: repeated boolean multiplication to fixpoint
    ref = dense.copy()
    while True:
        nxt = ref | (ref @ ref)
        if np.array_equal(nxt, ref):
            break
        ref = nxt
    assert np.array_equal(m.to_array(), ref)
