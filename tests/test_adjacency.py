"""AdjacencyStore: base/extra edge semantics, eviction, maintenance hooks."""

import pytest

from repro.graphs.adjacency import EH_INFINITE, AdjacencyStore


@pytest.fixture
def store():
    return AdjacencyStore(6)


class TestBaseEdges:
    def test_add_and_read(self, store):
        assert store.add_base_edge(0, 1)
        assert store.base_neighbors(0) == [1]
        assert store.neighbors(0).tolist() == [1]

    def test_duplicate_and_self_loop_refused(self, store):
        store.add_base_edge(0, 1)
        assert not store.add_base_edge(0, 1)
        assert not store.add_base_edge(2, 2)

    def test_set_base_neighbors_drops_self(self, store):
        store.set_base_neighbors(0, [0, 1, 2])
        assert store.base_neighbors(0) == [1, 2]

    def test_directed(self, store):
        store.add_base_edge(0, 1)
        assert store.base_neighbors(1) == []


class TestExtraEdges:
    def test_add_with_eh(self, store):
        assert store.add_extra_edge(0, 1, eh=5.0)
        assert store.extra_neighbors(0) == {1: 5.0}
        assert store.extra_degree(0) == 1

    def test_readd_keeps_larger_eh(self, store):
        store.add_extra_edge(0, 1, eh=5.0)
        assert not store.add_extra_edge(0, 1, eh=3.0)
        assert store.extra_neighbors(0)[1] == 5.0
        store.add_extra_edge(0, 1, eh=9.0)
        assert store.extra_neighbors(0)[1] == 9.0

    def test_extra_refused_if_base_exists(self, store):
        store.add_base_edge(0, 1)
        assert not store.add_extra_edge(0, 1, eh=2.0)

    def test_neighbors_combined(self, store):
        store.add_base_edge(0, 1)
        store.add_extra_edge(0, 2, eh=1.0)
        assert sorted(store.neighbors(0).tolist()) == [1, 2]
        assert store.out_degree(0) == 2

    def test_remove_extra(self, store):
        store.add_extra_edge(0, 1, eh=1.0)
        assert store.remove_extra_edge(0, 1)
        assert not store.remove_extra_edge(0, 1)
        assert store.extra_degree(0) == 0


class TestEviction:
    def test_evicts_lowest_eh(self, store):
        store.add_extra_edge(0, 1, eh=5.0)
        store.add_extra_edge(0, 2, eh=1.0)
        store.add_extra_edge(0, 3, eh=3.0)
        v, eh = store.evict_lowest_eh(0)
        assert (v, eh) == (2, 1.0)

    def test_infinite_eh_protected(self, store):
        store.add_extra_edge(0, 1, eh=EH_INFINITE)
        assert store.evict_lowest_eh(0) is None
        store.add_extra_edge(0, 2, eh=7.0)
        assert store.evict_lowest_eh(0) == (2, 7.0)
        assert store.extra_neighbors(0) == {1: EH_INFINITE}

    def test_tie_break_is_lowest_id_regardless_of_insertion_order(self):
        """Equal-EH eviction must pick the smallest target id no matter the
        order the edges were added in, so repair runs are reproducible
        across worker counts (the dict iteration order differs)."""
        for order in ([4, 2, 9], [9, 4, 2], [2, 9, 4]):
            store = AdjacencyStore(12)
            for v in order:
                store.add_extra_edge(0, v, eh=3.0)
            assert store.evict_lowest_eh(0) == (2, 3.0)
            assert store.evict_lowest_eh(0) == (4, 3.0)
            assert store.evict_lowest_eh(0) == (9, 3.0)


class TestCacheInvalidation:
    def test_neighbors_cache_refreshes(self, store):
        store.add_base_edge(0, 1)
        first = store.neighbors(0)
        store.add_extra_edge(0, 2, eh=1.0)
        assert sorted(store.neighbors(0).tolist()) == [1, 2]
        assert first.tolist() == [1]  # old snapshot unchanged


class TestAggregates:
    def test_counts(self, store):
        store.add_base_edge(0, 1)
        store.add_base_edge(1, 2)
        store.add_extra_edge(0, 3, eh=1.0)
        assert store.n_base_edges() == 2
        assert store.n_extra_edges() == 1
        assert store.average_out_degree() == pytest.approx(3 / 6)

    def test_index_size_accounting(self, store):
        store.add_base_edge(0, 1)
        store.add_extra_edge(0, 2, eh=1.0)
        # 4 bytes per base edge, 6 per extra edge (id + 16-bit EH)
        assert store.index_size_bytes() == 4 + 6


class TestMaintenanceHooks:
    def test_grow(self, store):
        store.grow(2)
        assert store.n_nodes == 8
        store.add_base_edge(7, 0)
        assert store.base_neighbors(7) == [0]

    def test_grow_negative_rejected(self, store):
        with pytest.raises(ValueError):
            store.grow(-1)

    def test_drop_extra_fraction_all(self, store, rng):
        for v in (1, 2, 3, 4):
            store.add_extra_edge(0, v, eh=float(v))
        removed = store.drop_extra_fraction(1.0, rng)
        assert removed == 4
        assert store.extra_degree(0) == 0

    def test_drop_extra_fraction_resets_eh(self, store, rng):
        for v in (1, 2, 3, 4):
            store.add_extra_edge(0, v, eh=float(v))
        store.drop_extra_fraction(0.5, rng)
        assert store.extra_degree(0) == 2
        assert all(eh == 0.0 for eh in store.extra_neighbors(0).values())

    def test_drop_fraction_validated(self, store, rng):
        with pytest.raises(ValueError):
            store.drop_extra_fraction(1.5, rng)

    def test_drop_extra_fraction_spares_infinite_eh(self, store, rng):
        """Regression: RFix navigation edges (EH=inf) must survive a partial
        rebuild's random drop and keep their never-evict sentinel tag."""
        store.add_extra_edge(0, 1, eh=EH_INFINITE)
        store.add_extra_edge(0, 2, eh=EH_INFINITE)
        store.add_extra_edge(0, 3, eh=3.0)
        store.add_extra_edge(0, 4, eh=4.0)
        removed = store.drop_extra_fraction(1.0, rng)
        assert removed == 2
        assert store.extra_neighbors(0) == {1: EH_INFINITE, 2: EH_INFINITE}

    def test_drop_extra_fraction_resets_only_finite_eh(self, store, rng):
        store.add_extra_edge(0, 1, eh=EH_INFINITE)
        store.add_extra_edge(0, 2, eh=7.0)
        store.drop_extra_fraction(0.0, rng)
        assert store.extra_neighbors(0) == {1: EH_INFINITE, 2: 0.0}

    def test_remove_node_edges(self, store):
        store.add_base_edge(0, 1)
        store.add_base_edge(1, 2)
        store.add_extra_edge(2, 1, eh=1.0)
        store.add_base_edge(1, 3)
        store.remove_node_edges({1})
        assert store.base_neighbors(0) == []
        assert store.base_neighbors(1) == []
        assert store.extra_neighbors(2) == {}

    def test_copy_independent(self, store):
        store.add_base_edge(0, 1)
        clone = store.copy()
        clone.add_base_edge(0, 2)
        clone.add_extra_edge(1, 3, eh=1.0)
        assert store.base_neighbors(0) == [1]
        assert store.extra_degree(1) == 0

    def test_grow_invalidates_csr_view(self, store):
        """Regression: a CSR snapshot frozen before grow() must never be
        served afterwards — its n_nodes lags the store and traversing it
        would silently hide the appended nodes."""
        store.add_base_edge(0, 1)
        view = store.freeze()
        assert store.csr_view() is view
        store.grow(3)
        assert store.csr_view() is None
        assert store.freeze().n_nodes == store.n_nodes

    def test_csr_view_guard_catches_stale_snapshot(self, store):
        """Even a view reinstated by buggy external code is rejected: the
        guard version-checks n_nodes/store_version at read time."""
        store.add_base_edge(0, 1)
        stale = store.freeze()
        store.grow(2)
        store._frozen = stale  # simulate a forgotten invalidation
        assert store.csr_view() is None
        assert store.traversal() is not stale


def test_invalid_node_count():
    with pytest.raises(ValueError):
        AdjacencyStore(0)
