"""Maintenance control plane: signals, policies, and scheduler wiring.

Covers the three layers of the policy refactor:

- :mod:`repro.control.signals` — windowed aggregation, baseline locking,
  and op-count storm detection in isolation;
- :mod:`repro.control.policy` — the decision state machine (latching,
  cooldown, budgets, deferral) driven by synthetic traces;
- the scheduler/store integration — including the hypothesis-driven
  bit-equivalence suite proving the default path (no policy argument)
  makes decision-for-decision the same calls as an explicit
  :class:`CadencePolicy`, i.e. the refactor did not change the
  historical behavior.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import VectorStore
from repro.control import (
    POLICIES,
    CadencePolicy,
    MaintenancePolicy,
    NavigabilitySignals,
    SignalPolicy,
    make_policy,
)
from repro.obs import QueryTrace

_DIM = 8


def _trace(n_hops=10, ndc=50, frontier_peak=8, degraded=False):
    return QueryTrace(k=5, ef=20, n_hops=n_hops, ndc=ndc,
                      frontier_peak=frontier_peak, degraded=degraded)


def _feed(signals, n, **kwargs):
    for _ in range(n):
        signals.observe_trace(_trace(**kwargs))


# -- signals ------------------------------------------------------------------


class TestNavigabilitySignals:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NavigabilitySignals(window=0)
        with pytest.raises(ValueError):
            NavigabilitySignals(baseline_traces=0)
        with pytest.raises(ValueError):
            NavigabilitySignals(storm_deletes=0)

    def test_window_is_bounded(self):
        signals = NavigabilitySignals(window=16, baseline_traces=4)
        _feed(signals, 100)
        snap = signals.snapshot()
        assert snap.n == 16
        assert signals.n_traces == 100

    def test_baseline_locks_after_baseline_traces(self):
        signals = NavigabilitySignals(window=32, baseline_traces=8)
        _feed(signals, 7)
        assert signals.baseline_hops is None
        _feed(signals, 1)
        assert signals.baseline_hops == pytest.approx(10.0)
        assert signals.baseline_ndc == pytest.approx(50.0)
        # The baseline stays locked: harder traffic later must not move it.
        _feed(signals, 8, n_hops=40, ndc=200)
        assert signals.baseline_hops == pytest.approx(10.0)

    def test_baseline_floor_avoids_divide_by_zero(self):
        signals = NavigabilitySignals(baseline_traces=2)
        _feed(signals, 2, n_hops=0, ndc=0)
        assert signals.baseline_hops == 1.0
        assert signals.baseline_ndc == 1.0
        assert np.isfinite(signals.snapshot().score)

    def test_score_zero_at_baseline(self):
        signals = NavigabilitySignals(baseline_traces=4)
        _feed(signals, 16)
        assert signals.snapshot().score == pytest.approx(0.0)

    def test_score_grows_with_hops_inflation(self):
        signals = NavigabilitySignals(window=8, baseline_traces=4)
        _feed(signals, 8)                       # baseline: 10 hops, 50 ndc
        _feed(signals, 8, n_hops=20, ndc=100)   # window now fully inflated
        snap = signals.snapshot()
        # hops ratio 2.0 and ndc ratio 2.0 each contribute (ratio - 1).
        assert snap.score == pytest.approx(2.0)

    def test_degraded_rate_dominates_score(self):
        signals = NavigabilitySignals(window=8, baseline_traces=4)
        _feed(signals, 4)
        _feed(signals, 4, degraded=True)
        snap = signals.snapshot()
        assert snap.degraded_rate == pytest.approx(0.5)
        assert snap.score == pytest.approx(1.0)  # 2.0 * degraded_rate

    def test_tombstone_density_provider_feeds_score(self):
        signals = NavigabilitySignals(baseline_traces=2)
        _feed(signals, 4)
        signals.tombstone_density_fn = lambda: 0.25
        assert signals.snapshot().score == pytest.approx(0.25)

    def test_slope_positive_while_degrading(self):
        signals = NavigabilitySignals(window=8, baseline_traces=4)
        _feed(signals, 8)
        signals.snapshot()                      # healthy reading on record
        _feed(signals, 8, n_hops=30, ndc=150)
        assert signals.snapshot().slope > 0

    def test_storm_detection_counts_ops_not_time(self):
        signals = NavigabilitySignals(storm_window=10, storm_deletes=4)
        signals.note_mutation("delete", 3)
        assert not signals.storm_detected
        signals.note_mutation("delete", 1)
        assert signals.storm_detected
        assert signals.recent_deletes == 4
        # Inserts push the deletes out of the op window: storm clears.
        signals.note_mutation("insert", 10)
        assert not signals.storm_detected
        assert signals.recent_deletes == 0

    def test_version_bumps_on_every_write(self):
        signals = NavigabilitySignals()
        v0 = signals.version
        signals.observe_trace(_trace())
        signals.note_mutation("insert")
        assert signals.version == v0 + 2


# -- policy construction ------------------------------------------------------


class TestMakePolicy:
    def test_none_means_scheduler_default(self):
        assert make_policy(None, 256) is None

    def test_none_with_config_is_an_error(self):
        with pytest.raises(ValueError, match="requires an explicit policy"):
            make_policy(None, 256, {"min_traces": 4})

    def test_instance_passes_through(self):
        policy = CadencePolicy(32)
        assert make_policy(policy, 256) is policy

    def test_instance_with_config_is_an_error(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            make_policy(CadencePolicy(32), 256, {"merge_every": 8})

    def test_string_lookup_forwards_config(self):
        policy = make_policy("signal", 64, {"min_traces": 4,
                                            "storm_deletes": 8})
        assert isinstance(policy, SignalPolicy)
        assert policy.merge_every == 64
        assert policy.min_traces == 4
        assert policy.signals.storm_deletes == 8

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nonsense", 256)

    def test_registry_contents(self):
        assert set(POLICIES) == {"cadence", "signal"}

    def test_base_policy_defaults(self):
        policy = MaintenancePolicy()
        assert policy.admit_repair() is True
        assert policy.repair_budget() is None
        assert policy.mutation_repair_budget() == 0
        assert policy.claim_repair_requests() == 0
        assert not policy.wants_traces
        with pytest.raises(NotImplementedError):
            policy.should_merge(1)


class TestCadencePolicy:
    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError):
            CadencePolicy(0)

    def test_merge_exactly_at_cadence(self):
        policy = CadencePolicy(8)
        assert not policy.should_merge(7)
        assert policy.should_merge(8)
        assert policy.should_merge(9)

    def test_admits_everything_unbudgeted(self):
        policy = CadencePolicy(8)
        assert policy.admit_repair()
        assert policy.repair_budget() is None
        assert policy.mutation_repair_budget() == 0
        assert policy.claim_repair_requests() == 0

    def test_stats(self):
        assert CadencePolicy(8).stats() == {"policy": "cadence",
                                            "merge_every": 8}


# -- signal policy state machine ----------------------------------------------


def _signal_policy(**overrides):
    kwargs = dict(merge_every=16, min_traces=4, storm_deletes=4,
                  storm_window=16, repair_budget_degraded=2,
                  storm_repair_budget=6, trigger_cooldown=8)
    kwargs.update(overrides)
    return SignalPolicy(**kwargs)


def _make_healthy(policy, n=8):
    """Feed enough at-baseline traces that triggers are armed but silent."""
    for _ in range(n):
        policy.on_trace(_trace())


def _make_degraded(policy, n=8):
    for _ in range(n):
        policy.on_trace(_trace(degraded=True))


class TestSignalPolicyHealthy:
    def test_skips_repairs_while_healthy(self):
        policy = _signal_policy()
        _make_healthy(policy)
        assert not policy.admit_repair()
        assert policy.n_skipped == 1

    def test_defers_cadence_merges_up_to_overlay_cap(self):
        policy = _signal_policy(merge_every=16, max_overlay_factor=4)
        _make_healthy(policy)
        assert not policy.should_merge(16)      # cadence-due but healthy
        assert policy.n_deferred == 1
        assert not policy.should_merge(17)      # same crossing: no recount
        assert policy.n_deferred == 1
        assert policy.should_merge(64)          # overlay cap is absolute

    def test_no_trigger_below_min_traces(self):
        policy = _signal_policy(min_traces=8)
        _make_degraded(policy, n=4)             # degraded but tiny sample
        assert not policy.admit_repair()
        assert policy.n_triggers == 0


class TestSignalPolicyDegraded:
    def test_degraded_rate_trigger_admits_with_budget(self):
        policy = _signal_policy()
        _make_degraded(policy)
        assert policy.admit_repair()
        assert policy.n_triggers == 1
        assert policy.repair_budget() == policy.repair_budget_degraded
        assert (policy.mutation_repair_budget()
                == policy.repair_budget_degraded)

    def test_trigger_requests_ring_repairs_once(self):
        policy = _signal_policy()
        _make_degraded(policy)
        policy.admit_repair()
        assert policy.claim_repair_requests() == policy.repair_budget_degraded
        assert policy.claim_repair_requests() == 0  # consumed

    def test_trigger_cooldown_limits_refire(self):
        policy = _signal_policy(trigger_cooldown=100)
        _make_degraded(policy, n=20)            # many snapshots, one trigger
        policy.admit_repair()
        assert policy.n_triggers == 1

    def test_degraded_merges_at_half_cadence(self):
        policy = _signal_policy(merge_every=16)
        _make_degraded(policy)
        assert not policy.should_merge(7)
        assert policy.should_merge(8)

    def test_recovery_returns_to_healthy(self):
        policy = _signal_policy()
        _make_degraded(policy)
        policy.admit_repair()
        policy.claim_repair_requests()
        # Healthy traffic refills the window; the score decays under the
        # threshold and admission flips back to skipping.
        _make_healthy(policy, n=policy.signals.window + 1)
        assert not policy.admit_repair()


class TestSignalPolicyStorm:
    def test_storm_latches_on_rising_edge_only(self):
        policy = _signal_policy(storm_deletes=4)
        policy.note_mutation("delete", 4)
        assert policy.storming
        assert policy.n_storms == 1
        policy.note_mutation("delete", 2)       # still inside the window
        assert policy.n_storms == 1             # no double count

    def test_storm_demands_immediate_merge_and_burst(self):
        policy = _signal_policy(storm_deletes=4, storm_repair_budget=6)
        policy.note_mutation("delete", 4)
        assert policy.should_merge(1)
        assert policy.repair_budget() is None   # drain the whole burst
        assert policy.mutation_repair_budget() == 6
        assert policy.claim_repair_requests() == 6
        policy.on_merge()
        assert not policy._merge_pending

    def test_storm_rearms_after_window_drains(self):
        policy = _signal_policy(storm_deletes=4, storm_window=8)
        policy.note_mutation("delete", 4)
        assert policy.n_storms == 1
        policy.claim_repair_requests()
        policy.on_merge()
        policy.note_mutation("insert", 8)       # flush the op window
        assert not policy.storming
        policy.note_mutation("delete", 4)       # a second, distinct storm
        assert policy.n_storms == 2

    def test_inserts_alone_never_storm(self):
        policy = _signal_policy(storm_deletes=4)
        policy.note_mutation("insert", 1000)
        assert not policy.storming
        assert policy.n_storms == 0

    def test_stats_shape(self):
        policy = _signal_policy()
        stats = policy.stats()
        assert stats["policy"] == "signal"
        assert stats["storm_active"] == 0
        assert isinstance(stats["storm_active"], int)  # sums across shards
        for key in ("signal_score", "signal_slope", "degraded_rate",
                    "tombstone_density", "storm_detections",
                    "triggers_fired", "repairs_skipped",
                    "repairs_requested", "deferred_merges"):
            assert key in stats

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SignalPolicy(merge_every=0)
        with pytest.raises(ValueError):
            SignalPolicy(max_overlay_factor=0)


# -- cluster stats rollup -----------------------------------------------------


class TestClusterPolicyRollup:
    def test_health_gauges_take_worst_shard(self):
        from repro.cluster.stats import merge_stats
        merged = merge_stats([
            {"policy": {"signal_score": 0.1, "storm_active": 0,
                        "repairs_skipped": 5, "policy": "signal"}},
            {"policy": {"signal_score": 0.9, "storm_active": 1,
                        "repairs_skipped": 3, "policy": "signal"}},
        ])
        policy = merged["policy"]
        assert policy["signal_score"] == pytest.approx(0.9)   # max, not sum
        assert policy["storm_active"] == 1                    # int sum
        assert policy["repairs_skipped"] == 8                 # counter sum
        assert policy["policy"] == "signal"                   # identity

    def test_merge_every_is_identity_not_sum(self):
        from repro.cluster.stats import merge_stats
        merged = merge_stats([{"policy": {"merge_every": 256}},
                              {"policy": {"merge_every": 256}}])
        assert merged["policy"]["merge_every"] == 256


# -- store / scheduler integration --------------------------------------------


def _vectors(n=96, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n, _DIM)).astype(np.float32)


def _store(policy=None, policy_config=None, merge_every=8, **kwargs):
    store = VectorStore(dim=_DIM, seed=0, M=6, ef_construction=30,
                        scheduler_mode="inline", merge_every=merge_every,
                        policy=policy, policy_config=policy_config, **kwargs)
    store.add(_vectors())
    store.build()
    return store


class TestSchedulerPolicyWiring:
    def test_default_policy_is_cadence(self):
        store = _store()
        assert store.scheduler.policy.name == "cadence"
        assert store.scheduler.policy.merge_every == 8
        assert store.scheduler.recent_queries is None  # trace-blind: no ring
        assert store._searcher.trace_sink is None
        stats = store.scheduler.stats()
        assert stats["policy"] == {"policy": "cadence", "merge_every": 8}
        assert stats["policy_repairs"] == 0
        assert "repair_seconds" in stats and "merge_seconds" in stats
        store.close()

    def test_signal_policy_wires_trace_feed(self):
        store = _store(policy="signal", policy_config={"min_traces": 4})
        scheduler = store.scheduler
        assert scheduler.policy.name == "signal"
        assert scheduler.recent_queries is not None
        assert store._searcher.trace_sink is not None
        for q in _vectors(6, seed=1):
            store.search(q, k=5, ef=20)
        assert scheduler.policy.signals.n_traces == 6
        assert len(scheduler.recent_queries) == 6
        store.close()

    def test_signal_policy_providers_read_serving_state(self):
        store = _store(policy="signal")
        signals = store.scheduler.policy.signals
        assert signals.overlay_depth_fn() == 0
        assert signals.tombstone_density_fn() == pytest.approx(0.0)
        # Deletes accumulate overlay depth (inserts cut a fresh epoch, so
        # they reset it); tombstone density tracks the live graph.
        store.delete([0, 1])
        assert signals.overlay_depth_fn() == 2
        assert signals.tombstone_density_fn() > 0.0
        store.close()

    def test_healthy_signal_policy_sheds_observe(self):
        store = _store(policy="signal", policy_config={"min_traces": 4})
        for q in _vectors(8, seed=3):
            store.search(q, k=5, ef=20)
        assert store.observe(_vectors(1, seed=4)[0]) is False
        assert store.scheduler.policy.n_skipped == 1
        assert store.scheduler.n_repairs == 0
        store.close()

    def test_delete_storm_bursts_repairs_and_merges(self):
        store = _store(policy="signal", merge_every=64,
                       policy_config={"storm_deletes": 8, "storm_window": 32,
                                      "min_traces": 4,
                                      "storm_repair_budget": 6})
        scheduler = store.scheduler
        for q in _vectors(12, seed=5):           # fill the recent-query ring
            store.search(q, k=5, ef=20)
        merges_before = scheduler.n_merges
        store.delete(list(range(10)))            # one burst over threshold
        policy_stats = scheduler.stats()["policy"]
        assert policy_stats["storm_detections"] == 1
        # At least the storm's immediate cut (tombstone compaction may add
        # its own bulk-boundary cut on top).
        assert scheduler.n_merges >= merges_before + 1
        assert scheduler.n_policy_repairs == 6   # ring burst self-enqueued
        assert scheduler.n_repairs >= 6
        # The store still answers, without resurfacing tombstoned ids.
        hits = {i for i, _, _ in store.search(_vectors(1, seed=6)[0], k=5)}
        assert not hits & set(range(10))
        store.close()

    def test_policy_survives_recovery(self, tmp_path):
        from repro.durability import recover
        store = _store(policy="signal", policy_config={"min_traces": 4},
                       wal_dir=tmp_path / "wal", sync_every=1)
        store.add(_vectors(4, seed=7))
        store.close()
        recovered, report = recover(tmp_path / "wal")
        assert report.consistent, report.errors
        assert recovered.scheduler.policy.name == "signal"
        assert recovered.scheduler.policy.min_traces == 4
        recovered.close()

    def test_policy_override_at_recovery(self, tmp_path):
        from repro.durability import recover
        store = _store(wal_dir=tmp_path / "wal", sync_every=1)
        store.close()
        recovered, report = recover(tmp_path / "wal", policy="signal")
        assert report.consistent, report.errors
        assert recovered.scheduler.policy.name == "signal"
        recovered.close()


# -- bit-equivalence: default path vs explicit CadencePolicy ------------------
#
# The refactor's contract: a store built with no policy argument behaves
# exactly as the pre-policy scheduler did, and CadencePolicy IS that
# behavior.  Hypothesis drives both stores through the same randomized op
# schedule and demands identical decisions at every step — same search
# results, same merge/repair counts, same epoch ids, same overlay depth.

_OPS = st.lists(st.sampled_from(["add", "delete", "observe", "search"]),
                min_size=1, max_size=40)


def _equiv_store(policy):
    store = VectorStore(dim=_DIM, seed=0, M=6, ef_construction=30,
                        scheduler_mode="inline", merge_every=4,
                        policy=policy)
    store.add(_vectors(48, seed=0))
    store.build()
    return store


class TestCadenceBitEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS)
    def test_default_path_matches_explicit_cadence(self, ops):
        default = _equiv_store(policy=None)
        explicit = _equiv_store(policy=CadencePolicy(4))
        try:
            rng = np.random.default_rng(7)
            payload = [rng.standard_normal(_DIM).astype(np.float32)
                       for _ in range(len(ops))]
            live = list(range(48))
            next_id = 48
            for step, op in enumerate(ops):
                if op == "add":
                    for store in (default, explicit):
                        store.add(payload[step][None, :])
                    live.append(next_id)
                    next_id += 1
                elif op == "delete" and live:
                    victim = live.pop(0)
                    for store in (default, explicit):
                        store.delete([victim])
                elif op == "observe":
                    accepted = [store.observe(payload[step])
                                for store in (default, explicit)]
                    assert accepted[0] == accepted[1]
                elif op == "search":
                    got = [[i for i, _, _ in
                            store.search(payload[step], k=5, ef=20)]
                           for store in (default, explicit)]
                    assert got[0] == got[1]
                # Decision trace: both schedulers agree after every op.
                a, b = default.scheduler, explicit.scheduler
                assert a.n_merges == b.n_merges
                assert a.n_repairs == b.n_repairs
                assert a.n_observed == b.n_observed
                assert (a.manager.overlay.n_ops
                        == b.manager.overlay.n_ops)
                assert (a.manager.current.epoch_id
                        == b.manager.current.epoch_id)
                # Cadence invariant: the overlay never reaches merge_every
                # after a drain point.
                assert a.manager.overlay.n_ops < 4 or op == "search"
        finally:
            default.close()
            explicit.close()

    @settings(max_examples=10, deadline=None)
    @given(ops=_OPS)
    def test_string_spec_matches_instance(self, ops):
        """policy="cadence" (make_policy path) == CadencePolicy instance."""
        named = _equiv_store(policy="cadence")
        explicit = _equiv_store(policy=CadencePolicy(4))
        try:
            rng = np.random.default_rng(11)
            for op in ops:
                vec = rng.standard_normal(_DIM).astype(np.float32)
                if op == "add":
                    for store in (named, explicit):
                        store.add(vec[None, :])
                elif op == "observe":
                    for store in (named, explicit):
                        store.observe(vec)
                # delete/search skipped: add+observe already exercise every
                # decision hook (admission, budgets, merge cadence).
                a, b = named.scheduler, explicit.scheduler
                assert a.n_merges == b.n_merges
                assert a.n_repairs == b.n_repairs
                assert (a.manager.overlay.n_ops
                        == b.manager.overlay.n_ops)
        finally:
            named.close()
            explicit.close()
