"""k-means, product quantization, and PQ-accelerated search."""

import numpy as np
import pytest

from repro.distances import Metric
from repro.evalx import recall_at_k
from repro.quantization import PQRerankSearcher, ProductQuantizer, kmeans


class TestKmeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        blob_a = rng.standard_normal((60, 4)) * 0.1
        blob_b = rng.standard_normal((60, 4)) * 0.1 + 8.0
        centers, assignments = kmeans(np.vstack([blob_a, blob_b]), 2, seed=0)
        assert len(set(assignments[:60])) == 1
        assert len(set(assignments[60:])) == 1
        assert assignments[0] != assignments[60]

    def test_returns_k_centers(self):
        data = np.random.default_rng(1).standard_normal((50, 3))
        centers, assignments = kmeans(data, 7, seed=0)
        assert centers.shape == (7, 3)
        assert set(np.unique(assignments)) <= set(range(7))

    def test_deterministic(self):
        data = np.random.default_rng(2).standard_normal((40, 3))
        a = kmeans(data, 4, seed=9)[0]
        b = kmeans(data, 4, seed=9)[0]
        assert np.allclose(a, b)

    def test_duplicate_points_handled(self):
        data = np.ones((20, 3))
        centers, assignments = kmeans(data, 3, seed=0)
        assert centers.shape == (3, 3)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 5)


class TestProductQuantizer:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_ds):
        pq = ProductQuantizer(m=4, ks=16, metric=tiny_ds.metric, seed=0)
        return pq.fit(tiny_ds.base)

    def test_codes_shape_and_dtype(self, fitted, tiny_ds):
        codes = fitted.encode(tiny_ds.base[:20])
        assert codes.shape == (20, 4)
        assert codes.dtype == np.uint8

    def test_reconstruction_beats_zero_baseline(self, fitted, tiny_ds):
        err = fitted.quantization_error(tiny_ds.base)
        zero_err = float((tiny_ds.base ** 2).sum(axis=1).mean())
        assert err < 0.5 * zero_err

    def test_more_centroids_less_error(self, tiny_ds):
        small = ProductQuantizer(m=4, ks=4, metric=tiny_ds.metric,
                                 seed=0).fit(tiny_ds.base)
        large = ProductQuantizer(m=4, ks=64, metric=tiny_ds.metric,
                                 seed=0).fit(tiny_ds.base)
        assert (large.quantization_error(tiny_ds.base)
                < small.quantization_error(tiny_ds.base))

    def test_adc_approximates_true_distance(self, fitted, tiny_ds):
        """ADC scores correlate strongly with exact distances."""
        from repro.distances import distances_to_query, normalize_rows
        query = tiny_ds.test_queries[0]
        table = fitted.adc_table(query / np.linalg.norm(query))
        codes = fitted.encode(tiny_ds.base)
        approx = fitted.adc_distances(codes, table)
        exact = distances_to_query(normalize_rows(tiny_ds.base),
                                   query, tiny_ds.metric)
        corr = np.corrcoef(approx, exact)[0, 1]
        assert corr > 0.9

    def test_unfitted_rejected(self):
        pq = ProductQuantizer(m=2, ks=4)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros((2, 4), dtype=np.float32))

    def test_validation(self, tiny_ds):
        with pytest.raises(ValueError):
            ProductQuantizer(m=4, ks=300)
        with pytest.raises(ValueError):
            ProductQuantizer(m=5).fit(tiny_ds.base)  # 16 % 5 != 0

    def test_l2_adc_exact_on_centroids(self):
        """A vector equal to a reconstruction has ADC distance equal to its
        true distance (table lookups are exact for codebook points)."""
        rng = np.random.default_rng(3)
        data = rng.standard_normal((100, 8)).astype(np.float32)
        pq = ProductQuantizer(m=2, ks=8, metric=Metric.L2, seed=0).fit(data)
        recon = pq.decode(pq.encode(data[:5]))
        q = rng.standard_normal(8).astype(np.float32)
        table = pq.adc_table(q)
        approx = pq.adc_distances(pq.encode(recon), table)
        exact = ((recon - q) ** 2).sum(axis=1)
        assert np.allclose(approx, exact, rtol=1e-4, atol=1e-4)


class TestPQRerankSearcher:
    def test_reasonable_recall_with_tiny_exact_budget(self, tiny_ds,
                                                      shared_hnsw, tiny_gt):
        pq = ProductQuantizer(m=4, ks=32, metric=tiny_ds.metric, seed=0)
        searcher = PQRerankSearcher(shared_hnsw, pq, rerank=40)
        found = np.vstack([searcher.search(q, k=10, ef=60).ids[:10]
                           for q in tiny_ds.test_queries])
        recall = recall_at_k(found, tiny_gt.top(10).ids)
        assert recall > 0.6
        assert searcher.adc_scored > 0

    def test_exact_ndc_bounded_by_rerank(self, tiny_ds, shared_hnsw):
        searcher = PQRerankSearcher(shared_hnsw, rerank=30)
        shared_hnsw.dc.reset_ndc()
        searcher.search(tiny_ds.test_queries[0], k=10, ef=60)
        assert shared_hnsw.dc.reset_ndc() <= 30

    def test_larger_rerank_helps(self, tiny_ds, shared_hnsw, tiny_gt):
        pq = ProductQuantizer(m=4, ks=32, metric=tiny_ds.metric, seed=0)
        pq.fit(tiny_ds.base)
        recalls = []
        for rerank in (15, 80):
            searcher = PQRerankSearcher(shared_hnsw, pq, rerank=rerank)
            found = np.vstack([searcher.search(q, k=10, ef=80).ids[:10]
                               for q in tiny_ds.test_queries])
            recalls.append(recall_at_k(found, tiny_gt.top(10).ids))
        assert recalls[1] >= recalls[0]
