"""k-NN graph builders: exact brute force and NN-descent."""

import numpy as np
import pytest

from repro.distances import Metric, pairwise_distances
from repro.graphs.kgraph import brute_force_knn_graph, nn_descent_knn_graph


def _recall(approx, exact):
    hits = 0
    for a, e in zip(approx, exact):
        hits += len(set(a.tolist()) & set(e.tolist()))
    return hits / exact.size


class TestBruteForce:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((40, 5)).astype(np.float32)
        knn = brute_force_knn_graph(data, 4, Metric.L2, batch_size=7)
        d = pairwise_distances(data, data, Metric.L2)
        np.fill_diagonal(d, np.inf)
        expected = np.argsort(d, axis=1, kind="stable")[:, :4]
        assert np.array_equal(knn, expected)

    def test_self_excluded(self):
        data = np.random.default_rng(1).standard_normal((20, 3)).astype(np.float32)
        knn = brute_force_knn_graph(data, 5, Metric.COSINE)
        for i in range(20):
            assert i not in knn[i]

    def test_k_bounds(self):
        data = np.zeros((5, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            brute_force_knn_graph(data, 5, Metric.L2)

    @pytest.mark.parametrize("metric", list(Metric))
    def test_all_metrics(self, metric):
        data = np.random.default_rng(2).standard_normal((30, 4)).astype(np.float32)
        knn = brute_force_knn_graph(data, 3, metric)
        assert knn.shape == (30, 3)


class TestNNDescent:
    def test_high_recall_vs_exact(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((300, 8)).astype(np.float32)
        exact = brute_force_knn_graph(data, 10, Metric.L2)
        approx = nn_descent_knn_graph(data, 10, Metric.L2, seed=0)
        assert _recall(approx, exact) > 0.80

    def test_shape_and_no_self(self):
        data = np.random.default_rng(4).standard_normal((50, 4)).astype(np.float32)
        knn = nn_descent_knn_graph(data, 5, Metric.L2, seed=0)
        assert knn.shape == (50, 5)
        for i in range(50):
            assert i not in knn[i]

    def test_deterministic(self):
        data = np.random.default_rng(5).standard_normal((60, 4)).astype(np.float32)
        a = nn_descent_knn_graph(data, 4, Metric.L2, seed=9)
        b = nn_descent_knn_graph(data, 4, Metric.L2, seed=9)
        assert np.array_equal(a, b)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            nn_descent_knn_graph(np.zeros((4, 2), dtype=np.float32), 4, Metric.L2)
