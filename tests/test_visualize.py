"""Classical MDS and ASCII QNG rendering (Fig. 3 machinery)."""

import numpy as np
import pytest

from repro.core.visualize import (
    ascii_scatter,
    classical_mds,
    qng_layout,
    render_qng,
)
from repro.distances import pairwise_distances


class TestClassicalMds:
    def test_recovers_planar_configuration(self):
        """Points already in 2-D are recovered up to rotation: pairwise
        distances of the embedding match the originals."""
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((12, 2))
        d = pairwise_distances(pts.astype(np.float32),
                               pts.astype(np.float32), "l2")
        emb = classical_mds(d, 2)
        d2 = pairwise_distances(emb.astype(np.float32),
                                emb.astype(np.float32), "l2")
        assert np.allclose(np.sqrt(d), np.sqrt(d2), atol=1e-3)

    def test_high_dim_to_2d_preserves_gross_structure(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((10, 16)) * 0.1
        b = rng.standard_normal((10, 16)) * 0.1 + 5.0
        pts = np.vstack([a, b]).astype(np.float32)
        emb = classical_mds(pairwise_distances(pts, pts, "l2"), 2)
        centroid_gap = np.linalg.norm(emb[:10].mean(0) - emb[10:].mean(0))
        within = np.linalg.norm(emb[:10] - emb[:10].mean(0), axis=1).mean()
        assert centroid_gap > 3 * within

    def test_validation(self):
        with pytest.raises(ValueError):
            classical_mds(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            classical_mds(np.zeros((3, 3)), n_components=0)


class TestQngLayout:
    def test_layout_shapes(self, shared_hnsw, tiny_gt):
        layout = qng_layout(shared_hnsw, tiny_gt.ids[0][:10])
        assert layout["coords"].shape == (10, 2)
        for u, v in layout["edges"]:
            assert 0 <= u < 10 and 0 <= v < 10


class TestAsciiScatter:
    def test_renders_all_points(self):
        coords = np.array([[0, 0], [1, 1], [0, 1]], dtype=float)
        art = ascii_scatter(coords, width=10, height=5)
        assert "0" in art and "1" in art and "2" in art
        assert len(art.splitlines()) == 5

    def test_edges_drawn(self):
        coords = np.array([[0, 0], [1, 0]], dtype=float)
        art = ascii_scatter(coords, edges=[(0, 1)], width=20, height=3)
        assert "." in art

    def test_degenerate_single_point(self):
        art = ascii_scatter(np.array([[1.0, 1.0]]), width=5, height=3)
        assert "0" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((3, 3)))


class TestRenderQng:
    def test_end_to_end(self, shared_hnsw, tiny_gt):
        art = render_qng(shared_hnsw, tiny_gt, 0, 10, width=30, height=10)
        assert len(art.splitlines()) == 10
        assert any(c.isdigit() for c in art)
