"""Batch engine ≡ sequential search: bit-level ids/distances/NDC equality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import list_datasets, load_dataset
from repro.distances import DistanceComputer, Metric
from repro.graphs import HNSW
from repro.graphs.adjacency import AdjacencyStore
from repro.graphs.search import BatchSearchEngine, VisitedTable, greedy_search


@st.composite
def world_with_graph(draw):
    n = draw(st.integers(8, 40))
    dim = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 2**16))
    data = np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)
    rng = np.random.default_rng(seed + 1)
    adjacency = AdjacencyStore(n)
    deg = draw(st.integers(1, 6))
    for u in range(n):
        for v in rng.choice(n, size=min(deg, n - 1), replace=False):
            if int(v) != u:
                adjacency.add_base_edge(u, int(v))
    metric = draw(st.sampled_from(list(Metric)))
    return data, adjacency, metric, seed


def _assert_equivalent(dc, adjacency, queries, k, ef, excluded=None,
                       entry=0, batch_size=8):
    """Sequential per-query search and the batch engine must agree bitwise."""
    visited = VisitedTable(dc.size)
    dc.reset_ndc()
    seq = [greedy_search(dc, adjacency.neighbors, [entry], q, k=k, ef=ef,
                         visited=visited, excluded=excluded) for q in queries]
    ndc_seq = dc.reset_ndc()

    engine = BatchSearchEngine(dc, adjacency.neighbors, lambda q: [entry],
                               excluded_fn=lambda: excluded,
                               batch_size=batch_size)
    bat = engine.search_batch(np.asarray(queries, dtype=np.float32), k, ef)
    ndc_bat = dc.reset_ndc()

    assert ndc_seq == ndc_bat
    for s, b in zip(seq, bat):
        np.testing.assert_array_equal(s.ids, b.ids)
        # Bit-level, not allclose: both paths share one distance kernel.
        np.testing.assert_array_equal(s.distances, b.distances)
        assert s.n_hops == b.n_hops
    return seq


class TestBatchEquivalenceProperties:
    @settings(max_examples=40, deadline=None)
    @given(world_with_graph(), st.integers(1, 6), st.integers(1, 24),
           st.integers(1, 7))
    def test_matches_sequential_all_metrics(self, world, k, ef, batch_size):
        data, adjacency, metric, seed = world
        dc = DistanceComputer(data, metric)
        queries = np.random.default_rng(seed + 2).standard_normal(
            (5, data.shape[1])).astype(np.float32)
        _assert_equivalent(dc, adjacency, queries, k, ef,
                           batch_size=batch_size)

    @settings(max_examples=25, deadline=None)
    @given(world_with_graph(), st.integers(1, 5), st.integers(2, 16))
    def test_matches_sequential_with_tombstones(self, world, k, ef):
        data, adjacency, metric, seed = world
        n = data.shape[0]
        rng = np.random.default_rng(seed + 3)
        excluded = set(int(v) for v in
                       rng.choice(n, size=min(5, n - 1), replace=False))
        dc = DistanceComputer(data, metric)
        queries = rng.standard_normal((4, data.shape[1])).astype(np.float32)
        _assert_equivalent(dc, adjacency, queries, k, ef, excluded=excluded)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**16), st.sampled_from(list(Metric)))
    def test_short_results_padding(self, seed, metric):
        """Entry confined to a 2-node component: both paths return the same
        short result rows, and search_many pads them with -1/inf."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((12, 3)).astype(np.float32)
        adjacency = AdjacencyStore(12)
        adjacency.add_base_edge(0, 1)
        adjacency.add_base_edge(1, 0)
        for u in range(2, 12):  # second component, unreachable from 0
            adjacency.add_base_edge(u, 2 + (u - 1) % 10)
        dc = DistanceComputer(data, metric)
        queries = rng.standard_normal((3, 3)).astype(np.float32)
        seq = _assert_equivalent(dc, adjacency, queries, k=5, ef=8)
        assert all(len(s.ids) == 2 for s in seq)


class TestIndexBatchPaths:
    def test_search_many_batched_equals_sequential(self, tiny_ds, shared_hnsw):
        queries = tiny_ds.test_queries[:20]
        ids_seq, d_seq = shared_hnsw.search_many(queries, k=5, ef=30,
                                                 batch_size=1)
        ids_bat, d_bat = shared_hnsw.search_many(queries, k=5, ef=30,
                                                 batch_size=7)
        np.testing.assert_array_equal(ids_seq, ids_bat)
        np.testing.assert_array_equal(d_seq, d_bat)

    def test_search_many_pads_short_rows(self, tiny_ds):
        index = HNSW(tiny_ds.base[:3], tiny_ds.metric, M=4,
                     ef_construction=10, single_layer=True, seed=0)
        ids, dists = index.search_many(tiny_ds.test_queries[:4], k=5, ef=10)
        assert (ids[:, 3:] == -1).all()
        assert np.isinf(dists[:, 3:]).all()

    def test_search_batch_ndc_matches_sequential(self, tiny_ds, shared_hnsw):
        queries = tiny_ds.test_queries[:10]
        shared_hnsw.dc.reset_ndc()
        seq = [shared_hnsw.search(q, k=5, ef=25) for q in queries]
        ndc_seq = shared_hnsw.dc.reset_ndc()
        bat = shared_hnsw.search_batch(queries, k=5, ef=25, batch_size=4)
        ndc_bat = shared_hnsw.dc.reset_ndc()
        assert ndc_seq == ndc_bat
        for s, b in zip(seq, bat):
            np.testing.assert_array_equal(s.ids, b.ids)
            np.testing.assert_array_equal(s.distances, b.distances)

    def test_batch_size_validation(self, tiny_ds, shared_hnsw):
        with pytest.raises(ValueError):
            shared_hnsw.search_batch(tiny_ds.test_queries[:2], k=3,
                                     batch_size=0)
        with pytest.raises(ValueError):
            shared_hnsw.search_batch(tiny_ds.test_queries[:2], k=0)

    def test_clone_does_not_share_engine(self, tiny_ds, shared_hnsw):
        shared_hnsw.search_batch(tiny_ds.test_queries[:4], k=3, ef=10)
        copy = shared_hnsw.clone()
        assert copy._batch_engine is None
        r1 = shared_hnsw.search_batch(tiny_ds.test_queries[:4], k=3, ef=10)
        r2 = copy.search_batch(tiny_ds.test_queries[:4], k=3, ef=10)
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a.ids, b.ids)


@pytest.mark.parametrize("name", list_datasets())
def test_registry_dataset_equivalence(name):
    """Acceptance: batched ≡ sequential (ids, distances, NDC) on every
    registry dataset."""
    ds = load_dataset(name, seed=0, scale=0.25)
    index = HNSW(ds.base, ds.metric, M=8, ef_construction=40,
                 single_layer=True, seed=3)
    queries = ds.test_queries[:20]
    index.dc.reset_ndc()
    seq = [index.search(q, k=10, ef=50) for q in queries]
    ndc_seq = index.dc.reset_ndc()
    bat = index.search_batch(queries, k=10, ef=50, batch_size=8)
    ndc_bat = index.dc.reset_ndc()
    assert ndc_seq == ndc_bat
    for s, b in zip(seq, bat):
        np.testing.assert_array_equal(s.ids, b.ids)
        np.testing.assert_array_equal(s.distances, b.distances)
        assert s.n_hops == b.n_hops


class TestWideBeam:
    """beam_width > 1 trades the W=1 bit-equivalence contract for fewer
    lock-step rounds; what it must preserve: the result list is the exact
    top-k of everything the beam scored, and recall stays in a band of the
    sequential-equivalent W=1 engine."""

    def test_beam_width_validation(self):
        dc = DistanceComputer(np.zeros((4, 2), dtype=np.float32), Metric.L2)
        adjacency = AdjacencyStore(4)
        adjacency.add_base_edge(0, 1)
        with pytest.raises(ValueError):
            BatchSearchEngine(dc, adjacency.neighbors, lambda q: [0],
                              beam_width=0)

    @settings(max_examples=25, deadline=None)
    @given(world_with_graph(), st.integers(1, 5), st.integers(2, 16),
           st.integers(2, 8))
    def test_results_are_topk_of_scored_set(self, world, k, ef, width):
        data, adjacency, metric, seed = world
        dc = DistanceComputer(data, metric)
        queries = np.random.default_rng(seed + 4).standard_normal(
            (4, data.shape[1])).astype(np.float32)
        engine = BatchSearchEngine(dc, adjacency.neighbors, lambda q: [0],
                                   batch_size=4, beam_width=width)
        results = engine.search_batch(queries, k=k, ef=max(ef, k),
                                      collect_visited=True)
        for r in results:
            m = min(k, r.visited_ids.shape[0])
            np.testing.assert_array_equal(
                np.sort(r.distances),
                np.sort(r.visited_distances)[:m])

    def test_recall_band_vs_single_beam(self, tiny_ds, shared_hnsw, tiny_gt):
        queries = tiny_ds.test_queries[:30]
        k, ef = 10, 40
        recalls = {}
        for width in (1, 8):
            engine = BatchSearchEngine(
                shared_hnsw.dc, shared_hnsw.adjacency.neighbors,
                shared_hnsw.entry_points, batch_size=16, beam_width=width)
            results = engine.search_batch(queries, k=k, ef=ef)
            hits = sum(
                len(set(r.ids.tolist()) & set(tiny_gt.ids[i, :k].tolist()))
                for i, r in enumerate(results))
            recalls[width] = hits / (len(queries) * k)
        assert recalls[8] >= recalls[1] - 0.05
