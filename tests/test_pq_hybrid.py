"""Compressed hot path: batched ADC traversal, exact re-rank, memmap tier.

Covers the PQ-resident serving pipeline end to end — the
:class:`~repro.quantization.adc.ADCComputer` block kernel, the
mutation-safety bugfixes in :class:`PQRerankSearcher` (stale codes, fixed
visited table, all-entries-excluded fallback), the compressed
:class:`~repro.store.VectorStore` serving mode, and the disk-resident
``np.memmap`` vector tier — plus hypothesis properties tying the
approximate path to its exact contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distances import DistanceComputer, Metric
from repro.evalx import compute_ground_truth, evaluate_index, recall_per_query
from repro.graphs import HNSW
from repro.graphs.search import VisitedTable
from repro.quantization import (ADCComputer, ProductQuantizer,
                                PQRerankSearcher, fallback_shortlist,
                                pq_greedy_search)
from repro.store import VectorStore


def _recall(searcher, queries, gt, k=10, ef=80, batched=False):
    if batched:
        results = searcher.search_batch(queries, k, ef)
        found = np.stack([r.ids[:k] for r in results])
    else:
        found = np.stack(
            [searcher.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return float(recall_per_query(found, gt.top(k).ids).mean())


# -- ADC block kernel ---------------------------------------------------------

class TestADCComputer:
    def test_block_tables_match_sequential(self, shared_hnsw, tiny_ds):
        """adc_tables(row b) == adc_table(queries[b]) for both metrics."""
        for metric in (Metric.COSINE, Metric.L2):
            dc = DistanceComputer(tiny_ds.base, metric)
            pq = ProductQuantizer(m=4, ks=16, metric=metric, seed=0)
            pq.fit(dc.data)
            qmat = np.stack([dc.prepare_query(q)
                             for q in tiny_ds.test_queries[:6]])
            block = pq.adc_tables(qmat)
            assert block.shape == (6, pq.m, pq.ks)
            for b in range(6):
                np.testing.assert_allclose(block[b], pq.adc_table(qmat[b]),
                                           rtol=1e-5, atol=1e-6)

    def test_block_to_queries_matches_per_row_adc(self, shared_hnsw, tiny_ds):
        """The batched gather equals per-row adc_distances lookups."""
        adc = ADCComputer(shared_hnsw.dc)
        qmat = np.stack([shared_hnsw.dc.prepare_query(q)
                         for q in tiny_ds.test_queries[:4]])
        adc.begin_block(qmat)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, adc.size, size=32).astype(np.int64)
        owners = rng.integers(0, 4, size=32).astype(np.int64)
        got = adc.block_to_queries(ids, qmat, owners)
        tables = [adc.pq.adc_table(qmat[b]) for b in range(4)]
        want = np.array([
            adc.pq.adc_distances(adc.codes[i][None, :], tables[o])[0]
            for i, o in zip(ids, owners)])
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)
        assert adc.ndc == 32

    def test_sync_is_incremental(self, fresh_hnsw, rng):
        adc = ADCComputer(fresh_hnsw.dc)
        n0 = adc.codes.shape[0]
        fresh_hnsw.insert(rng.standard_normal(16).astype(np.float32))
        assert adc.sync() == 1
        assert adc.codes.shape[0] == n0 + 1
        assert adc.sync() == 0  # nothing new


# -- bugfix regressions -------------------------------------------------------

class TestMutationRegressions:
    def test_add_search_delete_search(self, fresh_hnsw, tiny_ds, rng):
        """The satellite-1 regression: stale codes + fixed visited table.

        Before the fix, vectors inserted after the searcher was built were
        invisible (codes never re-encoded) and searching after an insert
        raised IndexError (VisitedTable sized at construction).
        """
        searcher = PQRerankSearcher(fresh_hnsw, rerank=40)
        q = tiny_ds.test_queries[0]
        baseline = searcher.search(q, k=10, ef=60)
        assert baseline.ids.size == 10

        # Insert a vector identical to the query: it must become the top hit.
        new_id = fresh_hnsw.insert(q)
        result = searcher.search(q, k=10, ef=60)   # no IndexError
        assert new_id in result.ids.tolist()
        batched = searcher.search_batch(q[None, :], k=10, ef=60)[0]
        assert new_id in batched.ids.tolist()

        # Tombstone it: it must vanish from both paths immediately.
        fresh_hnsw.adjacency.tombstones.add(new_id)
        result = searcher.search(q, k=10, ef=60)
        assert new_id not in result.ids.tolist()
        batched = searcher.search_batch(q[None, :], k=10, ef=60)[0]
        assert new_id not in batched.ids.tolist()

    def test_mark_many_stamps_entries(self, shared_hnsw, tiny_ds):
        """satellite-2: entries go through VisitedTable.mark_many.

        A shared visited table must see the entry points as visited after
        the search (the old code wrote a private copy of the stamps, so a
        wrapped/observed table desynced).
        """
        searcher = PQRerankSearcher(shared_hnsw, rerank=40)
        q = shared_hnsw.dc.prepare_query(tiny_ds.test_queries[0])
        table = searcher.adc.begin_query(q)

        class CountingTable(VisitedTable):
            marked: list = []

            def mark_many(self, ids):
                CountingTable.marked.append(np.array(ids, copy=True))
                super().mark_many(ids)

        visited = CountingTable(shared_hnsw.dc.size)
        entries = shared_hnsw.entry_points(q)
        ids, _, _ = pq_greedy_search(
            searcher.pq, searcher.codes, shared_hnsw.adjacency.neighbors,
            entries, table, k=10, ef=40, visited=visited)
        assert ids.size > 0
        assert CountingTable.marked, "entries bypassed mark_many"
        assert set(CountingTable.marked[0].tolist()) == set(entries)
        for e in entries:
            assert visited.is_visited(int(e))

    def test_reused_visited_table_grows_after_insert(self, fresh_hnsw, rng):
        searcher = PQRerankSearcher(fresh_hnsw, rerank=20)
        q = rng.standard_normal(16).astype(np.float32)
        searcher.search(q, k=5, ef=30)
        for _ in range(8):
            fresh_hnsw.insert(rng.standard_normal(16).astype(np.float32))
        # same searcher, regrown table: must not raise
        result = searcher.search(q, k=5, ef=30)
        assert result.ids.size == 5

    def test_tombstoned_entry_navigates_but_never_surfaces(self, fresh_hnsw,
                                                           tiny_ds):
        """satellite-3: excluded entry points seed traversal like greedy_search."""
        searcher = PQRerankSearcher(fresh_hnsw, rerank=40)
        q = tiny_ds.test_queries[0]
        entry = fresh_hnsw.entry_points(fresh_hnsw.dc.prepare_query(q))[0]
        fresh_hnsw.adjacency.tombstones.add(int(entry))
        result = searcher.search(q, k=10, ef=60)
        assert result.ids.size == 10
        assert int(entry) not in result.ids.tolist()
        batched = searcher.search_batch(q[None, :], k=10, ef=60)[0]
        assert batched.ids.size == 10
        assert int(entry) not in batched.ids.tolist()

    def test_all_excluded_falls_back_to_scan(self):
        """An edgeless excluded entry yields the ADC brute-force fallback."""
        rng = np.random.default_rng(5)
        data = rng.standard_normal((64, 8)).astype(np.float32)
        index = HNSW(data, Metric.L2, M=4, ef_construction=20,
                     single_layer=True, seed=0)
        searcher = PQRerankSearcher(
            index, ProductQuantizer(m=2, ks=16, metric=Metric.L2, seed=0),
            rerank=20)
        entry = index.entry_points(data[0])[0]
        # Tombstone the entry AND strip its edges: the beam dies instantly.
        index.adjacency.tombstones.add(int(entry))
        index.adjacency.set_base_neighbors(int(entry), [])
        result = searcher.search(data[0], k=5, ef=20)
        assert result.ids.size == 5
        assert int(entry) not in result.ids.tolist()
        batched = searcher.search_batch(data[0][None, :], k=5, ef=20)[0]
        assert batched.ids.size == 5
        assert int(entry) not in batched.ids.tolist()

    def test_fallback_shortlist_all_excluded_is_empty(self, shared_hnsw,
                                                      tiny_ds):
        adc = ADCComputer(shared_hnsw.dc)
        q = shared_hnsw.dc.prepare_query(tiny_ds.test_queries[0])
        table = adc.begin_query(q)
        everything = set(range(adc.size))
        assert fallback_shortlist(adc, table, everything, 10).size == 0
        top = fallback_shortlist(adc, table, None, 10)
        assert top.size == 10


# -- batched path parity and quality -----------------------------------------

class TestCompressedQuality:
    def test_batched_matches_sequential(self, shared_hnsw, tiny_ds):
        searcher = PQRerankSearcher(shared_hnsw, rerank=40)
        queries = tiny_ds.test_queries[:16]
        seq = [searcher.search(q, k=10, ef=60) for q in queries]
        bat = searcher.search_batch(queries, k=10, ef=60, batch_size=8)
        agree = np.mean([
            len(set(s.ids.tolist()) & set(b.ids.tolist())) / 10
            for s, b in zip(seq, bat)])
        # ADC distance ties may be broken differently; near-total agreement.
        assert agree >= 0.9

    def test_recall_within_band_of_uncompressed(self, shared_hnsw, tiny_ds,
                                                tiny_gt):
        searcher = PQRerankSearcher(shared_hnsw, rerank=60)
        exact = _recall(shared_hnsw, tiny_ds.test_queries, tiny_gt)
        approx = _recall(searcher, tiny_ds.test_queries, tiny_gt,
                         batched=True)
        assert approx >= exact - 0.1

    def test_exact_ndc_collapses_to_rerank_budget(self, shared_hnsw, tiny_ds,
                                                  tiny_gt):
        searcher = PQRerankSearcher(shared_hnsw, rerank=40)
        point = evaluate_index(searcher, tiny_ds.test_queries, tiny_gt,
                               k=10, ef=60, batch_size=8)
        assert point.ndc_per_query <= 40
        assert point.adc_per_query > point.ndc_per_query
        # counters rolled back by evaluate_index's delta bookkeeping aside,
        # the searcher's own counters moved
        assert searcher.rerank_ndc > 0


# -- hypothesis properties ----------------------------------------------------

@st.composite
def pq_world(draw):
    n = draw(st.integers(40, 120))
    dim = draw(st.sampled_from([4, 8, 12]))
    seed = draw(st.integers(0, 2**16))
    metric = draw(st.sampled_from([Metric.L2, Metric.COSINE]))
    data = np.random.default_rng(seed).standard_normal(
        (n, dim)).astype(np.float32)
    n_tomb = draw(st.integers(0, 5))
    return data, metric, seed, n_tomb


class TestCompressedProperties:
    @settings(max_examples=15, deadline=None)
    @given(pq_world(), st.integers(1, 8))
    def test_rerank_is_exact_sorted_and_exclusion_safe(self, world, k):
        """Returned distances are the exact metric distances of the returned
        ids, sorted ascending, and tombstoned ids never surface."""
        data, metric, seed, n_tomb = world
        index = HNSW(data, metric, M=4, ef_construction=20,
                     single_layer=True, seed=seed % 7)
        pq = ProductQuantizer(m=2, ks=min(16, data.shape[0] // 2),
                              metric=metric, seed=0)
        searcher = PQRerankSearcher(index, pq, rerank=max(k, 10))
        rng = np.random.default_rng(seed + 1)
        tombs = set(int(t) for t in
                    rng.choice(data.shape[0], size=n_tomb, replace=False))
        index.adjacency.tombstones.update(tombs)
        query = rng.standard_normal(data.shape[1]).astype(np.float32)
        for result in (searcher.search(query, k=k, ef=20),
                       searcher.search_batch(query[None, :], k=k, ef=20)[0]):
            assert result.ids.size > 0
            assert not (set(result.ids.tolist()) & tombs)
            prepared = index.dc.prepare_query(query)
            exact = index.dc.to_query(result.ids, prepared)
            np.testing.assert_allclose(result.distances, exact,
                                       rtol=1e-5, atol=1e-5)
            assert np.all(np.diff(result.distances) >= -1e-9)

    @settings(max_examples=10, deadline=None)
    @given(pq_world())
    def test_shortlist_subset_consistency(self, world):
        """Top-k of the re-rank equals the exact-distance top-k of the
        shortlist the traversal produced (re-rank adds no candidates)."""
        data, metric, seed, _ = world
        index = HNSW(data, metric, M=4, ef_construction=20,
                     single_layer=True, seed=seed % 7)
        pq = ProductQuantizer(m=2, ks=min(16, data.shape[0] // 2),
                              metric=metric, seed=0)
        searcher = PQRerankSearcher(index, pq, rerank=15)
        query = np.random.default_rng(seed + 2).standard_normal(
            data.shape[1]).astype(np.float32)
        q = index.dc.prepare_query(query)
        table = searcher.adc.begin_query(q)
        shortlist, _, _ = pq_greedy_search(
            searcher.pq, searcher.codes, index.adjacency.neighbors,
            index.entry_points(q), table, k=15, ef=20)
        shortlist = shortlist[:15]
        result = searcher.search(query, k=5, ef=20)
        exact = index.dc.to_query(shortlist, q)
        want = shortlist[np.argsort(exact, kind="stable")[:5]]
        assert set(result.ids.tolist()) <= set(shortlist.tolist())
        np.testing.assert_array_equal(np.sort(result.ids), np.sort(want))


# -- compressed serving (VectorStore) ----------------------------------------

@pytest.fixture
def compressed_store(tiny_ds):
    store = VectorStore(dim=tiny_ds.base.shape[1], metric=tiny_ds.metric,
                        M=8, ef_construction=40, seed=3, serving=True,
                        compressed=True, pq_ks=16, rerank=40)
    store.add(tiny_ds.base)
    store.build()
    yield store
    store.close()


@pytest.mark.timeout(120)
class TestCompressedServing:
    def test_rejects_unserved_compression(self):
        with pytest.raises(ValueError, match="serving"):
            VectorStore(dim=8, compressed=True, serving=False)

    def test_recall_and_counters(self, compressed_store, tiny_ds, tiny_gt):
        results = compressed_store.search_batch(tiny_ds.test_queries, 10, 80)
        found = np.stack([r.ids[:10] for r in results])
        recall = float(recall_per_query(found, tiny_gt.top(10).ids).mean())
        assert recall >= 0.8
        stats = compressed_store.stats()["compressed"]
        assert stats["adc_scored"] > 0
        assert stats["rerank_ndc"] > 0
        assert stats["rerank"] == 40

    def test_insert_delete_visibility(self, compressed_store, rng):
        q = rng.standard_normal(16).astype(np.float32)
        [new_id] = compressed_store.add(q[None, :])
        hits = compressed_store.search(q, k=5, ef=60)
        assert hits[0][0] == new_id
        batched = compressed_store.search_batch(q[None, :], 5, 60)[0]
        assert new_id in batched.ids.tolist()
        compressed_store.delete([new_id])
        hits = compressed_store.search(q, k=5, ef=60)
        assert new_id not in [h[0] for h in hits]
        batched = compressed_store.search_batch(q[None, :], 5, 60)[0]
        assert new_id not in batched.ids.tolist()

    def test_deadline_degrades(self, compressed_store, tiny_ds):
        results = compressed_store.search_batch(
            tiny_ds.test_queries, 10, 200, deadline_ms=1e-4)
        assert any(r.degraded for r in results)
        # an expansive budget stays non-degraded
        results = compressed_store.search_batch(
            tiny_ds.test_queries[:4], 10, 40, deadline_ms=10_000)
        assert not any(r.degraded for r in results)


# -- memmap tier --------------------------------------------------------------

class TestMemmapTier:
    def test_round_trip_distances(self, tiny_ds, tmp_path):
        a = DistanceComputer(tiny_ds.base, tiny_ds.metric)
        b = DistanceComputer(tiny_ds.base, tiny_ds.metric)
        b.use_memmap(tmp_path / "vecs.bin")
        assert b.is_memmap and not a.is_memmap
        assert b.vector_bytes == a.data.nbytes
        q = a.prepare_query(tiny_ds.test_queries[0])
        ids = np.arange(0, 50, dtype=np.int64)
        np.testing.assert_allclose(a.to_query(ids, q), b.to_query(ids, q),
                                   rtol=1e-6)

    def test_append_while_memmapped(self, tiny_ds, tmp_path, rng):
        dc = DistanceComputer(tiny_ds.base, tiny_ds.metric)
        dc.use_memmap(tmp_path / "vecs.bin")
        n0 = dc.size
        extra = rng.standard_normal((3, 16)).astype(np.float32)
        dc.append(extra)
        assert dc.size == n0 + 3 and dc.is_memmap
        ref = DistanceComputer(np.vstack([tiny_ds.base, extra]),
                               tiny_ds.metric)
        q = dc.prepare_query(tiny_ds.test_queries[0])
        ids = np.arange(n0 - 2, n0 + 3, dtype=np.int64)
        np.testing.assert_allclose(dc.to_query(ids, q), ref.to_query(ids, q),
                                   rtol=1e-6)

    def test_from_memmap_reopens(self, tiny_ds, tmp_path):
        dc = DistanceComputer(tiny_ds.base, tiny_ds.metric)
        dc.use_memmap(tmp_path / "vecs.bin")
        again = DistanceComputer.from_memmap(tmp_path / "vecs.bin",
                                             dim=16, metric=tiny_ds.metric)
        assert again.size == dc.size
        q = dc.prepare_query(tiny_ds.test_queries[0])
        ids = np.arange(0, 20, dtype=np.int64)
        np.testing.assert_allclose(dc.to_query(ids, q),
                                   again.to_query(ids, q), rtol=1e-6)

    def test_load_index_memmap_dir(self, shared_hnsw, tiny_ds, tmp_path):
        from repro.io import load_index, save_index
        path = save_index(shared_hnsw, tmp_path / "g.npz")
        frozen = load_index(path, memmap_dir=tmp_path / "tier")
        assert frozen.dc.is_memmap
        q = tiny_ds.test_queries[0]
        plain = load_index(path)
        a = frozen.search(q, k=10, ef=60)
        b = plain.search(q, k=10, ef=60)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_store_memmap_and_recovery_preserve_compression(self, tiny_ds,
                                                            tmp_path):
        from repro.durability import recover
        store = VectorStore(dim=16, metric=tiny_ds.metric, M=8,
                            ef_construction=40, seed=3, compressed=True,
                            pq_ks=16, rerank=30,
                            wal_dir=tmp_path / "dur",
                            memmap_path=tmp_path / "vecs.bin")
        store.add(tiny_ds.base)
        store.build()
        assert store.dc.is_memmap
        q = tiny_ds.test_queries[0]
        before = [h[0] for h in store.search(q, k=10, ef=60)]
        store.checkpoint()
        store.delete([before[0]])
        store.close()

        recovered, report = recover(tmp_path / "dur")
        assert report.consistent
        assert recovered.adc is not None   # compressed mode survives restart
        after = [h[0] for h in recovered.search(q, k=10, ef=60)]
        assert before[0] not in after
        recovered.close()
