"""Index persistence: save/load roundtrips."""

import numpy as np
import pytest

from repro import FixConfig, NGFixer, load_index, save_index
from repro.io import FrozenIndex


class TestRoundtrip:
    def test_hnsw_roundtrip_identical_search(self, tiny_ds, shared_hnsw,
                                             tmp_path):
        path = save_index(shared_hnsw, tmp_path / "hnsw")
        loaded = load_index(path)
        assert isinstance(loaded, FrozenIndex)
        for q in tiny_ds.test_queries[:10]:
            a = shared_hnsw.search(q, k=5, ef=30)
            b = loaded.search(q, k=5, ef=30)
            assert a.ids.tolist() == b.ids.tolist()

    def test_npz_suffix_appended(self, shared_hnsw, tmp_path):
        path = save_index(shared_hnsw, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_fixer_roundtrip_preserves_extra_edges(self, tiny_ds, fresh_hnsw,
                                                   tmp_path):
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries[:30])
        path = save_index(fixer, tmp_path / "fixed")
        loaded = load_index(path)
        assert (loaded.adjacency.n_extra_edges()
                == fixer.adjacency.n_extra_edges())
        assert loaded.entry == fixer.entry
        # EH tags survive (including infinities from RFix)
        for u in range(loaded.adjacency.n_nodes):
            assert (loaded.adjacency.extra_neighbors(u)
                    == fixer.adjacency.extra_neighbors(u))

    def test_tombstones_survive(self, tiny_ds, fresh_hnsw, tmp_path):
        fresh_hnsw.adjacency.tombstones.update({3, 7})
        path = save_index(fresh_hnsw, tmp_path / "tomb")
        loaded = load_index(path)
        assert loaded.adjacency.tombstones == {3, 7}
        result = loaded.search(tiny_ds.base[3], k=5, ef=30)
        assert 3 not in result.ids

    def test_loaded_index_supports_further_fixing(self, tiny_ds, fresh_hnsw,
                                                  tmp_path):
        path = save_index(fresh_hnsw, tmp_path / "base")
        loaded = load_index(path)
        fixer = NGFixer(loaded, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries[:10])
        assert fixer.adjacency.n_extra_edges() > 0

    def test_save_rejects_unknown_object(self, tmp_path):
        with pytest.raises(TypeError):
            save_index("not an index", tmp_path / "x")

    def test_load_rejects_bad_version(self, shared_hnsw, tmp_path):
        import json
        path = save_index(shared_hnsw, tmp_path / "v")
        payload = dict(np.load(path))
        payload["meta"] = np.frombuffer(
            json.dumps({"format_version": 99}).encode(), dtype=np.uint8)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="format"):
            load_index(path)
