"""NGFix (Algorithm 3): edge budget, reachability guarantee, eviction."""

import numpy as np
import pytest

from repro.core.escape_hardness import escape_hardness
from repro.core.ngfix import (
    enforce_extra_budget,
    ngfix_query,
    random_connect_fix,
    rng_overlay_fix,
)
from repro.distances import DistanceComputer, Metric
from repro.graphs.adjacency import EH_INFINITE, AdjacencyStore


def _setup(n=20, dim=4, seed=0, edges=()):
    """A DistanceComputer plus AdjacencyStore with the given base edges."""
    data = np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)
    dc = DistanceComputer(data, Metric.L2)
    adjacency = AdjacencyStore(n)
    for u, v in edges:
        adjacency.add_base_edge(u, v)
    return dc, adjacency


def _eh_for(adjacency, dc, query_vec, k, K_max):
    from repro.evalx import compute_ground_truth
    gt = compute_ground_truth(dc.data, query_vec[None, :], K_max, dc.metric)
    return escape_hardness(adjacency.neighbors, gt.ids[0], k)


class TestNgfixQuery:
    def test_disconnected_neighborhood_becomes_reachable(self):
        dc, adjacency = _setup()
        query = dc.data[:8].mean(axis=0)
        eh = _eh_for(adjacency, dc, query, k=6, K_max=12)
        assert eh.n_unreachable_pairs() > 0
        outcome = ngfix_query(adjacency, dc, eh, max_extra_degree=10)
        assert outcome.fully_reachable
        # Re-measuring on the fixed graph: everything reachable within K_max.
        eh2 = _eh_for(adjacency, dc, query, k=6, K_max=12)
        assert eh2.n_unreachable_pairs() == 0

    def test_edge_budget_theorem4(self):
        """At most 2(k-1) directed edges per query (Theorem 4)."""
        for seed in range(5):
            dc, adjacency = _setup(seed=seed)
            query = dc.data[:10].mean(axis=0)
            k = 8
            eh = _eh_for(adjacency, dc, query, k=k, K_max=16)
            outcome = ngfix_query(adjacency, dc, eh, max_extra_degree=50)
            assert len(outcome.edges_added) <= 2 * (k - 1)

    def test_noop_when_already_reachable(self):
        # complete digraph over the NN set -> nothing to add
        dc, adjacency = _setup(edges=[(u, v) for u in range(20)
                                      for v in range(20) if u != v])
        query = dc.data[0]
        eh = _eh_for(adjacency, dc, query, k=5, K_max=10)
        outcome = ngfix_query(adjacency, dc, eh)
        assert outcome.edges_added == []
        assert outcome.fully_reachable

    def test_edges_are_extra_and_tagged(self):
        dc, adjacency = _setup()
        query = dc.data[:6].mean(axis=0)
        eh = _eh_for(adjacency, dc, query, k=5, K_max=10)
        ngfix_query(adjacency, dc, eh, max_extra_degree=10)
        assert adjacency.n_base_edges() == 0
        assert adjacency.n_extra_edges() > 0
        for u in range(20):
            for v, tag in adjacency.extra_neighbors(u).items():
                assert np.isfinite(tag)

    def test_degree_budget_enforced(self):
        dc, adjacency = _setup()
        for seed in range(4):  # several queries stress the same nodes
            query = np.random.default_rng(seed).standard_normal(4).astype(np.float32)
            eh = _eh_for(adjacency, dc, query, k=8, K_max=16)
            ngfix_query(adjacency, dc, eh, max_extra_degree=3)
        for u in range(20):
            assert adjacency.extra_degree(u) <= 3

    def test_mst_order_prefers_short_edges(self):
        """On an empty graph the added edges form short links: every added
        edge is no longer than the longest possible NN-pair distance, and the
        shortest NN pair is always connected."""
        dc, adjacency = _setup()
        query = dc.data[:6].mean(axis=0)
        eh = _eh_for(adjacency, dc, query, k=6, K_max=12)
        outcome = ngfix_query(adjacency, dc, eh, max_extra_degree=10)
        nn = eh.nn_ids[:6].tolist()
        pair_d = {(a, b): dc.between(a, b) for a in nn for b in nn if a != b}
        shortest = min(pair_d, key=pair_d.get)
        assert shortest in outcome.edges_added or shortest[::-1] in outcome.edges_added


class TestEviction:
    def test_eh_strategy_drops_lowest(self):
        dc, adjacency = _setup()
        adjacency.add_extra_edge(0, 1, eh=1.0)
        adjacency.add_extra_edge(0, 2, eh=9.0)
        adjacency.add_extra_edge(0, 3, eh=5.0)
        evicted = enforce_extra_budget(adjacency, dc, 0, max_extra_degree=2,
                                       strategy="eh")
        assert evicted == [(0, 1)]

    def test_infinite_eh_survives_all_strategies(self):
        for strategy in ("eh", "random", "mrng"):
            dc, adjacency = _setup()
            adjacency.add_extra_edge(0, 1, eh=EH_INFINITE)
            for v in (2, 3, 4, 5):
                adjacency.add_extra_edge(0, v, eh=1.0)
            enforce_extra_budget(adjacency, dc, 0, max_extra_degree=2,
                                 strategy=strategy,
                                 rng=np.random.default_rng(0))
            assert 1 in adjacency.extra_neighbors(0)

    def test_random_strategy_respects_budget(self):
        dc, adjacency = _setup()
        for v in range(1, 8):
            adjacency.add_extra_edge(0, v, eh=float(v))
        enforce_extra_budget(adjacency, dc, 0, 3, "random",
                             rng=np.random.default_rng(0))
        assert adjacency.extra_degree(0) == 3

    def test_mrng_strategy_prunes_long_edges(self):
        # collinear targets: RNG occlusion keeps only the nearest
        data = np.array([[0.0], [1.0], [2.0], [3.0], [4.0]], dtype=np.float32)
        dc = DistanceComputer(data, Metric.L2)
        adjacency = AdjacencyStore(5)
        for v in (1, 2, 3, 4):
            adjacency.add_extra_edge(0, v, eh=2.0)
        enforce_extra_budget(adjacency, dc, 0, 2, "mrng")
        assert 1 in adjacency.extra_neighbors(0)
        assert 4 not in adjacency.extra_neighbors(0)

    def test_unknown_strategy(self):
        dc, adjacency = _setup()
        adjacency.add_extra_edge(0, 1, eh=1.0)
        adjacency.add_extra_edge(0, 2, eh=1.0)
        with pytest.raises(ValueError):
            enforce_extra_budget(adjacency, dc, 0, 1, "bogus")

    def test_noop_under_budget(self):
        dc, adjacency = _setup()
        adjacency.add_extra_edge(0, 1, eh=1.0)
        assert enforce_extra_budget(adjacency, dc, 0, 5, "eh") == []


class TestAblationFixers:
    def test_rng_overlay_adds_more_edges_than_ngfix(self):
        """Fig. 13(c): reconstructing the RNG links more edges than NGFix."""
        dc1, adj1 = _setup(n=30)
        dc2, adj2 = _setup(n=30)
        query = dc1.data[:10].mean(axis=0)
        eh = _eh_for(adj1, dc1, query, k=8, K_max=16)
        ng = ngfix_query(adj1, dc1, eh, max_extra_degree=20)
        overlay = rng_overlay_fix(adj2, dc2, eh.nn_ids[:8], max_extra_degree=20)
        assert len(overlay.edges_added) > len(ng.edges_added)

    def test_random_connect_reaches_but_disordered(self):
        dc, adjacency = _setup()
        query = dc.data[:8].mean(axis=0)
        eh = _eh_for(adjacency, dc, query, k=6, K_max=12)
        outcome = random_connect_fix(adjacency, dc, eh, max_extra_degree=20,
                                     seed=0)
        assert outcome.fully_reachable
        assert len(outcome.edges_added) > 0

    def test_random_connect_deterministic(self):
        dc1, adj1 = _setup()
        dc2, adj2 = _setup()
        query = dc1.data[:8].mean(axis=0)
        eh1 = _eh_for(adj1, dc1, query, k=6, K_max=12)
        eh2 = _eh_for(adj2, dc2, query, k=6, K_max=12)
        o1 = random_connect_fix(adj1, dc1, eh1, seed=3)
        o2 = random_connect_fix(adj2, dc2, eh2, seed=3)
        assert o1.edges_added == o2.edges_added
