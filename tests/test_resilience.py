"""Gray-failure resilience: hedged gather, breakers, brownout, resync.

Unit layers (fake clocks, no processes) cover the state machines —
:class:`LatencyTracker`, :class:`Backoff`, :class:`CircuitBreaker`,
:class:`BrownoutController` — and the overload score shape.  The e2e
layers fork real shard workers and provoke *gray* failures through the
``worker.pre_reply`` delay fault: slow-but-alive replicas that the PR 7
failover (which only understands dead sockets) cannot mask.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    WORKER_OP_POINT,
    WORKER_PRE_REPLY_POINT,
    Backoff,
    BreakerConfig,
    BrownoutController,
    CircuitBreaker,
    ClusterRouter,
    FrontDoor,
    LatencyTracker,
    Overloaded,
)
from repro.cluster import resilience
from repro.store import VectorStore

DIM = 16


@pytest.fixture(scope="module")
def cluster_data():
    rng = np.random.default_rng(7)
    base = rng.standard_normal((300, DIM)).astype(np.float32)
    queries = rng.standard_normal((24, DIM)).astype(np.float32)
    return base, queries


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- unit: latency tracking ---------------------------------------------------

class TestLatencyTracker:
    def test_warmup_uses_initial_delay(self):
        tr = LatencyTracker(warmup=8, initial_s=0.05)
        for _ in range(7):
            tr.record(0.002)
        assert tr.hedge_delay() == 0.05  # still warming up
        tr.record(0.002)
        assert tr.hedge_delay() < 0.01  # adaptive now

    def test_p95_tracks_mean_plus_spread(self):
        tr = LatencyTracker(warmup=4)
        for _ in range(20):
            tr.record(0.010)
        assert tr.p95() == pytest.approx(0.010, rel=0.05)
        tr.record(0.100)  # one outlier inflates the spread term
        assert tr.p95() > 0.020

    def test_baseline_locks_and_inflation_ratio(self):
        tr = LatencyTracker(warmup=4)
        for _ in range(8):
            tr.record(0.010)
        baseline = tr.baseline
        assert baseline == pytest.approx(0.010, rel=0.05)
        for _ in range(20):
            tr.record(0.200)
        assert tr.baseline == baseline  # locked, not dragged along
        assert tr.inflation() > 10.0

    def test_reset_window_keeps_baseline(self):
        tr = LatencyTracker(warmup=4)
        for _ in range(8):
            tr.record(0.010)
        for _ in range(20):
            tr.record(0.500)
        tr.reset_window()
        assert tr.inflation() == pytest.approx(1.0)
        assert tr.baseline == pytest.approx(0.010, rel=0.05)


class TestBackoff:
    def test_exponential_growth_capped(self):
        b = Backoff(base_s=0.1, factor=2.0, cap_s=1.0, jitter=0.0, seed=0)
        delays = [b.next() for _ in range(8)]
        assert delays[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
        assert all(d == pytest.approx(1.0) for d in delays[4:])

    def test_jitter_is_deterministic_per_seed(self):
        a = [Backoff(jitter=0.3, seed=42).next() for _ in range(1)][0]
        b = Backoff(jitter=0.3, seed=42).next()
        c = Backoff(jitter=0.3, seed=43).next()
        assert a == b
        assert a != c

    def test_reset_restarts_the_schedule(self):
        b = Backoff(base_s=0.1, factor=2.0, jitter=0.0, seed=0)
        first = b.next()
        b.next(), b.next()
        b.reset()
        assert b.next() == first


# -- unit: circuit breaker ----------------------------------------------------

def _breaker(clock, **overrides) -> CircuitBreaker:
    cfg = dict(failure_threshold=3, backoff_base_s=1.0, backoff_factor=2.0,
               jitter=0.0, probe_timeout_s=0.5)
    cfg.update(overrides)
    return CircuitBreaker(BreakerConfig(**cfg), clock=clock, seed=1)

class TestCircuitBreaker:
    def test_trips_on_consecutive_failures_only(self):
        clock = FakeClock()
        br = _breaker(clock)
        br.record_failure(), br.record_failure()
        br.record_success()  # streak broken
        br.record_failure(), br.record_failure()
        assert br.state == resilience.CLOSED
        br.record_failure()
        assert br.state == resilience.OPEN
        assert not br.allows()
        assert br.n_trips == 1

    def test_probe_due_after_backoff_and_reopen_grows_it(self):
        clock = FakeClock()
        br = _breaker(clock)
        for _ in range(3):
            br.record_failure()
        assert not br.probe_due()
        clock.advance(1.01)  # past the 1 s base backoff
        assert br.probe_due()
        br.begin_probe()
        assert br.state == resilience.HALF_OPEN
        clock.advance(0.51)
        assert br.probe_expired()
        br.probe_failed()
        assert br.state == resilience.OPEN
        assert not br.probe_due()  # next retry is 2 s out now
        clock.advance(1.5)
        assert not br.probe_due()
        clock.advance(0.6)
        assert br.probe_due()

    def test_close_counts_readmit_and_resets(self):
        clock = FakeClock()
        br = _breaker(clock)
        for _ in range(3):
            br.record_failure()
        clock.advance(1.01)
        br.begin_probe()
        br.close()
        assert br.state == resilience.CLOSED
        assert br.allows()
        assert br.n_readmits == 1
        # backoff restarted: a fresh trip waits the base delay again
        for _ in range(3):
            br.record_failure()
        assert br.retry_at == pytest.approx(clock() + 1.0)

    def test_reset_does_not_count_readmit(self):
        clock = FakeClock()
        br = _breaker(clock)
        for _ in range(3):
            br.record_failure()
        br.reset()
        assert br.state == resilience.CLOSED
        assert br.n_readmits == 0

    def test_latency_inflation_trips(self):
        clock = FakeClock()
        br = _breaker(clock, inflation_factor=4.0, inflation_min_samples=8)
        tr = LatencyTracker(warmup=4)
        for _ in range(8):
            tr.record(0.010)
            br.record_success(tr)
        assert br.state == resilience.CLOSED
        for _ in range(20):
            tr.record(0.100)
        br.record_success(tr)
        assert br.state == resilience.OPEN
        assert br.last_trip_reason == "latency"

    def test_disabled_breaker_never_blocks(self):
        br = CircuitBreaker(BreakerConfig(enabled=False), clock=FakeClock())
        for _ in range(10):
            br.record_failure()
        assert br.state == resilience.CLOSED
        assert br.allows()
        assert not br.probe_due()


class TestBrownoutController:
    def test_enters_after_consecutive_high_scores_only(self):
        bo = BrownoutController(enter_score=0.9, exit_score=0.25,
                                enter_after=3, exit_after=2)
        assert not bo.update(1.5)
        assert not bo.update(1.5)
        assert not bo.update(0.1)  # blip resets the streak
        assert not bo.update(1.5)
        assert not bo.update(1.5)
        assert bo.update(1.5)
        assert bo.n_entries == 1

    def test_hysteresis_band_holds_state(self):
        bo = BrownoutController(enter_score=0.9, exit_score=0.25,
                                enter_after=1, exit_after=2)
        bo.update(1.0)
        assert bo.active
        # mid-band scores neither re-enter nor exit
        for _ in range(10):
            bo.update(0.5)
        assert bo.active
        bo.update(0.1)
        assert bo.active  # needs exit_after consecutive lows
        assert not bo.update(0.1)
        assert bo.n_exits == 1

    def test_exit_streak_reset_by_high_score(self):
        bo = BrownoutController(enter_score=0.9, exit_score=0.25,
                                enter_after=1, exit_after=3)
        bo.update(1.0)
        bo.update(0.1), bo.update(0.1)
        bo.update(0.8)  # breaks the recovery streak
        bo.update(0.1), bo.update(0.1)
        assert bo.active
        assert not bo.update(0.1)

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            BrownoutController(enter_score=0.2, exit_score=0.5)

    def test_overload_score_shape(self):
        assert resilience.overload_score(0.0, 1.0, 0.0) == 0.0
        # sheds weigh double
        assert resilience.overload_score(0.0, 1.0, 0.5) == pytest.approx(1.0)
        # wait inflation only counts past 2x the window
        assert resilience.overload_score(0.0, 2.0, 0.0) == 0.0
        assert resilience.overload_score(0.0, 10.0, 0.0) == pytest.approx(1.0)


# -- e2e: hedging and breakers against real gray replicas --------------------

def _warm(router, queries, n=35):
    """Prime every replica's latency tracker past its warmup."""
    for i in range(n):
        router.search_batch(queries[i % len(queries):][:1], 10)


def _arm_delay(handle, delay_s):
    handle.rpc({"op": "arm_faults", "rules": [
        {"point": WORKER_PRE_REPLY_POINT, "action": "delay",
         "every": True, "delay_s": delay_s}]})


class TestHedgedGather:
    def test_gray_replica_is_hedged_around(self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=2,
                           M=8, ef_construction=40, seed=3) as router:
            router.load(base)
            _warm(router, queries)
            _arm_delay(router.handles[0][0], 0.08)
            t0 = time.perf_counter()
            results = [router.search_batch(queries[i:i + 1], 10)[0]
                       for i in range(20)]
            elapsed = time.perf_counter() - t0
            # 20 searches against an 80 ms-delayed primary: sequential
            # failover would cost >= 1.6 s; hedging + the breaker routing
            # around the gray replica keeps it well under that.
            assert elapsed < 1.2
            assert router.n_hedges > 0
            assert router.n_hedge_wins > 0
            assert all(not r.degraded for r in results)
            assert all(len(r.ids) == 10 for r in results)
            assert router.n_respawns == 0
            assert router.live_replicas() == 4  # nothing was killed

    def test_breaker_opens_then_probe_readmits_after_disarm(
            self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(
                dim=DIM, metric="l2", n_shards=2, n_replicas=2,
                M=8, ef_construction=40, seed=3,
                breaker_config={"backoff_base_s": 0.15,
                                "jitter": 0.0}) as router:
            router.load(base)
            _warm(router, queries)
            victim = router.handles[0][0]
            _arm_delay(victim, 0.08)
            for i in range(25):
                router.search_batch(queries[i % 24:][:1], 10)
                if victim.breaker.state == resilience.OPEN:
                    break
            assert victim.breaker.state == resilience.OPEN
            assert victim.alive  # gray, not dead: no respawn needed
            victim.rpc({"op": "disarm_faults"})  # drains stale frames too
            time.sleep(0.4)  # let the retry backoff elapse
            for i in range(20):
                router.search_batch(queries[i % 24:][:1], 10)
                if victim.breaker.state == resilience.CLOSED:
                    break
                time.sleep(0.02)
            assert victim.breaker.state == resilience.CLOSED
            assert victim.breaker.n_readmits >= 1
            assert router.n_respawns == 0
            stats = router.router_stats()
            assert stats["breaker_trips"] >= 1
            assert stats["breaker_readmits"] >= 1

    def test_single_replica_partition_never_hedges(self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=1,
                           M=8, ef_construction=40, seed=3,
                           hedge_ms=1.0) as router:
            router.load(base)
            _arm_delay(router.handles[0][0], 0.02)
            for i in range(6):
                router.search_batch(queries[i:i + 1], 10)
            assert router.n_hedges == 0

    def test_all_replicas_slow_expires_into_degraded_answers(
            self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=1,
                           M=8, ef_construction=40, seed=3,
                           breaker_config={"backoff_base_s": 30.0,
                                           "jitter": 0.0}) as router:
            router.load(base)
            _warm(router, queries, n=10)
            # Partition 0's only replica is gray: with a deadline tighter
            # than its delay every search must expire that partition and
            # still answer from the survivor — degraded, never an error.
            _arm_delay(router.handles[0][0], 0.25)
            shard1_gids = {
                int(g) for g in router.handles[1][0].rpc(
                    {"op": "gid_list"})["gids"].tolist()}
            results = []
            for i in range(6):
                results.append(router.search_batch(queries[i:i + 1], 10,
                                                   deadline_ms=60.0)[0])
                # Let the abandoned reply land so the next search can use
                # (and time out on) the gray replica again instead of
                # skipping it as busy — each round is one more timeout.
                time.sleep(0.28)
            assert all(r.degraded for r in results)
            for r in results:
                assert len(r.ids) > 0  # partial answers from the survivor
                assert set(int(g) for g in r.ids) <= shard1_gids
            assert router.live_replicas() == 2  # nobody was marked dead
            assert router.handles[0][0].breaker.n_trips >= 1  # timeouts
            assert router.router_stats()["breakers_open"] >= 1
            # The abandoned replies are drained, not mistaken for fresh
            # ones: a direct RPC on the gray handle still pairs correctly.
            victim = router.handles[0][0]
            assert victim.owes > 0
            victim.rpc({"op": "disarm_faults"})
            assert victim.owes == 0
            assert victim.rpc({"op": "ping"})["ok"] is True

    def test_hedge_delay_override_and_ewma_default(self, cluster_data):
        base, _ = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=2,
                           M=8, ef_construction=40, seed=3,
                           hedge_ms=7.0) as router:
            handle = router.handles[0][0]
            assert router._hedge_delay(handle) == pytest.approx(0.007)
            router.hedge_ms = None
            assert router._hedge_delay(handle) == pytest.approx(
                handle.latency.hedge_delay())


class TestHedgeBitIdentity:
    @pytest.fixture(scope="class")
    def router_pair(self, cluster_data):
        base, _ = cluster_data
        hedged = ClusterRouter(dim=DIM, metric="l2", n_shards=2,
                               n_replicas=2, M=8, ef_construction=40,
                               seed=9, hedge=True, hedge_ms=0.0)
        plain = ClusterRouter(dim=DIM, metric="l2", n_shards=2,
                              n_replicas=2, M=8, ef_construction=40,
                              seed=9, hedge=False,
                              breaker_config={"enabled": False})
        hedged.load(base)
        plain.load(base)
        yield hedged, plain
        hedged.close()
        plain.close()

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(1, 6), ef=st.sampled_from([10, 20, 40]))
    def test_hedge_on_off_bit_identical_without_faults(self, router_pair,
                                                       seed, n, ef):
        """Replicas are deterministic clones, so even a spurious hedge
        (hedge_ms=0 hedges every partition) changes nothing about the
        answer — hedging is invisible outside of fault conditions."""
        hedged, plain = router_pair
        rng = np.random.default_rng(seed)
        queries = rng.standard_normal((n, DIM)).astype(np.float32)
        a = hedged.search_batch(queries, 10, ef=ef)
        b = plain.search_batch(queries, 10, ef=ef)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.ids, rb.ids)
            np.testing.assert_array_equal(ra.distances, rb.distances)
            assert ra.degraded == rb.degraded


# -- e2e: bounded catch-up and peer resync ------------------------------------

class TestCatchupOverflowResync:
    def test_overflow_forces_peer_resync_at_respawn(self, cluster_data):
        base, queries = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=2,
                           M=8, ef_construction=40, seed=3,
                           max_pending=4) as router:
            router.load(base)
            victim = router.handles[0][0]
            victim.rpc({"op": "arm_faults", "rules": [
                {"point": WORKER_OP_POINT, "action": "kill", "nth": 1}]})
            with pytest.raises((Exception,)):
                victim.rpc({"op": "ping"})
            assert not victim.alive
            rng = np.random.default_rng(0)
            # 8 separate mutations per partition >> max_pending=4
            new_gids = []
            for _ in range(8):
                new_gids += router.add(
                    rng.standard_normal((2, DIM)).astype(np.float32))
            router.delete([new_gids[0], new_gids[1]])
            assert victim.catchup_overflow
            assert victim.pending == []  # dropped, not grown
            assert router.router_stats()["catchup_overflows"] == 1

            report = router.respawn(0, 0)
            assert report["consistent"]
            assert not victim.catchup_overflow
            assert router.n_resyncs == 1
            # The resynced replica converged on its live peer's row set.
            a = victim.rpc({"op": "gid_list"})["gids"]
            b = router.handles[0][1].rpc({"op": "gid_list"})["gids"]
            np.testing.assert_array_equal(a, b)

    def test_bounded_buffer_replays_normally_without_overflow(
            self, cluster_data):
        base, _ = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=2,
                           M=8, ef_construction=40, seed=3,
                           max_pending=64) as router:
            router.load(base)
            victim = router.handles[0][0]
            victim.rpc({"op": "arm_faults", "rules": [
                {"point": WORKER_OP_POINT, "action": "kill", "nth": 1}]})
            with pytest.raises((Exception,)):
                victim.rpc({"op": "ping"})
            rng = np.random.default_rng(1)
            router.add(rng.standard_normal((4, DIM)).astype(np.float32))
            assert 0 < len(victim.pending) <= 64
            assert not victim.catchup_overflow
            router.respawn(0, 0)
            assert router.n_resyncs == 0  # plain replay was enough
            a = victim.rpc({"op": "gid_list"})["gids"]
            b = router.handles[0][1].rpc({"op": "gid_list"})["gids"]
            np.testing.assert_array_equal(a, b)

    def test_export_rows_rejects_unknown_gids(self, cluster_data):
        base, _ = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=1,
                           M=8, ef_construction=40, seed=3) as router:
            router.load(base)
            reply = router.handles[0][0].rpc(
                {"op": "export_rows",
                 "gids": np.array([10**9], dtype=np.int64)})
            assert "err" in reply


# -- e2e: front door admission control ----------------------------------------

class _SlowSearcher:
    """VectorStore wrapper with a fixed service delay (saturates the door)."""

    tuned_config = None

    def __init__(self, store, delay_s: float):
        self.store = store
        self.delay_s = delay_s
        self.thread_names: list[str] = []

    def search_batch(self, *args, **kwargs):
        self.thread_names.append(threading.current_thread().name)
        time.sleep(self.delay_s)
        return self.store.search_batch(*args, **kwargs)


@pytest.fixture(scope="module")
def frontdoor_store(cluster_data):
    base, _ = cluster_data
    store = VectorStore(dim=DIM, metric="l2", M=8, ef_construction=40,
                        seed=1)
    store.add(base)
    store.build()
    yield store
    store.close()


class TestFrontDoorAdmission:
    def test_shed_keeps_depth_bounded(self, frontdoor_store, cluster_data):
        _, queries = cluster_data

        async def scenario():
            door = FrontDoor(_SlowSearcher(frontdoor_store, 0.03),
                             window_ms=1.0, max_batch=8, k=10,
                             max_queue=12, executor_workers=1)
            outcomes = await asyncio.gather(
                *(door.search(queries[i % 24]) for i in range(80)),
                return_exceptions=True)
            await door.drain()
            return door, outcomes

        door, outcomes = asyncio.run(scenario())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert shed and served
        assert len(shed) + len(served) == 80
        assert door.max_depth_seen <= 12
        assert door.stats()["shed"] == len(shed)

    def test_brownout_degrades_then_recovers(self, frontdoor_store,
                                             cluster_data):
        _, queries = cluster_data

        async def scenario():
            door = FrontDoor(
                _SlowSearcher(frontdoor_store, 0.02), window_ms=1.0,
                max_batch=8, k=10, ef=40, max_queue=12,
                executor_workers=1,
                brownout=BrownoutController(enter_score=0.5,
                                            exit_score=0.2,
                                            enter_after=2, exit_after=2))
            overload = await asyncio.gather(
                *(door.search(queries[i % 24]) for i in range(120)),
                return_exceptions=True)
            assert door._brownout.active
            served = [o for o in overload if not isinstance(o, Exception)]
            assert any(r.degraded for r in served)  # brownout is honest
            # light phase: sequential singles drop the score back down
            recovered = []
            for i in range(15):
                recovered.append(await door.search(queries[i % 24]))
            stats = door.stats()
            await door.drain()
            return door, recovered, stats

        door, recovered, stats = asyncio.run(scenario())
        assert not door._brownout.active
        assert stats["brownout"]["entries"] >= 1
        assert stats["brownout"]["exits"] >= 1
        assert not recovered[-1].degraded  # full-effort serving is back

    def test_brownout_ef_resolution_chain(self, frontdoor_store):
        tuned = {"bins": [{"ef": 24}, {"ef": 80}]}

        class Tuned(_SlowSearcher):
            tuned_config = tuned

        door = FrontDoor(Tuned(frontdoor_store, 0.0), k=10, ef=64)
        assert door._brownout_ef(10) == 24  # tuned easy bin wins
        door2 = FrontDoor(_SlowSearcher(frontdoor_store, 0.0), k=10, ef=64)
        assert door2._brownout_ef(10) == 32  # halved default ef
        door3 = FrontDoor(_SlowSearcher(frontdoor_store, 0.0), k=10)
        assert door3._brownout_ef(10) == 10  # floor: plain k

    def test_dedicated_executor_and_terminal_drain(self, frontdoor_store,
                                                   cluster_data):
        _, queries = cluster_data
        searcher = _SlowSearcher(frontdoor_store, 0.0)

        async def scenario():
            door = FrontDoor(searcher, window_ms=0.5, k=10,
                             executor_workers=2)
            await asyncio.gather(*(door.search(queries[i])
                                   for i in range(6)))
            await door.drain()
            return door

        door = asyncio.run(scenario())
        # Blocks ran on the door's own bounded pool, not the loop default.
        assert searcher.thread_names
        assert all(name.startswith("repro-frontdoor")
                   for name in searcher.thread_names)
        assert door._executor._shutdown

        async def after():
            with pytest.raises(RuntimeError, match="drained"):
                await door.search(queries[0])
        asyncio.run(after())


# -- e2e: worker resilience ops ----------------------------------------------

class TestWorkerOps:
    def test_health_gid_list_and_disarm(self, cluster_data):
        base, _ = cluster_data
        with ClusterRouter(dim=DIM, metric="l2", n_shards=2, n_replicas=1,
                           M=8, ef_construction=40, seed=3) as router:
            router.load(base)
            handle = router.handles[0][0]
            health = handle.rpc({"op": "health"})
            assert health["ok"] and health["built"]
            assert health["n_gids"] > 0
            gids = handle.rpc({"op": "gid_list"})["gids"]
            assert gids.dtype == np.int64
            assert np.all(np.diff(gids) > 0)  # sorted, unique
            assert np.all(gids % 2 == 0)  # partition 0 owns even gids
            assert handle.rpc({"op": "disarm_faults"})["ok"]
