"""rng_utils and validation helpers."""

import numpy as np
import pytest

from repro.utils.rng_utils import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_positive,
    check_vector,
)


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(0, 3)
        assert len(streams) == 3
        draws = [g.random(4).tolist() for g in streams]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_rngs_deterministic(self):
        a = [g.random() for g in spawn_rngs(5, 2)]
        b = [g.random() for g in spawn_rngs(5, 2)]
        assert a == b


class TestCheckMatrix:
    def test_accepts_and_casts(self):
        out = check_matrix([[1, 2], [3, 4]], "x")
        assert out.dtype == np.float32
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_matrix(np.zeros(3), "x")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_matrix(np.zeros((0, 3)), "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or Inf"):
            check_matrix([[np.nan, 1.0]], "x")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            check_matrix(np.zeros(3), "myarg")


class TestCheckVector:
    def test_accepts(self):
        out = check_vector([1.0, 2.0], "v")
        assert out.shape == (2,)

    def test_dim_enforced(self):
        with pytest.raises(ValueError, match="dimension 3"):
            check_vector([1.0, 2.0], "v", dim=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            check_vector(np.zeros((2, 2)), "v")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_vector([np.inf], "v")


class TestScalarChecks:
    def test_positive_ok(self):
        check_positive(1, "x")
        check_positive(0, "x", strict=False)

    def test_positive_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x", strict=False)

    def test_fraction_bounds(self):
        check_fraction(0.0, "f")
        check_fraction(1.0, "f")
        with pytest.raises(ValueError):
            check_fraction(1.5, "f")
        with pytest.raises(ValueError):
            check_fraction(-0.1, "f")
