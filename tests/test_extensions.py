"""Section 7 extensions: augmentation, NGFix+, hash cache, adaptive ef."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveSearcher,
    CachedSearcher,
    FixConfig,
    HashTableCache,
    NGFixer,
    augment_queries,
    ngfix_plus_query,
)
from repro.core.ngfix_plus import perturb_within_ball
from repro.evalx import compute_ground_truth, recall_at_k
from repro.graphs import HNSW


class TestAugment:
    def test_counts(self):
        q = np.random.default_rng(0).standard_normal((5, 8)).astype(np.float32)
        out = augment_queries(q, per_query=3, seed=0)
        assert out.shape == (5 + 15, 8)
        out2 = augment_queries(q, per_query=3, include_original=False, seed=0)
        assert out2.shape == (15, 8)

    def test_noise_scale(self):
        """Per-dim variance sigma^2/d -> expected offset norm ~ sigma."""
        q = np.zeros((1, 64), dtype=np.float32)
        out = augment_queries(q, per_query=500, sigma=0.3,
                              include_original=False, seed=0)
        norms = np.linalg.norm(out, axis=1)
        assert abs(norms.mean() - 0.3) < 0.03

    def test_normalize_option(self):
        q = np.random.default_rng(1).standard_normal((3, 8)).astype(np.float32)
        out = augment_queries(q, per_query=2, normalize=True, seed=0)
        assert np.allclose(np.linalg.norm(out[3:], axis=1), 1.0, atol=1e-5)

    def test_deterministic(self):
        q = np.ones((2, 4), dtype=np.float32)
        assert np.array_equal(augment_queries(q, 2, seed=5),
                              augment_queries(q, 2, seed=5))

    def test_validation(self):
        q = np.ones((2, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            augment_queries(q, per_query=0)
        with pytest.raises(ValueError):
            augment_queries(q, per_query=1, sigma=0)

    def test_augmented_history_improves_sparse_history_fixing(self, tiny_ds, tiny_gt):
        """Fig. 20 shape: with few real historical queries, fixing with
        augmented copies beats fixing with the originals alone."""
        k, ef = 10, 16
        sparse = tiny_ds.train_queries[:8]

        base1 = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                     single_layer=True, seed=3)
        f1 = NGFixer(base1, FixConfig(k=k, preprocess="exact"))
        f1.fit(sparse)
        r_plain = _recall_of(f1, tiny_ds.test_queries, tiny_gt, k, ef)

        base2 = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                     single_layer=True, seed=3)
        f2 = NGFixer(base2, FixConfig(k=k, preprocess="exact"))
        f2.fit(augment_queries(sparse, per_query=8, sigma=0.3,
                               normalize=True, seed=0))
        r_aug = _recall_of(f2, tiny_ds.test_queries, tiny_gt, k, ef)
        assert r_aug >= r_plain


def _recall_of(index, queries, gt, k, ef):
    found = np.vstack([index.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt.top(k).ids)


class TestNgfixPlus:
    def test_perturb_within_ball_radius(self):
        q = np.zeros((2, 6), dtype=np.float32)
        out = perturb_within_ball(q, delta=0.5, n_samples=50, seed=0)
        assert out.shape == (100, 6)
        assert (np.linalg.norm(out, axis=1) <= 0.5 + 1e-5).all()

    def test_adds_edges_and_more_than_plain(self, tiny_ds, fresh_hnsw):
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, max_extra_degree=16,
                                              preprocess="exact"))
        q = tiny_ds.train_queries[0]
        added = ngfix_plus_query(fixer, q, delta=0.2, n_samples=10, seed=0)
        assert added >= 0
        assert fixer.adjacency.n_extra_edges() >= added

    def test_validation(self, tiny_ds, fresh_hnsw):
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8))
        with pytest.raises(ValueError):
            ngfix_plus_query(fixer, tiny_ds.train_queries[0], delta=0,
                             n_samples=5)


class TestHashCache:
    def test_put_get_roundtrip(self):
        cache = HashTableCache()
        q = np.ones(4, dtype=np.float32)
        cache.put(q, np.array([1, 2, 3]), np.array([0.1, 0.2, 0.3]))
        hit = cache.get(q, k=3)
        assert hit.ids.tolist() == [1, 2, 3]
        assert cache.hits == 1

    def test_miss_on_unseen(self):
        cache = HashTableCache()
        assert cache.get(np.ones(4, dtype=np.float32), k=3) is None
        assert cache.misses == 1

    def test_miss_when_k_exceeds_stored(self):
        cache = HashTableCache()
        q = np.ones(4, dtype=np.float32)
        cache.put(q, np.array([1]), np.array([0.1]))
        assert cache.get(q, k=5) is None

    def test_bit_exact_matching_only(self):
        cache = HashTableCache()
        q = np.ones(4, dtype=np.float32)
        cache.put(q, np.array([1]), np.array([0.1]))
        assert cache.get(q + 1e-7, k=1) is None

    def test_alternative_algorithm(self):
        cache = HashTableCache(algorithm="sha1")
        q = np.zeros(2, dtype=np.float32)
        cache.put(q, np.array([0]), np.array([0.0]))
        assert cache.get(q, k=1) is not None
        with pytest.raises(ValueError):
            HashTableCache(algorithm="not-a-hash")

    def test_memory_accounting(self):
        cache = HashTableCache()
        cache.put(np.zeros(2, dtype=np.float32), np.arange(5), np.arange(5.0))
        assert cache.memory_bytes() == 16 + 5 * 8 + 5 * 8

    def test_mismatched_put_rejected(self):
        cache = HashTableCache()
        with pytest.raises(ValueError):
            cache.put(np.zeros(2, dtype=np.float32), np.arange(3), np.arange(2.0))

    def test_put_copies_caller_arrays(self):
        """Regression: put() must copy — np.asarray aliases matching dtypes,
        so a caller mutating its arrays in place corrupted cached answers."""
        cache = HashTableCache()
        q = np.ones(4, dtype=np.float32)
        ids = np.array([1, 2, 3], dtype=np.int64)
        dists = np.array([0.1, 0.2, 0.3], dtype=np.float64)
        cache.put(q, ids, dists)
        ids[:] = -1
        dists[:] = np.inf
        hit = cache.get(q, k=3)
        assert hit.ids.tolist() == [1, 2, 3]
        assert hit.distances.tolist() == pytest.approx([0.1, 0.2, 0.3])

    def test_get_returns_copies(self):
        cache = HashTableCache()
        q = np.ones(4, dtype=np.float32)
        cache.put(q, np.array([1, 2]), np.array([0.1, 0.2]))
        cache.get(q, k=2).ids[:] = 99
        assert cache.get(q, k=2).ids.tolist() == [1, 2]

    def test_hit_ratio(self):
        cache = HashTableCache()
        assert cache.hit_ratio() == 0.0
        q = np.ones(4, dtype=np.float32)
        cache.put(q, np.array([1]), np.array([0.1]))
        cache.get(q, k=1)
        cache.get(np.zeros(4, dtype=np.float32), k=1)
        assert cache.hit_ratio() == 0.5

    def test_drop_if_contains_evicts_only_stale_entries(self):
        cache = HashTableCache()
        q1, q2 = np.ones(4, dtype=np.float32), np.zeros(4, dtype=np.float32)
        cache.put(q1, np.array([1, 2, 3]), np.array([0.1, 0.2, 0.3]))
        cache.put(q2, np.array([4, 5, 6]), np.array([0.1, 0.2, 0.3]))
        assert cache.drop_if_contains([2]) == 1
        assert cache.get(q1, k=3) is None
        assert cache.get(q2, k=3) is not None
        assert cache.drop_if_contains([]) == 0


class TestCachedSearcher:
    def test_hit_skips_index_and_is_exact(self, tiny_ds, shared_hnsw, tiny_train_gt):
        searcher = CachedSearcher(shared_hnsw)
        searcher.warm(tiny_ds.train_queries, tiny_train_gt.ids,
                      tiny_train_gt.distances)
        shared_hnsw.dc.reset_ndc()
        r = searcher.search(tiny_ds.train_queries[0], k=10)
        assert shared_hnsw.dc.ndc == 0  # no distance work on a hit
        assert r.ids.tolist() == tiny_train_gt.ids[0][:10].tolist()

    def test_miss_falls_through(self, tiny_ds, shared_hnsw):
        searcher = CachedSearcher(shared_hnsw)
        r = searcher.search(tiny_ds.test_queries[0], k=5, ef=20)
        assert len(r.ids) == 5
        assert searcher.cache.misses == 1

    def test_invalidate_drops_cached_answers(self, tiny_ds, shared_hnsw):
        searcher = CachedSearcher(shared_hnsw)
        query = tiny_ds.test_queries[0]
        r = searcher.search(query, k=5, ef=20)
        searcher.cache.put(query, r.ids, r.distances)
        assert searcher.invalidate([int(r.ids[0])]) == 1
        assert len(searcher.cache) == 0

    def test_stale_hit_never_returns_deleted_id(self, tiny_ds, fresh_hnsw):
        """Regression: a cached-then-deleted id must not reappear even when
        the deletion bypassed invalidate() (tombstone guard at hit time)."""
        searcher = CachedSearcher(fresh_hnsw)
        query = tiny_ds.test_queries[0]
        r = searcher.search(query, k=5, ef=20)
        searcher.cache.put(query, r.ids, r.distances)
        victim = int(r.ids[0])
        fresh_hnsw.adjacency.tombstones.add(victim)
        again = searcher.search(query, k=5, ef=20)
        assert victim not in again.ids.tolist()
        assert len(searcher.cache) == 0  # stale entry was purged


class TestCachedSearcherBatch:
    """Regression: evaluation harnesses call search_batch/search_many, which
    CachedSearcher used to lack — wrapping an index silently bypassed the
    cache on every batched run."""

    def test_batch_matches_sequential_per_query(self, tiny_ds, shared_hnsw,
                                                tiny_train_gt):
        searcher = CachedSearcher(shared_hnsw)
        searcher.warm(tiny_ds.train_queries, tiny_train_gt.ids,
                      tiny_train_gt.distances)
        # Interleave warmed (hit) and unseen (miss) queries.
        mixed = np.vstack([tiny_ds.train_queries[:3], tiny_ds.test_queries[:3],
                           tiny_ds.train_queries[3:5]])
        batch = searcher.search_batch(mixed, k=10, ef=30, batch_size=4)
        for q, res in zip(mixed, batch):
            direct = searcher.search(q, k=10, ef=30)
            assert res.ids.tolist() == direct.ids.tolist()

    def test_engine_runs_only_on_misses(self, tiny_ds, shared_hnsw,
                                        tiny_train_gt):
        searcher = CachedSearcher(shared_hnsw)
        searcher.warm(tiny_ds.train_queries, tiny_train_gt.ids,
                      tiny_train_gt.distances)
        shared_hnsw.dc.reset_ndc()
        searcher.search_batch(tiny_ds.train_queries[:8], k=10, ef=30)
        assert shared_hnsw.dc.ndc == 0  # every row was a hit
        assert searcher.cache.hits == 8

    def test_search_many_shapes_and_padding(self, tiny_ds, shared_hnsw):
        searcher = CachedSearcher(shared_hnsw)
        ids, dists = searcher.search_many(tiny_ds.test_queries[:5], k=10,
                                          ef=30, batch_size=4)
        assert ids.shape == (5, 10) and dists.shape == (5, 10)
        assert (ids >= 0).all()  # tiny graph still yields full top-10

    def test_sequential_fallback_without_batch_engine(self, tiny_ds,
                                                      shared_hnsw):
        class NoBatch:
            """Index protocol minus search_batch."""
            def __init__(self, inner):
                self._inner = inner
                self.dc = inner.dc
            def search(self, query, k, ef=None):
                return self._inner.search(query, k=k, ef=ef)

        searcher = CachedSearcher(NoBatch(shared_hnsw))
        batch = searcher.search_batch(tiny_ds.test_queries[:4], k=5, ef=20)
        for q, res in zip(tiny_ds.test_queries[:4], batch):
            assert res.ids.tolist() == \
                shared_hnsw.search(q, k=5, ef=20).ids.tolist()

    def test_evaluate_index_accepts_cached_searcher(self, tiny_ds, shared_hnsw,
                                                    tiny_gt):
        from repro.evalx import evaluate_index
        searcher = CachedSearcher(shared_hnsw)
        point = evaluate_index(searcher, tiny_ds.test_queries, tiny_gt,
                               k=10, ef=30, batch_size=8)
        assert point.recall > 0.5
        assert searcher.cache.misses == len(tiny_ds.test_queries)


class TestAdaptiveSearcher:
    @pytest.fixture
    def calibrated(self, tiny_ds, shared_hnsw, tiny_gt):
        searcher = AdaptiveSearcher(shared_hnsw, tiny_ds.train_queries, n_bins=2)
        searcher.calibrate(tiny_ds.test_queries, tiny_gt, k=10,
                           target_recall=0.9, ef_grid=[10, 20, 40, 80])
        return searcher

    def test_requires_calibration(self, tiny_ds, shared_hnsw):
        searcher = AdaptiveSearcher(shared_hnsw, tiny_ds.train_queries)
        with pytest.raises(RuntimeError):
            searcher.ef_for(tiny_ds.test_queries[0])

    def test_calibration_table(self, calibrated):
        assert calibrated.fallback_ef in (10, 20, 40, 80)
        assert len(calibrated._bin_ef) == 2

    def test_bin_efs_come_from_grid(self, calibrated):
        # (On an unfixed index similarity does not order hardness, so no
        # monotonicity is asserted here — Fig. 9's effect needs a fixed graph.)
        assert all(ef in (10, 20, 40, 80) for ef in calibrated._bin_ef)

    def test_search_meets_target_on_average(self, calibrated, tiny_ds, tiny_gt):
        found = np.vstack([calibrated.search(q, k=10).ids[:10]
                           for q in tiny_ds.test_queries])
        assert recall_at_k(found, tiny_gt.top(10).ids) >= 0.85

    def test_history_distance_shape(self, calibrated, tiny_ds):
        d = calibrated.history_distance(tiny_ds.test_queries[:5])
        assert d.shape == (5,)
        assert (d >= 0).all()

    def test_empty_bins_inherit_nearest_fitted_ef(self, tiny_ds,
                                                  shared_hnsw, tiny_gt):
        # Regression: identical calibration queries collapse every
        # similarity quantile onto one value, leaving all but one bin
        # empty.  Empty bins must inherit the nearest fitted bin's ef —
        # not silently pin the grid maximum.
        searcher = AdaptiveSearcher(shared_hnsw, tiny_ds.train_queries,
                                    n_bins=4)
        queries = np.repeat(tiny_ds.test_queries[:1], 12, axis=0)
        gt = compute_ground_truth(tiny_ds.base, queries, 10, tiny_ds.metric)
        table = searcher.calibrate(queries, gt, k=10, target_recall=0.9,
                                   ef_grid=[10, 20, 40, 320])
        fitted = [b for b, row in table.items()
                  if row["n_queries"] > 0]
        assert len(fitted) == 1
        src = fitted[0]
        for b, row in table.items():
            assert row["ef"] == table[src]["ef"]
            if b != src:
                assert row["n_queries"] == 0
                assert row["inherited_from"] == src
        # The inherited ef is the fitted one, not the grid max (unless the
        # fitted bin itself needed it).
        if table[src]["ef"] != 320:
            assert all(ef != 320 for ef in searcher._bin_ef)
