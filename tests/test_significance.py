"""Bootstrap confidence intervals and paired comparisons."""

import numpy as np
import pytest

from repro.evalx import bootstrap_ci, paired_bootstrap_diff


class TestBootstrapCi:
    def test_mean_inside_ci(self):
        values = np.random.default_rng(0).normal(0.8, 0.1, 200)
        mean, lo, hi = bootstrap_ci(values, seed=0)
        assert lo <= mean <= hi
        assert mean == pytest.approx(values.mean())

    def test_ci_shrinks_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, 20), seed=0)
        large = bootstrap_ci(rng.normal(0, 1, 2000), seed=0)
        assert (large[2] - large[1]) < (small[2] - small[1])

    def test_constant_values_zero_width(self):
        mean, lo, hi = bootstrap_ci(np.full(50, 0.5), seed=0)
        assert mean == lo == hi == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.empty(0))
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(5), confidence=1.5)


class TestPairedBootstrap:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(2)
        base = rng.normal(0.7, 0.1, 150)
        out = paired_bootstrap_diff(base + 0.1, base, seed=0)
        assert out["significant"]
        assert out["diff"] == pytest.approx(0.1, abs=1e-9)
        assert out["ci_low"] > 0

    def test_identical_not_significant(self):
        values = np.random.default_rng(3).normal(0.5, 0.2, 100)
        out = paired_bootstrap_diff(values, values, seed=0)
        assert not out["significant"]
        assert out["diff"] == 0.0

    def test_pure_noise_rarely_significant(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0.5, 0.3, 100)
        b = rng.normal(0.5, 0.3, 100)
        out = paired_bootstrap_diff(a, b, confidence=0.99, seed=0)
        assert out["ci_low"] < out["diff"] < out["ci_high"]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_bootstrap_diff(np.ones(4), np.ones(5))

    def test_on_real_fixer_comparison(self, tiny_ds, tiny_gt):
        """The headline effect is statistically significant, not noise."""
        from repro import FixConfig, HNSW, NGFixer
        from repro.evalx.metrics import recall_per_query

        base = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                    single_layer=True, seed=3)
        before = np.vstack([base.search(q, k=10, ef=20).ids[:10]
                            for q in tiny_ds.test_queries])
        r_before = recall_per_query(before, tiny_gt.top(10).ids)
        fixer = NGFixer(base, FixConfig(k=10, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries)
        after = np.vstack([fixer.search(q, k=10, ef=20).ids[:10]
                           for q in tiny_ds.test_queries])
        r_after = recall_per_query(after, tiny_gt.top(10).ids)
        out = paired_bootstrap_diff(r_after, r_before, seed=0)
        assert out["diff"] > 0
        assert out["ci_low"] <= out["diff"] <= out["ci_high"]
