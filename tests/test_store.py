"""VectorStore facade: lifecycle, payloads, persistence."""

import numpy as np
import pytest

from repro.store import VectorStore


@pytest.fixture
def store(tiny_ds):
    s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=8,
                    ef_construction=40)
    s.add(tiny_ds.base, payloads=[{"i": i} for i in range(tiny_ds.n)])
    s.build()
    return s


class TestLifecycle:
    def test_add_before_build_assigns_sequential_ids(self, tiny_ds):
        s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric)
        ids1 = s.add(tiny_ds.base[:10])
        ids2 = s.add(tiny_ds.base[10:20])
        assert ids1 == list(range(10))
        assert ids2 == list(range(10, 20))
        assert len(s) == 20
        assert not s.is_built

    def test_build_requires_vectors(self):
        with pytest.raises(RuntimeError, match="add"):
            VectorStore(dim=4).build()

    def test_build_idempotent(self, store):
        assert store.build() is store

    def test_dim_enforced(self, tiny_ds):
        s = VectorStore(dim=8)
        with pytest.raises(ValueError, match="dimension"):
            s.add(tiny_ds.base)

    def test_search_returns_payloads(self, store, tiny_ds):
        hits = store.search(tiny_ds.base[5], k=3)
        assert hits[0][0] == 5
        assert hits[0][2] == {"i": 5}
        assert hits[0][1] == pytest.approx(0.0, abs=1e-5)

    def test_search_autobuilds(self, tiny_ds):
        s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=6,
                        ef_construction=30)
        s.add(tiny_ds.base[:100])
        hits = s.search(tiny_ds.base[0], k=1)
        assert hits[0][0] == 0

    def test_payload_length_mismatch(self, tiny_ds):
        s = VectorStore(dim=tiny_ds.dim)
        with pytest.raises(ValueError, match="payloads"):
            s.add(tiny_ds.base[:5], payloads=[{}] * 4)


class TestFixing:
    def test_fit_history_improves_recall(self, store, tiny_ds, tiny_gt):
        from repro.evalx import recall_at_k

        def measure():
            found = np.vstack([
                [h[0] for h in store.search(q, k=10, ef=16)]
                for q in tiny_ds.test_queries])
            return recall_at_k(found, tiny_gt.top(10).ids)

        before = measure()
        stats = store.fit_history(tiny_ds.train_queries)
        assert stats["n_extra_edges"] > 0
        assert measure() >= before

    def test_observe_single_query(self, store, tiny_ds):
        store.observe(tiny_ds.train_queries[0])
        assert store.stats()["total_edges_added"] >= 0


class TestInsertDelete:
    def test_incremental_add_after_build(self, tiny_ds):
        s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=6,
                        ef_construction=30)
        s.add(tiny_ds.base[:200])
        s.build()
        new_ids = s.add(tiny_ds.base[200:210], payloads=[{"new": True}] * 10)
        assert new_ids == list(range(200, 210))
        hits = s.search(tiny_ds.base[205], k=1, ef=30)
        assert hits[0][0] == 205
        assert hits[0][2] == {"new": True}

    def test_delete_removes_from_results_and_payloads(self, store, tiny_ds):
        victim = store.search(tiny_ds.test_queries[0], k=1, ef=20)[0][0]
        store.delete([victim])
        hits = store.search(tiny_ds.test_queries[0], k=5, ef=20)
        assert victim not in [h[0] for h in hits]
        assert store.get_payload(victim) is None

    def test_delete_before_build_rejected(self, tiny_ds):
        s = VectorStore(dim=tiny_ds.dim)
        s.add(tiny_ds.base[:5])
        with pytest.raises(RuntimeError):
            s.delete([0])


class TestPersistence:
    def test_save_load_roundtrip(self, store, tiny_ds, tmp_path):
        store.fit_history(tiny_ds.train_queries[:20])
        path = store.save(tmp_path / "store")
        loaded = VectorStore.load(path)
        a = store.search(tiny_ds.test_queries[0], k=5, ef=30)
        b = loaded.search(tiny_ds.test_queries[0], k=5, ef=30)
        assert [h[0] for h in a] == [h[0] for h in b]
        assert b[0][2] == a[0][2]  # payloads survive

    def test_loaded_store_supports_further_fixing(self, store, tiny_ds,
                                                  tmp_path):
        path = store.save(tmp_path / "s2")
        loaded = VectorStore.load(path)
        stats = loaded.fit_history(tiny_ds.train_queries[:10])
        assert stats["queries_fixed"] == 10

    def test_save_before_build_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            VectorStore(dim=4).save(tmp_path / "x")

    def test_stats(self, store):
        s = store.stats()
        assert s["built"]
        assert s["payloads"] == 400
