"""Edge-selection rules: RNG/MRNG, alpha, tau, backfill, random."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distances import DistanceComputer, Metric
from repro.graphs.pruning import (
    alpha_prune,
    mrng_prune,
    random_prune,
    rng_prune,
    rng_prune_backfill,
    tau_prune,
)


def _dc(points):
    return DistanceComputer(np.asarray(points, dtype=np.float32), Metric.L2)


class TestRngPrune:
    def test_occluded_candidate_dropped(self):
        # 1 sits between 0 and 2 on a line: edge 0->2 is occluded by 0->1.
        dc = _dc([[0.0], [1.0], [2.0]])
        kept = rng_prune(dc, 0, [1, 2], max_degree=5)
        assert kept == [1]

    def test_spread_candidates_kept(self):
        # Two candidates in opposite directions both survive.
        dc = _dc([[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0]])
        kept = rng_prune(dc, 0, [1, 2], max_degree=5)
        assert sorted(kept) == [1, 2]

    def test_respects_max_degree(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((30, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        kept = rng_prune(dc, 0, list(range(1, 30)), max_degree=4)
        assert len(kept) <= 4

    def test_nearest_always_kept(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((20, 3)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        d = dc.many_between(np.arange(1, 20), 0)
        nearest = int(np.arange(1, 20)[np.argmin(d)])
        kept = rng_prune(dc, 0, list(range(1, 20)), max_degree=8)
        assert nearest in kept

    def test_self_and_duplicates_ignored(self):
        dc = _dc([[0.0], [1.0], [2.0]])
        kept = rng_prune(dc, 0, [0, 1, 1], max_degree=5)
        assert kept == [1]

    def test_empty_candidates(self):
        dc = _dc([[0.0], [1.0]])
        assert rng_prune(dc, 0, [], max_degree=3) == []

    def test_mrng_is_alias(self):
        assert mrng_prune is rng_prune

    def test_angle_property(self):
        """Kept RNG edges from a common point subtend > 60 degrees."""
        rng = np.random.default_rng(2)
        data = rng.standard_normal((40, 5)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        kept = rng_prune(dc, 0, list(range(1, 40)), max_degree=15)
        u = data[0]
        for i, a in enumerate(kept):
            for b in kept[i + 1:]:
                va, vb = data[a] - u, data[b] - u
                cos = va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb))
                assert cos < 0.5 + 1e-5  # angle > 60 degrees


class TestAlphaPrune:
    def test_alpha1_equals_rng(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((25, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        cands = list(range(1, 25))
        assert alpha_prune(dc, 0, cands, 10, alpha=1.0) == rng_prune(dc, 0, cands, 10)

    def test_larger_alpha_keeps_more(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((40, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        cands = list(range(1, 40))
        base = len(alpha_prune(dc, 0, cands, 40, alpha=1.0))
        relaxed = len(alpha_prune(dc, 0, cands, 40, alpha=2.0))
        assert relaxed >= base

    def test_alpha_below_one_rejected(self):
        dc = _dc([[0.0], [1.0]])
        with pytest.raises(ValueError):
            alpha_prune(dc, 0, [1], 3, alpha=0.5)


class TestTauPrune:
    def test_tau0_equals_rng(self):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((25, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        cands = list(range(1, 25))
        assert tau_prune(dc, 0, cands, 12, tau=0.0) == rng_prune(dc, 0, cands, 12)

    def test_larger_tau_keeps_more(self):
        rng = np.random.default_rng(6)
        data = rng.standard_normal((40, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        cands = list(range(1, 40))
        strict = len(tau_prune(dc, 0, cands, 40, tau=0.0))
        relaxed = len(tau_prune(dc, 0, cands, 40, tau=1.0))
        assert relaxed >= strict

    def test_negative_tau_rejected(self):
        dc = _dc([[0.0], [1.0]])
        with pytest.raises(ValueError):
            tau_prune(dc, 0, [1], 3, tau=-0.1)


class TestBackfill:
    def test_fills_to_budget(self):
        # Collinear points: RNG keeps only the nearest; backfill tops up.
        dc = _dc([[0.0], [1.0], [2.0], [3.0], [4.0]])
        plain = rng_prune(dc, 0, [1, 2, 3, 4], max_degree=3)
        filled = rng_prune_backfill(dc, 0, [1, 2, 3, 4], max_degree=3)
        assert len(plain) == 1
        assert len(filled) == 3

    def test_backfill_prefers_nearest(self):
        dc = _dc([[0.0], [1.0], [2.0], [3.0]])
        filled = rng_prune_backfill(dc, 0, [1, 2, 3], max_degree=2)
        assert filled == [1, 2]

    def test_no_fill_needed(self):
        dc = _dc([[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0]])
        assert sorted(rng_prune_backfill(dc, 0, [1, 2], 2)) == [1, 2]


class TestRandomPrune:
    def test_within_budget_identity(self):
        assert random_prune([1, 2, 3], 5, seed=0) == [1, 2, 3]

    def test_respects_budget(self):
        out = random_prune(list(range(100)), 7, seed=0)
        assert len(out) == 7
        assert len(set(out)) == 7

    def test_deterministic_with_seed(self):
        assert random_prune(list(range(50)), 5, seed=1) == \
            random_prune(list(range(50)), 5, seed=1)

    def test_dedups(self):
        assert random_prune([1, 1, 2], 5, seed=0) == [1, 2]


@settings(max_examples=25, deadline=None)
@given(st.integers(5, 30), st.integers(1, 10), st.integers(0, 100))
def test_rng_prune_invariants(n, max_degree, seed):
    """Kept list: unique, within budget, subset of candidates, u excluded."""
    data = np.random.default_rng(seed).standard_normal((n, 4)).astype(np.float32)
    dc = DistanceComputer(data, Metric.L2)
    cands = list(range(n))
    kept = rng_prune(dc, 0, cands, max_degree)
    assert len(kept) <= max_degree
    assert len(set(kept)) == len(kept)
    assert 0 not in kept
    assert set(kept) <= set(cands)
