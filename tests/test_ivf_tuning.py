"""IVF-Flat baseline and the FixConfig auto-tuner."""

import numpy as np
import pytest

from repro import IVFFlat
from repro.evalx import recall_at_k, tune_fix_config


class TestIVFFlat:
    @pytest.fixture(scope="class")
    def ivf(self, tiny_ds):
        return IVFFlat(tiny_ds.base, tiny_ds.metric, n_lists=16, seed=0)

    def test_lists_partition_corpus(self, ivf, tiny_ds):
        all_ids = np.concatenate(ivf.lists)
        assert sorted(all_ids.tolist()) == list(range(tiny_ds.n))

    def test_full_probe_is_exact(self, ivf, tiny_ds, tiny_gt):
        found = np.vstack([
            ivf.search(q, k=10, n_probe=ivf.n_lists).ids[:10]
            for q in tiny_ds.test_queries])
        assert recall_at_k(found, tiny_gt.top(10).ids) == 1.0

    def test_recall_grows_with_probes(self, ivf, tiny_ds, tiny_gt):
        recalls = []
        for n_probe in (1, 4, 16):
            rows = []
            for q in tiny_ds.test_queries:
                ids = ivf.search(q, k=10, n_probe=n_probe).ids[:10]
                padded = np.full(10, -1, dtype=np.int64)
                padded[: len(ids)] = ids  # small cells can return < k
                rows.append(padded)
            recalls.append(recall_at_k(np.vstack(rows), tiny_gt.top(10).ids))
        assert recalls[0] <= recalls[1] <= recalls[2]

    def test_ndc_counted_including_routing(self, ivf, tiny_ds):
        ivf.dc.reset_ndc()
        ivf.search(tiny_ds.test_queries[0], k=5, n_probe=2)
        ndc = ivf.dc.reset_ndc()
        assert ndc >= ivf.n_lists  # routing cost at minimum

    def test_ef_maps_to_probes(self, ivf, tiny_ds):
        r_small = ivf.search(tiny_ds.test_queries[0], k=10, ef=10)
        r_large = ivf.search(tiny_ds.test_queries[0], k=10, ef=160)
        assert len(r_small.ids) == len(r_large.ids) == 10

    def test_harness_compatible(self, ivf, tiny_ds, tiny_gt):
        from repro.evalx import evaluate_index
        point = evaluate_index(ivf, tiny_ds.test_queries, tiny_gt.top(10),
                               k=10, ef=80)
        assert 0 < point.recall <= 1

    def test_validation(self, tiny_ds):
        with pytest.raises(ValueError):
            IVFFlat(tiny_ds.base, tiny_ds.metric, n_lists=0)


class TestTuner:
    def test_returns_best_and_all(self, tiny_ds, shared_hnsw, tiny_gt):
        best, results = tune_fix_config(
            shared_hnsw, tiny_ds.train_queries[:40], tiny_ds.test_queries,
            tiny_gt, k=10, target_recall=0.9,
            degree_grid=(4, 16), ef_values=[10, 20, 40, 80])
        assert best["max_extra_degree"] in (4, 16)
        assert len(results) == 2
        assert all(r.extra_edges >= 0 for r in results)
        # the original index was never mutated (tuning clones)
        assert shared_hnsw.adjacency.n_extra_edges() == 0

    def test_size_budget_respected(self, tiny_ds, shared_hnsw, tiny_gt):
        best, results = tune_fix_config(
            shared_hnsw, tiny_ds.train_queries[:40], tiny_ds.test_queries,
            tiny_gt, k=10, target_recall=0.9, max_extra_bytes=10_000,
            degree_grid=(2, 24), ef_values=[10, 20, 40, 80])
        feasible = [r for r in results if r.feasible]
        if feasible:
            chosen = [r for r in results if r.params == best][0]
            assert chosen.feasible

    def test_unreachable_target_falls_back(self, tiny_ds, shared_hnsw, tiny_gt):
        best, results = tune_fix_config(
            shared_hnsw, tiny_ds.train_queries[:10], tiny_ds.test_queries,
            tiny_gt, k=10, target_recall=1.01,  # impossible
            degree_grid=(4,), ef_values=[10])
        assert best["max_extra_degree"] == 4
