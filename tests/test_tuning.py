"""Trace-driven autotuner + hardness planner: config round-trips, fitting,
routing budgets, and planner-off bit-identity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.durability import recover
from repro.store import VectorStore
from repro.tuning import (
    BinSetting,
    HardnessPlanner,
    TunedConfig,
    coerce_tuned_config,
    fit_landmarks,
    fit_tuned_config,
    suggest_ef_grid,
)

K = 10


def make_config(tiny_ds, *, easy_ef=10, hard_ef=80, n_landmarks=4):
    """A hand-built 3-bin config over the tiny dataset's train queries."""
    landmarks = fit_landmarks(tiny_ds.train_queries, n_landmarks,
                              tiny_ds.metric, seed=0)
    from repro.distances import Metric
    return TunedConfig(
        k=K, target_recall=0.9, metric=Metric.parse(tiny_ds.metric).value,
        edges=[0.1, 0.3],
        bins=[BinSetting(ef=easy_ef), BinSetting(ef=30),
              BinSetting(ef=hard_ef)],
        landmarks=landmarks, default_ef=30)


@pytest.fixture(scope="module")
def tuning_store(tiny_ds):
    """A built serving store over the tiny dataset (module-shared;
    planner attach/detach is the only mutation tests may perform)."""
    s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=8,
                    ef_construction=40, seed=3)
    s.add(tiny_ds.base)
    s.build()
    s.fit_history(tiny_ds.train_queries)
    yield s
    s.close()


@pytest.fixture(scope="module")
def fitted_config(tiny_ds, tuning_store, tiny_train_gt):
    return fit_tuned_config(
        tuning_store.searcher, tiny_ds.train_queries, K,
        gt_ids=tiny_train_gt.top(K).ids, n_landmarks=4, seed=0)


class TestTunedConfig:
    def test_round_trip_dict(self, tiny_ds, fitted_config):
        again = TunedConfig.from_dict(fitted_config.to_dict())
        assert again.k == fitted_config.k
        assert again.default_ef == fitted_config.default_ef
        assert again.bins == fitted_config.bins
        np.testing.assert_allclose(again.edges, fitted_config.edges)
        np.testing.assert_allclose(
            again.landmark_matrix(), fitted_config.landmark_matrix(),
            atol=1e-6)

    def test_round_trip_file(self, tmp_path, fitted_config):
        path = tmp_path / "tuned.json"
        fitted_config.save(path)
        again = TunedConfig.load(path)
        assert again.bins == fitted_config.bins
        np.testing.assert_allclose(again.edges, fitted_config.edges)

    def test_coerce_forms(self, tmp_path, fitted_config):
        assert coerce_tuned_config(None) is None
        assert coerce_tuned_config(fitted_config) is fitted_config
        assert coerce_tuned_config(
            fitted_config.to_dict()).bins == fitted_config.bins
        path = tmp_path / "tuned.json"
        fitted_config.save(path)
        assert coerce_tuned_config(str(path)).bins == fitted_config.bins

    def test_setting_clamps_bin(self, tiny_ds):
        config = make_config(tiny_ds)
        assert config.setting(-3) == config.bins[0]
        assert config.setting(99) == config.bins[-1]

    def test_bad_route_rejected(self):
        with pytest.raises(ValueError, match="route"):
            BinSetting(ef=10, route="warp")


class TestFitting:
    def test_shape_and_grid(self, fitted_config):
        assert fitted_config.n_bins == 3
        assert len(fitted_config.edges) == 2
        assert list(fitted_config.edges) == sorted(fitted_config.edges)
        grid = fitted_config.meta["ef_grid"]
        assert fitted_config.default_ef in grid
        for setting in fitted_config.bins:
            if setting.route != "exact":
                assert setting.ef in grid

    def test_no_bin_above_default_cost_for_free(self, fitted_config):
        # The per-bin solver never *raises* ef above the single-ef
        # baseline without a recall reason; the easiest bin in particular
        # must not exceed the global default.
        assert fitted_config.bins[0].ef <= fitted_config.default_ef

    def test_crossfit_bins_are_populated(self, fitted_config):
        # Landmarks are fitted on the calibration queries themselves;
        # without cross-fitting all hardnesses collapse to ~0 and every
        # bin beyond the first is empty.  The bin table must show
        # calibration members in more than one bin.
        table = fitted_config.meta["bin_table"]
        occupied = [b for b, row in table.items() if row["n_queries"] > 0]
        assert len(occupied) >= 2

    def test_suggest_ef_grid_monotone(self):
        grid = suggest_ef_grid(K)
        assert grid == sorted(set(grid))
        assert grid[0] >= K
        anchored = suggest_ef_grid(K, {"ef_mean": 60})
        assert anchored == sorted(set(anchored))
        assert any(ef >= 60 for ef in anchored)


class TestStoreRoundTrip:
    def test_constructor_attaches_planner(self, tiny_ds, fitted_config):
        s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=8,
                        ef_construction=40, seed=3,
                        tuned_config=fitted_config)
        s.add(tiny_ds.base)
        s.build()
        try:
            assert s.searcher.planner is not None
            assert s.stats()["tuned"]["n_bins"] == fitted_config.n_bins
            hits = s.search(tiny_ds.test_queries[0], k=5)
            assert len(hits) == 5
        finally:
            s.close()

    def test_apply_and_drop_at_runtime(self, tuning_store, fitted_config):
        tuning_store.apply_tuned_config(fitted_config)
        try:
            assert tuning_store.searcher.planner is not None
            results = tuning_store.search_batch(
                np.atleast_2d(tuning_store._fixer.dc.data[:4]), K, None)
            assert len(results) == 4
        finally:
            tuning_store.apply_tuned_config(None)
        assert tuning_store.searcher.planner is None
        assert "tuned" not in tuning_store.stats()

    def test_recovery_restores_tuned_config(self, tiny_ds, fitted_config,
                                            tmp_path):
        s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=8,
                        ef_construction=40, seed=3, wal_dir=tmp_path,
                        tuned_config=fitted_config)
        s.add(tiny_ds.base)
        s.build()
        s.close()

        recovered, report = recover(tmp_path)
        try:
            assert recovered.tuned_config is not None
            assert (recovered.tuned_config.default_ef
                    == fitted_config.default_ef)
            assert recovered.tuned_config.bins == fitted_config.bins
            assert recovered.searcher.planner is not None
            results = recovered.search_batch(tiny_ds.test_queries[:4], K,
                                             None)
            assert len(results) == 4
        finally:
            recovered.close()

    def test_apply_on_durable_store_persists(self, tiny_ds, fitted_config,
                                             tmp_path):
        s = VectorStore(dim=tiny_ds.dim, metric=tiny_ds.metric, M=8,
                        ef_construction=40, seed=3, wal_dir=tmp_path)
        s.add(tiny_ds.base)
        s.build()
        s.apply_tuned_config(fitted_config)
        s.close()

        recovered, _ = recover(tmp_path)
        try:
            assert recovered.tuned_config is not None
            assert recovered.tuned_config.bins == fitted_config.bins
        finally:
            recovered.close()

    def test_router_spec_carries_tuned_config(self, tiny_ds, fitted_config):
        from repro.cluster import ClusterRouter
        router = ClusterRouter(dim=tiny_ds.dim, metric=tiny_ds.metric,
                               n_shards=2, tuned_config=fitted_config)
        assert router.tuned_config == fitted_config.to_dict()


class TestPlannerRouting:
    def test_predict_bins_in_range(self, tiny_ds):
        planner = HardnessPlanner(make_config(tiny_ds))
        bins = planner.predict(tiny_ds.test_queries)
        assert bins.shape == (len(tiny_ds.test_queries),)
        assert bins.min() >= 0 and bins.max() < planner.n_bins

    def test_prior_shift_moves_bins_harder(self, tiny_ds):
        config = make_config(tiny_ds)
        calm = HardnessPlanner(config, score_fn=lambda: 0.0)
        stressed = HardnessPlanner(config, score_fn=lambda: 1.0)
        base = calm.predict(tiny_ds.test_queries)
        shifted = stressed.predict(tiny_ds.test_queries)
        assert (shifted >= base).all()
        assert (shifted <= planner_max(config)).all()
        assert stressed.n_shifted == len(tiny_ds.test_queries)

    def test_plan_coalesces_identical_settings(self, tiny_ds):
        config = make_config(tiny_ds, easy_ef=30, hard_ef=30)
        config.bins[1] = BinSetting(ef=30)
        planner = HardnessPlanner(config, adapt=False)
        bins, groups = planner.plan(tiny_ds.test_queries)
        assert len(groups) == 1
        _, idx, setting = groups[0]
        assert setting.ef == 30
        assert sorted(idx.tolist()) == list(range(len(tiny_ds.test_queries)))
        assert len(np.unique(bins)) >= 1  # bins still reported per query

    def test_plan_covers_batch_exactly_once(self, tiny_ds):
        planner = HardnessPlanner(make_config(tiny_ds), adapt=False)
        _, groups = planner.plan(tiny_ds.test_queries)
        seen = np.concatenate([idx for _, idx, _ in groups])
        assert sorted(seen.tolist()) == list(range(len(tiny_ds.test_queries)))

    def test_easy_queries_stay_under_hard_ndc_budget(self, tiny_ds,
                                                     tuning_store):
        """Predicted-easy traffic must never out-spend the hard bin: the
        whole point of routing is that the easy group's per-query NDC is
        bounded by what the hard setting would have paid."""
        config = make_config(tiny_ds, easy_ef=10, hard_ef=80)
        searcher = tuning_store.searcher
        dc = tuning_store._fixer.dc
        queries = tiny_ds.test_queries[:16]

        before = dc.ndc
        searcher.search_group(queries, K, config.bins[0])
        easy_ndc = (dc.ndc - before) / len(queries)

        before = dc.ndc
        searcher.search_group(queries, K, config.bins[-1])
        hard_ndc = (dc.ndc - before) / len(queries)
        assert easy_ndc <= hard_ndc

    def test_entry_for_block_respects_horizon_and_excluded(self, tiny_ds):
        config = make_config(tiny_ds)
        locate_calls = []

        def locate(vec):
            locate_calls.append(vec)
            return 7

        planner = HardnessPlanner(config, locate_fn=locate)
        entry = planner.entry_for_block(tiny_ds.test_queries[:4])
        assert entry == 7
        assert len(locate_calls) == 1
        # Cached on the second call.
        assert planner.entry_for_block(tiny_ds.test_queries[:4]) == 7
        assert len(locate_calls) == 1
        # Beyond the epoch horizon or tombstoned: fall back to None.
        assert planner.entry_for_block(tiny_ds.test_queries[:4],
                                       n_nodes=5) is None
        assert planner.entry_for_block(tiny_ds.test_queries[:4],
                                       excluded={7}) is None

    def test_adaptation_drifts_landmarks(self, tiny_ds):
        planner = HardnessPlanner(make_config(tiny_ds), adapt_rate=0.5)
        before = planner._landmarks.copy()
        planner.observe(tiny_ds.test_queries)
        assert planner.n_adapted == len(tiny_ds.test_queries)
        assert not np.allclose(planner._landmarks, before)

    def test_note_outcomes_fills_confusion(self, tiny_ds):
        planner = HardnessPlanner(make_config(tiny_ds), adapt=False)

        class _R:
            def __init__(self, hops):
                self.n_hops = hops

        bins = np.array([0, 0, 2, 2])
        planner.note_outcomes(bins, [_R(1), _R(2), _R(9), _R(10)])
        assert planner.confusion.sum() == 4
        stats = planner.stats()
        assert stats["confusion"] == planner.confusion.tolist()


def planner_max(config):
    return config.n_bins - 1


class TestPlannerOffIdentity:
    """With no planner attached — or an explicit ef — serving is
    bit-identical to the fixed-default path."""

    @settings(max_examples=15, deadline=None)
    @given(start=st.integers(min_value=0, max_value=30),
           n=st.integers(min_value=1, max_value=8),
           ef=st.sampled_from([10, 17, 30, 55]))
    def test_explicit_ef_bypasses_planner(self, tiny_ds, tuning_store,
                                          fitted_config, start, n, ef):
        queries = tiny_ds.test_queries[start:start + n]
        searcher = tuning_store.searcher
        tuning_store.apply_tuned_config(None)
        baseline = searcher.search_batch(queries, K, ef)
        tuning_store.apply_tuned_config(fitted_config)
        try:
            planned = searcher.search_batch(queries, K, ef)
        finally:
            tuning_store.apply_tuned_config(None)
        for b, p in zip(baseline, planned):
            np.testing.assert_array_equal(b.ids, p.ids)
            np.testing.assert_allclose(b.distances, p.distances)

    @settings(max_examples=10, deadline=None)
    @given(start=st.integers(min_value=0, max_value=30),
           n=st.integers(min_value=1, max_value=8))
    def test_no_planner_default_matches_explicit(self, tiny_ds, tuning_store,
                                                 start, n):
        queries = tiny_ds.test_queries[start:start + n]
        searcher = tuning_store.searcher
        tuning_store.apply_tuned_config(None)
        defaulted = searcher.search_batch(queries, K, None)
        explicit = searcher.search_batch(queries, K, max(K, 10))
        for d, e in zip(defaulted, explicit):
            np.testing.assert_array_equal(d.ids, e.ids)
            np.testing.assert_allclose(d.distances, e.distances)

    def test_single_query_explicit_ef_identical(self, tiny_ds, tuning_store,
                                                fitted_config):
        searcher = tuning_store.searcher
        q = tiny_ds.test_queries[0]
        tuning_store.apply_tuned_config(None)
        baseline = searcher.search(q, K, ef=25)
        tuning_store.apply_tuned_config(fitted_config)
        try:
            planned = searcher.search(q, K, ef=25)
        finally:
            tuning_store.apply_tuned_config(None)
        np.testing.assert_array_equal(baseline.ids, planned.ids)
