"""QNG extraction and connectivity statistics."""

import numpy as np
import pytest

from repro.core.qng import (
    average_reachable,
    build_qng,
    isolated_points,
    qng_connectivity_report,
    qng_edge_count,
)


def _neighbors_from(adj: dict):
    def fn(u):
        return np.array(adj.get(u, []), dtype=np.int64)
    return fn


class TestBuildQng:
    def test_induces_subgraph(self):
        # global graph: 10->20->30, 20->99 (99 outside the NN set)
        fn = _neighbors_from({10: [20], 20: [30, 99], 30: []})
        local = build_qng(fn, np.array([10, 20, 30]))
        assert local == [[1], [2], []]

    def test_rank_order_preserved(self):
        fn = _neighbors_from({5: [7], 7: [5]})
        local = build_qng(fn, np.array([7, 5]))  # 7 is rank 0
        assert local == [[1], [0]]

    def test_duplicates_rejected(self):
        fn = _neighbors_from({})
        with pytest.raises(ValueError):
            build_qng(fn, np.array([1, 1]))

    def test_edge_count(self):
        fn = _neighbors_from({0: [1, 2], 1: [2], 2: []})
        assert qng_edge_count(build_qng(fn, np.array([0, 1, 2]))) == 3


class TestReachability:
    def test_fully_connected(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        assert average_reachable(adj) == 3.0

    def test_isolated(self):
        adj = [[], [], []]
        assert average_reachable(adj) == 1.0

    def test_chain(self):
        adj = [[1], [2], []]
        # reach counts: 3, 2, 1 -> mean 2
        assert average_reachable(adj) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_reachable([])

    def test_isolated_points_counts_both_directions(self):
        adj = [[1], [], []]  # node 2 has no in/out edges; node 1 has in-edge
        assert isolated_points(adj) == 1


class TestReport:
    def test_fields(self, shared_hnsw, tiny_gt):
        report = qng_connectivity_report(shared_hnsw.adjacency.neighbors,
                                         tiny_gt.ids[0][:10])
        assert report["k"] == 10
        assert 0 <= report["reachable_fraction"] <= 1
        assert report["n_edges"] >= 0

    def test_hard_ood_queries_have_weaker_qng_than_base_points(
            self, tiny_ds, shared_hnsw, tiny_gt):
        """Paper Sec. 4: the QNG of OOD queries is less connected than that
        of points inside the base distribution (on average)."""
        from repro.evalx import compute_ground_truth
        base_gt = compute_ground_truth(tiny_ds.base, tiny_ds.base[:30], 10,
                                       tiny_ds.metric)
        ood = np.mean([
            qng_connectivity_report(shared_hnsw.adjacency.neighbors,
                                    tiny_gt.ids[i][:10])["reachable_fraction"]
            for i in range(len(tiny_ds.test_queries))
        ])
        base = np.mean([
            qng_connectivity_report(shared_hnsw.adjacency.neighbors,
                                    base_gt.ids[i][:10])["reachable_fraction"]
            for i in range(30)
        ])
        assert ood < base
