"""NGFixer orchestrator: config, fitting, the paper's headline effect."""

import numpy as np
import pytest

from repro.core import FixConfig, NGFixer
from repro.evalx import evaluate_index, recall_at_k
from repro.graphs import HNSW


class TestFixConfig:
    def test_defaults(self):
        config = FixConfig()
        assert config.rounds == (config.k,)
        assert config.k_max() == 30

    def test_k_max_per_round(self):
        config = FixConfig(k=10, hard_ratio=2.0)
        assert config.k_max(5) == 10
        assert config.k_max() == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            FixConfig(k=0)
        with pytest.raises(ValueError):
            FixConfig(hard_ratio=0.5)
        with pytest.raises(ValueError):
            FixConfig(preprocess="psychic")
        with pytest.raises(ValueError):
            FixConfig(rounds=(0,))


class TestFitting:
    @pytest.fixture
    def fixer(self, fresh_hnsw):
        return NGFixer(fresh_hnsw, FixConfig(
            k=8, hard_ratio=3.0, max_extra_degree=10, preprocess="exact"))

    def test_fit_adds_extra_edges(self, fixer, tiny_ds):
        before = fixer.adjacency.n_extra_edges()
        fixer.fit(tiny_ds.train_queries)
        assert fixer.adjacency.n_extra_edges() > before
        assert fixer.adjacency.n_base_edges() == fixer.index.adjacency.n_base_edges()

    def test_records_per_query(self, fixer, tiny_ds):
        fixer.fit(tiny_ds.train_queries[:10])
        assert len(fixer.records) == 10
        assert all(r.round_k == 8 for r in fixer.records)

    def test_two_rounds(self, fresh_hnsw, tiny_ds):
        fixer = NGFixer(fresh_hnsw, FixConfig(
            k=8, rounds=(8, 4), preprocess="exact"))
        fixer.fit(tiny_ds.train_queries[:10])
        assert {r.round_k for r in fixer.records} == {8, 4}

    def test_stats_totals(self, fixer, tiny_ds):
        fixer.fit(tiny_ds.train_queries[:20])
        stats = fixer.stats()
        assert stats["queries_fixed"] == 20
        assert stats["total_edges_added"] == stats["n_extra_edges"] + sum(
            r.edges_evicted for r in fixer.records) - _protected_readds(fixer)
        assert stats["preprocess_seconds"] >= 0
        assert stats["fix_seconds"] > 0

    def test_hard_queries_get_more_edges(self, fixer, tiny_ds):
        """Fig. 13(b): edge count correlates with hardness."""
        fixer.fit(tiny_ds.train_queries)
        hard = [r.edges_added for r in fixer.records if r.unreachable_pairs > 0]
        easy = [r.edges_added for r in fixer.records if r.unreachable_pairs == 0]
        if hard and easy:
            assert np.mean(hard) > np.mean(easy)

    def test_approx_preprocess_runs(self, fresh_hnsw, tiny_ds):
        fixer = NGFixer(fresh_hnsw, FixConfig(
            k=8, preprocess="approx", approx_ef=60))
        fixer.fit(tiny_ds.train_queries[:15])
        assert fixer.adjacency.n_extra_edges() > 0

    def test_fix_query_online(self, fixer, tiny_ds):
        records = fixer.fix_query(tiny_ds.train_queries[0])
        assert len(records) == 1
        assert records[0].query_index == -1

    def test_search_protocol(self, fixer, tiny_ds):
        r = fixer.search(tiny_ds.test_queries[0], k=5, ef=20)
        assert len(r.ids) == 5
        assert fixer.entry_points(tiny_ds.test_queries[0]) == [fixer.entry]
        r2 = fixer.search(tiny_ds.test_queries[0], k=5)
        assert len(r2.ids) == 5


def _protected_readds(fixer):
    # Edges re-added after eviction are counted in both totals; for the tiny
    # suite this term is zero, kept explicit for clarity.
    return 0


class TestHeadlineEffect:
    def test_ngfix_improves_ood_recall_at_fixed_ef(self, tiny_ds, tiny_gt):
        """The paper's core claim at small scale: after fixing with
        historical queries, recall at the same ef improves on unseen test
        queries from the same (OOD) workload."""
        k, ef = 10, 20
        gt_k = tiny_gt.top(k)

        base = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                    single_layer=True, seed=3)
        before = np.vstack([base.search(q, k=k, ef=ef).ids[:k]
                            for q in tiny_ds.test_queries])
        r_before = recall_at_k(before, gt_k.ids)

        fixer = NGFixer(base, FixConfig(k=10, max_extra_degree=12,
                                        preprocess="exact"))
        fixer.fit(tiny_ds.train_queries)
        after = np.vstack([fixer.search(q, k=k, ef=ef).ids[:k]
                           for q in tiny_ds.test_queries])
        r_after = recall_at_k(after, gt_k.ids)
        assert r_after > r_before

    def test_historical_queries_get_perfect_recall(self, tiny_ds, fresh_hnsw,
                                                   tiny_train_gt):
        """Theorem 5 (spirit): after NGFix*+RFix, searching a *historical*
        query with ef >= K_max recovers its full top-k."""
        k = 8
        config = FixConfig(k=k, hard_ratio=3.0, max_extra_degree=24,
                           preprocess="exact")
        fixer = NGFixer(fresh_hnsw, config)
        fixer.fit(tiny_ds.train_queries)
        ef = config.k_max()
        found = np.vstack([fixer.search(q, k=k, ef=ef).ids[:k]
                           for q in tiny_ds.train_queries])
        recall = recall_at_k(found, tiny_train_gt.top(k).ids)
        assert recall > 0.97

    def test_evaluate_through_harness(self, tiny_ds, fresh_hnsw, tiny_gt):
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries)
        point = evaluate_index(fixer, tiny_ds.test_queries, tiny_gt, k=8, ef=30)
        assert point.recall > 0.7
        assert point.ndc_per_query > 0
