"""Escape Hardness: definition conformance, paper examples, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.escape_hardness import (
    EscapeHardnessResult,
    escape_hardness,
    escape_hardness_bruteforce,
    reachability_matrix,
)


def _neighbors_from(adj: dict):
    def fn(u):
        return np.array(adj.get(u, []), dtype=np.int64)
    return fn


# Global ids 100+rank, so local ranks are distinct from global ids in tests.
def _ids(K):
    return np.array([100 + r for r in range(K)], dtype=np.int64)


def _adj(edges, K):
    """edges given in local-rank space, lifted to global ids."""
    adj = {}
    for u, v in edges:
        adj.setdefault(100 + u, []).append(100 + v)
    return _neighbors_from(adj)


class TestPaperExample:
    """Fig. 6(b): x1..x4 mutually unreachable; adding x5 connects x1->x4;
    x2 reaches x4 through x5 as well."""

    def test_fig6b(self):
        # local ranks 0..4 are x1..x5.
        edges = [(0, 4), (4, 3), (1, 4)]  # x1->x5, x5->x4, x2->x5
        fn = _adj(edges, 5)
        result = escape_hardness(fn, _ids(5), k=4)
        assert result.eh[0, 3] == 5.0  # x1 -> x4 via x5
        assert result.eh[1, 3] == 5.0  # x2 -> x4 via x5
        assert np.isinf(result.eh[3, 0])  # x4 cannot escape back

    def test_direct_edge_eh_is_max_rank(self):
        # edge x1->x2 gives EH(x1->x2) = 2 (both endpoints present at K=2)
        fn = _adj([(0, 1)], 3)
        result = escape_hardness(fn, _ids(3), k=3)
        assert result.eh[0, 1] == 2.0

    def test_path_through_lower_rank_beats_higher(self):
        # x1->x3->x2 (EH 3) and x1->x5->x2 (EH 5): minimum is 3.
        edges = [(0, 2), (2, 1), (0, 4), (4, 1)]
        fn = _adj(edges, 5)
        result = escape_hardness(fn, _ids(5), k=2)
        assert result.eh[0, 1] == 3.0


class TestDefinitionConformance:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(3, 12), st.integers(1, 4), st.data())
    def test_incremental_matches_bruteforce(self, K, k_ratio, data):
        """The incremental Algorithm 2 equals the minimax-path definition on
        random directed graphs."""
        k = max(1, K // k_ratio)
        edges = data.draw(st.lists(
            st.tuples(st.integers(0, K - 1), st.integers(0, K - 1)),
            max_size=4 * K))
        edges = [(u, v) for u, v in edges if u != v]
        fn = _adj(edges, K)
        ids = _ids(K)
        inc = escape_hardness(fn, ids, k)
        ref = escape_hardness_bruteforce(fn, ids, k)
        assert np.array_equal(inc.eh, ref.eh), (edges, k)

    def test_on_real_index(self, shared_hnsw, tiny_gt):
        for i in range(8):
            ids = tiny_gt.ids[i][:24]
            inc = escape_hardness(shared_hnsw.adjacency.neighbors, ids, 8)
            ref = escape_hardness_bruteforce(shared_hnsw.adjacency.neighbors, ids, 8)
            assert np.array_equal(inc.eh, ref.eh)


class TestInvariants:
    def test_diagonal_zero(self):
        fn = _adj([(0, 1)], 4)
        assert (np.diag(escape_hardness(fn, _ids(4), 4).eh) == 0).all()

    def test_eh_at_least_max_endpoint_rank(self):
        fn = _adj([(0, 1), (1, 2), (2, 0), (0, 3), (3, 1)], 4)
        result = escape_hardness(fn, _ids(4), 4)
        for u in range(4):
            for v in range(4):
                if u != v and np.isfinite(result.eh[u, v]):
                    assert result.eh[u, v] >= max(u, v) + 1

    def test_unreachable_is_inf(self):
        fn = _adj([], 4)
        result = escape_hardness(fn, _ids(4), 3)
        off_diag = result.eh[~np.eye(3, dtype=bool)]
        assert np.isinf(off_diag).all()
        assert result.n_unreachable_pairs() == 6

    def test_triangle_like_inequality(self):
        """EH(u->w) <= max(EH(u->v), EH(v->w)): concatenating paths."""
        rng = np.random.default_rng(0)
        edges = [(int(a), int(b)) for a, b in rng.integers(0, 8, (30, 2))
                 if a != b]
        fn = _adj(edges, 8)
        eh = escape_hardness(fn, _ids(8), 8).eh
        for u in range(8):
            for v in range(8):
                for w in range(8):
                    assert eh[u, w] <= max(eh[u, v], eh[v, w]) + 1e-9

    def test_k_bounds_validated(self):
        fn = _adj([], 4)
        with pytest.raises(ValueError):
            escape_hardness(fn, _ids(4), 0)
        with pytest.raises(ValueError):
            escape_hardness(fn, _ids(4), 5)
        with pytest.raises(ValueError):
            escape_hardness_bruteforce(fn, _ids(4), 0)

    def test_duplicate_ids_rejected(self):
        fn = _adj([], 3)
        with pytest.raises(ValueError):
            escape_hardness(fn, np.array([1, 1, 2]), 2)


class TestResultHelpers:
    def _result(self):
        eh = np.array([[0.0, 2.0], [np.inf, 0.0]])
        return EscapeHardnessResult(nn_ids=_ids(4), k=2, K_max=4, eh=eh)

    def test_reachable_default_threshold(self):
        S = self._result().reachable()
        assert S[0, 1] and not S[1, 0]

    def test_reachable_custom_threshold(self):
        S = self._result().reachable(threshold=1.0)
        assert not S[0, 1]

    def test_reachability_matrix_alias(self):
        assert np.array_equal(reachability_matrix(self._result()),
                              self._result().reachable())

    def test_hardness_score_clips_inf(self):
        score = self._result().hardness_score()
        assert np.isfinite(score)
        assert score == pytest.approx((0 + 2 + 8 + 0) / 4)


class TestMonotonicity:
    def test_adding_edges_never_increases_eh(self):
        """More graph edges can only lower (or keep) every EH entry."""
        rng = np.random.default_rng(1)
        base_edges = [(int(a), int(b)) for a, b in rng.integers(0, 10, (12, 2))
                      if a != b]
        more_edges = base_edges + [(0, 9), (9, 0), (3, 7)]
        e1 = escape_hardness(_adj(base_edges, 10), _ids(10), 6).eh
        e2 = escape_hardness(_adj(more_edges, 10), _ids(10), 6).eh
        assert (e2 <= e1 + 1e-9).all()
