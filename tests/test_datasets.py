"""Dataset container, generators, registry, and OOD measurement."""

import dataclasses

import numpy as np
import pytest

from repro.datasets import (
    CrossModalConfig,
    Dataset,
    dataset_statistics,
    list_datasets,
    load_dataset,
    make_clustered_data,
    make_cross_modal_dataset,
    make_single_modal_dataset,
    mahalanobis_to_distribution,
    ood_report,
    sliced_wasserstein,
)
from repro.datasets.registry import CROSS_MODAL_NAMES, SINGLE_MODAL_NAMES
from repro.datasets.synthetic import perturb_base_points
from repro.distances import Metric


class TestDatasetContainer:
    def _mk(self, **kwargs):
        base = dict(
            name="t", base=np.zeros((10, 4), dtype=np.float32),
            train_queries=np.zeros((3, 4), dtype=np.float32),
            test_queries=np.zeros((2, 4), dtype=np.float32), metric="l2",
        )
        base.update(kwargs)
        return Dataset(**base)

    def test_properties(self):
        ds = self._mk()
        assert ds.n == 10 and ds.dim == 4
        assert ds.metric is Metric.L2

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            self._mk(train_queries=np.zeros((3, 5), dtype=np.float32))

    def test_id_queries_dim_checked(self):
        with pytest.raises(ValueError, match="id_queries"):
            self._mk(id_queries=np.zeros((2, 5), dtype=np.float32))

    def test_subset(self):
        ds = self._mk().subset(n_base=4, n_train=2, n_test=1)
        assert ds.n == 4
        assert len(ds.train_queries) == 2
        assert len(ds.test_queries) == 1

    def test_repr_mentions_name(self):
        assert "t" in repr(self._mk())


class TestClusteredData:
    def test_shape_and_dtype(self):
        x = make_clustered_data(100, 8, n_clusters=4, seed=0)
        assert x.shape == (100, 8)
        assert x.dtype == np.float32

    def test_normalized_option(self):
        x = make_clustered_data(50, 8, seed=0, normalize=True)
        assert np.allclose(np.linalg.norm(x, axis=1), 1.0, atol=1e-5)

    def test_deterministic(self):
        a = make_clustered_data(30, 4, seed=5)
        b = make_clustered_data(30, 4, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_data(self):
        a = make_clustered_data(30, 4, seed=5)
        b = make_clustered_data(30, 4, seed=6)
        assert not np.array_equal(a, b)

    def test_clustered_not_uniform(self):
        """Points concentrate near centers: mean NN distance far below
        random-pair distance."""
        x = make_clustered_data(200, 16, n_clusters=4, cluster_std=0.05, seed=0)
        from repro.distances import pairwise_distances
        d = pairwise_distances(x, x, Metric.L2)
        np.fill_diagonal(d, np.inf)
        assert d.min(axis=1).mean() < 0.2 * d[np.isfinite(d)].mean()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_clustered_data(0, 4)
        with pytest.raises(ValueError):
            make_clustered_data(4, 0)


class TestPerturbBase:
    def test_queries_near_base(self):
        base = make_clustered_data(100, 8, seed=0)
        q = perturb_base_points(base, 20, noise_std=0.01, seed=1)
        from repro.distances import pairwise_distances
        nearest = pairwise_distances(q, base, Metric.L2).min(axis=1)
        assert (nearest < 0.1).all()

    def test_hard_fraction_increases_spread(self):
        base = make_clustered_data(100, 8, seed=0)
        easy = perturb_base_points(base, 50, 0.01, seed=1, hard_fraction=0.0)
        hard = perturb_base_points(base, 50, 0.01, seed=1, hard_fraction=1.0,
                                   hard_noise_std=0.5)
        from repro.distances import pairwise_distances
        d_easy = pairwise_distances(easy, base, Metric.L2).min(axis=1).mean()
        d_hard = pairwise_distances(hard, base, Metric.L2).min(axis=1).mean()
        assert d_hard > 5 * d_easy


class TestCrossModal:
    def test_counts_respected(self, tiny_ds):
        assert tiny_ds.n == 400
        assert len(tiny_ds.train_queries) == 80
        assert len(tiny_ds.test_queries) == 40
        assert tiny_ds.id_queries is not None

    def test_queries_normalized(self, tiny_ds):
        assert np.allclose(np.linalg.norm(tiny_ds.test_queries, axis=1), 1.0,
                           atol=1e-5)

    def test_queries_are_ood(self, tiny_ds):
        report = ood_report(tiny_ds.test_queries, tiny_ds.base, seed=0)
        assert report["is_ood"]
        assert (report["wasserstein_query_vs_base"]
                > 2 * report["wasserstein_base_control"])

    def test_id_queries_are_not_ood(self, tiny_ds):
        report = ood_report(tiny_ds.id_queries, tiny_ds.base, seed=0)
        assert (report["wasserstein_query_vs_base"]
                < report["wasserstein_query_vs_base"] * 10)  # finite
        # ID queries hug the base distribution far more than OOD ones.
        ood = ood_report(tiny_ds.test_queries, tiny_ds.base, seed=0)
        assert (report["wasserstein_query_vs_base"]
                < 0.5 * ood["wasserstein_query_vs_base"])

    def test_drift_fraction(self):
        config = dataclasses.replace(
            CrossModalConfig(n_base=200, n_train=20, n_test=40, dim=8,
                             n_clusters=4, seed=1),
            drift_fraction=0.25)
        ds = make_cross_modal_dataset("d", config)
        assert len(ds.test_queries) == 40

    def test_invalid_drift_fraction(self):
        with pytest.raises(ValueError):
            CrossModalConfig(drift_fraction=1.5)

    def test_train_test_disjoint(self, tiny_ds):
        """Test queries differ from historical ones (paper dedupes them)."""
        train = {t.tobytes() for t in tiny_ds.train_queries}
        assert not any(t.tobytes() in train for t in tiny_ds.test_queries)


class TestSingleModal:
    def test_build(self):
        ds = make_single_modal_dataset("s", n=200, dim=8, n_train=20,
                                       n_test=10, seed=0)
        assert ds.modality == "single-modal"
        assert ds.n == 200

    def test_queries_in_distribution(self):
        ds = make_single_modal_dataset("s", n=300, dim=8, n_train=30,
                                       n_test=100, seed=0, hard_fraction=0.0)
        report = ood_report(ds.test_queries, ds.base, seed=0)
        assert not report["is_ood"]


class TestRegistry:
    def test_list_names(self):
        names = list_datasets()
        assert set(CROSS_MODAL_NAMES) | set(SINGLE_MODAL_NAMES) == set(names)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_scale_shrinks(self):
        ds = load_dataset("webvid-sim", scale=0.1)
        assert ds.n == 250

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("webvid-sim", scale=0)

    @pytest.mark.parametrize("name", list_datasets())
    def test_all_datasets_generate(self, name):
        ds = load_dataset(name, scale=0.1)
        assert ds.n > 0
        assert len(ds.train_queries) > 0
        assert len(ds.test_queries) > 0

    def test_statistics_rows(self):
        rows = dataset_statistics(["sift-sim"], scale=0.1)
        assert rows[0].name == "sift-sim"
        assert rows[0].metric == "l2"


class TestDistributionMetrics:
    def test_mahalanobis_zero_at_mean(self):
        ref = np.random.default_rng(0).standard_normal((200, 4)).astype(np.float32)
        d = mahalanobis_to_distribution(ref.mean(0, keepdims=True), ref)
        assert d[0] < 0.2

    def test_mahalanobis_grows_with_offset(self):
        ref = np.random.default_rng(0).standard_normal((200, 4)).astype(np.float32)
        near = mahalanobis_to_distribution(ref[:10], ref)
        far = mahalanobis_to_distribution(ref[:10] + 10.0, ref)
        assert far.mean() > 3 * near.mean()

    def test_wasserstein_identical_is_small(self):
        x = np.random.default_rng(0).standard_normal((300, 4)).astype(np.float32)
        assert sliced_wasserstein(x, x, seed=0) < 1e-9

    def test_wasserstein_detects_shift(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((300, 4)).astype(np.float32)
        b = a + np.array([2, 0, 0, 0], dtype=np.float32)
        assert sliced_wasserstein(a, b, seed=0) > 0.5

    def test_wasserstein_dim_mismatch(self):
        with pytest.raises(ValueError):
            sliced_wasserstein(np.zeros((3, 2), dtype=np.float32),
                               np.zeros((3, 3), dtype=np.float32))
