"""Entry-point strategies and the MultiEntryIndex wrapper."""

import numpy as np
import pytest

from repro.evalx import recall_at_k
from repro.graphs import CentroidsEntry, MedoidEntry, MultiEntryIndex, RandomEntry
from repro.graphs.base import medoid_id


class TestMedoidEntry:
    def test_matches_medoid_id(self, shared_hnsw, tiny_ds):
        strategy = MedoidEntry(shared_hnsw.dc)
        q = shared_hnsw.dc.prepare_query(tiny_ds.test_queries[0])
        assert strategy.entries(shared_hnsw.dc, q) == [medoid_id(shared_hnsw.dc)]


class TestRandomEntry:
    def test_count_and_range(self, shared_hnsw, tiny_ds):
        strategy = RandomEntry(n_entries=4, seed=0)
        q = shared_hnsw.dc.prepare_query(tiny_ds.test_queries[0])
        ids = strategy.entries(shared_hnsw.dc, q)
        assert len(ids) == 4
        assert len(set(ids)) == 4
        assert all(0 <= i < shared_hnsw.size for i in ids)

    def test_redrawn_per_query(self, shared_hnsw, tiny_ds):
        strategy = RandomEntry(n_entries=3, seed=0)
        q = shared_hnsw.dc.prepare_query(tiny_ds.test_queries[0])
        assert (strategy.entries(shared_hnsw.dc, q)
                != strategy.entries(shared_hnsw.dc, q))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomEntry(n_entries=0)


class TestCentroidsEntry:
    def test_entries_near_query(self, shared_hnsw, tiny_ds):
        strategy = CentroidsEntry(shared_hnsw.dc, n_centroids=10, n_probe=2,
                                  seed=0)
        q = shared_hnsw.dc.prepare_query(tiny_ds.test_queries[0])
        ids = strategy.entries(shared_hnsw.dc, q)
        assert 1 <= len(ids) <= 2
        # the chosen anchors are the closest anchors to the query
        all_d = shared_hnsw.dc.to_query(strategy._anchor_ids, q)
        best = strategy._anchor_ids[np.argmin(all_d)]
        assert int(best) in ids

    def test_routing_cost_counted(self, shared_hnsw, tiny_ds):
        strategy = CentroidsEntry(shared_hnsw.dc, n_centroids=10, seed=0)
        q = shared_hnsw.dc.prepare_query(tiny_ds.test_queries[0])
        shared_hnsw.dc.reset_ndc()
        strategy.entries(shared_hnsw.dc, q)
        assert shared_hnsw.dc.reset_ndc() == len(strategy._anchor_ids)


class TestMultiEntryIndex:
    def test_search_quality_with_centroid_entries(self, shared_hnsw, tiny_ds,
                                                  tiny_gt):
        wrapped = MultiEntryIndex(
            shared_hnsw, CentroidsEntry(shared_hnsw.dc, n_centroids=8,
                                        n_probe=2, seed=0))
        found = np.vstack([wrapped.search(q, k=10, ef=40).ids[:10]
                           for q in tiny_ds.test_queries])
        assert recall_at_k(found, tiny_gt.top(10).ids) > 0.8

    def test_delegates_dc_and_adjacency(self, shared_hnsw):
        wrapped = MultiEntryIndex(shared_hnsw, MedoidEntry(shared_hnsw.dc))
        assert wrapped.dc is shared_hnsw.dc
        assert wrapped.adjacency is shared_hnsw.adjacency

    def test_default_ef(self, shared_hnsw, tiny_ds):
        wrapped = MultiEntryIndex(shared_hnsw, MedoidEntry(shared_hnsw.dc))
        assert len(wrapped.search(tiny_ds.test_queries[0], k=5).ids) == 5
