"""Distance kernels: metric semantics, counting, and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import (
    DistanceComputer,
    Metric,
    distances_to_query,
    normalize_rows,
    pairwise_distances,
)
from repro.distances.metrics import distance_point


def _vectors(n, d):
    return hnp.arrays(np.float32, (n, d),
                      elements=st.floats(-5, 5, width=32)).filter(
                          lambda a: np.isfinite(a).all())


class TestMetricParse:
    def test_from_string(self):
        assert Metric.parse("l2") is Metric.L2
        assert Metric.parse("IP".lower()) is Metric.INNER_PRODUCT
        assert Metric.parse("cosine") is Metric.COSINE

    def test_case_insensitive(self):
        assert Metric.parse("L2") is Metric.L2

    def test_identity(self):
        assert Metric.parse(Metric.COSINE) is Metric.COSINE

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            Metric.parse("manhattan")
        with pytest.raises(ValueError):
            Metric.parse(123)


class TestPairwise:
    def test_l2_matches_direct(self):
        a = np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32)
        b = np.random.default_rng(1).standard_normal((7, 4)).astype(np.float32)
        d = pairwise_distances(a, b, Metric.L2)
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        assert np.allclose(d, expected, atol=1e-4)

    def test_ip_is_negated_dot(self):
        a = np.eye(3, dtype=np.float32)
        d = pairwise_distances(a, a, Metric.INNER_PRODUCT)
        assert np.allclose(d, -np.eye(3))

    def test_cosine_self_distance_zero(self):
        a = np.random.default_rng(0).standard_normal((6, 4)).astype(np.float32)
        d = pairwise_distances(a, a, Metric.COSINE)
        assert np.allclose(np.diag(d), 0.0, atol=1e-5)

    def test_cosine_range(self):
        a = np.random.default_rng(2).standard_normal((10, 5)).astype(np.float32)
        d = pairwise_distances(a, a, Metric.COSINE)
        assert (d >= -1e-5).all() and (d <= 2 + 1e-5).all()

    def test_l2_nonnegative_clamped(self):
        a = np.ones((3, 2), dtype=np.float32)
        d = pairwise_distances(a, a, Metric.L2)
        assert (d >= 0).all()


class TestDistancesToQuery:
    def test_l2(self):
        data = np.array([[0, 0], [3, 4]], dtype=np.float32)
        q = np.zeros(2, dtype=np.float32)
        d = distances_to_query(data, q, Metric.L2)
        assert np.allclose(d, [0, 25])

    def test_cosine_assumes_normalized_rows(self):
        data = normalize_rows(np.array([[1, 0], [0, 1]], dtype=np.float32))
        q = np.array([2.0, 0.0], dtype=np.float32)  # normalized internally
        d = distances_to_query(data, q, Metric.COSINE)
        assert np.allclose(d, [0.0, 1.0], atol=1e-6)


class TestDistancePoint:
    def test_matches_pairwise(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal(6).astype(np.float32)
        b = rng.standard_normal(6).astype(np.float32)
        for metric in Metric:
            single = distance_point(a, b, metric)
            matrix = pairwise_distances(a[None], b[None], metric)[0, 0]
            assert single == pytest.approx(float(matrix), abs=1e-5)

    def test_cosine_zero_vector(self):
        assert distance_point(np.zeros(3), np.ones(3), Metric.COSINE) == 1.0


class TestNormalizeRows:
    def test_unit_norms(self):
        x = np.random.default_rng(0).standard_normal((4, 3)).astype(np.float32)
        n = np.linalg.norm(normalize_rows(x), axis=1)
        assert np.allclose(n, 1.0, atol=1e-6)

    def test_zero_row_safe(self):
        out = normalize_rows(np.zeros((1, 3), dtype=np.float32))
        assert np.isfinite(out).all()


class TestDistanceComputer:
    def test_ndc_counting(self):
        data = np.random.default_rng(0).standard_normal((10, 4)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        q = dc.prepare_query(data[0])
        dc.to_query(np.array([1, 2, 3]), q)
        dc.one_to_query(4, q)
        dc.all_to_query(q)
        assert dc.ndc == 3 + 1 + 10
        assert dc.reset_ndc() == 14
        assert dc.ndc == 0

    def test_cosine_data_normalized_once(self):
        data = 3.0 * np.eye(4, dtype=np.float32)
        dc = DistanceComputer(data, Metric.COSINE)
        assert np.allclose(np.linalg.norm(dc.data, axis=1), 1.0)

    def test_between_symmetric_l2(self):
        data = np.random.default_rng(1).standard_normal((6, 3)).astype(np.float32)
        dc = DistanceComputer(data, Metric.L2)
        assert dc.between(1, 4) == pytest.approx(dc.between(4, 1), abs=1e-5)

    def test_append_returns_first_id_and_grows(self):
        data = np.zeros((3, 2), dtype=np.float32)
        dc = DistanceComputer(data, Metric.L2)
        first = dc.append(np.ones((2, 2), dtype=np.float32))
        assert first == 3
        assert dc.size == 5

    def test_append_wrong_dim_rejected(self):
        dc = DistanceComputer(np.zeros((2, 3), dtype=np.float32), Metric.L2)
        with pytest.raises(ValueError):
            dc.append(np.zeros((1, 4), dtype=np.float32))

    def test_append_nan_rejected(self):
        dc = DistanceComputer(np.zeros((2, 3), dtype=np.float32), Metric.L2)
        with pytest.raises(ValueError):
            dc.append(np.full((1, 3), np.nan, dtype=np.float32))

    def test_prepare_query_validates_dim(self):
        dc = DistanceComputer(np.zeros((2, 3), dtype=np.float32), Metric.L2)
        with pytest.raises(ValueError):
            dc.prepare_query(np.zeros(4, dtype=np.float32))

    def test_all_to_query_matches_to_query(self):
        data = np.random.default_rng(5).standard_normal((8, 4)).astype(np.float32)
        for metric in Metric:
            dc = DistanceComputer(data, metric)
            q = dc.prepare_query(data[3])
            assert np.allclose(dc.all_to_query(q),
                               dc.to_query(np.arange(8), q), atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(_vectors(4, 3))
def test_l2_triangle_inequality_on_sqrt(x):
    """True Euclidean distance (sqrt of our comparison value) satisfies the
    triangle inequality."""
    d = np.sqrt(pairwise_distances(x, x, Metric.L2))
    for i in range(4):
        for j in range(4):
            for k in range(4):
                assert d[i, j] <= d[i, k] + d[k, j] + 1e-3


@settings(max_examples=40, deadline=None)
@given(_vectors(5, 4))
def test_pairwise_l2_symmetry(x):
    d = pairwise_distances(x, x, Metric.L2)
    assert np.allclose(d, d.T, atol=1e-4)


@settings(max_examples=40, deadline=None)
@given(_vectors(3, 4), _vectors(4, 4))
def test_pairwise_shape_and_finiteness(a, b):
    for metric in Metric:
        d = pairwise_distances(a, b, metric)
        assert d.shape == (3, 4)
        assert np.isfinite(d).all()
