"""Two-phase diagnostics and QNG-recall correlation (Sec. 4 figures)."""

import numpy as np
import pytest

from repro.core.analysis import (
    phase_reach_stats,
    qng_recall_correlation,
    recall_histogram,
)


class TestRecallHistogram:
    def test_buckets_partition(self):
        recalls = np.array([0.0, 0.3, 0.6, 0.8, 0.95, 1.0])
        hist = recall_histogram(recalls)
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_last_bucket_inclusive(self):
        hist = recall_histogram(np.array([1.0]))
        assert hist["[0.90, 1.00]"] == 1.0

    def test_all_zero(self):
        hist = recall_histogram(np.zeros(4))
        assert hist["[0.00, 0.25)"] == 1.0


class TestPhaseReachStats:
    def test_fields_and_ranges(self, tiny_ds, shared_hnsw, tiny_gt):
        stats = phase_reach_stats(shared_hnsw, tiny_ds.test_queries, tiny_gt,
                                  k=10, ef=20)
        assert 0 <= stats["reached_vicinity_fraction"] <= 1
        assert 0 <= stats["mean_recall"] <= 1
        assert len(stats["recalls"]) == len(tiny_ds.test_queries)

    def test_most_searches_reach_vicinity(self, tiny_ds, shared_hnsw, tiny_gt):
        """Paper Fig. 2(b): for the large majority of queries greedy search
        enters phase 2 (recall > 0)."""
        stats = phase_reach_stats(shared_hnsw, tiny_ds.test_queries, tiny_gt,
                                  k=10, ef=20)
        assert stats["reached_vicinity_fraction"] > 0.8


class TestDiscoveryEdges:
    def test_zero_before_fixing(self, shared_hnsw, tiny_ds):
        from repro.core.analysis import discovery_edge_stats
        stats = discovery_edge_stats(shared_hnsw, tiny_ds.test_queries[:10],
                                     k=8, ef=20)
        assert stats["via_extra_edges"] == 0
        assert stats["total_results"] == 80

    def test_extra_edges_carry_results_after_fixing(self, tiny_ds, fresh_hnsw):
        from repro.core import FixConfig, NGFixer
        from repro.core.analysis import discovery_edge_stats
        fixer = NGFixer(fresh_hnsw, FixConfig(k=8, preprocess="exact"))
        fixer.fit(tiny_ds.train_queries)
        stats = discovery_edge_stats(fixer, tiny_ds.test_queries, k=8, ef=20)
        assert stats["extra_fraction"] > 0.02, (
            "fixed edges should discover a visible share of results")


class TestQngCorrelation:
    def test_positive_correlation(self, tiny_ds, shared_hnsw, tiny_gt):
        """Fig. 4(a): queries with better-connected QNGs achieve higher
        recall."""
        out = qng_recall_correlation(shared_hnsw, tiny_ds.test_queries,
                                     tiny_gt, k=10, ef=15)
        assert out["avg_reachable"].shape == out["recalls"].shape
        assert np.isnan(out["pearson_r"]) or out["pearson_r"] > 0.15
