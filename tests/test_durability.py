"""Crash-safe durability: WAL framing, snapshots, recovery, degradation.

The chaos suite (kill-mid-churn, subprocess death) lives in
``test_robustness.py``; this file covers the durability primitives and the
serving layer's graceful-degradation paths in isolation.
"""

import json
import struct
import threading
import time

import numpy as np
import pytest

from repro.durability import (
    RecoveryError,
    SnapshotManager,
    WriteAheadLog,
    read_wal,
    recover,
)
from repro.durability.wal import _HEADER
from repro.faults import FAULTS, FaultInjected, FaultPlan
from repro.store import VectorStore


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No test may leak an armed fault plan into the next."""
    yield
    FAULTS.disarm()


def _vectors(n, dim=8, seed=0):
    return np.random.default_rng(seed).standard_normal((n, dim)).astype(
        np.float32)


def _make_store(wal_dir, n=50, dim=8, seed=0, **kwargs):
    kwargs.setdefault("scheduler_mode", "inline")
    store = VectorStore(dim=dim, seed=seed, wal_dir=wal_dir, **kwargs)
    store.add(_vectors(n, dim, seed))
    store.build()
    return store


class TestWalFraming:
    def test_roundtrip_all_ops(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=0)
        vectors = _vectors(3, 4)
        wal.log_insert(10, vectors, payloads=[{"a": 1}, None, {"b": 2}])
        wal.log_build()
        wal.log_delete([7, 9])
        wal.log_observe(np.ones(4, dtype=np.float32))
        wal.log_merge_cut()
        wal.close()

        records = list(read_wal(tmp_path))
        assert [r.op for r in records] == [
            "insert", "build", "delete", "observe", "merge_cut"]
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        ins = records[0]
        assert ins.first_id == 10
        np.testing.assert_array_equal(ins.vectors, vectors)
        assert ins.payloads == [{"a": 1}, None, {"b": 2}]
        np.testing.assert_array_equal(records[2].ids, [7, 9])
        np.testing.assert_array_equal(
            records[3].query, np.ones(4, dtype=np.float32))

    def test_after_seq_filter(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=0)
        for _ in range(5):
            wal.log_merge_cut()
        wal.close()
        assert [r.seq for r in read_wal(tmp_path, after_seq=3)] == [4, 5]

    def test_reopen_recovers_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.log_delete([1])
        wal.log_delete([2])
        wal.close()
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.seq == 2
        assert wal2.log_delete([3]) == 3
        wal2.close()
        assert [r.seq for r in read_wal(tmp_path)] == [1, 2, 3]


class TestWalConcurrency:
    def test_concurrent_appends_stay_gap_free(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=4)
        per_thread = 200

        def hammer():
            for _ in range(per_thread):
                wal.log_merge_cut()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wal.close()
        # Every appended record must carry a unique, contiguous seq and
        # the frames must land in seq order (recovery replays in file
        # order and flags any gap).
        seqs = [r.seq for r in read_wal(tmp_path)]
        assert seqs == list(range(1, 4 * per_thread + 1))

    def test_failed_append_does_not_burn_a_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=0)
        wal.log_delete([1])
        plan = FaultPlan().on("wal.pre_append", "raise")
        with FAULTS.injected(plan):
            with pytest.raises(FaultInjected):
                wal.log_delete([2])
        assert wal.seq == 1  # the failed append rolled nothing forward
        wal.log_delete([3])
        wal.close()
        assert [r.seq for r in read_wal(tmp_path)] == [1, 2]


class TestTornTail:
    def _write_then_tear(self, tmp_path, chop):
        wal = WriteAheadLog(tmp_path, sync_every=0)
        for i in range(4):
            wal.log_delete([i])
        wal.close()
        (path,) = sorted(tmp_path.glob("wal-*.log"))
        size = path.stat().st_size
        with open(path, "r+b") as f:
            f.truncate(size - chop)
        return path

    def test_half_written_frame_truncated_on_open(self, tmp_path):
        self._write_then_tear(tmp_path, chop=3)  # mid-frame crash
        wal = WriteAheadLog(tmp_path)
        assert wal.seq == 3
        assert wal.truncated_bytes > 0
        # The log stays appendable and the new record follows the good tail.
        wal.log_delete([99])
        wal.close()
        assert [r.seq for r in read_wal(tmp_path)] == [1, 2, 3, 4]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=0)
        for i in range(3):
            wal.log_delete([i])
        wal.close()
        (path,) = sorted(tmp_path.glob("wal-*.log"))
        data = bytearray(path.read_bytes())
        # Flip a byte inside the *second* record's body.
        frame0 = _HEADER.size + struct.unpack_from("<I", data, 0)[0]
        data[frame0 + _HEADER.size + 2] ^= 0xFF
        path.write_bytes(bytes(data))
        # read_wal is read-only: stops at the corruption, file unchanged.
        assert [r.seq for r in read_wal(tmp_path)] == [1]
        assert path.stat().st_size == len(data)
        # The append path truncates records 2 and 3 away.
        wal = WriteAheadLog(tmp_path)
        assert wal.seq == 1
        wal.close()

    def test_read_wal_does_not_modify(self, tmp_path):
        path = self._write_then_tear(tmp_path, chop=2)
        before = path.stat().st_size
        assert [r.seq for r in read_wal(tmp_path)] == [1, 2, 3]
        assert path.stat().st_size == before


class TestFsyncPolicy:
    def test_sync_every_batches(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=3)
        for _ in range(7):
            wal.log_merge_cut()
        assert wal.n_fsyncs == 2  # records 3 and 6
        wal.close()  # seals with one final sync
        assert wal.n_fsyncs == 3

    def test_sync_every_1_syncs_each_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=1)
        for _ in range(4):
            wal.log_merge_cut()
        assert wal.n_fsyncs == 4
        wal.close()

    def test_sync_every_0_never_syncs_on_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync_every=0)
        for _ in range(10):
            wal.log_merge_cut()
        assert wal.n_fsyncs == 0
        wal.close()


class TestRotationAndPrune:
    def test_rotate_opens_new_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.log_delete([1])
        wal.rotate()
        wal.log_delete([2])
        wal.close()
        assert len(list(tmp_path.glob("wal-*.log"))) == 2
        assert [r.seq for r in read_wal(tmp_path)] == [1, 2]

    def test_prune_removes_covered_segments_only(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.log_delete([1])
        wal.log_delete([2])
        wal.rotate()  # seg 2 starts at seq 3
        wal.log_delete([3])
        wal.rotate()  # seg 3 starts at seq 4
        wal.log_delete([4])
        assert wal.prune(upto_seq=2) == 1  # only the first segment covered
        assert [r.seq for r in read_wal(tmp_path)] == [3, 4]
        assert wal.prune(upto_seq=4) == 1  # active segment never pruned
        wal.close()
        assert [r.seq for r in read_wal(tmp_path)] == [4]


class TestSnapshots:
    def test_latest_and_manifest_commit_point(self, tmp_path):
        store = _make_store(tmp_path / "wal", n=30)
        mgr = store._snapshots
        info = store.checkpoint()
        assert mgr.latest().snapshot_id == info.snapshot_id
        # Deleting the manifest un-commits the snapshot.
        info.manifest_path.unlink()
        assert mgr.latest() is None
        store.close()

    def test_crash_before_replace_preserves_previous(self, tmp_path):
        store = _make_store(tmp_path / "wal", n=30)
        first = store.checkpoint()
        store.add(_vectors(5, seed=1))
        plan = FaultPlan().on("snapshot.pre_replace", "raise")
        with FAULTS.injected(plan):
            with pytest.raises(FaultInjected):
                store.checkpoint()
        latest = store._snapshots.latest()
        assert latest.snapshot_id == first.snapshot_id
        # No *.tmp debris left behind by the aborted writer.
        assert not list((tmp_path / "wal").glob("*.tmp"))
        store.close()

    def test_crash_before_manifest_leaves_orphan_pruned(self, tmp_path):
        store = _make_store(tmp_path / "wal", n=30)
        first = store.checkpoint()
        plan = FaultPlan().on("snapshot.pre_manifest", "raise")
        with FAULTS.injected(plan):
            with pytest.raises(FaultInjected):
                store.checkpoint()
        mgr = store._snapshots
        assert mgr.latest().snapshot_id == first.snapshot_id
        orphan = mgr._base(first.snapshot_id + 1).with_suffix(".npz")
        assert orphan.exists()  # data landed but never committed
        mgr.prune(keep=1)
        assert not orphan.exists()
        assert mgr.latest().snapshot_id == first.snapshot_id
        store.close()

    def test_checkpoint_truncates_wal(self, tmp_path):
        store = _make_store(tmp_path / "wal", n=30)
        store.delete([0, 1])
        info = store.checkpoint()
        # All records up to the checkpoint are pruned away.
        assert list(read_wal(tmp_path / "wal", after_seq=info.wal_seq)) == []
        store.delete([2])
        tail = list(read_wal(tmp_path / "wal", after_seq=info.wal_seq))
        assert [r.op for r in tail] == ["delete"]
        store.close()


class TestRecovery:
    def test_wal_only_replay(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = _make_store(wal_dir, n=40, seed=3)
        ids = store.add(_vectors(6, seed=4), payloads=[{"i": i}
                                                      for i in range(6)])
        store.delete([0, 1])
        store.close()

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        assert report.snapshot_id is None
        assert recovered._fixer.dc.size == 46
        assert recovered._fixer.index.adjacency.tombstones == {0, 1}
        for off, i in enumerate(ids):
            assert recovered.get_payload(i) == {"i": off}
        recovered.close()

    def test_snapshot_plus_tail_replay(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = _make_store(wal_dir, n=40, seed=5)
        store.checkpoint()
        store.add(_vectors(4, seed=6))
        store.delete([2])
        store.close()

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        assert report.snapshot_id == 1
        assert report.replayed["rows_inserted"] == 4
        assert recovered._fixer.dc.size == 44
        assert 2 in recovered._fixer.index.adjacency.tombstones
        recovered.close()

    def test_recovered_store_serves_and_accepts_writes(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = _make_store(wal_dir, n=40, seed=7)
        store.checkpoint()
        store.close()

        recovered, report = recover(wal_dir)
        assert report.consistent
        query = _vectors(1, seed=8)[0]
        assert len(recovered.search(query, k=5)) == 5
        new_ids = recovered.add(_vectors(3, seed=9))  # NOT frozen
        assert len(new_ids) == 3
        assert recovered.observe(query)
        recovered.checkpoint()  # the adopted WAL keeps checkpointing
        recovered.close()

        # And the recovered store's own history recovers again.
        again, report2 = recover(wal_dir)
        assert report2.consistent, report2.errors
        assert again._fixer.dc.size == 43
        again.close()

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(tmp_path / "nothing-here")

    def test_torn_tail_reported(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = _make_store(wal_dir, n=30, seed=10)
        store.delete([0])
        store.close()
        (path,) = sorted(wal_dir.glob("wal-*.log"))
        with open(path, "ab") as f:
            f.write(b"\x07torn")  # crash mid-append
        recovered, report = recover(wal_dir)
        assert report.consistent
        assert report.truncated_bytes == 5
        recovered.close()

    def test_fresh_store_refuses_existing_history(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = _make_store(wal_dir, n=20, seed=11)
        store.close()
        with pytest.raises(RuntimeError, match="recover"):
            VectorStore(dim=8, wal_dir=wal_dir)

    def test_build_marker_splits_bulk_and_incremental(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = _make_store(wal_dir, n=30, seed=12)
        store.add(_vectors(5, seed=13))  # post-build: incremental inserts
        store.close()

        ops = [r.op for r in read_wal(wal_dir)]
        assert ops[:3] == ["insert", "build", "insert"]

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        assert report.replayed["build"] == 1
        assert report.replayed["rows_inserted"] == 35
        assert recovered._fixer.dc.size == 35
        recovered.close()

    def test_mutation_journaled_before_triggered_merge(self, tmp_path):
        wal_dir = tmp_path / "wal"
        # 50 points, compact_threshold 0.05 -> deleting 3 compacts, and the
        # compaction's epoch merge must be journaled AFTER the delete.
        store = _make_store(wal_dir, n=50, seed=14)
        store.delete([0, 1, 2])
        store.close()

        ops = [r.op for r in read_wal(wal_dir)]
        assert "merge_cut" in ops  # compaction merged
        assert ops.index("delete") < ops.index("merge_cut")

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        recovered.close()


class TestDurableThreadMode:
    """WAL + scheduler_mode='thread': the background worker journals
    observe/merge-cut records while the foreground thread journals
    inserts/deletes — the log must stay gap-free and replayable."""

    def test_concurrent_churn_recovers(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store = VectorStore(dim=8, seed=0, wal_dir=wal_dir,
                            scheduler_mode="thread", merge_every=16,
                            sync_every=0)
        store.add(_vectors(80, seed=0))
        store.build()
        deleted = []
        for i in range(25):
            ids = store.add(_vectors(2, seed=100 + i))
            store.observe(_vectors(1, seed=200 + i)[0])  # worker journals
            store.delete([ids[0]])
            deleted.append(ids[0])
        assert store.flush(timeout=30.0)
        store.close()

        seqs = [r.seq for r in read_wal(wal_dir)]
        assert seqs == list(range(1, len(seqs) + 1))  # no gaps/dups/reorder

        recovered, report = recover(wal_dir)
        assert report.consistent, report.errors
        assert report.n_vectors == 80 + 50
        # Tombstoned/compacted ids never surface in results.
        for q in _vectors(5, seed=300):
            hit_ids = {i for i, _, _ in recovered.search(q, k=10)}
            assert not hit_ids & set(deleted)
        recovered.close()


class TestGracefulDegradation:
    @pytest.fixture()
    def served(self, tmp_path):
        store = VectorStore(dim=8, seed=0, scheduler_mode="inline")
        store.add(_vectors(300, seed=0))
        store.build()
        yield store
        store.close()

    def test_deadline_returns_degraded_best_effort(self, served):
        query = _vectors(1, seed=1)[0]
        full = served.searcher.search(query, k=5, ef=64)
        expired = served.searcher.search(query, k=5, ef=64,
                                         deadline_ms=-1.0)
        assert expired.degraded
        assert not full.degraded
        assert served.searcher.n_degraded == 1
        # Best-so-far: still returns the entry-seeded candidates.
        assert len(expired.ids) >= 1

    def test_deadline_batch_flags_all_unfinished(self, served):
        queries = _vectors(6, seed=2)
        results = served.searcher.search_batch(queries, k=5, ef=64,
                                               deadline_ms=-1.0)
        assert len(results) == 6
        assert all(r.degraded for r in results)
        ok = served.searcher.search_batch(queries, k=5, ef=64)
        assert not any(r.degraded for r in ok)

    def test_generous_deadline_not_degraded(self, served):
        result = served.searcher.search(_vectors(1, seed=3)[0], k=5,
                                        ef=32, deadline_ms=10_000.0)
        assert not result.degraded

    def test_store_search_deadline_passthrough(self, served):
        hits = served.search(_vectors(1, seed=4)[0], k=5,
                             deadline_ms=10_000.0)
        assert len(hits) == 5
        with pytest.raises(ValueError, match="where"):
            served.search(_vectors(1, seed=4)[0], k=5,
                          deadline_ms=1.0, where=lambda p: True)

    def test_deadline_requires_serving(self):
        store = VectorStore(dim=8, serving=False)
        store.add(_vectors(30))
        store.build()
        with pytest.raises(RuntimeError, match="serving"):
            store.search(_vectors(1)[0], k=3, deadline_ms=5.0)


class TestAdmissionControl:
    def test_shed_when_queue_saturated(self):
        store = VectorStore(dim=8, seed=0, scheduler_mode="inline")
        store.add(_vectors(60))
        store.build()
        sched = store.scheduler
        sched.queue_limit = 2
        # Stuff the queue directly (inline observe would drain it).
        sched._queue.extend(_vectors(2, seed=1))
        assert not store.observe(_vectors(1, seed=2)[0])
        assert sched.n_shed == 1
        sched._queue.clear()
        assert store.observe(_vectors(1, seed=3)[0])
        assert sched.stats()["shed"] == 1
        store.close()

    def test_shed_when_worker_dead(self):
        store = VectorStore(dim=8, seed=0, scheduler_mode="thread")
        store.add(_vectors(60))
        store.build()
        assert store.scheduler.stop()
        # Worker gone: repair feedback is refused, searches still served.
        assert not store.observe(_vectors(1, seed=1)[0])
        assert store.scheduler.n_shed == 1
        assert len(store.search(_vectors(1, seed=2)[0], k=5)) == 5
        store.close()

    def test_searches_never_shed(self):
        store = VectorStore(dim=8, seed=0, scheduler_mode="inline")
        store.add(_vectors(60))
        store.build()
        store.scheduler.queue_limit = 0  # shed every observe
        assert not store.observe(_vectors(1, seed=1)[0])
        for q in _vectors(5, seed=2):
            assert len(store.search(q, k=5)) == 5
        store.close()


class TestSchedulerLifecycle:
    def test_stop_keeps_handle_on_failed_join(self):
        store = VectorStore(dim=8, seed=0, scheduler_mode="thread")
        store.add(_vectors(80))
        store.build()
        sched = store.scheduler
        plan = FaultPlan().on("worker.drain", "delay", delay_s=0.5)
        with FAULTS.injected(plan):
            sched.observe(_vectors(1, seed=1)[0])
            deadline = time.monotonic() + 5.0
            while (plan.stats()["worker.drain"]["fired"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.005)  # wait until the worker is in the delay
            assert not sched.stop(timeout=0.05)  # worker stuck in the delay
            assert sched._thread is not None  # handle kept, not leaked
            assert sched.n_failed_joins == 1
        assert sched.stop(timeout=5.0)  # retry joins for real
        assert sched._thread is None
        assert not sched.worker_alive()
        store.close()

    def test_flush_timeout_propagates(self):
        store = VectorStore(dim=8, seed=0, scheduler_mode="thread")
        store.add(_vectors(80))
        store.build()
        sched = store.scheduler
        plan = FaultPlan().on("worker.drain", "delay", delay_s=0.5,
                              every=True)
        with FAULTS.injected(plan):
            sched.observe(_vectors(1, seed=1)[0])
            assert store.flush(timeout=0.05) is False
            assert sched.n_flush_timeouts == 1
        assert store.flush(timeout=10.0) is True
        store.close()

    def test_frozen_load_add_raises_clear_error(self, tmp_path):
        store = VectorStore(dim=8, seed=0)
        store.add(_vectors(30))
        store.build()
        path = store.save(tmp_path / "index.npz")
        loaded = VectorStore.load(path)
        with pytest.raises(RuntimeError, match="recover"):
            loaded.add(_vectors(1))
        # Everything else still works on the frozen store.
        assert len(loaded.search(_vectors(1, seed=1)[0], k=5)) == 5
        loaded.delete([0])
        loaded.close()

    def test_save_is_atomic(self, tmp_path):
        store = VectorStore(dim=8, seed=0)
        store.add(_vectors(30))
        store.build()
        path = store.save(tmp_path / "index.npz")
        first = path.read_bytes()
        plan = FaultPlan().on("snapshot.pre_replace", "raise")
        with FAULTS.injected(plan):
            with pytest.raises(FaultInjected):
                store.save(path)
        assert path.read_bytes() == first  # previous artifact intact
        assert not list(tmp_path.glob("*.tmp"))
        # Payload sidecar is written atomically too.
        sidecar = path.with_suffix(".payloads.json")
        assert json.loads(sidecar.read_text()) == {}


class TestFaultRegistry:
    def test_disabled_fire_is_noop(self):
        FAULTS.fire("wal.pre_fsync")  # nothing armed: must not raise

    def test_nth_hit_semantics(self):
        plan = FaultPlan().on("p", nth=3)
        with FAULTS.injected(plan):
            FAULTS.fire("p")
            FAULTS.fire("p")
            with pytest.raises(FaultInjected) as exc:
                FAULTS.fire("p")
            assert exc.value.hit == 3
            FAULTS.fire("p")  # nth without every: one-shot

    def test_every_repeats(self):
        plan = FaultPlan().on("p", nth=2, every=True)
        with FAULTS.injected(plan):
            FAULTS.fire("p")
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    FAULTS.fire("p")

    def test_probability_is_deterministic(self):
        def run():
            fired = []
            plan = FaultPlan(seed=42).on("p", probability=0.5, every=True)
            with FAULTS.injected(plan):
                for i in range(20):
                    try:
                        FAULTS.fire("p")
                    except FaultInjected:
                        fired.append(i)
            return fired
        first, second = run(), run()
        assert first == second
        assert 0 < len(first) < 20

    def test_custom_exception(self):
        plan = FaultPlan().on("p", exc=OSError)
        with FAULTS.injected(plan):
            with pytest.raises(OSError):
                FAULTS.fire("p")

    def test_stats_counts_hits_and_fires(self):
        plan = FaultPlan().on("p", nth=2)
        with FAULTS.injected(plan):
            FAULTS.fire("p")
            with pytest.raises(FaultInjected):
                FAULTS.fire("p")
            FAULTS.fire("q")  # unruled point: not tracked
        assert plan.stats() == {"p": {"hits": 2, "fired": 1}}
