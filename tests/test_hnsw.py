"""HNSW: construction, search quality, hierarchy, incremental insertion."""

import numpy as np
import pytest

from repro.evalx import compute_ground_truth, recall_at_k
from repro.graphs import HNSW
from repro.graphs.exact import is_strongly_connected


class TestConstruction:
    def test_degree_bounded(self, shared_hnsw):
        M0 = shared_hnsw.M0 + shared_hnsw._shrink_slack
        for u in range(shared_hnsw.size):
            assert len(shared_hnsw.adjacency.base_neighbors(u)) <= M0

    def test_single_layer_has_no_hierarchy(self, shared_hnsw):
        assert shared_hnsw.max_level() == 0
        assert shared_hnsw._upper == []

    def test_hierarchy_built_when_enabled(self, tiny_ds):
        index = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                     single_layer=False, seed=0)
        assert index.max_level() >= 1
        # entry lives on the top layer
        assert index._levels[index._entry] == index.max_level()

    def test_deterministic_given_seed(self, tiny_ds):
        a = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=30, seed=1)
        b = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=30, seed=1)
        for u in range(a.size):
            assert a.adjacency.base_neighbors(u) == b.adjacency.base_neighbors(u)

    def test_graph_connected_from_medoid(self, shared_hnsw):
        neighbors = [shared_hnsw.adjacency.neighbors(u).tolist()
                     for u in range(shared_hnsw.size)]
        assert is_strongly_connected(neighbors, shared_hnsw.size,
                                     start=shared_hnsw.medoid())

    def test_invalid_params(self, tiny_ds):
        with pytest.raises(ValueError):
            HNSW(tiny_ds.base, tiny_ds.metric, M=0)
        with pytest.raises(ValueError):
            HNSW(tiny_ds.base, tiny_ds.metric, ef_construction=0)


class TestSearchQuality:
    def test_high_recall_on_base_points(self, tiny_ds, shared_hnsw):
        """Base points used as queries: HNSW must be near-exact."""
        queries = tiny_ds.base[:30]
        gt = compute_ground_truth(tiny_ds.base, queries, 5, tiny_ds.metric)
        found = np.vstack([shared_hnsw.search(q, k=5, ef=40).ids for q in queries])
        assert recall_at_k(found, gt.ids) > 0.97

    def test_recall_grows_with_ef(self, tiny_ds, shared_hnsw, tiny_gt):
        k = 10
        recalls = []
        for ef in (10, 40, 160):
            found = np.vstack([shared_hnsw.search(q, k=k, ef=ef).ids[:k]
                               for q in tiny_ds.test_queries])
            recalls.append(recall_at_k(found, tiny_gt.top(k).ids))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[2] > 0.9

    def test_hierarchical_vs_single_layer_similar(self, tiny_ds, tiny_gt, shared_hnsw):
        hier = HNSW(tiny_ds.base, tiny_ds.metric, M=8, ef_construction=40,
                    single_layer=False, seed=3)
        k = 10
        f1 = np.vstack([shared_hnsw.search(q, k=k, ef=60).ids[:k]
                        for q in tiny_ds.test_queries])
        f2 = np.vstack([hier.search(q, k=k, ef=60).ids[:k]
                        for q in tiny_ds.test_queries])
        r1 = recall_at_k(f1, tiny_gt.top(k).ids)
        r2 = recall_at_k(f2, tiny_gt.top(k).ids)
        assert abs(r1 - r2) < 0.12

    def test_search_returns_sorted(self, tiny_ds, shared_hnsw):
        r = shared_hnsw.search(tiny_ds.test_queries[0], k=10, ef=30)
        assert (np.diff(r.distances) >= 0).all()

    def test_default_ef(self, tiny_ds, shared_hnsw):
        r = shared_hnsw.search(tiny_ds.test_queries[0], k=5)
        assert len(r.ids) == 5


class TestInsert:
    def test_insert_searchable(self, tiny_ds):
        index = HNSW(tiny_ds.base[:200], tiny_ds.metric, M=8,
                     ef_construction=40, single_layer=True, seed=0)
        new_vec = tiny_ds.base[300]
        new_id = index.insert(new_vec)
        assert new_id == 200
        assert index.size == 201
        result = index.search(new_vec, k=1, ef=30)
        assert result.ids[0] == new_id

    def test_insert_many_preserves_recall(self, tiny_ds):
        index = HNSW(tiny_ds.base[:300], tiny_ds.metric, M=8,
                     ef_construction=40, single_layer=True, seed=0)
        for v in tiny_ds.base[300:360]:
            index.insert(v)
        queries = tiny_ds.base[300:330]
        gt = compute_ground_truth(index.dc.data, queries, 5, tiny_ds.metric)
        found = np.vstack([index.search(q, k=5, ef=40).ids for q in queries])
        assert recall_at_k(found, gt.ids) > 0.9

    def test_insert_updates_medoid_lazily(self, tiny_ds):
        index = HNSW(tiny_ds.base[:100], tiny_ds.metric, M=8,
                     ef_construction=30, single_layer=True, seed=0)
        m1 = index.medoid()
        index.insert(tiny_ds.base[200])
        m2 = index.medoid()  # recomputed (may or may not change)
        assert 0 <= m2 <= index.size - 1
        assert isinstance(m1, int)

    def test_insert_into_hierarchical(self, tiny_ds):
        index = HNSW(tiny_ds.base[:150], tiny_ds.metric, M=6,
                     ef_construction=30, single_layer=False, seed=0)
        for v in tiny_ds.base[150:170]:
            index.insert(v)
        assert index.size == 170
        r = index.search(tiny_ds.base[160], k=1, ef=20)
        assert r.ids[0] == 160


class TestSearchMany:
    def test_shapes_and_agreement(self, tiny_ds, shared_hnsw):
        ids, dists = shared_hnsw.search_many(tiny_ds.test_queries[:5], k=7,
                                             ef=30)
        assert ids.shape == (5, 7)
        assert dists.shape == (5, 7)
        single = shared_hnsw.search(tiny_ds.test_queries[0], k=7, ef=30)
        assert ids[0].tolist() == single.ids.tolist()

    def test_single_query_promoted(self, tiny_ds, shared_hnsw):
        ids, _ = shared_hnsw.search_many(tiny_ds.test_queries[0], k=3, ef=20)
        assert ids.shape == (1, 3)


class TestStats:
    def test_stats_fields(self, shared_hnsw):
        s = shared_hnsw.stats()
        assert s["n_nodes"] == shared_hnsw.size
        assert s["n_extra_edges"] == 0
        assert s["avg_out_degree"] > 1
        assert s["index_size_bytes"] > 0


@pytest.mark.parametrize("metric", ["l2", "ip", "cosine"])
def test_all_metrics_supported(metric, tiny_ds):
    data = tiny_ds.base[:120]
    index = HNSW(data, metric, M=6, ef_construction=30, single_layer=True, seed=0)
    gt = compute_ground_truth(index.dc.data, data[:20], 5, metric)
    found = np.vstack([index.search(q, k=5, ef=40).ids for q in index.dc.data[:20]])
    assert recall_at_k(found, gt.ids) > 0.9
