"""Drifting workloads and the Sec.-7 online adaptation policy."""

import numpy as np
import pytest

from repro import FixConfig, HNSW, NGFixer, WorkloadAdapter
from repro.datasets import CrossModalConfig, make_drifting_workload
from repro.evalx import compute_ground_truth, recall_at_k


@pytest.fixture(scope="module")
def drift():
    config = CrossModalConfig(n_base=600, dim=20, n_clusters=8,
                              cluster_std=0.15, gap_scale=0.9,
                              query_spread=0.4, n_facets=2, seed=5)
    return make_drifting_workload(config, n_phases=3, queries_per_phase=50,
                                  drift_per_phase=0.6)


def _fixer(drift):
    base = HNSW(drift.base, drift.metric, M=8, ef_construction=40,
                single_layer=True, seed=1)
    return NGFixer(base, FixConfig(k=8, preprocess="approx", approx_ef=60))


def _recall(fixer, queries, base, metric, k=8, ef=16):
    gt = compute_ground_truth(base, queries, k, metric)
    found = np.vstack([fixer.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt.ids)


class TestDriftingWorkload:
    def test_phase_structure(self, drift):
        assert drift.n_phases == 3
        assert drift.gap_angles[0] == 0.0
        assert drift.gap_angles == sorted(drift.gap_angles)
        assert drift.stream().shape == (150, 20)

    def test_later_phases_drift_away(self, drift):
        """Phase-2 queries sit farther from phase-0 queries than phase-1's."""
        from repro.distances import pairwise_distances
        d1 = pairwise_distances(drift.phases[1], drift.phases[0],
                                drift.metric).min(axis=1).mean()
        d2 = pairwise_distances(drift.phases[2], drift.phases[0],
                                drift.metric).min(axis=1).mean()
        assert d2 > d1

    def test_validation(self):
        config = CrossModalConfig(n_base=100, dim=8, seed=0)
        with pytest.raises(ValueError):
            make_drifting_workload(config, n_phases=0)


class TestWorkloadAdapter:
    def test_observe_counts_and_refresh_cadence(self, drift):
        fixer = _fixer(drift)
        adapter = WorkloadAdapter(fixer, refresh_interval=20, window=10,
                                  fix_every=2)
        adapter.observe_batch(drift.phases[1][:40])
        assert adapter.observed == 40
        assert adapter.refreshes == 2

    def test_adaptation_beats_static_on_drifted_phase(self, drift):
        static = _fixer(drift)
        static.fit(drift.phases[0])
        r_static = _recall(static, drift.phases[2], drift.base, drift.metric)

        adapted = _fixer(drift)
        adapted.fit(drift.phases[0])
        adapter = WorkloadAdapter(adapted, refresh_interval=25, window=25)
        adapter.observe_batch(drift.phases[1])
        adapter.observe_batch(drift.phases[2])
        r_adapted = _recall(adapted, drift.phases[2], drift.base, drift.metric)
        assert r_adapted >= r_static

    def test_refresh_frees_and_refills_budget(self, drift):
        fixer = _fixer(drift)
        fixer.fit(drift.phases[0])
        adapter = WorkloadAdapter(fixer, refresh_interval=10_000, window=20,
                                  refresh_drop_fraction=0.5)
        adapter.observe_batch(drift.phases[1][:20])
        report = adapter.refresh()
        assert report["dropped_extra_edges"] > 0
        assert report["replayed"] == 20
        assert fixer.adjacency.n_extra_edges() > 0

    def test_refresh_preserves_rfix_edges(self, drift):
        """Regression: the refresh cycle's edge drop must never remove EH=inf
        RFix navigation edges nor reset their sentinel tag."""
        from repro.graphs.adjacency import EH_INFINITE
        fixer = _fixer(drift)
        fixer.fit(drift.phases[0][:20])
        u = 0
        v = next(x for x in range(1, fixer.dc.size)
                 if not fixer.adjacency.has_edge(u, x))
        assert fixer.adjacency.add_extra_edge(u, v, eh=EH_INFINITE)
        adapter = WorkloadAdapter(fixer, refresh_interval=10_000, window=5,
                                  refresh_drop_fraction=1.0)
        adapter.observe_batch(drift.phases[1][:5])
        adapter.refresh()
        assert fixer.adjacency.extra_neighbors(u).get(v) == EH_INFINITE

    def test_search_passthrough(self, drift):
        fixer = _fixer(drift)
        adapter = WorkloadAdapter(fixer)
        result = adapter.search(drift.phases[0][0], k=5, ef=20)
        assert len(result.ids) == 5

    def test_validation(self, drift):
        fixer = _fixer(drift)
        with pytest.raises(ValueError):
            WorkloadAdapter(fixer, refresh_interval=0)
        with pytest.raises(ValueError):
            WorkloadAdapter(fixer, refresh_drop_fraction=2.0)
