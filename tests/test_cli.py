"""CLI subcommands end to end (direct main() invocation)."""

import pytest

from repro.cli import main


def _run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestDatasets:
    def test_lists_registry(self, capsys):
        code, out = _run(capsys, "datasets")
        assert code == 0
        for name in ("laion-sim", "sift-sim", "mainsearch-sim"):
            assert name in out


class TestBuild:
    @pytest.mark.parametrize("index", ["hnsw", "nsg", "roargraph", "vamana"])
    def test_builds(self, capsys, index):
        code, out = _run(capsys, "build", "--dataset", "webvid-sim",
                         "--scale", "0.1", "--index", index)
        assert code == 0
        assert "avg degree" in out

    def test_build_and_save(self, capsys, tmp_path):
        out_path = tmp_path / "g.npz"
        code, out = _run(capsys, "build", "--dataset", "webvid-sim",
                         "--scale", "0.1", "--index", "hnsw",
                         "--out", str(out_path))
        assert code == 0
        assert out_path.exists()


class TestFixEvaluate:
    def test_fix_then_evaluate_saved(self, capsys, tmp_path):
        out_path = tmp_path / "fixed.npz"
        code, out = _run(capsys, "fix", "--dataset", "webvid-sim",
                         "--scale", "0.1", "--out", str(out_path))
        assert code == 0
        assert "extra edges" in out
        code, out = _run(capsys, "evaluate", "--dataset", "webvid-sim",
                         "--scale", "0.1", "--index-file", str(out_path),
                         "--efs", "10", "20")
        assert code == 0
        assert "recall" in out and "NDC/query" in out

    def test_evaluate_fresh(self, capsys):
        code, out = _run(capsys, "evaluate", "--dataset", "webvid-sim",
                         "--scale", "0.1", "--efs", "10")
        assert code == 0
        assert "freshly built" in out


class TestExplain:
    def test_plain_graph(self, capsys):
        code, out = _run(capsys, "explain", "--dataset", "webvid-sim",
                         "--scale", "0.2", "--query-index", "0")
        assert code == 0
        assert "verdict" in out and "recommended ef" in out

    def test_fixed_graph(self, capsys):
        code, out = _run(capsys, "explain", "--dataset", "webvid-sim",
                         "--scale", "0.2", "--query-index", "0", "--fixed")
        assert code == 0
        assert "fixed graph" in out

    def test_out_of_range_index(self, capsys):
        with pytest.raises(SystemExit):
            main(["explain", "--dataset", "webvid-sim", "--scale", "0.2",
                  "--query-index", "99999"])


class TestAnalyze:
    def test_prints_histogram_and_qng(self, capsys):
        code, out = _run(capsys, "analyze", "--dataset", "webvid-sim",
                         "--scale", "0.1")
        assert code == 0
        assert "phase-1 success" in out
        assert "QNG layout" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
