"""Cross-module integration: the full NGFix* pipeline on registry datasets,
the paper's comparative orderings at miniature scale, and the public API."""

import pytest

import repro
from repro import (
    FixConfig,
    HNSW,
    NGFixer,
    RoarGraph,
    compute_ground_truth,
    evaluate_index,
    load_dataset,
    sweep,
)
from repro.evalx import ef_for_recall


@pytest.fixture(scope="module")
def workload():
    ds = load_dataset("laion-sim", scale=0.25, seed=11)
    gt = compute_ground_truth(ds.base, ds.test_queries, 10, ds.metric)
    return ds, gt


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self, workload):
        ds, gt = workload
        base = HNSW(ds.base, ds.metric, M=8, ef_construction=40,
                    single_layer=True)
        fixer = NGFixer(base, FixConfig(k=10, preprocess="approx"))
        fixer.fit(ds.train_queries[:30])
        point = evaluate_index(fixer, ds.test_queries, gt, k=10, ef=30)
        assert point.recall > 0.5


class TestComparativeOrdering:
    """The relative results the paper's evaluation hinges on."""

    @pytest.fixture(scope="class")
    def curves(self, workload):
        ds, gt = workload
        efs = [10, 20, 40, 80, 160, 320]
        hnsw = HNSW(ds.base, ds.metric, M=10, ef_construction=50,
                    single_layer=True, seed=0)
        sw_hnsw = sweep(hnsw, ds.test_queries, gt, 10, efs)

        fixer = NGFixer(HNSW(ds.base, ds.metric, M=10, ef_construction=50,
                             single_layer=True, seed=0),
                        FixConfig(k=10, max_extra_degree=12, preprocess="exact"))
        fixer.fit(ds.train_queries)
        sw_fix = sweep(fixer, ds.test_queries, gt, 10, efs)

        roar = RoarGraph(ds.base, ds.metric, ds.train_queries, M=20,
                         n_query_neighbors=24, knn_k=12)
        sw_roar = sweep(roar, ds.test_queries, gt, 10, efs)
        return sw_hnsw, sw_fix, sw_roar

    def test_ngfix_dominates_hnsw_at_matching_ef(self, curves):
        sw_hnsw, sw_fix, _ = curves
        by_ef = {p.ef: p.recall for p in sw_hnsw}
        wins = sum(p.recall >= by_ef[p.ef] - 0.01 for p in sw_fix
                   if p.ef in by_ef)
        assert wins >= len(sw_fix) - 1

    def test_ngfix_reaches_high_recall_with_less_ef_than_hnsw(self, curves):
        sw_hnsw, sw_fix, _ = curves
        target = 0.95
        ef_fix = ef_for_recall(sw_fix, target)
        ef_hnsw = ef_for_recall(sw_hnsw, target)
        assert ef_fix is not None
        if ef_hnsw is not None:
            assert ef_fix <= ef_hnsw

    def test_ngfix_beats_roargraph_at_high_recall(self, curves):
        _, sw_fix, sw_roar = curves
        target = 0.95
        ef_fix = ef_for_recall(sw_fix, target)
        ef_roar = ef_for_recall(sw_roar, target)
        assert ef_fix is not None
        if ef_roar is not None:
            assert ef_fix <= ef_roar


class TestSingleModalShape:
    def test_modest_gain_no_regression(self):
        """Fig. 11: on single-modal data NGFix must not hurt (and gains are
        small because hard queries are rare)."""
        ds = load_dataset("sift-sim", scale=0.25, seed=2)
        gt = compute_ground_truth(ds.base, ds.test_queries, 10, ds.metric)
        base = HNSW(ds.base, ds.metric, M=8, ef_construction=40,
                    single_layer=True, seed=0)
        before = evaluate_index(base, ds.test_queries, gt, k=10, ef=30)
        fixer = NGFixer(base, FixConfig(k=10, preprocess="exact"))
        fixer.fit(ds.train_queries)
        after = evaluate_index(fixer, ds.test_queries, gt, k=10, ef=30)
        assert after.recall >= before.recall - 0.02


class TestIdQueriesUnaffected:
    def test_fixing_with_ood_does_not_hurt_id(self, workload):
        """Fig. 10: OOD fixing leaves ID-query performance intact."""
        ds, _ = workload
        assert ds.id_queries is not None
        gt_id = compute_ground_truth(ds.base, ds.id_queries, 10, ds.metric)
        base = HNSW(ds.base, ds.metric, M=8, ef_construction=40,
                    single_layer=True, seed=0)
        before = evaluate_index(base, ds.id_queries, gt_id, k=10, ef=30)
        fixer = NGFixer(base, FixConfig(k=10, preprocess="exact"))
        fixer.fit(ds.train_queries)
        after = evaluate_index(fixer, ds.id_queries, gt_id, k=10, ef=30)
        assert after.recall >= before.recall - 0.03


class TestApproxVsExactPreprocessing:
    def test_near_identical_quality(self, workload):
        """Fig. 13(a): approximate-NN preprocessing ~ exact-NN quality."""
        ds, gt = workload
        results = {}
        for mode in ("exact", "approx"):
            base = HNSW(ds.base, ds.metric, M=8, ef_construction=40,
                        single_layer=True, seed=0)
            fixer = NGFixer(base, FixConfig(k=10, preprocess=mode,
                                            approx_ef=80))
            fixer.fit(ds.train_queries)
            results[mode] = evaluate_index(fixer, ds.test_queries, gt,
                                           k=10, ef=30).recall
        assert abs(results["exact"] - results["approx"]) < 0.06
