"""Ground truth, accuracy metrics, sweep harness, and reporting."""

import numpy as np
import pytest

from repro.distances import Metric, pairwise_distances
from repro.evalx import (
    GroundTruth,
    compute_ground_truth,
    evaluate_index,
    ef_for_recall,
    format_table,
    ndc_at_rderr,
    qps_at_recall,
    recall_at_k,
    recall_per_query,
    rderr_at_k,
    sweep,
)
from repro.evalx.metrics import rderr_per_query
from repro.evalx.runner import OperatingPoint
from repro.graphs import BruteForceIndex


class TestGroundTruth:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((50, 6)).astype(np.float32)
        queries = rng.standard_normal((7, 6)).astype(np.float32)
        for metric in Metric:
            gt = compute_ground_truth(base, queries, 5, metric, batch_size=3)
            d = pairwise_distances(queries, base, metric)
            expected = np.argsort(d, axis=1, kind="stable")[:, :5]
            assert np.array_equal(gt.ids, expected)
            assert np.allclose(gt.distances,
                               np.take_along_axis(d, expected, 1), atol=1e-5)

    def test_distances_sorted(self):
        rng = np.random.default_rng(1)
        gt = compute_ground_truth(rng.standard_normal((40, 4)),
                                  rng.standard_normal((5, 4)), 10, Metric.L2)
        assert (np.diff(gt.distances, axis=1) >= -1e-9).all()

    def test_k_too_large(self):
        with pytest.raises(ValueError, match="exceeds base size"):
            compute_ground_truth(np.zeros((3, 2)), np.zeros((1, 2)), 5, Metric.L2)

    def test_top_view(self):
        gt = compute_ground_truth(np.random.default_rng(0).standard_normal((20, 3)),
                                  np.zeros((2, 3)), 10, Metric.L2)
        top = gt.top(4)
        assert top.ids.shape == (2, 4)
        with pytest.raises(ValueError):
            gt.top(11)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GroundTruth(np.zeros((2, 3), dtype=np.int64), np.zeros((2, 2)),
                        Metric.L2, 3)


class TestRecall:
    def test_perfect(self):
        ids = np.array([[0, 1, 2], [3, 4, 5]])
        assert recall_at_k(ids, ids) == 1.0

    def test_order_insensitive(self):
        gt = np.array([[0, 1, 2]])
        found = np.array([[2, 0, 1]])
        assert recall_at_k(found, gt) == 1.0

    def test_partial(self):
        gt = np.array([[0, 1, 2, 3]])
        found = np.array([[0, 1, 9, 9]])
        assert recall_at_k(found, gt) == 0.5

    def test_found_may_be_wider(self):
        gt = np.array([[0, 1]])
        found = np.array([[0, 1, 5, 6]])  # only first k columns count
        assert recall_at_k(found, gt) == 1.0

    def test_per_query_vector(self):
        gt = np.array([[0, 1], [2, 3]])
        found = np.array([[0, 9], [2, 3]])
        assert recall_per_query(found, gt).tolist() == [0.5, 1.0]

    def test_query_count_mismatch(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((2, 2), int), np.zeros((3, 2), int))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros(3, int), np.zeros((1, 3), int))


class TestRderr:
    def test_zero_when_exact(self):
        d = np.array([[1.0, 2.0, 3.0]])
        assert rderr_at_k(d, d) == 0.0

    def test_positive_when_worse(self):
        exact = np.array([[1.0, 2.0]])
        found = np.array([[1.0, 4.0]])
        assert rderr_at_k(found, exact) == pytest.approx(0.5)

    def test_clamped_nonnegative(self):
        # numerical jitter below exact distances must not produce negatives
        exact = np.array([[1.0, 2.0]])
        found = np.array([[0.9999999, 2.0]])
        assert rderr_at_k(found, exact) >= 0.0

    def test_sorted_internally(self):
        exact = np.array([[1.0, 2.0]])
        found = np.array([[2.0, 1.0]])
        assert rderr_at_k(found, exact) == 0.0

    def test_per_query(self):
        exact = np.array([[1.0], [1.0]])
        found = np.array([[1.0], [2.0]])
        assert rderr_per_query(found, exact).tolist() == [0.0, 1.0]

    def test_too_few_columns(self):
        with pytest.raises(ValueError):
            rderr_at_k(np.zeros((1, 2)), np.zeros((1, 3)))


class TestRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((100, 6)).astype(np.float32)
        queries = rng.standard_normal((10, 6)).astype(np.float32)
        gt = compute_ground_truth(base, queries, 5, Metric.L2)
        return BruteForceIndex(base, Metric.L2), queries, gt

    def test_bruteforce_perfect_recall(self, setup):
        index, queries, gt = setup
        point = evaluate_index(index, queries, gt, k=5, ef=5)
        assert point.recall == 1.0
        assert point.rderr < 1e-5  # float32 search vs float64 ground truth
        assert point.ndc_per_query == 100.0
        assert point.qps > 0

    def test_ef_below_k_rejected(self, setup):
        index, queries, gt = setup
        with pytest.raises(ValueError):
            evaluate_index(index, queries, gt, k=5, ef=3)

    def test_sweep_stops_at_saturation(self, setup):
        index, queries, gt = setup
        points = sweep(index, queries, gt, 5, ef_values=[5, 10, 20])
        assert len(points) == 1  # brute force saturates immediately

    def test_query_count_mismatch(self, setup):
        index, queries, gt = setup
        with pytest.raises(ValueError):
            evaluate_index(index, queries[:3], gt, k=5, ef=5)


class TestInterpolation:
    def _curve(self):
        return [
            OperatingPoint(ef=10, recall=0.80, rderr=0.020, qps=1000, ndc_per_query=100, elapsed_s=0.01),
            OperatingPoint(ef=20, recall=0.90, rderr=0.010, qps=500, ndc_per_query=200, elapsed_s=0.02),
            OperatingPoint(ef=40, recall=1.00, rderr=0.000, qps=250, ndc_per_query=400, elapsed_s=0.04),
        ]

    def test_qps_exact_point(self):
        assert qps_at_recall(self._curve(), 0.90) == 500

    def test_qps_interpolated(self):
        v = qps_at_recall(self._curve(), 0.95)
        assert 250 < v < 500

    def test_qps_unreachable(self):
        curve = self._curve()[:2]
        assert qps_at_recall(curve, 0.99) is None

    def test_qps_below_curve_start(self):
        assert qps_at_recall(self._curve(), 0.5) == 1000

    def test_ndc_at_rderr(self):
        v = ndc_at_rderr(self._curve(), 0.010)
        assert v == 200

    def test_ndc_interpolated(self):
        v = ndc_at_rderr(self._curve(), 0.005)
        assert 200 < v < 400

    def test_ef_for_recall(self):
        assert ef_for_recall(self._curve(), 0.85) == 20
        assert ef_for_recall(self._curve(), 0.99) == 40
        assert ef_for_recall(self._curve()[:1], 0.99) is None


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", None]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert "2.5" in out and "x" in out and "-" in out

    def test_large_numbers_grouped(self):
        out = format_table(["n"], [[12345.0]])
        assert "12,345" in out

    def test_nan(self):
        out = format_table(["n"], [[float("nan")]])
        assert "nan" in out
