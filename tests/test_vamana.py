"""Vamana and RobustVamana (OOD-DiskANN)."""

import numpy as np
import pytest

from repro.evalx import compute_ground_truth, recall_at_k
from repro.graphs import RobustVamana, Vamana


def _recall_of(index, queries, gt, k, ef):
    found = np.vstack([index.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt.top(k).ids)


class TestVamana:
    @pytest.fixture(scope="class")
    def vamana(self, tiny_ds):
        return Vamana(tiny_ds.base, tiny_ds.metric, R=12, L=30, seed=0)

    def test_degree_bounded(self, vamana):
        for u in range(vamana.size):
            assert len(vamana.adjacency.base_neighbors(u)) <= vamana.R

    def test_recall_on_base_points(self, tiny_ds, vamana):
        queries = tiny_ds.base[:25]
        gt = compute_ground_truth(tiny_ds.base, queries, 5, tiny_ds.metric)
        assert _recall_of(vamana, queries, gt, 5, 40) > 0.9

    def test_reasonable_ood_recall(self, tiny_ds, tiny_gt, vamana):
        assert _recall_of(vamana, tiny_ds.test_queries, tiny_gt, 10, 80) > 0.7

    def test_deterministic(self, tiny_ds):
        a = Vamana(tiny_ds.base, tiny_ds.metric, R=8, L=20, seed=5)
        b = Vamana(tiny_ds.base, tiny_ds.metric, R=8, L=20, seed=5)
        for u in range(a.size):
            assert a.adjacency.base_neighbors(u) == b.adjacency.base_neighbors(u)

    def test_alpha_one_skips_second_pass(self, tiny_ds):
        index = Vamana(tiny_ds.base[:100], tiny_ds.metric, R=8, L=20,
                       alpha=1.0, seed=0)
        assert index.size == 100

    def test_invalid_params(self, tiny_ds):
        with pytest.raises(ValueError):
            Vamana(tiny_ds.base, tiny_ds.metric, R=0)
        with pytest.raises(ValueError):
            Vamana(tiny_ds.base, tiny_ds.metric, alpha=0.9)


class TestRobustVamana:
    @pytest.fixture(scope="class")
    def robust(self, tiny_ds):
        return RobustVamana(tiny_ds.base, tiny_ds.metric,
                            tiny_ds.train_queries, R=12, L=30, seed=0)

    def test_navigators_are_tombstoned(self, robust, tiny_ds):
        assert robust.n_base == tiny_ds.n
        assert robust.n_navigators == len(tiny_ds.train_queries)
        assert robust.adjacency.tombstones == set(
            range(tiny_ds.n, tiny_ds.n + len(tiny_ds.train_queries)))

    def test_navigators_never_returned(self, robust, tiny_ds):
        for q in tiny_ds.test_queries[:15]:
            result = robust.search(q, k=10, ef=40)
            assert (result.ids < robust.n_base).all()

    def test_recall_on_ood(self, tiny_ds, tiny_gt, robust):
        assert _recall_of(robust, tiny_ds.test_queries, tiny_gt, 10, 80) > 0.75

    def test_query_dim_mismatch_rejected(self, tiny_ds):
        with pytest.raises(ValueError, match="dimension"):
            RobustVamana(tiny_ds.base, tiny_ds.metric,
                         np.zeros((3, tiny_ds.dim + 1), dtype=np.float32))

    def test_stats_report_navigators(self, robust):
        assert robust.stats()["n_navigators"] == robust.n_navigators

    def test_longer_paths_than_plain_vamana(self, tiny_ds, tiny_gt, robust):
        """The paper's critique: navigator nodes extend search paths, so
        RobustVamana spends more distance computations at the same ef."""
        plain = Vamana(tiny_ds.base, tiny_ds.metric, R=12, L=30, seed=0)
        robust.dc.reset_ndc()
        for q in tiny_ds.test_queries:
            robust.search(q, k=10, ef=40)
        ndc_robust = robust.dc.reset_ndc()
        plain.dc.reset_ndc()
        for q in tiny_ds.test_queries:
            plain.search(q, k=10, ef=40)
        ndc_plain = plain.dc.reset_ndc()
        assert ndc_robust > ndc_plain
