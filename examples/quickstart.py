"""Quickstart: fix an HNSW index with historical queries and measure the gain.

Run:  python examples/quickstart.py
"""

from repro import (
    HNSW,
    FixConfig,
    NGFixer,
    compute_ground_truth,
    evaluate_index,
    load_dataset,
)


def main():
    # A simulated cross-modal workload: base = one modality, queries = the
    # other, separated by a modality gap (see repro.datasets.crossmodal).
    ds = load_dataset("laion-sim", scale=0.5)
    print(f"dataset: {ds}")

    k = 10
    gt = compute_ground_truth(ds.base, ds.test_queries, k, ds.metric)

    # Base graph: HNSW bottom layer, as in the paper.
    index = HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                 single_layer=True)
    before = evaluate_index(index, ds.test_queries, gt, k=k, ef=30)
    print(f"HNSW        : recall@{k}={before.recall:.3f}  "
          f"NDC/query={before.ndc_per_query:.0f}  QPS={before.qps:.0f}")

    # NGFix*: detect and fix defective graph regions around the historical
    # queries.  preprocess="approx" = the fast mode (no exact ground truth).
    fixer = NGFixer(index, FixConfig(k=k, preprocess="approx"))
    fixer.fit(ds.train_queries)
    after = evaluate_index(fixer, ds.test_queries, gt, k=k, ef=30)
    print(f"HNSW-NGFix* : recall@{k}={after.recall:.3f}  "
          f"NDC/query={after.ndc_per_query:.0f}  QPS={after.qps:.0f}")

    stats = fixer.stats()
    print(f"fixing added {stats['n_extra_edges']} extra edges for "
          f"{stats['queries_fixed']} historical queries "
          f"in {stats['preprocess_seconds'] + stats['fix_seconds']:.2f}s")
    assert after.recall >= before.recall


if __name__ == "__main__":
    main()
