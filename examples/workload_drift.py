"""Workload drift: keep the index sharp as the query distribution moves.

The paper's production motivation (Sec. 1 & 7): between two periods of
e-commerce traffic, ~10% of queries drift away from the old workload, and
RoarGraph-style indexes need a full rebuild to follow.  NGFix* adapts online
via the WorkloadAdapter: fix-as-you-serve plus periodic extra-edge refresh
with newest-first re-fixing.  The adapted index is then persisted and
reloaded, the deployment cycle of a real service.

Run:  python examples/workload_drift.py
"""

import tempfile

import numpy as np

from repro import (
    HNSW,
    CrossModalConfig,
    FixConfig,
    NGFixer,
    WorkloadAdapter,
    compute_ground_truth,
    load_index,
    make_drifting_workload,
    recall_at_k,
    save_index,
)


def recall_on(index, queries, base, metric, k=10, ef=20):
    gt = compute_ground_truth(base, queries, k, metric)
    found = np.vstack([index.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt.ids)


def main():
    config = CrossModalConfig(n_base=1500, dim=32, n_clusters=14,
                              cluster_std=0.14, gap_scale=1.0,
                              query_spread=0.45, n_facets=2, seed=1)
    drift = make_drifting_workload(config, n_phases=3, queries_per_phase=120,
                                   drift_per_phase=0.6)
    print(f"3-phase workload over {drift.base.shape[0]} vectors; "
          f"gap angles {[round(a, 2) for a in drift.gap_angles]} rad")

    base = HNSW(drift.base, drift.metric, M=12, ef_construction=60,
                single_layer=True)
    fixer = NGFixer(base, FixConfig(k=10, preprocess="approx"))
    fixer.fit(drift.phases[0])
    print(f"\nfixed on phase-0 history; phase recalls: "
          f"{[round(recall_on(fixer, p, drift.base, drift.metric), 3) for p in drift.phases]}")

    adapter = WorkloadAdapter(fixer, refresh_interval=60, window=60,
                              refresh_drop_fraction=0.2)
    print("serving phases 1-2 through the adapter "
          "(fix-as-you-serve + periodic refresh) ...")
    adapter.observe_batch(drift.phases[1])
    adapter.observe_batch(drift.phases[2])
    print(f"after adaptation ({adapter.refreshes} refreshes): "
          f"{[round(recall_on(fixer, p, drift.base, drift.metric), 3) for p in drift.phases]}")

    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        path = save_index(fixer, handle.name)
        served = load_index(path)
        print(f"\npersisted and reloaded ({path.stat().st_size} bytes); "
              f"phase-2 recall from the loaded artifact: "
              f"{recall_on(served, drift.phases[2], drift.base, drift.metric):.3f}")


if __name__ == "__main__":
    main()
