"""E-commerce production scenario: online fixing + answer cache.

Mirrors the paper's MainSearch deployment story:

1. the index serves a live query stream whose workload slowly drifts;
2. each served query is also fed to NGFix* *online* (approximate
   preprocessing keeps this cheap), so the graph adapts to the drift without
   a rebuild — the capability RoarGraph lacks;
3. exact-repeat queries (users re-issuing the same search) short-circuit
   through an MD5 hash cache.

Run:  python examples/ecommerce_online_fixing.py
"""

import numpy as np

from repro import (
    HNSW,
    CachedSearcher,
    FixConfig,
    HashTableCache,
    NGFixer,
    compute_ground_truth,
    load_dataset,
    recall_at_k,
)


def stream_recall(index, queries, gt, k, ef):
    found = np.vstack([index.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt.ids)


def main():
    ds = load_dataset("mainsearch-sim", scale=0.5)
    k, ef = 10, 25
    # The test stream contains ~10% drifted queries the history never saw.
    stream = ds.test_queries
    gt = compute_ground_truth(ds.base, stream, k, ds.metric)

    index = HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                 single_layer=True)
    fixer = NGFixer(index, FixConfig(k=k, preprocess="approx"))
    print(f"serving {len(stream)} queries at ef={ef} ...")
    print(f"recall before any fixing : {stream_recall(fixer, stream, gt, k, ef):.3f}")

    # Warm-up: fix with whatever history exists (small for MainSearch).
    fixer.fit(ds.train_queries)
    print(f"after fixing with history: {stream_recall(fixer, stream, gt, k, ef):.3f}")

    # Online adaptation: the stream itself becomes history, one query at a
    # time — by the second pass the drifted region is repaired too.
    for query in stream:
        fixer.fix_query(query)
    print(f"after online fixing      : {stream_recall(fixer, stream, gt, k, ef):.3f}")

    # Exact-repeat traffic through the hash cache.
    cached = CachedSearcher(fixer, HashTableCache())
    gt_hist = compute_ground_truth(ds.base, ds.train_queries, k, ds.metric)
    cached.warm(ds.train_queries, gt_hist.ids, gt_hist.distances)
    for q in ds.train_queries[:50]:
        cached.search(q, k=k, ef=ef)
    print(f"hash cache: {cached.cache.hits} hits / "
          f"{cached.cache.hits + cached.cache.misses} repeated queries, "
          f"{cached.cache.memory_bytes()} bytes stored")


if __name__ == "__main__":
    main()
