"""Bring your own data: fvecs files in, tuned + fixed index out.

The workflow for running this library on the real benchmark corpora
(SIFT/DEEP/Text-to-Image ship as .fvecs/.bvecs): read vectors, auto-tune
NGFix* under an index-size budget, fix, evaluate, persist.  Here the
"files" are written from a synthetic dataset first, so the script runs
offline end to end.

Run:  python examples/bring_your_own_data.py
"""

import tempfile
from pathlib import Path

from repro import (
    HNSW,
    FixConfig,
    NGFixer,
    compute_ground_truth,
    evaluate_index,
    load_dataset,
    save_index,
)
from repro.datasets import read_vecs, write_vecs
from repro.evalx import tune_fix_config


def main():
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # Stand-in for downloaded benchmark files.
        source = load_dataset("text2image-sim", scale=0.5)
        write_vecs(tmp / "base.fvecs", source.base)
        write_vecs(tmp / "queries.fvecs", source.train_queries)
        write_vecs(tmp / "test.fvecs", source.test_queries)

        # ---- the part a user runs on their own files -------------------
        base = read_vecs(tmp / "base.fvecs")
        history = read_vecs(tmp / "queries.fvecs")
        test = read_vecs(tmp / "test.fvecs", max_vectors=100)
        metric = "ip"
        k = 10
        print(f"loaded {base.shape[0]} base vectors (d={base.shape[1]}), "
              f"{history.shape[0]} historical queries")

        index = HNSW(base, metric, M=12, ef_construction=60, single_layer=True)
        gt = compute_ground_truth(base, test, k, metric)

        print("auto-tuning NGFix* under a 30 KB extra-edge budget ...")
        best, trials = tune_fix_config(
            index, history[:150], test, gt, k=k, target_recall=0.95,
            max_extra_bytes=30_000, degree_grid=(4, 8, 16),
            ef_values=[10, 20, 40, 80, 160])
        for t in trials:
            print(f"  degree={t.params['max_extra_degree']:>2}: "
                  f"NDC@0.95={t.ndc_at_target and round(t.ndc_at_target)} "
                  f"extra={t.extra_bytes}B feasible={t.feasible}")
        print(f"chosen: max_extra_degree={best['max_extra_degree']}")

        fixer = NGFixer(index, FixConfig(**best))
        fixer.fit(history)
        point = evaluate_index(fixer, test, gt, k=k, ef=30)
        print(f"fixed index: recall@{k}={point.recall:.3f} "
              f"NDC/query={point.ndc_per_query:.0f}")

        path = save_index(fixer, tmp / "index")
        print(f"persisted to {path.name} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
