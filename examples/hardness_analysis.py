"""Hardness analysis: inspect a query's QNG and Escape Hardness matrix, then
watch NGFix repair it (paper Secs. 4-5 walk-through).

Run:  python examples/hardness_analysis.py
"""

import numpy as np

from repro import (
    HNSW,
    compute_ground_truth,
    escape_hardness,
    load_dataset,
    ngfix_query,
    qng_connectivity_report,
    rfix_query,
)
from repro.evalx import recall_per_query
from repro.graphs.base import medoid_id


def show_eh(eh, label):
    finite = eh.eh[np.isfinite(eh.eh) & (eh.eh > 0)]
    print(f"  {label}: unreachable pairs = {eh.n_unreachable_pairs()}, "
          f"hardness score = {eh.hardness_score():.2f}, "
          f"max finite EH = {finite.max() if finite.size else 0:.0f}")


def main():
    ds = load_dataset("laion-sim", scale=0.5)
    k, K_max = 10, 30
    index = HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                 single_layer=True)
    gt = compute_ground_truth(ds.base, ds.test_queries, K_max, ds.metric)

    # Rank queries by base-graph recall to find a genuinely hard one.
    found = np.vstack([index.search(q, k=k, ef=2 * k).ids[:k]
                       for q in ds.test_queries])
    recalls = recall_per_query(found, gt.ids[:, :k])
    hard = int(np.argmin(recalls))
    easy = int(np.argmax(recalls))

    for label, qi in (("EASY", easy), ("HARD", hard)):
        print(f"\n{label} query #{qi}: recall@{k} = {recalls[qi]:.2f}")
        report = qng_connectivity_report(index.adjacency.neighbors,
                                         gt.ids[qi][:k])
        print(f"  QNG: {report['n_edges']} edges, "
              f"{report['avg_reachable']:.1f}/{k} avg reachable, "
              f"{report['isolated_points']} isolated points")
        eh = escape_hardness(index.adjacency.neighbors, gt.ids[qi], k)
        show_eh(eh, "EH before fix")

    # Fix the hard query's neighborhood and re-measure.
    print(f"\napplying NGFix to the HARD query ...")
    eh = escape_hardness(index.adjacency.neighbors, gt.ids[hard], k)
    outcome = ngfix_query(index.adjacency, index.dc, eh, max_extra_degree=12)
    print(f"  added {len(outcome.edges_added)} directed extra edges "
          f"(Theorem 4 bound: {2 * (k - 1)})")
    eh_after = escape_hardness(index.adjacency.neighbors, gt.ids[hard], k)
    show_eh(eh_after, "EH after fix ")

    def measure():
        result = index.search(ds.test_queries[hard], k=k, ef=2 * k)
        return len(set(result.ids.tolist())
                   & set(gt.ids[hard][:k].tolist())) / k

    after_ngfix = measure()
    print(f"  hard query recall@{k}: {recalls[hard]:.2f} -> {after_ngfix:.2f}")

    if after_ngfix == 0.0:
        # Recall zero despite a repaired neighborhood means the search never
        # *reaches* the neighborhood: a phase-1 failure, which is exactly
        # what RFix exists for (Sec. 5.4).
        print("\n  recall still 0: the search stalls before the vicinity "
              "(phase-1 failure) -> applying RFix ...")
        outcome = rfix_query(
            index.adjacency, index.dc, ds.test_queries[hard],
            gt.ids[hard][:k], gt.distances[hard][:k],
            entry_point=medoid_id(index.dc), search_ef=2 * k,
            max_extra_degree=12)
        print(f"  RFix added {len(outcome.edges_added)} navigation edges "
              f"(EH = inf, never evicted); reached vicinity: "
              f"{outcome.reached_vicinity}")
        print(f"  hard query recall@{k} after NGFix + RFix: {measure():.2f}")


if __name__ == "__main__":
    main()
