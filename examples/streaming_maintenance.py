"""Streaming maintenance: insertions with partial rebuilds, deletions with
NGFix repair (paper Sec. 5.5 / Figs. 18-19).

Run:  python examples/streaming_maintenance.py
"""

import numpy as np

from repro import (
    HNSW,
    FixConfig,
    IndexMaintainer,
    NGFixer,
    load_dataset,
    recall_at_k,
)


def live_recall(fixer, queries, k, ef, deleted=()):
    """Recall against exact ground truth over the *surviving* corpus."""
    from repro.distances import pairwise_distances
    d = pairwise_distances(queries, fixer.dc.data, fixer.dc.metric)
    if len(deleted):
        d[:, list(deleted)] = np.inf
    gt_ids = np.argsort(d, axis=1, kind="stable")[:, :k]
    found = np.vstack([fixer.search(q, k=k, ef=ef).ids[:k] for q in queries])
    return recall_at_k(found, gt_ids)


def main():
    ds = load_dataset("text2image-sim", scale=0.5)
    k, ef = 10, 30
    n_initial = int(0.8 * ds.n)

    print(f"initial index over {n_initial} of {ds.n} vectors ...")
    index = HNSW(ds.base[:n_initial], ds.metric, M=12, ef_construction=60,
                 single_layer=True)
    fixer = NGFixer(index, FixConfig(k=k, preprocess="approx"))
    fixer.fit(ds.train_queries)
    maintainer = IndexMaintainer(fixer, ds.train_queries, compact_threshold=0.05)
    print(f"recall: {live_recall(fixer, ds.test_queries, k, ef):.3f}")

    print(f"\ninserting the remaining {ds.n - n_initial} vectors ...")
    maintainer.insert(ds.base[n_initial:])
    print(f"recall after inserts        : "
          f"{live_recall(fixer, ds.test_queries, k, ef):.3f}")

    report = maintainer.partial_rebuild(proportion=0.5, drop_fraction=0.2)
    print(f"partial rebuild (p=0.5)     : dropped {report['dropped_extra_edges']} "
          f"extra edges, re-fixed {report['history_used']} queries "
          f"in {report['seconds']:.2f}s")
    print(f"recall after partial rebuild: "
          f"{live_recall(fixer, ds.test_queries, k, ef):.3f}")

    print("\ndeleting 10% of the corpus ...")
    rng = np.random.default_rng(0)
    victims = rng.choice(fixer.dc.size, size=fixer.dc.size // 10, replace=False)
    compacted = maintainer.delete(victims)  # crosses the 5% threshold
    print(f"compaction triggered automatically: {compacted} "
          f"({maintainer.last_compaction_seconds:.2f}s, NGFix repair included)")
    print(f"recall after delete + repair: "
          f"{live_recall(fixer, ds.test_queries, k, ef, deleted=victims):.3f}")


if __name__ == "__main__":
    main()
