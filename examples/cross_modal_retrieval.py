"""Cross-modal retrieval shoot-out: NGFix* vs RoarGraph vs HNSW vs NSG.

Reproduces the flavor of the paper's Fig. 8 on a simulated text-to-image
workload: sweep the search list size and report QPS at fixed recall.

Run:  python examples/cross_modal_retrieval.py
"""

from repro import (
    HNSW,
    NSG,
    FixConfig,
    NGFixer,
    RoarGraph,
    compute_ground_truth,
    load_dataset,
    qps_at_recall,
    sweep,
)
from repro.evalx import format_table


def main():
    ds = load_dataset("text2image-sim", scale=0.5)
    k = 10
    gt = compute_ground_truth(ds.base, ds.test_queries, k, ds.metric)
    efs = [10, 15, 20, 30, 45, 70, 100, 150, 220]

    print(f"building indexes on {ds.n} vectors "
          f"({len(ds.train_queries)} historical queries) ...")
    hnsw = HNSW(ds.base, ds.metric, M=12, ef_construction=60, single_layer=True)
    fixer = NGFixer(hnsw.clone(), FixConfig(k=k, preprocess="approx"))
    fixer.fit(ds.train_queries)
    indexes = {
        "HNSW-NGFix*": fixer,
        "RoarGraph": RoarGraph(ds.base, ds.metric, ds.train_queries, M=24,
                               n_query_neighbors=32),
        "HNSW": hnsw,
        "NSG": NSG(ds.base, ds.metric, R=24, L=60),
    }

    curves = {label: sweep(index, ds.test_queries, gt, k, efs)
              for label, index in indexes.items()}

    rows = []
    for label, points in curves.items():
        row = [label]
        for target in (0.90, 0.95, 0.99):
            qps = qps_at_recall(points, target)
            row.append(f"{qps:.0f}" if qps else "-")
        rows.append(row)
    print()
    print(format_table(["index", "QPS@0.90", "QPS@0.95", "QPS@0.99"], rows,
                       title=f"QPS at fixed recall@{k} (OOD test queries)"))


if __name__ == "__main__":
    main()
