"""Deterministic fault injection for the durability/serving stack.

Production failure modes — a crash between a WAL append and its fsync, a
torn snapshot rename, a worker dying mid-drain — are provoked here on
purpose, deterministically, instead of being discovered in production.
The design mirrors :mod:`repro.obs`: one process-wide registry
(:data:`FAULTS`), disabled by default, whose call sites cost a single
attribute check when off::

    FAULTS.fire("wal.pre_fsync")      # no-op unless a plan is armed

A test arms a seeded :class:`FaultPlan` that maps *injection points* to
actions firing on the Nth hit::

    plan = FaultPlan(seed=0).on("wal.pre_fsync", nth=3)          # raise
    plan.on("scheduler.pre_merge", action="delay", delay_s=0.2)  # stall
    plan.on("snapshot.pre_replace", action="kill")               # os._exit
    with FAULTS.injected(plan):
        ...  # the 3rd fsync raises FaultInjected, etc.

Registered injection points (every site documents itself by calling
:meth:`FaultRegistry.fire` with a stable name):

========================  ====================================================
``wal.pre_append``        before a WAL record is framed and written
``wal.pre_fsync``         after the record is in the OS buffer, before fsync
``snapshot.pre_replace``  snapshot bytes written, before ``os.replace``
``snapshot.pre_manifest`` snapshot + payloads durable, before the manifest
                          (the commit point) is published
``scheduler.pre_merge``   inside ``merge_now`` before the epoch cut
``scheduler.pre_repair``  inside ``run_pending``'s drain loop, before each
                          online repair commits (the repair is journaled
                          only after it commits, so a kill here is replay-
                          invisible)
``worker.drain``          top of ``MaintenanceScheduler.run_pending``
``cluster.worker_op``     top of a shard worker's request dispatch, before
                          the op applies (no ack ⇒ not applied, so the
                          router's catch-up replay is safe); armed remotely
                          via the worker's ``arm_faults`` op
``worker.pre_reply``      after a shard worker op applied, before its reply
                          frame is written — a ``delay`` rule here makes
                          the replica gray (slow-but-alive), the trigger
                          for hedged reads and latency-tripped breakers;
                          disarmed remotely via ``disarm_faults``
========================  ====================================================

``action="kill"`` terminates the process with ``os._exit(137)`` — only
meaningful from a sacrificial subprocess (the chaos suite uses it to prove
recovery against real process death, not just exceptions).
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager

_ACTIONS = ("raise", "delay", "kill")

#: Exit status used by ``action="kill"`` (mirrors SIGKILL's 128+9).
KILL_EXIT_CODE = 137


class FaultInjected(RuntimeError):
    """Raised at an injection point by an armed ``action="raise"`` rule."""

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected fault at {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit


class _FaultRule:
    """One (point, action) binding with Nth-hit trigger semantics.

    ``nth`` is 1-based: the rule triggers on the nth time its point fires
    (and, with ``every=True``, on every subsequent hit).  ``probability``
    makes triggering stochastic — but reproducibly so, drawn from the
    plan's seeded RNG.
    """

    __slots__ = ("point", "action", "nth", "every", "delay_s", "exc",
                 "probability", "hits", "fired")

    def __init__(self, point: str, action: str, nth: int, every: bool,
                 delay_s: float, exc: type[BaseException] | None,
                 probability: float | None):
        if action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, got {action!r}")
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self.point = point
        self.action = action
        self.nth = nth
        self.every = every
        self.delay_s = delay_s
        self.exc = exc
        self.probability = probability
        self.hits = 0
        self.fired = 0

    def should_trigger(self, rng: random.Random) -> bool:
        self.hits += 1
        if self.probability is not None:
            return self.hits >= self.nth and rng.random() < self.probability
        if self.every:
            return self.hits >= self.nth
        return self.hits == self.nth


class FaultPlan:
    """A seeded set of fault rules, armed via :meth:`FaultRegistry.arm`."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self._rules: dict[str, list[_FaultRule]] = {}

    def on(self, point: str, action: str = "raise", *, nth: int = 1,
           every: bool = False, delay_s: float = 0.05,
           exc: type[BaseException] | None = None,
           probability: float | None = None) -> "FaultPlan":
        """Bind an action to an injection point; chainable."""
        rule = _FaultRule(point, action, nth, every, delay_s, exc, probability)
        self._rules.setdefault(point, []).append(rule)
        return self

    def rules_for(self, point: str) -> list[_FaultRule]:
        return self._rules.get(point, [])

    def stats(self) -> dict:
        """Per-point hit/fire counts (for asserting a plan actually ran)."""
        return {
            point: {"hits": sum(r.hits for r in rules),
                    "fired": sum(r.fired for r in rules)}
            for point, rules in self._rules.items()
        }


class FaultRegistry:
    """Process-wide injection-point dispatcher.

    Disabled (the default) it is inert: :meth:`fire` is a single attribute
    check, so production call sites cost nothing measurable.  Armed with a
    :class:`FaultPlan` it evaluates that plan's rules for the fired point
    under a lock (hit counting must be atomic across threads — the worker
    thread and the caller may race on the same point).
    """

    def __init__(self):
        self.enabled = False
        self._plan: FaultPlan | None = None
        self._lock = threading.Lock()

    # -- arming ------------------------------------------------------------

    def arm(self, plan: FaultPlan) -> "FaultRegistry":
        with self._lock:
            self._plan = plan
            self.enabled = True
        return self

    def disarm(self) -> "FaultRegistry":
        with self._lock:
            self.enabled = False
            self._plan = None
        return self

    @property
    def plan(self) -> FaultPlan | None:
        return self._plan

    @contextmanager
    def injected(self, plan: FaultPlan):
        """Arm ``plan`` for the duration of a ``with`` block."""
        self.arm(plan)
        try:
            yield plan
        finally:
            self.disarm()

    # -- the hot path ------------------------------------------------------

    def fire(self, point: str) -> None:
        """Evaluate armed rules for ``point`` (no-op when disarmed).

        Triggered rules act in registration order; a raising rule
        propagates immediately (later rules for the same hit are skipped,
        as they would be by the un-injected exception too).
        """
        if not self.enabled:
            return
        delay = 0.0
        with self._lock:
            plan = self._plan
            if plan is None:
                return
            for rule in plan.rules_for(point):
                if not rule.should_trigger(plan.rng):
                    continue
                rule.fired += 1
                if rule.action == "raise":
                    exc = rule.exc or FaultInjected
                    if exc is FaultInjected:
                        raise FaultInjected(point, rule.hits)
                    raise exc(f"injected fault at {point!r}")
                if rule.action == "kill":
                    os._exit(KILL_EXIT_CODE)
                delay += rule.delay_s
        if delay:
            time.sleep(delay)  # outside the lock: never stall other points


#: The process-wide registry every durability/serving call site fires into.
FAULTS = FaultRegistry()
