"""Gray-failure resilience: hedged gather, circuit breakers, brownout.

PR 7's cluster survives *dead* replicas (a ``ConnectionError`` marks the
handle dead and the partition fails over), but production graph-ANN serving
is defined by its tail behavior under *gray* failures — replicas that are
alive yet slow (GC pauses, page-cache eviction, a noisy neighbor, a
saturated disk).  This module holds the primitives the router and front
door compose into tail tolerance:

- :func:`scatter_gather` — a :mod:`selectors`-based multiplexed gather that
  replaces the sequential per-partition reply loop.  A slow partition never
  head-of-line-blocks the others; per-RPC waits derive from the shard's own
  deadline budget instead of the 120 s socket constant.
- **Hedged reads** (Dean & Barroso, "The Tail at Scale"): when a
  partition's primary reply is slower than the replica's EWMA-tracked
  p95-style latency, the same block is re-issued to the partition's next
  live replica.  First reply wins; the loser's reply is drained and
  discarded later (never interleaved into a future RPC).  A hedge is never
  sent when the partition has only one live replica.
- :class:`CircuitBreaker` — per-replica CLOSED→OPEN→HALF_OPEN state
  machine.  Consecutive failures (timeouts, hedge losses, errors) or
  sustained latency inflation past the replica's locked healthy baseline
  open the breaker; re-admission is a *non-blocking* half-open probe (a
  ``ping`` the worker already answers) whose reply is checked
  opportunistically, so probing a still-slow replica costs the query path
  nothing.  Retry scheduling uses :class:`Backoff` — exponential with
  deterministic seeded jitter — so a flapping replica is never hammered in
  a tight loop.
- :class:`BrownoutController` + :class:`Overloaded` — the front door's
  admission control.  Bounded coalescing queues shed with a typed
  :class:`Overloaded` rejection when full; under *sustained* overload
  (a control-plane-shaped score over queue depth, wait inflation, and shed
  rate — the same "0 = healthy, grows with pressure" shape as
  :mod:`repro.control`) the door browns out instead: blocks dispatch at a
  reduced effort (the tuned config's easy-bin ``ef`` when one is fitted)
  and results are marked ``degraded``, recovering hysteretically once
  pressure stays low.

Everything is observable (``cluster_hedges``, ``cluster_breaker_state``,
``cluster_backoff_seconds``, ``cluster_frontdoor_shed``,
``cluster_frontdoor_brownout_active``, …) and deterministic enough to
chaos-test: the ``worker.pre_reply`` fault point delays a worker's replies
without killing it, which is exactly a gray failure on demand.
"""

from __future__ import annotations

import dataclasses
import math
import random
import select
import selectors
import time

from repro.cluster.protocol import recv_msg, send_msg
from repro.obs import OBS, SECONDS_BUCKETS

_HEDGES = OBS.counter(
    "cluster_hedges", "hedge requests issued to a partition's next replica")
_HEDGE_WINS = OBS.counter(
    "cluster_hedge_wins", "partition replies won by the hedge request")
_BREAKER_TRIPS = OBS.counter(
    "cluster_breaker_trips", "replica circuit breakers tripped open")
_BREAKER_READMITS = OBS.counter(
    "cluster_breaker_readmits",
    "replicas re-admitted by a successful half-open probe")
_BREAKER_PROBES = OBS.counter(
    "cluster_breaker_probes", "half-open probe RPCs sent to open replicas")
_BACKOFF_SECONDS = OBS.histogram(
    "cluster_backoff_seconds",
    "breaker retry delays scheduled (exponential + seeded jitter)",
    buckets=SECONDS_BUCKETS)
_STALE_DRAINED = OBS.counter(
    "cluster_stale_replies_drained",
    "abandoned replies (hedge losers, expired waits) drained and discarded")
_GATHER_TIMEOUTS = OBS.counter(
    "cluster_gather_timeouts",
    "partition waits abandoned because the deadline budget expired")


class Overloaded(RuntimeError):
    """Typed admission-control rejection: the front-door queue is full.

    Callers should treat this as back-pressure (retry with jitter, or
    surface a 429), never as a serving bug — the bound exists so that an
    overload sheds *excess* load instead of growing an unbounded queue
    that eventually degrades every request.
    """


# -- latency tracking ---------------------------------------------------------

class LatencyTracker:
    """Per-replica EWMA latency statistics and the hedge threshold.

    ``record`` folds one observed RPC latency into an exponentially
    weighted mean/variance pair; :meth:`hedge_delay` is the p95-style
    threshold (``mean + 1.645·std`` under the EWMA window — the normal
    approximation of the 95th percentile) after which a reply is considered
    straggling and worth hedging.  Until ``warmup`` samples arrive the
    conservative ``initial_s`` applies, so cold replicas are not hedged on
    noise.  The first ``warmup`` samples also lock a healthy *baseline*
    mean that :meth:`inflation` compares against — the breaker's sustained
    latency-inflation trip reads that ratio.
    """

    __slots__ = ("alpha", "warmup", "initial_s", "floor_s", "n", "mean",
                 "var", "baseline")

    def __init__(self, alpha: float = 0.25, warmup: int = 8,
                 initial_s: float = 0.05, floor_s: float = 0.001):
        self.alpha = alpha
        self.warmup = warmup
        self.initial_s = initial_s
        self.floor_s = floor_s
        self.n = 0
        self.mean = 0.0
        self.var = 0.0
        self.baseline: float | None = None

    def record(self, latency_s: float) -> None:
        latency_s = max(float(latency_s), 0.0)
        self.n += 1
        if self.n == 1:
            self.mean = latency_s
            self.var = 0.0
        else:
            delta = latency_s - self.mean
            self.mean += self.alpha * delta
            self.var = (1.0 - self.alpha) * (self.var
                                             + self.alpha * delta * delta)
        if self.baseline is None and self.n >= self.warmup:
            self.baseline = max(self.mean, self.floor_s)

    def p95(self) -> float:
        return self.mean + 1.645 * math.sqrt(max(self.var, 0.0))

    def hedge_delay(self) -> float:
        """Seconds to wait for the primary before issuing a hedge."""
        if self.n < self.warmup:
            return self.initial_s
        return max(self.floor_s, self.p95())

    def inflation(self) -> float:
        """Current EWMA mean relative to the locked healthy baseline."""
        if self.baseline is None:
            return 1.0
        return self.mean / self.baseline

    def reset_window(self) -> None:
        """Forget the (inflated) window after re-admission, keep the baseline.

        A re-admitted replica starts from its healthy reference again;
        without this the stale inflated EWMA would re-trip the breaker on
        the first post-recovery sample.
        """
        if self.baseline is not None:
            self.mean = self.baseline
        self.var = 0.0


# -- retry scheduling ---------------------------------------------------------

class Backoff:
    """Exponential backoff with deterministic seeded jitter.

    ``next()`` returns ``min(cap, base·factor^attempt)`` stretched by up to
    ``jitter`` fraction of itself, drawn from a seeded RNG — deterministic
    for a given (seed, attempt) history, so chaos tests replay exactly, yet
    de-synchronized across replicas (each breaker gets a distinct seed), so
    a fleet of flapping replicas is not probed in lockstep.
    """

    __slots__ = ("base_s", "factor", "cap_s", "jitter", "attempt", "_rng")

    def __init__(self, base_s: float = 0.25, factor: float = 2.0,
                 cap_s: float = 10.0, jitter: float = 0.2, seed: int = 0):
        self.base_s = base_s
        self.factor = factor
        self.cap_s = cap_s
        self.jitter = jitter
        self.attempt = 0
        self._rng = random.Random(seed)

    def next(self) -> float:
        delay = min(self.cap_s, self.base_s * self.factor ** self.attempt)
        self.attempt += 1
        delay *= 1.0 + self.jitter * self._rng.random()
        _BACKOFF_SECONDS.observe(delay)
        return delay

    def reset(self) -> None:
        self.attempt = 0


# -- circuit breaker ----------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding used by the ``cluster_breaker_state`` gauge: the gauge
#: sums the per-replica codes, so 0 means every breaker is closed.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclasses.dataclass
class BreakerConfig:
    """Tunables for one replica's circuit breaker.

    ``failure_threshold`` consecutive failures (timeouts, hedge losses,
    connection/shard errors) trip CLOSED→OPEN, as does a sustained EWMA
    latency ``inflation_factor``× the replica's locked healthy baseline
    once ``inflation_min_samples`` samples exist.  ``probe_timeout_s``
    bounds how long a half-open probe reply may straggle before the probe
    counts as failed and the backoff doubles.
    """

    enabled: bool = True
    failure_threshold: int = 3
    inflation_factor: float = 4.0
    inflation_min_samples: int = 16
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap_s: float = 10.0
    jitter: float = 0.2
    probe_timeout_s: float = 0.25

    @classmethod
    def coerce(cls, value) -> "BreakerConfig":
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            f"breaker_config must be a BreakerConfig or dict, "
            f"got {type(value).__name__}")


class CircuitBreaker:
    """CLOSED→OPEN→HALF_OPEN admission state for one replica.

    The breaker never performs I/O itself — the router reports outcomes
    (:meth:`record_success`, :meth:`record_failure`) and asks questions
    (:meth:`allows`, :meth:`probe_due`); probe transport lives with the
    socket owner.  ``clock`` is injectable so state-machine tests never
    sleep.
    """

    __slots__ = ("config", "clock", "state", "consecutive_failures",
                 "retry_at", "backoff", "n_trips", "n_readmits",
                 "last_trip_reason", "probe_sent_at")

    def __init__(self, config: BreakerConfig | None = None,
                 clock=time.monotonic, seed: int = 0):
        self.config = config or BreakerConfig()
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.retry_at = 0.0
        self.backoff = Backoff(
            base_s=self.config.backoff_base_s,
            factor=self.config.backoff_factor,
            cap_s=self.config.backoff_cap_s,
            jitter=self.config.jitter, seed=seed)
        self.n_trips = 0
        self.n_readmits = 0
        self.last_trip_reason: str | None = None
        self.probe_sent_at: float | None = None

    # -- queries -------------------------------------------------------------

    def allows(self) -> bool:
        """May this replica serve a normal (non-probe) read right now?"""
        return (not self.config.enabled) or self.state == CLOSED

    def probe_due(self) -> bool:
        """OPEN long enough that a half-open probe should be attempted."""
        return (self.config.enabled and self.state == OPEN
                and self.clock() >= self.retry_at)

    def state_code(self) -> int:
        return STATE_CODES[self.state]

    # -- outcome reporting ---------------------------------------------------

    def record_success(self, tracker: LatencyTracker | None = None) -> None:
        """A reply arrived in time; optionally check latency inflation."""
        self.consecutive_failures = 0
        if (self.config.enabled and self.state == CLOSED
                and tracker is not None
                and tracker.n >= self.config.inflation_min_samples
                and tracker.inflation() >= self.config.inflation_factor):
            self.trip("latency")

    def record_failure(self, reason: str = "failure") -> None:
        """A timeout, hedge loss, or error; trips past the threshold."""
        if not self.config.enabled:
            return
        self.consecutive_failures += 1
        if (self.state == CLOSED
                and self.consecutive_failures
                >= self.config.failure_threshold):
            self.trip(reason)

    def trip(self, reason: str) -> None:
        self.state = OPEN
        self.retry_at = self.clock() + self.backoff.next()
        self.n_trips += 1
        self.last_trip_reason = reason
        _BREAKER_TRIPS.inc()

    # -- half-open probing ---------------------------------------------------

    def begin_probe(self) -> None:
        self.state = HALF_OPEN
        self.probe_sent_at = self.clock()
        _BREAKER_PROBES.inc()

    def probe_expired(self) -> bool:
        return (self.probe_sent_at is not None
                and self.clock() - self.probe_sent_at
                >= self.config.probe_timeout_s)

    def probe_failed(self) -> None:
        """The probe straggled or errored: reopen with a longer backoff."""
        self.probe_sent_at = None
        self.state = OPEN
        self.retry_at = self.clock() + self.backoff.next()

    def close(self) -> None:
        """Re-admit the replica (probe succeeded, or manual reset)."""
        if self.state != CLOSED:
            self.n_readmits += 1
            _BREAKER_READMITS.inc()
        self.probe_sent_at = None
        self.state = CLOSED
        self.consecutive_failures = 0
        self.backoff.reset()

    def reset(self) -> None:
        """Fresh-process reset: back to CLOSED without counting a re-admit.

        Used at (re)spawn — a brand-new worker earned nothing; only a
        successful half-open probe counts as a re-admission.
        """
        self.probe_sent_at = None
        self.state = CLOSED
        self.consecutive_failures = 0
        self.backoff.reset()

    def stats(self) -> dict:
        return {
            "state": self.state,
            "trips": self.n_trips,
            "readmits": self.n_readmits,
            "consecutive_failures": self.consecutive_failures,
            "last_trip_reason": self.last_trip_reason,
        }


# -- brownout -----------------------------------------------------------------

class BrownoutController:
    """Hysteretic overload→brownout state machine for the front door.

    :meth:`update` folds one dispatch-time overload score (the control-plane
    shape: ``2·shed_rate + queue_fraction + wait-inflation``, 0 = healthy)
    and flips ``active`` after ``enter_after`` consecutive scores at or
    above ``enter_score``; recovery requires ``exit_after`` consecutive
    scores at or below ``exit_score`` — the gap between the two thresholds
    is the hysteresis band that keeps the door from flapping at the edge
    of saturation.
    """

    __slots__ = ("enter_score", "exit_score", "enter_after", "exit_after",
                 "active", "n_entries", "n_exits", "last_score",
                 "_over", "_under")

    def __init__(self, enter_score: float = 0.9, exit_score: float = 0.25,
                 enter_after: int = 3, exit_after: int = 5):
        if exit_score > enter_score:
            raise ValueError("exit_score must not exceed enter_score")
        self.enter_score = enter_score
        self.exit_score = exit_score
        self.enter_after = max(int(enter_after), 1)
        self.exit_after = max(int(exit_after), 1)
        self.active = False
        self.n_entries = 0
        self.n_exits = 0
        self.last_score = 0.0
        self._over = 0
        self._under = 0

    def update(self, score: float) -> bool:
        self.last_score = float(score)
        if not self.active:
            if score >= self.enter_score:
                self._over += 1
                if self._over >= self.enter_after:
                    self.active = True
                    self.n_entries += 1
                    self._over = 0
                    self._under = 0
            else:
                self._over = 0
        else:
            if score <= self.exit_score:
                self._under += 1
                if self._under >= self.exit_after:
                    self.active = False
                    self.n_exits += 1
                    self._under = 0
                    self._over = 0
            else:
                self._under = 0
        return self.active

    def stats(self) -> dict:
        return {
            "active": self.active,
            "entries": self.n_entries,
            "exits": self.n_exits,
            "last_score": round(self.last_score, 4),
        }


def overload_score(queue_fraction: float, wait_ratio: float,
                   shed_rate: float) -> float:
    """The front door's overload score (control-plane shape, 0 = healthy).

    ``queue_fraction`` is depth (queued + in-flight) over the admission
    bound; ``wait_ratio`` is the realized coalescing wait over the
    configured window (a healthy door waits ≈ 1 window, so only inflation
    *past* double the window counts); ``shed_rate`` is the fraction of
    arrivals rejected since the last dispatch.  Mirrors the
    :mod:`repro.control` score shape: shed (like degraded rate) weighs
    double, the other terms are baseline-relative inflations.
    """
    return (2.0 * max(shed_rate, 0.0)
            + max(queue_fraction, 0.0)
            + max(0.0, wait_ratio - 2.0) / 8.0)


# -- non-blocking socket helpers ----------------------------------------------

def readable(sock, timeout: float = 0.0) -> bool:
    """True when one full ``select`` says the socket has bytes to read."""
    if sock is None:
        return False
    try:
        ready, _, _ = select.select([sock], [], [], max(timeout, 0.0))
    except (OSError, ValueError):
        return False
    return bool(ready)


def drain_stale(handle, timeout: float) -> bool:
    """Read and discard a handle's owed replies; True when caught up.

    Every request the router abandoned (hedge loser, expired deadline
    wait, timed-out probe) still produces exactly one reply frame on the
    replica's socket.  Those frames must be consumed before the socket can
    carry a new RPC, or a future call would read a stale answer.  Draining
    never blocks past ``timeout``; a handle that cannot drain in time is
    simply not used this round.
    """
    end = time.perf_counter() + max(timeout, 0.0)
    while handle.owes > 0:
        remaining = end - time.perf_counter()
        if not readable(handle.sock, max(remaining, 0.0)):
            return False
        try:
            handle.sock.settimeout(max(remaining, 0.05))
            recv_msg(handle.sock)
        except (ConnectionError, OSError):
            handle.mark_dead()
            return False
        handle.owes -= 1
        _STALE_DRAINED.inc()
    return True


# -- the multiplexed hedged gather -------------------------------------------

class _Flight:
    """One partition's in-flight request set during a scatter-gather."""

    __slots__ = ("shard_id", "t_start", "hedge_base", "waiters", "sent_at",
                 "hedged", "done", "reply")

    def __init__(self, shard_id: int, now: float):
        self.shard_id = shard_id
        self.t_start = now
        self.hedge_base = now     # hedge timer restarts after a failover
        self.waiters: list = []   # ShardHandles with a request outstanding
        self.sent_at: dict = {}   # id(handle) -> send time
        self.hedged = False
        self.done = False
        self.reply: dict | None = None

    def add(self, handle, now: float) -> None:
        self.waiters.append(handle)
        self.sent_at[id(handle)] = now

    def remove(self, handle) -> None:
        self.waiters = [h for h in self.waiters if h is not handle]
        self.sent_at.pop(id(handle), None)


def scatter_gather(router, build_msg, deadline: float | None) -> dict:
    """Scatter one request to every partition and gather replies in parallel.

    The replacement for the sequential per-partition reply loop: every
    partition's outstanding socket is registered with one
    :class:`selectors.DefaultSelector` and replies are consumed in arrival
    order, so a slow partition delays only itself.  Per-partition waits are
    bounded by the caller's ``deadline`` (absolute ``perf_counter`` time)
    when one is set, else by ``router.rpc_timeout`` from the flight's
    start.  Within a flight:

    - a ``ConnectionError`` fails over to the partition's next eligible
      replica with the remaining budget (counted as a retry);
    - a reply slower than the primary's :meth:`LatencyTracker.hedge_delay`
      triggers one hedge to the next eligible replica (only when one
      exists); first reply wins, the loser's frame stays owed on its
      handle and is drained before that handle's next use;
    - budget exhaustion abandons the flight — partial results, never an
      exception — and records a timeout failure on every waiter's breaker.

    Returns ``{shard_id: reply dict}`` for the partitions that answered.
    ``router`` provides ``n_shards``, ``rpc_timeout``, ``hedge_enabled``,
    ``_pick_replica``, ``_hedge_delay``, ``_on_send``, ``_on_success``,
    ``_on_conn_error``, ``_on_timeout``, ``_on_outpaced``, and
    ``_note_retry`` — the routing policy stays with the router; this
    function owns only the multiplexing.
    """
    sel = selectors.DefaultSelector()
    tried: dict[int, set[int]] = {s: set() for s in range(router.n_shards)}
    flights: dict[int, _Flight] = {}
    replies: dict[int, dict] = {}
    registered: set[int] = set()  # id(handle) currently in the selector

    def register(flight: _Flight, handle) -> None:
        sel.register(handle.sock, selectors.EVENT_READ,
                     (flight.shard_id, handle))
        registered.add(id(handle))

    def unregister(handle) -> None:
        if id(handle) in registered:
            try:
                sel.unregister(handle.sock)
            except (KeyError, ValueError):
                pass
            registered.discard(id(handle))

    def launch(shard_id: int):
        """Pick the next eligible replica and send; None when exhausted."""
        while True:
            handle = router._pick_replica(shard_id, tried[shard_id])
            if handle is None:
                return None
            tried[shard_id].add(handle.replica_id)
            try:
                send_msg(handle.sock, build_msg())
            except (ConnectionError, OSError):
                unregister(handle)
                router._on_conn_error(handle)
                continue
            handle.owes += 1
            router._on_send(handle)
            return handle

    def flight_deadline(flight: _Flight) -> float:
        if deadline is not None:
            return deadline
        return flight.t_start + router.rpc_timeout

    def finish(flight: _Flight, reply: dict | None, winner=None) -> None:
        flight.done = True
        for handle in flight.waiters:
            unregister(handle)
            if winner is not None and handle is not winner:
                # The loser owes a frame; its breaker notes being outpaced.
                router._on_outpaced(handle)
        if reply is not None:
            replies[flight.shard_id] = reply
            if winner is not None and flight.hedged \
                    and flight.waiters and winner is not flight.waiters[0]:
                _HEDGE_WINS.inc()
                router.n_hedge_wins += 1

    now = time.perf_counter()
    for s in range(router.n_shards):
        flight = _Flight(s, now)
        handle = launch(s)
        if handle is None:
            continue  # partition outage: contributes nothing (degraded)
        flight.add(handle, now)
        register(flight, handle)
        flights[s] = flight

    pending = {s for s, fl in flights.items() if not fl.done}
    try:
        while pending:
            now = time.perf_counter()
            # Next wakeup: the earliest hedge-fire or budget expiry across
            # live flights (None = wait for the first readable socket).
            wake: float | None = None
            for s in pending:
                flight = flights[s]
                t = flight_deadline(flight)
                if (router.hedge_enabled and not flight.hedged
                        and len(flight.waiters) == 1
                        and router._has_hedge_target(s, tried[s])):
                    t = min(t, flight.hedge_base
                            + router._hedge_delay(flight.waiters[0]))
                wake = t if wake is None else min(wake, t)
            timeout = None if wake is None else max(wake - now, 0.0)

            for key, _ in sel.select(timeout):
                s, handle = key.data
                flight = flights.get(s)
                if flight is None or flight.done:
                    continue
                now = time.perf_counter()
                budget = max(flight_deadline(flight) - now, 0.05)
                try:
                    handle.sock.settimeout(budget)
                    reply = recv_msg(handle.sock)
                    handle.owes -= 1
                    if "err" in reply:
                        raise ConnectionError(
                            f"shard error: {reply['err']}")
                except (ConnectionError, OSError):
                    # Mid-frame timeout desynchronizes the stream, so a
                    # TimeoutError here also (correctly) kills the handle.
                    unregister(handle)
                    router._on_conn_error(handle)
                    flight.remove(handle)
                    if not flight.waiters:
                        replacement = launch(s)
                        if replacement is None:
                            finish(flight, None)
                        else:
                            now = time.perf_counter()
                            flight.add(replacement, now)
                            flight.hedge_base = now
                            register(flight, replacement)
                            router._note_retry()
                    continue
                latency = time.perf_counter() - flight.sent_at[id(handle)]
                router._on_success(handle, latency)
                finish(flight, reply, winner=handle)

            now = time.perf_counter()
            for s in list(pending):
                flight = flights[s]
                if flight.done:
                    pending.discard(s)
                    continue
                if now >= flight_deadline(flight):
                    _GATHER_TIMEOUTS.inc()
                    for handle in flight.waiters:
                        router._on_timeout(handle)
                    finish(flight, None)
                    pending.discard(s)
                    continue
                if (router.hedge_enabled and not flight.hedged
                        and len(flight.waiters) == 1
                        and now - flight.hedge_base
                        >= router._hedge_delay(flight.waiters[0])):
                    # One hedge attempt per flight: either it launches or
                    # the partition simply rides out its primary.
                    flight.hedged = True
                    hedge = launch(s)
                    if hedge is not None:
                        flight.add(hedge, now)
                        register(flight, hedge)
                        _HEDGES.inc()
                        router.n_hedges += 1
    finally:
        sel.close()
    return replies
