"""Aggregatable stats: collision-free merging of per-shard counter dicts.

``VectorStore.stats()`` (and therefore every shard worker's ``stats`` op)
returns a nested dict of counters, gauges, and identity strings.  Summing
those naively across shards is wrong in three ways this module fixes:

- **Nested counters** (``compressed.adc_scored``, ``serving.n_degraded``)
  live under the same keys in every shard's dict — a flat ``update`` would
  collide and keep only the last shard.  :func:`merge_stats` recurses, so
  each nested counter sums in place.
- **Non-additive values**: booleans AND (``consistent`` is only true if
  every shard is), identity strings collapse when equal (one shared
  ``pq_sig``) and become a sorted list when they differ — a divergence is
  *visible* instead of silently dropped.
- **Identity keys** (``shard_id``, ``replica_id``) are enumerations, not
  sums; they merge to sorted value lists.

The router's :meth:`~repro.cluster.router.ClusterRouter.stats` and the
``repro cluster`` CLI expose ``merged = merge_stats(per_shard)`` next to the
raw per-shard list.
"""

from __future__ import annotations

import numbers

#: Keys that identify a shard rather than count anything: merged to the
#: sorted set of observed values, never summed.
IDENTITY_KEYS = frozenset({"shard_id", "replica_id", "pq_sig", "metric",
                           "mode", "scheduler_mode", "policy",
                           "merge_every"})

#: Health gauges where the cluster-wide value is the *worst* shard, not the
#: sum: a fleet with one badly degraded shard is degraded.
MAX_KEYS = frozenset({"signal_score", "signal_slope", "degraded_rate",
                      "tombstone_density"})


def _merge_values(key: str, values: list):
    if not values:
        return None
    first = values[0]
    if isinstance(first, dict):
        return merge_stats([v for v in values if isinstance(v, dict)])
    if isinstance(first, bool):
        return all(bool(v) for v in values)
    if key in IDENTITY_KEYS:
        uniq = sorted({v for v in values}, key=str)
        return uniq[0] if len(uniq) == 1 else uniq
    if key in MAX_KEYS:
        numeric = [v for v in values if isinstance(v, numbers.Number)]
        return max(numeric) if numeric else values[0]
    if isinstance(first, numbers.Number):
        total = sum(v for v in values if isinstance(v, numbers.Number))
        return type(first)(total) if isinstance(first, int) else total
    # strings / lists / None: collapse when unanimous, enumerate otherwise
    uniq = sorted({str(v) for v in values})
    return values[0] if len(uniq) == 1 else uniq


def merge_stats(stats_dicts: list[dict]) -> dict:
    """Merge per-shard stats dicts into one rollup without key collisions.

    Numbers sum (recursively, so ``compressed.adc_scored`` across shards
    adds up), booleans AND, dicts merge key-wise, and identity values
    (``shard_id``, ``pq_sig``...) collapse to a single value when unanimous
    or a sorted list when shards disagree.  Keys present in only some
    shards merge over the shards that have them.
    """
    stats_dicts = [s for s in stats_dicts if isinstance(s, dict)]
    if not stats_dicts:
        return {}
    merged: dict = {}
    keys: list[str] = []
    for stats in stats_dicts:
        for key in stats:
            if key not in merged:
                merged[key] = True
                keys.append(key)
    for key in keys:
        merged[key] = _merge_values(
            key, [s[key] for s in stats_dicts if key in s])
    return merged
