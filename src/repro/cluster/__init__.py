"""Sharded, replicated serving: shard workers, scatter-gather router,
async coalescing front door, gray-failure resilience.  See
docs/architecture.md ("Scaling out").
"""

from repro.cluster.frontdoor import FrontDoor
from repro.cluster.protocol import (
    ProtocolError,
    decode,
    encode,
    recv_msg,
    send_msg,
)
from repro.cluster.resilience import (
    Backoff,
    BreakerConfig,
    BrownoutController,
    CircuitBreaker,
    LatencyTracker,
    Overloaded,
)
from repro.cluster.router import (
    ClusterError,
    ClusterRouter,
    hash_partition,
    merge_topk,
    merge_topk_batch,
    shard_budget_ms,
)
from repro.cluster.stats import merge_stats
from repro.cluster.worker import (
    WORKER_OP_POINT,
    WORKER_PRE_REPLY_POINT,
    pq_signature,
    shard_wal_dir,
)

__all__ = [
    "Backoff",
    "BreakerConfig",
    "BrownoutController",
    "CircuitBreaker",
    "ClusterError",
    "ClusterRouter",
    "FrontDoor",
    "LatencyTracker",
    "Overloaded",
    "ProtocolError",
    "WORKER_OP_POINT",
    "WORKER_PRE_REPLY_POINT",
    "decode",
    "encode",
    "hash_partition",
    "merge_stats",
    "merge_topk",
    "merge_topk_batch",
    "pq_signature",
    "recv_msg",
    "send_msg",
    "shard_budget_ms",
    "shard_wal_dir",
]
