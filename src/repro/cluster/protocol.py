"""Length-prefixed binary message framing for shard RPC.

One frame carries one JSON-serializable message dict plus any number of
numpy arrays, without base64 inflation: the frame is

    [4-byte BE header length][header JSON][raw array bytes, concatenated]

The header separates the plain part of the message from an array manifest
(``key``, ``dtype``, ``shape`` per array, in payload order), so the receiver
reassembles views with one :func:`np.frombuffer` per array — no copies on
the hot path beyond the socket read itself.  Query blocks (float32 matrices)
and result blocks (int64/float64 matrices) therefore cost their raw byte
size per hop, which is what keeps scatter-gather overhead amortizable over
batched blocks.

The framing is transport-agnostic: anything with ``sendall``/``recv`` works
(the cluster uses ``socket.socketpair`` between the router and forked shard
workers).  A peer that dies mid-frame surfaces as :class:`ConnectionError`
from the read loop — the router's failover path keys off exactly that.
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

#: Frames above this size are refused (corrupt length prefix, not real data).
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Malformed frame (bad length prefix, truncated manifest, bad dtype)."""


def encode(msg: dict) -> bytes:
    """Serialize one message dict (ndarray values split out) to frame bytes."""
    plain: dict = {}
    manifest: list[list] = []
    blobs: list[bytes] = []
    for key, value in msg.items():
        if isinstance(value, np.ndarray):
            arr = np.ascontiguousarray(value)
            manifest.append([key, arr.dtype.str, list(arr.shape)])
            blobs.append(arr.tobytes())
        else:
            plain[key] = value
    header = json.dumps({"m": plain, "a": manifest},
                        separators=(",", ":")).encode()
    return b"".join([_LEN.pack(len(header)), header, *blobs])


def decode(header: bytes, payload: bytes) -> dict:
    """Rebuild the message dict from header JSON + array payload bytes."""
    try:
        parsed = json.loads(header)
        msg = dict(parsed["m"])
        offset = 0
        for key, dtype, shape in parsed["a"]:
            dt = np.dtype(dtype)
            n = int(np.prod(shape, dtype=np.int64)) if shape else 1
            nbytes = dt.itemsize * n
            if offset + nbytes > len(payload):
                raise ProtocolError(
                    f"array {key!r} overruns payload "
                    f"({offset + nbytes} > {len(payload)})")
            msg[key] = np.frombuffer(
                payload, dtype=dt, count=n, offset=offset).reshape(shape)
            offset += nbytes
    except ProtocolError:
        raise
    except Exception as exc:  # json/dtype/shape corruption
        raise ProtocolError(f"malformed frame: {exc}") from exc
    return msg


def send_msg(sock: socket.socket, msg: dict) -> None:
    """Frame and send one message (blocking; raises ConnectionError on EPIPE)."""
    try:
        sock.sendall(encode(msg))
    except (BrokenPipeError, OSError) as exc:
        raise ConnectionError(f"peer gone during send: {exc}") from exc


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise ConnectionError(f"peer gone during recv: {exc}") from exc
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> dict:
    """Read one full frame; raises ConnectionError when the peer died.

    The array payload length is derived from the manifest (dtype x shape
    per array), so a frame is read with exactly three ``recv`` loops:
    length prefix, header, payload.
    """
    header_len = _LEN.unpack(_read_exact(sock, _LEN.size))[0]
    if header_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"header length {header_len} exceeds frame cap")
    header = _read_exact(sock, header_len)
    try:
        manifest = json.loads(header)["a"]
        payload_len = sum(
            np.dtype(dtype).itemsize
            * (int(np.prod(shape, dtype=np.int64)) if shape else 1)
            for _, dtype, shape in manifest)
    except Exception as exc:
        raise ProtocolError(f"malformed frame header: {exc}") from exc
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"payload length {payload_len} exceeds frame cap")
    payload = _read_exact(sock, payload_len) if payload_len else b""
    return decode(header, payload)
