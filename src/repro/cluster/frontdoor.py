"""Asyncio front door: coalesce concurrent single-query requests into blocks.

Interactive callers issue one query at a time, but the whole serving stack
below — :class:`~repro.batch.BatchSearchEngine` inside every shard, one RPC
per partition in the router — amortizes per ``search_batch`` block.  The
front door closes that gap: concurrent ``await frontdoor.search(q)`` calls
landing within a small window (``window_ms`` deadline or ``max_batch``
fill, whichever first) are stacked into one query matrix, dispatched as a
single router ``search_batch`` on a dedicated bounded executor, and fanned
back to each caller's future.

The coalescing trade-off is explicit and measured: a lone query pays up to
``window_ms`` extra latency; at high concurrency the batch kernel and the
once-per-block scatter overhead are shared by every rider, which is where
the throughput multiple comes from (see ``BENCH_sharding.json``'s
coalescing curve).

The door is also the cluster's admission controller.  Load it cannot serve
is bounded, not buffered: once ``max_queue`` queries are waiting or
in flight, new arrivals are rejected with the typed
:class:`~repro.cluster.resilience.Overloaded` — back-pressure the caller
can retry against, instead of a queue whose wait time silently grows past
every deadline.  Under *sustained* pressure the door browns out before it
sheds everything: blocks dispatch at a reduced search effort (the tuned
config's easy-bin ``ef`` when the searcher carries one) and their results
are marked ``degraded``, trading recall for admission — recovering
hysteretically (:class:`~repro.cluster.resilience.BrownoutController`)
once the overload score stays low.  Queue depth, realized batch sizes,
sheds, and brownout state are exported as ``cluster_frontdoor_*`` metrics
so the window and bound can be tuned from telemetry.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.cluster.resilience import BrownoutController, Overloaded, \
    overload_score
from repro.obs import OBS

_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
_COALESCED = OBS.histogram(
    "cluster_frontdoor_batch_size",
    "queries coalesced per dispatched block", buckets=_BATCH_BUCKETS)
_WAITS = OBS.histogram(
    "cluster_frontdoor_wait_seconds",
    "time a query waited in the coalescing window")
_SHED = OBS.counter(
    "cluster_frontdoor_shed",
    "queries rejected (Overloaded) because the admission bound was hit")
_BROWNOUT_BLOCKS = OBS.counter(
    "cluster_frontdoor_brownout_blocks",
    "blocks dispatched at reduced effort while browned out")


class _Pending:
    __slots__ = ("query", "future", "t_enqueue")

    def __init__(self, query: np.ndarray, future: asyncio.Future):
        self.query = query
        self.future = future
        self.t_enqueue = time.perf_counter()


class FrontDoor:
    """Async facade over a router (or store): windowed query coalescing.

    Parameters
    ----------
    searcher:
        Anything with ``search_batch(queries, k, ef, batch_size=...)``
        returning a list of :class:`~repro.graphs.search.SearchResult` —
        a :class:`~repro.cluster.router.ClusterRouter` or a single
        :class:`~repro.store.VectorStore`.
    window_ms:
        How long the first query in a window waits for riders before the
        block is dispatched (the latency a lone query pays for coalescing).
    max_batch:
        Dispatch early once this many queries are queued.
    k, ef, deadline_ms:
        Defaults applied to queries that do not override them; per-call
        ``k`` must match within one block, so mixed-k calls dispatch in
        k-homogeneous groups.
    max_queue:
        Admission bound: queries *waiting plus in flight* may not exceed
        this; excess arrivals raise
        :class:`~repro.cluster.resilience.Overloaded`.
    executor_workers:
        Size of the door's own dispatch pool (replacing the loop's
        unbounded default executor); shut down by :meth:`drain`.
    brownout:
        A :class:`~repro.cluster.resilience.BrownoutController` override
        (mostly for tests); ``None`` builds the default hysteresis.
    """

    def __init__(self, searcher, window_ms: float = 2.0,
                 max_batch: int = 64, k: int = 10, ef: int | None = None,
                 deadline_ms: float | None = None, max_queue: int = 1024,
                 executor_workers: int = 4,
                 brownout: BrownoutController | None = None):
        self.searcher = searcher
        self.window_ms = window_ms
        self.max_batch = max_batch
        self.k = k
        self.ef = ef
        self.deadline_ms = deadline_ms
        self.max_queue = max(int(max_queue), 1)
        self.n_dispatched = 0
        self.n_blocks = 0
        self.n_shed = 0
        self.n_brownout_blocks = 0
        self.max_depth_seen = 0
        self._inflight = 0
        self._sheds_window = 0   # sheds since the last dispatch
        self._admits_window = 0  # admissions since the last dispatch
        self._brownout = brownout or BrownoutController()
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max(int(executor_workers), 1),
            thread_name_prefix="repro-frontdoor")
        self._outstanding: set[asyncio.Future] = set()
        self._queues: dict[int, list[_Pending]] = {}  # k -> waiting queries
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._lock = asyncio.Lock()
        OBS.gauge_fn("cluster_frontdoor_queue_depth",
                     lambda: sum(len(q) for q in self._queues.values()),
                     "queries waiting in the coalescing window")
        OBS.gauge_fn("cluster_frontdoor_brownout_active",
                     lambda: 1.0 if self._brownout.active else 0.0,
                     "1 while the front door serves at reduced effort")

    def _depth(self) -> int:
        """Admission-control depth: queued *and* in-flight queries."""
        return sum(len(q) for q in self._queues.values()) + self._inflight

    async def search(self, query: np.ndarray, k: int | None = None,
                     ef: int | None = None):
        """Await one query's merged result; rides a coalesced block.

        Raises :class:`~repro.cluster.resilience.Overloaded` when the
        door's queued + in-flight depth is at ``max_queue``.
        """
        if self._closed:
            raise RuntimeError("front door has been drained")
        k = self.k if k is None else int(k)
        loop = asyncio.get_running_loop()
        pending = _Pending(
            np.ascontiguousarray(np.asarray(query, dtype=np.float32)),
            loop.create_future())
        async with self._lock:
            depth = self._depth()
            if depth >= self.max_queue:
                self.n_shed += 1
                self._sheds_window += 1
                _SHED.inc()
                raise Overloaded(
                    f"front door at capacity ({depth}/{self.max_queue} "
                    "queued or in flight)")
            self._admits_window += 1
            self.max_depth_seen = max(self.max_depth_seen, depth + 1)
            queue = self._queues.setdefault(k, [])
            queue.append(pending)
            if len(queue) >= self.max_batch:
                self._dispatch(loop, k)
            elif k not in self._timers:
                self._timers[k] = loop.call_later(
                    self.window_ms / 1000.0, self._on_window, loop, k)
        return await pending.future

    def _on_window(self, loop: asyncio.AbstractEventLoop, k: int) -> None:
        self._dispatch(loop, k)

    def _overload_score(self, block: list[_Pending], now: float) -> float:
        """Control-plane-shaped pressure score at one dispatch (0 healthy)."""
        oldest_wait = max(now - p.t_enqueue for p in block)
        window_s = max(self.window_ms / 1000.0, 1e-4)
        arrivals = self._admits_window + self._sheds_window
        shed_rate = self._sheds_window / arrivals if arrivals else 0.0
        score = overload_score(
            queue_fraction=self._depth() / self.max_queue,
            wait_ratio=oldest_wait / window_s,
            shed_rate=shed_rate)
        self._sheds_window = 0
        self._admits_window = 0
        return score

    def _brownout_ef(self, k: int) -> int:
        """Reduced-effort ef: tuned easy bin → halved default → plain k."""
        tuned = getattr(self.searcher, "tuned_config", None)
        if isinstance(tuned, dict):
            bins = tuned.get("bins") or []
            if bins and bins[0].get("ef"):
                return max(int(bins[0]["ef"]), k)
        if self.ef is not None:
            return max(k, int(self.ef) // 2)
        return k

    def _dispatch(self, loop: asyncio.AbstractEventLoop, k: int) -> None:
        """Cut the current window into one block and run it off-loop."""
        timer = self._timers.pop(k, None)
        if timer is not None:
            timer.cancel()
        block = self._queues.pop(k, [])
        if not block:
            return
        now = time.perf_counter()
        if OBS.enabled:
            _COALESCED.observe(len(block))
            for pending in block:
                _WAITS.observe(now - pending.t_enqueue)
        self.n_blocks += 1
        self.n_dispatched += len(block)
        self._inflight += len(block)
        browned = self._brownout.update(self._overload_score(block, now))
        ef = self.ef
        if browned:
            ef = self._brownout_ef(k)
            self.n_brownout_blocks += 1
            _BROWNOUT_BLOCKS.inc()
        queries = np.stack([p.query for p in block])

        def run():
            results = self.searcher.search_batch(
                queries, k, ef, batch_size=max(len(block), 1),
                deadline_ms=self.deadline_ms)
            if browned:
                # Reduced-effort answers are honest about it: the caller
                # sees the same degraded flag a deadline miss would set.
                results = [dataclasses.replace(r, degraded=True)
                           for r in results]
            return results

        task = loop.run_in_executor(self._executor, run)
        self._outstanding.add(task)
        task.add_done_callback(lambda fut: self._resolve(block, fut))

    def _resolve(self, block: list[_Pending], fut) -> None:
        self._inflight -= len(block)
        self._outstanding.discard(fut)
        exc = fut.exception()
        if exc is not None:
            for pending in block:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        results = fut.result()
        for pending, result in zip(block, results):
            if not pending.future.done():
                pending.future.set_result(result)

    async def drain(self) -> None:
        """Flush pending windows, await in-flight blocks, retire the pool.

        Terminal: the dispatch executor is shut down, so the door serves
        nothing afterwards (``search`` raises ``RuntimeError``).  Safe to
        call more than once.
        """
        loop = asyncio.get_running_loop()
        async with self._lock:
            self._closed = True
            for k in list(self._queues):
                self._dispatch(loop, k)
            outstanding = list(self._outstanding)
        if outstanding:
            await asyncio.gather(*outstanding, return_exceptions=True)
        self._executor.shutdown(wait=True)

    def stats(self) -> dict:
        return {
            "dispatched": self.n_dispatched,
            "blocks": self.n_blocks,
            "mean_batch": (self.n_dispatched / self.n_blocks
                           if self.n_blocks else 0.0),
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
            "max_queue": self.max_queue,
            "shed": self.n_shed,
            "max_depth_seen": self.max_depth_seen,
            "inflight": self._inflight,
            "brownout": self._brownout.stats(),
            "brownout_blocks": self.n_brownout_blocks,
        }
