"""Asyncio front door: coalesce concurrent single-query requests into blocks.

Interactive callers issue one query at a time, but the whole serving stack
below — :class:`~repro.batch.BatchSearchEngine` inside every shard, one RPC
per partition in the router — amortizes per ``search_batch`` block.  The
front door closes that gap: concurrent ``await frontdoor.search(q)`` calls
landing within a small window (``window_ms`` deadline or ``max_batch``
fill, whichever first) are stacked into one query matrix, dispatched as a
single router ``search_batch`` in a worker thread, and fanned back to each
caller's future.

The coalescing trade-off is explicit and measured: a lone query pays up to
``window_ms`` extra latency; at high concurrency the batch kernel and the
once-per-block scatter overhead are shared by every rider, which is where
the throughput multiple comes from (see ``BENCH_sharding.json``'s
coalescing curve).  Queue depth and realized batch sizes are exported as
``cluster_frontdoor_*`` metrics so the window can be tuned from telemetry.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.obs import OBS

_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
_COALESCED = OBS.histogram(
    "cluster_frontdoor_batch_size",
    "queries coalesced per dispatched block", buckets=_BATCH_BUCKETS)
_WAITS = OBS.histogram(
    "cluster_frontdoor_wait_seconds",
    "time a query waited in the coalescing window")


class _Pending:
    __slots__ = ("query", "future", "t_enqueue")

    def __init__(self, query: np.ndarray, future: asyncio.Future):
        self.query = query
        self.future = future
        self.t_enqueue = time.perf_counter()


class FrontDoor:
    """Async facade over a router (or store): windowed query coalescing.

    Parameters
    ----------
    searcher:
        Anything with ``search_batch(queries, k, ef, batch_size=...)``
        returning a list of :class:`~repro.graphs.search.SearchResult` —
        a :class:`~repro.cluster.router.ClusterRouter` or a single
        :class:`~repro.store.VectorStore`.
    window_ms:
        How long the first query in a window waits for riders before the
        block is dispatched (the latency a lone query pays for coalescing).
    max_batch:
        Dispatch early once this many queries are queued.
    k, ef, deadline_ms:
        Defaults applied to queries that do not override them; per-call
        ``k`` must match within one block, so mixed-k calls dispatch in
        k-homogeneous groups.
    """

    def __init__(self, searcher, window_ms: float = 2.0,
                 max_batch: int = 64, k: int = 10, ef: int | None = None,
                 deadline_ms: float | None = None):
        self.searcher = searcher
        self.window_ms = window_ms
        self.max_batch = max_batch
        self.k = k
        self.ef = ef
        self.deadline_ms = deadline_ms
        self.n_dispatched = 0
        self.n_blocks = 0
        self._queues: dict[int, list[_Pending]] = {}  # k -> waiting queries
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._lock = asyncio.Lock()
        OBS.gauge_fn("cluster_frontdoor_queue_depth",
                     lambda: sum(len(q) for q in self._queues.values()),
                     "queries waiting in the coalescing window")

    async def search(self, query: np.ndarray, k: int | None = None,
                     ef: int | None = None):
        """Await one query's merged result; rides a coalesced block."""
        k = self.k if k is None else int(k)
        loop = asyncio.get_running_loop()
        pending = _Pending(
            np.ascontiguousarray(np.asarray(query, dtype=np.float32)),
            loop.create_future())
        async with self._lock:
            queue = self._queues.setdefault(k, [])
            queue.append(pending)
            if len(queue) >= self.max_batch:
                self._dispatch(loop, k)
            elif k not in self._timers:
                self._timers[k] = loop.call_later(
                    self.window_ms / 1000.0, self._on_window, loop, k)
        return await pending.future

    def _on_window(self, loop: asyncio.AbstractEventLoop, k: int) -> None:
        self._dispatch(loop, k)

    def _dispatch(self, loop: asyncio.AbstractEventLoop, k: int) -> None:
        """Cut the current window into one block and run it off-loop."""
        timer = self._timers.pop(k, None)
        if timer is not None:
            timer.cancel()
        block = self._queues.pop(k, [])
        if not block:
            return
        now = time.perf_counter()
        if OBS.enabled:
            _COALESCED.observe(len(block))
            for pending in block:
                _WAITS.observe(now - pending.t_enqueue)
        self.n_blocks += 1
        self.n_dispatched += len(block)
        queries = np.stack([p.query for p in block])

        def run():
            return self.searcher.search_batch(
                queries, k, self.ef, batch_size=max(len(block), 1),
                deadline_ms=self.deadline_ms)

        task = loop.run_in_executor(None, run)
        task.add_done_callback(lambda fut: self._resolve(block, fut))

    @staticmethod
    def _resolve(block: list[_Pending], fut) -> None:
        exc = fut.exception()
        if exc is not None:
            for pending in block:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        results = fut.result()
        for pending, result in zip(block, results):
            if not pending.future.done():
                pending.future.set_result(result)

    async def drain(self) -> None:
        """Dispatch any partially-filled windows immediately (for shutdown)."""
        loop = asyncio.get_running_loop()
        async with self._lock:
            for k in list(self._queues):
                self._dispatch(loop, k)

    def stats(self) -> dict:
        return {
            "dispatched": self.n_dispatched,
            "blocks": self.n_blocks,
            "mean_batch": (self.n_dispatched / self.n_blocks
                           if self.n_blocks else 0.0),
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
        }
