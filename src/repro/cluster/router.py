"""Scatter-gather router: hash-partitioned shards, replica failover, top-k merge.

:class:`ClusterRouter` owns ``n_shards`` partitions x ``n_replicas``
replica processes (forked :mod:`repro.cluster.worker` workers, each with its
own :class:`~repro.store.VectorStore`, WAL directory, and recovery path) and
presents the single-store surface on top:

- **Writes** are hash-partitioned by the router-assigned global id and sent
  to *every* replica of the owning partition.  A replica that died (no ack)
  gets the mutation appended to its catch-up queue; :meth:`respawn` replays
  the queue after the worker recovered from its own WAL — inserts are
  idempotent per gid on the worker side, so at-least-once delivery is safe.
- **Searches** fan one batched RPC out to one replica per partition (round
  robin for read scaling), each carrying a per-shard deadline budget derived
  from the caller's ``deadline_ms`` (see :func:`shard_budget_ms`; the math
  is documented in docs/durability.md).  Replies are gathered through the
  :func:`repro.cluster.resilience.scatter_gather` multiplexed event loop:
  a slow partition never head-of-line-blocks the others, a straggling
  primary is hedged to the partition's next live replica after its
  EWMA-tracked hedge delay, and per-replica circuit breakers route around
  gray (slow-but-alive) replicas until a non-blocking half-open probe
  re-admits them.  A dead replica is retried on the partition's next live
  replica with the *remaining* budget; a partition with no eligible
  replica (or whose budget expires) contributes nothing and the merged
  results come back ``degraded`` — partial answers, never an error,
  mirroring the single-store deadline contract.
- **Merging** is one vectorized pass (:func:`merge_topk_batch`): per-shard
  (B, k) id/distance blocks are concatenated, distance-sorted per row,
  deduplicated by gid (first occurrence wins — replica retries may deliver
  the same partition twice), filtered against the router's tombstone set,
  and truncated to k.

The router also exposes ``dc``/``adc_scored`` NDC accounting shims so
:func:`repro.evalx.runner.evaluate_index` can sweep a cluster exactly like a
single index.
"""

from __future__ import annotations

import multiprocessing as mp
import pathlib
import socket
import tempfile
import threading
import time

import numpy as np

from repro.cluster import resilience
from repro.cluster.protocol import recv_msg, send_msg
from repro.cluster.resilience import (BreakerConfig, CircuitBreaker,
                                      LatencyTracker, scatter_gather)
from repro.cluster.stats import merge_stats
from repro.cluster.worker import shard_wal_dir, worker_main
from repro.control.policy import make_policy
from repro.distances import Metric
from repro.graphs.search import SearchResult
from repro.obs import OBS, SECONDS_BUCKETS
from repro.quantization.pq import ProductQuantizer
from repro.tuning import coerce_tuned_config
from repro.utils.validation import check_positive

_SEARCHES = OBS.counter(
    "cluster_searches", "search requests routed through the cluster")
_RPCS = OBS.counter(
    "cluster_shard_rpcs", "shard RPCs issued by the router")
_FAILURES = OBS.counter(
    "cluster_shard_failures", "shard RPCs that found the replica dead")
_RETRIES = OBS.counter(
    "cluster_replica_retries", "searches retried on another replica")
_DEGRADED = OBS.counter(
    "cluster_degraded_searches",
    "cluster searches answered partially (deadline or partition outage)")
_MERGE_SECONDS = OBS.histogram(
    "cluster_merge_seconds", "vectorized top-k merge latency per batch",
    buckets=SECONDS_BUCKETS)
_RESPAWNS = OBS.counter(
    "cluster_respawns", "shard workers respawned through WAL recovery")
_CATCHUP = OBS.counter(
    "cluster_catchup_replayed", "buffered mutations replayed at respawn")
_CATCHUP_OVERFLOWS = OBS.counter(
    "cluster_catchup_overflows",
    "catch-up buffers that overflowed (full resync required at respawn)")
_RESYNCS = OBS.counter(
    "cluster_resyncs", "replicas resynchronized from a live peer")

#: Fraction of the remaining deadline reserved for scatter/merge overhead;
#: the rest is handed to the shard as its own search budget.
MERGE_RESERVE = 0.15


class ClusterError(RuntimeError):
    """A cluster operation failed in a way failover cannot mask."""


def shard_budget_ms(remaining_ms: float,
                    merge_reserve: float = MERGE_RESERVE) -> float:
    """Per-shard deadline budget from the caller's remaining budget.

    ``budget = remaining * (1 - merge_reserve)``: the reserve pays for
    serialization, the scatter/gather hop, and the router-side merge, so a
    shard that spends its whole budget still leaves the router inside the
    caller's deadline.  Retries recompute from the *remaining* budget, so a
    failover attempt never extends the caller's wait.
    """
    return max(0.1, remaining_ms * (1.0 - merge_reserve))


def hash_partition(gids: np.ndarray, n_shards: int) -> np.ndarray:
    """Partition assignment by global id (deterministic, stateless).

    Sequential router-assigned gids round-robin across shards, which keeps
    partitions balanced to within one row; any integer mix could be dropped
    in here without touching the protocol or the workers.
    """
    return np.asarray(gids, dtype=np.int64) % n_shards


def merge_topk_batch(ids_blocks: list[np.ndarray],
                     dists_blocks: list[np.ndarray], k: int,
                     excluded: np.ndarray | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized scatter-gather merge of per-shard top-k blocks.

    ``ids_blocks[s]``/``dists_blocks[s]`` are one shard's (B, k_s) results
    (gid ``-1`` padding = miss, distance ``inf``).  Returns (B, k) merged
    ids/distances, ascending per row, with duplicate gids deduplicated to
    their best distance and ``excluded`` gids (router tombstones) dropped.
    One sort + one unique over the whole batch — no per-query python loop.
    """
    ids = np.concatenate(ids_blocks, axis=1).astype(np.int64, copy=True)
    dists = np.concatenate(dists_blocks, axis=1).astype(np.float64, copy=True)
    if excluded is not None and excluded.size and ids.size:
        dead = np.isin(ids, excluded)
        ids[dead] = -1
    dists[ids < 0] = np.inf
    n_rows, width = ids.shape
    order = np.argsort(dists, axis=1, kind="stable")
    ids_sorted = np.take_along_axis(ids, order, axis=1)
    dists_sorted = np.take_along_axis(dists, order, axis=1)
    out_ids = np.full((n_rows, k), -1, dtype=np.int64)
    out_dists = np.full((n_rows, k), np.inf, dtype=np.float64)
    if not ids.size:
        return out_ids, out_dists
    # Dedupe per row keeping the first (= best-distance) occurrence: row-keyed
    # gids flatten row-major, and np.unique's return_index points at each
    # key's first flat position — which, within a row, is its best distance.
    stride = int(ids_sorted.max()) + 2
    keys = (np.arange(n_rows, dtype=np.int64)[:, None] * stride
            + ids_sorted + 1)
    first = np.zeros(n_rows * width, dtype=bool)
    first[np.unique(keys.ravel(), return_index=True)[1]] = True
    keep = first.reshape(n_rows, width) & (ids_sorted >= 0)
    rank = np.cumsum(keep, axis=1)
    take = keep & (rank <= k)
    rows, cols = np.nonzero(take)
    pos = rank[rows, cols] - 1
    out_ids[rows, pos] = ids_sorted[rows, cols]
    out_dists[rows, pos] = dists_sorted[rows, cols]
    return out_ids, out_dists


def merge_topk(ids_lists, dists_lists, k: int,
               excluded: np.ndarray | None = None,
               ) -> tuple[np.ndarray, np.ndarray]:
    """Single-query convenience wrapper over :func:`merge_topk_batch`."""
    ids, dists = merge_topk_batch(
        [np.atleast_2d(np.asarray(i, dtype=np.int64)) for i in ids_lists],
        [np.atleast_2d(np.asarray(d, dtype=np.float64)) for d in dists_lists],
        k, excluded=excluded)
    return ids[0], dists[0]


class _NDCShim:
    """Index-protocol ``dc`` stand-in aggregating shard-reported NDC."""

    def __init__(self):
        self.ndc = 0
        self.size = 0

    def reset_ndc(self) -> int:
        previous = self.ndc
        self.ndc = 0
        return previous


class ShardHandle:
    """One replica process + its socket, liveness, breaker, and catch-up queue.

    ``owes`` counts reply frames the router abandoned on this socket (hedge
    losses, expired deadline waits, timed-out probes); they are drained via
    :func:`repro.cluster.resilience.drain_stale` before the socket carries a
    new RPC, so a stale answer is never mistaken for a fresh one.  The
    catch-up queue is bounded by ``max_pending``: overflowing flips
    ``catchup_overflow`` and drops the buffer — the replica then requires a
    full WAL recovery *plus* an anti-entropy resync from a live peer at
    :meth:`ClusterRouter.respawn` instead of silently growing router memory.
    """

    def __init__(self, shard_id: int, replica_id: int, spec: dict,
                 rpc_timeout: float, max_pending: int = 1024,
                 breaker: CircuitBreaker | None = None,
                 latency: LatencyTracker | None = None):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.spec = dict(spec)
        self.rpc_timeout = rpc_timeout
        self.max_pending = max(int(max_pending), 1)
        self.alive = False
        self.sock: socket.socket | None = None
        self.process = None
        self.pending: list[dict] = []  # mutations missed while dead
        self.catchup_overflow = False
        self.hello: dict = {}
        self.owes = 0  # abandoned reply frames not yet drained
        self.breaker = breaker or CircuitBreaker(
            seed=shard_id * 8191 + replica_id)
        self.latency = latency or LatencyTracker()

    def spawn(self, recover: bool = False) -> dict:
        """Fork the worker (fresh or in WAL-recovery mode); returns its hello."""
        spec = dict(self.spec)
        spec["recover"] = recover
        parent_sock, child_sock = socket.socketpair()
        ctx = mp.get_context("fork")
        self.process = ctx.Process(
            target=worker_main, args=(child_sock, parent_sock, spec),
            name=f"repro-shard-{self.shard_id}.{self.replica_id}",
            daemon=True)
        self.process.start()
        child_sock.close()
        parent_sock.settimeout(self.rpc_timeout)
        self.sock = parent_sock
        hello = recv_msg(parent_sock)
        if "err" in hello:
            self.mark_dead()
            raise ClusterError(
                f"shard {self.shard_id}.{self.replica_id} failed to start: "
                f"{hello['err']}\n{hello.get('trace', '')}")
        self.alive = True
        self.owes = 0
        self.breaker.reset()
        self.hello = hello
        return hello

    def buffer_catchup(self, msg: dict) -> None:
        """Queue a missed mutation, or overflow into resync-required mode."""
        if self.catchup_overflow:
            return
        if len(self.pending) >= self.max_pending:
            self.pending.clear()
            self.catchup_overflow = True
            _CATCHUP_OVERFLOWS.inc()
            return
        self.pending.append(msg)

    def rpc(self, msg: dict) -> dict:
        """One request/reply round trip; ConnectionError marks the replica dead."""
        if not self.alive or self.sock is None:
            raise ConnectionError(
                f"shard {self.shard_id}.{self.replica_id} is down")
        if self.owes and not resilience.drain_stale(self, self.rpc_timeout):
            # Still owing after a full timeout: the stream cannot be
            # trusted for request/reply pairing any more.
            self.mark_dead()
            _FAILURES.inc()
            raise ConnectionError(
                f"shard {self.shard_id}.{self.replica_id} could not drain "
                "stale replies")
        _RPCS.inc()
        try:
            self.sock.settimeout(self.rpc_timeout)
            send_msg(self.sock, msg)
            return recv_msg(self.sock)
        except (ConnectionError, OSError) as exc:
            self.mark_dead()
            _FAILURES.inc()
            if isinstance(exc, ConnectionError):
                raise
            raise ConnectionError(str(exc)) from exc

    def mark_dead(self) -> None:
        self.alive = False
        self.owes = 0
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def close(self, graceful: bool = True) -> None:
        if self.alive and graceful:
            try:
                self.rpc({"op": "shutdown"})
            except (ConnectionError, Exception):
                pass
        self.mark_dead()
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)
            self.process = None


class ClusterRouter:
    """Partitioned, replicated serving facade over shard worker processes.

    Parameters
    ----------
    dim, metric:
        Vector geometry, forwarded to every shard's store.
    n_shards, n_replicas:
        Partition count and replicas per partition (replicas serve reads
        round-robin and mask single-replica death).
    base_dir:
        Durability root: replica ``(s, r)`` journals to
        ``base_dir/shard-00s/replica-r``.  ``None`` = a temp directory
        (still per-replica WALs, so chaos tests always have a recovery
        path).
    compressed, pq_m, pq_ks, rerank:
        Per-shard PQ-resident serving.  The router trains **one** codebook
        on a sample at :meth:`load` time and broadcasts it, so every
        shard's codes are mutually comparable (per-shard PQ training with
        code shipping).
    beam_width:
        Per-shard engine beam width.  Shard graphs are N× smaller than the
        corpus, so their batched searches at small ``ef`` are bound by
        lock-step rounds, not distance work; a wide beam (e.g. 4) cuts
        rounds per block.  ``None`` keeps each store's default.
    merge_reserve:
        Fraction of any deadline budget withheld from shards for the
        scatter/merge hop (see :func:`shard_budget_ms`).
    policy, policy_config:
        Per-shard maintenance policy (:mod:`repro.control`), forwarded to
        every replica's store.  Each shard runs its own policy against its
        own signals; :meth:`health` rolls per-shard navigability up to a
        cluster view (worst shard's score, summed storm detections).
    tuned_config:
        A fitted :class:`~repro.tuning.TunedConfig` (instance, dict, or
        JSON path) shipped to every replica's store, so each shard runs
        the hardness-aware planner with the same per-bin table (landmark
        entry points still resolve against each shard's own graph).
    hedge, hedge_ms:
        Hedged reads: when a partition's primary reply outlasts the
        replica's EWMA-tracked hedge delay (or the fixed ``hedge_ms``
        override), the block is re-issued to the partition's next eligible
        replica and the first reply wins.  Never fires when the partition
        has a single live replica; ``hedge=False`` restores strictly
        sequential replica use (the unhedged benchmark baseline).
    breaker_config:
        Per-replica :class:`~repro.cluster.resilience.BreakerConfig`
        (instance or dict; ``{"enabled": False}`` disables breakers).
        Each replica gets its own breaker with a deterministic distinct
        jitter seed.
    max_pending:
        Bound on each replica's catch-up mutation buffer; overflow forces
        a peer resync at :meth:`respawn` instead of unbounded growth.
    """

    def __init__(self, dim: int, metric: Metric | str = Metric.COSINE,
                 n_shards: int = 4, n_replicas: int = 1,
                 base_dir: str | pathlib.Path | None = None,
                 M: int = 12, ef_construction: int = 60, seed: int = 0,
                 merge_every: int = 256, sync_every: int = 8,
                 compressed: bool = False, pq_m: int | None = None,
                 pq_ks: int = 32, rerank: int = 50,
                 beam_width: int | None = None,
                 merge_reserve: float = MERGE_RESERVE,
                 rpc_timeout: float = 120.0,
                 policy: str | None = None,
                 policy_config: dict | None = None,
                 tuned_config=None,
                 hedge: bool = True, hedge_ms: float | None = None,
                 breaker_config=None, max_pending: int = 1024):
        check_positive(n_shards, "n_shards")
        check_positive(n_replicas, "n_replicas")
        # Fail fast on a bad policy spec here rather than as a worker
        # startup error n_shards*n_replicas times.
        make_policy(policy, merge_every, policy_config)
        self.policy = policy
        # Fitted tuned tables ship in the worker spec as plain dicts (specs
        # cross the process boundary as JSON); every shard plans with the
        # same per-bin settings.  Validate here, once, not per worker.
        tuned = coerce_tuned_config(tuned_config)
        self.tuned_config = tuned.to_dict() if tuned is not None else None
        self.dim = dim
        self.metric = Metric.parse(metric)
        self.n_shards = n_shards
        self.n_replicas = n_replicas
        self.merge_reserve = merge_reserve
        if base_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            base_dir = self._tmp.name
        else:
            self._tmp = None
        self.base_dir = pathlib.Path(base_dir)
        self.compressed = compressed
        self._pq: ProductQuantizer | None = None
        self._pq_m = pq_m
        self._pq_ks = pq_ks
        self._seed = seed
        self.dc = _NDCShim()
        self.adc_scored = 0
        self._next_gid = 0
        self._deleted: set[int] = set()
        self._deleted_arr = np.empty(0, dtype=np.int64)
        self._rr = 0  # round-robin replica cursor
        self.rpc_timeout = rpc_timeout
        self.hedge_enabled = bool(hedge)
        self.hedge_ms = hedge_ms
        self.breaker_config = BreakerConfig.coerce(breaker_config)
        self.max_pending = max_pending
        self.n_failures = 0
        self.n_retries = 0
        self.n_degraded = 0
        self.n_searches = 0
        self.n_respawns = 0
        self.n_hedges = 0
        self.n_hedge_wins = 0
        self.n_resyncs = 0
        # Frames from concurrent calls must not interleave on the shared
        # shard sockets; every RPC round (scatter+gather, mutation fan-out,
        # stats sweep) runs under this lock.  The front door's executor
        # threads therefore serialize here — the coalescing win comes from
        # bigger blocks per round trip, not socket-level concurrency.
        self._io_lock = threading.RLock()
        self.handles: list[list[ShardHandle]] = []
        for s in range(n_shards):
            replicas = []
            for r in range(n_replicas):
                spec = dict(
                    shard_id=s, replica_id=r, dim=dim,
                    metric=self.metric.value,
                    wal_dir=str(shard_wal_dir(self.base_dir, s, r)),
                    M=M, ef_construction=ef_construction, seed=seed + s,
                    merge_every=merge_every, sync_every=sync_every,
                    compressed=compressed, pq_m=pq_m, pq_ks=pq_ks,
                    rerank=rerank, beam_width=beam_width,
                    policy=policy, policy_config=policy_config,
                    tuned_config=self.tuned_config)
                breaker = CircuitBreaker(self.breaker_config,
                                         seed=seed * 31 + s * n_replicas + r)
                replicas.append(ShardHandle(s, r, spec, rpc_timeout,
                                            max_pending=max_pending,
                                            breaker=breaker))
            self.handles.append(replicas)
        for replicas in self.handles:
            for handle in replicas:
                handle.spawn()
        OBS.gauge_fn("cluster_live_replicas",
                     lambda: sum(h.alive for row in self.handles
                                 for h in row),
                     "shard replica processes currently serving")
        OBS.gauge_fn("cluster_breaker_state",
                     lambda: sum(h.breaker.state_code()
                                 for row in self.handles for h in row),
                     "summed replica breaker codes "
                     "(0 closed, 1 half-open, 2 open)")
        OBS.gauge_fn("cluster_catchup_depth",
                     lambda: max((len(h.pending) for row in self.handles
                                  for h in row), default=0),
                     "deepest per-replica catch-up mutation buffer")

    # -- context management --------------------------------------------------

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down gracefully and reap the processes."""
        with self._io_lock:
            for replicas in self.handles:
                for handle in replicas:
                    handle.close()
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None

    # -- PQ code shipping ----------------------------------------------------

    def train_pq(self, sample: np.ndarray) -> str:
        """Train one codebook on ``sample`` and broadcast it to every shard.

        Returns the codebook signature every shard now shares; shards built
        afterwards (or respawned) receive the same codebook, so ADC scores
        are comparable across the whole cluster.
        """
        from repro.cluster.worker import pq_signature
        from repro.quantization.adc import ADCComputer
        sample = np.ascontiguousarray(np.asarray(sample, dtype=np.float32))
        if self.metric is Metric.COSINE:
            norms = np.linalg.norm(sample, axis=1, keepdims=True)
            sample = sample / np.maximum(norms, 1e-12)
        pq = ProductQuantizer(
            m=self._pq_m or ADCComputer._default_m(self.dim),
            ks=self._pq_ks, metric=self.metric, seed=self._seed)
        pq.fit(sample)
        self._pq = pq
        sig = pq_signature(pq)
        self._broadcast_pq()
        return sig

    def _broadcast_pq(self) -> None:
        if self._pq is None:
            return
        msg = {"op": "set_pq", "codebooks": self._pq.codebooks}
        with self._io_lock:
            for replicas in self.handles:
                for handle in replicas:
                    if handle.alive:
                        try:
                            self._check(handle.rpc(msg))
                        except ConnectionError:
                            self._note_failure()

    # -- writes --------------------------------------------------------------

    @staticmethod
    def _check(reply: dict) -> dict:
        if "err" in reply:
            raise ClusterError(reply["err"] + "\n" + reply.get("trace", ""))
        return reply

    def _note_failure(self) -> None:
        self.n_failures += 1

    def _mutate_partition(self, shard_id: int, msg: dict) -> None:
        """Apply one mutation on every replica of a partition.

        Dead (or dying) replicas get the message buffered for catch-up
        replay at :meth:`respawn`; at least one replica must ack, otherwise
        the partition is fully down and the mutation cannot be acknowledged.
        """
        acked = 0
        with self._io_lock:
            for handle in self.handles[shard_id]:
                if not handle.alive:
                    handle.buffer_catchup(msg)
                    continue
                try:
                    self._check(handle.rpc(msg))
                    acked += 1
                except ConnectionError:
                    self._note_failure()
                    handle.buffer_catchup(msg)
        if not acked:
            raise ClusterError(
                f"partition {shard_id} has no live replica; mutation "
                "buffered for catch-up but cannot be acknowledged")

    def add(self, vectors: np.ndarray, payloads=None) -> list[int]:
        """Hash-partitioned insert; returns the assigned global ids."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected dimension {self.dim}, got {vectors.shape[1]}")
        gids = np.arange(self._next_gid, self._next_gid + vectors.shape[0],
                         dtype=np.int64)
        self._next_gid += vectors.shape[0]
        parts = hash_partition(gids, self.n_shards)
        for s in range(self.n_shards):
            mask = parts == s
            if not mask.any():
                continue
            msg = {"op": "add", "vectors": vectors[mask], "gids": gids[mask]}
            if payloads is not None:
                msg["payloads"] = [payloads[i]
                                   for i in np.nonzero(mask)[0].tolist()]
            self._mutate_partition(s, msg)
        self.dc.size += vectors.shape[0]
        return gids.tolist()

    def load(self, vectors: np.ndarray, payloads=None,
             train_queries: np.ndarray | None = None) -> list[int]:
        """Bulk ingest + per-shard build (+ optional NGFix history fit).

        With ``compressed=True`` and no codebook trained yet, a sample of
        the load is used to train the shared codebook first, so every
        shard encodes with the same quantizer.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if self.compressed and self._pq is None:
            rng = np.random.default_rng(self._seed)
            n = min(vectors.shape[0], max(4 * self._pq_ks, 1024))
            self.train_pq(vectors[rng.choice(vectors.shape[0], size=n,
                                             replace=False)])
        gids = np.arange(self._next_gid, self._next_gid + vectors.shape[0],
                         dtype=np.int64)
        self._next_gid += vectors.shape[0]
        parts = hash_partition(gids, self.n_shards)
        for s in range(self.n_shards):
            mask = parts == s
            msg = {"op": "load", "vectors": vectors[mask],
                   "gids": gids[mask]}
            if payloads is not None:
                msg["payloads"] = [payloads[i]
                                   for i in np.nonzero(mask)[0].tolist()]
            if train_queries is not None:
                msg["train"] = np.asarray(train_queries, dtype=np.float32)
            self._mutate_partition(s, msg)
        self.dc.size += vectors.shape[0]
        return gids.tolist()

    def delete(self, gids) -> None:
        """Delete by global id on the owning partitions (all replicas)."""
        gids = np.atleast_1d(np.asarray(gids, dtype=np.int64))
        parts = hash_partition(gids, self.n_shards)
        for s in range(self.n_shards):
            mask = parts == s
            if mask.any():
                self._mutate_partition(s, {"op": "delete",
                                           "gids": gids[mask]})
        self._deleted.update(int(g) for g in gids.tolist())
        self._deleted_arr = np.fromiter(self._deleted, dtype=np.int64,
                                        count=len(self._deleted))
        self.dc.size -= int(mask.shape[0] and gids.shape[0])
        self.dc.size = max(self.dc.size, 0)

    def observe(self, query: np.ndarray) -> bool:
        """Feed one query to every shard's online repair (best effort)."""
        accepted = False
        msg = {"op": "observe", "q": np.asarray(query, dtype=np.float32)}
        with self._io_lock:
            for replicas in self.handles:
                for handle in replicas:
                    if not handle.alive:
                        continue
                    try:
                        reply = self._check(handle.rpc(msg))
                        accepted = accepted or bool(reply.get("accepted"))
                    except ConnectionError:
                        self._note_failure()
        return accepted

    # -- reads ---------------------------------------------------------------

    def _live_replica(self, shard_id: int, skip: set[int]) -> ShardHandle | None:
        """Plain liveness pick (round robin), ignoring breaker state."""
        replicas = self.handles[shard_id]
        for i in range(self.n_replicas):
            handle = replicas[(self._rr + i) % self.n_replicas]
            if handle.alive and handle.replica_id not in skip:
                return handle
        return None

    def _pick_replica(self, shard_id: int,
                      skip: set[int]) -> ShardHandle | None:
        """Breaker-aware read pick: route around OPEN replicas, run probes.

        Probing is fully asynchronous so it never adds latency to the
        query path: an OPEN replica whose backoff elapsed gets a ``ping``
        *sent* (and is still skipped this round); a HALF_OPEN replica's
        probe reply is checked with a zero-timeout readability test —
        arrived and clean → breaker closes and the replica is eligible
        again, straggling past ``probe_timeout_s`` → reopen with a longer
        backoff.  Handles still owing stale frames get a tiny drain
        budget; ones that cannot catch up are skipped, not waited on.
        """
        replicas = self.handles[shard_id]
        for i in range(self.n_replicas):
            handle = replicas[(self._rr + i) % self.n_replicas]
            if not handle.alive or handle.replica_id in skip:
                continue
            breaker = handle.breaker
            if breaker.state == resilience.HALF_OPEN:
                self._check_probe(handle)
            if breaker.state == resilience.OPEN and breaker.probe_due():
                self._send_probe(handle)
            if not handle.alive or not breaker.allows():
                continue
            if handle.owes and not resilience.drain_stale(handle, 0.02):
                # Busy (or just died draining): do not wait on it.
                if not handle.alive:
                    self._note_failure()
                continue
            return handle
        return None

    def _send_probe(self, handle: ShardHandle) -> None:
        """Fire-and-forget half-open probe; the reply is checked later."""
        try:
            send_msg(handle.sock, {"op": "ping"})
        except (ConnectionError, OSError):
            handle.mark_dead()
            _FAILURES.inc()
            self._note_failure()
            return
        handle.owes += 1
        handle.breaker.begin_probe()

    def _check_probe(self, handle: ShardHandle) -> None:
        """Non-blocking probe-reply check for a HALF_OPEN replica.

        All frames owed before the probe arrive first (the socket is
        FIFO), so the replica has answered the probe exactly when the
        owed count drains to zero.
        """
        breaker = handle.breaker
        while handle.owes and resilience.readable(handle.sock, 0.0):
            try:
                handle.sock.settimeout(
                    max(breaker.config.probe_timeout_s, 0.05))
                recv_msg(handle.sock)
            except (ConnectionError, OSError):
                handle.mark_dead()
                _FAILURES.inc()
                self._note_failure()
                breaker.probe_failed()
                return
            handle.owes -= 1
        if handle.owes == 0:
            breaker.close()
            handle.latency.reset_window()
        elif breaker.probe_expired():
            breaker.probe_failed()

    # -- scatter_gather callbacks (see repro.cluster.resilience) -------------

    def _hedge_delay(self, handle: ShardHandle) -> float:
        if self.hedge_ms is not None:
            return self.hedge_ms / 1000.0
        return handle.latency.hedge_delay()

    def _has_hedge_target(self, shard_id: int, skip: set[int]) -> bool:
        return any(h.alive and h.replica_id not in skip
                   and h.breaker.allows()
                   for h in self.handles[shard_id])

    def _on_send(self, handle: ShardHandle) -> None:
        _RPCS.inc()

    def _on_success(self, handle: ShardHandle, latency_s: float) -> None:
        handle.latency.record(latency_s)
        handle.breaker.record_success(handle.latency)

    def _on_conn_error(self, handle: ShardHandle) -> None:
        handle.mark_dead()
        _FAILURES.inc()
        self._note_failure()

    def _on_timeout(self, handle: ShardHandle) -> None:
        # The reply may still arrive; the frame stays owed and is drained
        # before the handle's next use.  The breaker counts the timeout.
        handle.breaker.record_failure("timeout")

    def _on_outpaced(self, handle: ShardHandle) -> None:
        handle.breaker.record_failure("outpaced")

    def _note_retry(self) -> None:
        self.n_retries += 1
        _RETRIES.inc()

    def search(self, query: np.ndarray, k: int = 10, ef: int | None = None,
               deadline_ms: float | None = None) -> SearchResult:
        """Single-query scatter-gather search (returns merged gids)."""
        result = self.search_batch(
            np.atleast_2d(np.asarray(query, dtype=np.float32)), k, ef,
            deadline_ms=deadline_ms)[0]
        return result

    def search_batch(self, queries: np.ndarray, k: int = 10,
                     ef: int | None = None, batch_size: int = 256,
                     deadline_ms: float | None = None) -> list[SearchResult]:
        """Batched scatter-gather: one RPC per partition, vectorized merge.

        Every result's ids are global; a query is flagged ``degraded`` when
        any contributing shard degraded under its budget or a partition had
        no live replica at all (partial results, never an exception).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        n = queries.shape[0]
        start = time.perf_counter()
        deadline = (None if deadline_ms is None
                    else start + deadline_ms / 1000.0)
        self._rr += 1
        self.n_searches += n
        _SEARCHES.inc(n)

        def build_msg() -> dict:
            msg = {"op": "search", "q": queries, "k": int(k),
                   "batch_size": int(batch_size)}
            if ef is not None:
                msg["ef"] = int(ef)
            if deadline is not None:
                remaining = (deadline - time.perf_counter()) * 1000.0
                msg["deadline_ms"] = shard_budget_ms(
                    max(remaining, 0.1), self.merge_reserve)
            return msg

        # Scatter one block per partition, then gather every partition's
        # reply through the multiplexed selector loop (hedges, breakers,
        # budget-bounded waits — see repro.cluster.resilience).  The lock
        # keeps concurrent callers (front-door executor threads) from
        # interleaving frames on the shared sockets.
        with self._io_lock:
            replies = scatter_gather(self, build_msg, deadline)

        ids_blocks, dists_blocks = [], []
        shard_degraded = np.zeros(n, dtype=bool)
        for s, reply in replies.items():
            ids_blocks.append(np.asarray(reply["ids"], dtype=np.int64))
            dists_blocks.append(np.asarray(reply["dists"], dtype=np.float64))
            shard_degraded |= np.asarray(reply["degraded"], dtype=bool)
            self.dc.ndc += int(reply.get("ndc", 0))
            self.adc_scored += int(reply.get("adc", 0))
        outage = len(replies) < self.n_shards

        t_merge = time.perf_counter()
        if ids_blocks:
            merged_ids, merged_d = merge_topk_batch(
                ids_blocks, dists_blocks, k, excluded=self._deleted_arr)
        else:
            merged_ids = np.full((n, k), -1, dtype=np.int64)
            merged_d = np.full((n, k), np.inf, dtype=np.float64)
        if OBS.enabled:
            _MERGE_SECONDS.observe(time.perf_counter() - t_merge)

        results = []
        for i in range(n):
            valid = merged_ids[i] >= 0
            degraded = bool(shard_degraded[i]) or outage
            results.append(SearchResult(ids=merged_ids[i][valid],
                                        distances=merged_d[i][valid],
                                        degraded=degraded))
            if degraded:
                self.n_degraded += 1
                _DEGRADED.inc()
        return results

    def search_many(self, queries: np.ndarray, k: int,
                    ef: int | None = None,
                    batch_size: int = 256) -> tuple[np.ndarray, np.ndarray]:
        """Padded (ids, distances) arrays, mirroring the single-store API."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
        dists = np.full((queries.shape[0], k), np.inf)
        for i, result in enumerate(self.search_batch(queries, k, ef,
                                                     batch_size=batch_size)):
            m = min(k, len(result.ids))
            ids[i, :m] = result.ids[:m]
            dists[i, :m] = result.distances[:m]
        return ids, dists

    # -- failure handling ----------------------------------------------------

    def respawn(self, shard_id: int, replica_id: int = 0) -> dict:
        """Restart a dead replica through its own WAL recovery.

        The worker replays snapshot + WAL tail in its own process, reports
        a :class:`~repro.durability.RecoveryReport`, re-adopts the shared
        PQ codebook, and then the router replays every mutation the replica
        missed while dead (idempotent per gid).  Returns the recovery
        report dict (``consistent`` asserts gap-free sequences).
        """
        with self._io_lock:
            handle = self.handles[shard_id][replica_id]
            overflowed = handle.catchup_overflow
            handle.close(graceful=False)
            handle.spawn(recover=True)
            self.n_respawns += 1
            _RESPAWNS.inc()
            report = self._check(
                handle.rpc({"op": "recovery_report"})).get("report")
            if self._pq is not None:
                self._check(handle.rpc({"op": "set_pq",
                                        "codebooks": self._pq.codebooks}))
            pending, handle.pending = handle.pending, []
            for msg in pending:
                self._check(handle.rpc(msg))
            if pending:
                _CATCHUP.inc(len(pending))
            if overflowed:
                # The buffer was dropped at overflow, so WAL recovery alone
                # leaves this replica missing every mutation since; diff
                # its row set against a live peer and repair.
                self._resync_from_peer(handle)
                handle.catchup_overflow = False
            return report

    def _resync_from_peer(self, handle: ShardHandle,
                          chunk: int = 512) -> None:
        """Anti-entropy repair: converge ``handle`` on a live peer's rows.

        Diffs the two replicas' gid sets (``gid_list``), deletes rows the
        peer no longer has, and re-ships missing rows (vectors + payloads
        via ``export_rows``) in chunks.  Worker-side adds are idempotent
        per gid, so a crash mid-resync just means the next resync re-sends
        less.  Raises :class:`ClusterError` when the partition has no live
        peer to copy from — the data for the dropped mutations exists
        nowhere the router can reach.
        """
        peer = next((h for h in self.handles[handle.shard_id]
                     if h is not handle and h.alive), None)
        if peer is None:
            raise ClusterError(
                f"partition {handle.shard_id}: catch-up buffer overflowed "
                "and no live peer remains to resync from")
        have = np.asarray(
            self._check(handle.rpc({"op": "gid_list"}))["gids"],
            dtype=np.int64)
        want = np.asarray(
            self._check(peer.rpc({"op": "gid_list"}))["gids"],
            dtype=np.int64)
        extra = np.setdiff1d(have, want)
        missing = np.setdiff1d(want, have)
        if extra.size:
            self._check(handle.rpc({"op": "delete", "gids": extra}))
        for i in range(0, missing.size, chunk):
            gids = missing[i:i + chunk]
            rows = self._check(peer.rpc({"op": "export_rows",
                                         "gids": gids}))
            msg = {"op": "add",
                   "vectors": np.asarray(rows["vectors"], dtype=np.float32),
                   "gids": gids}
            if any(p is not None for p in rows.get("payloads", [])):
                msg["payloads"] = rows["payloads"]
            self._check(handle.rpc(msg))
        self.n_resyncs += 1
        _RESYNCS.inc()

    def live_replicas(self) -> int:
        return sum(h.alive for row in self.handles for h in row)

    # -- stats ---------------------------------------------------------------

    def router_stats(self) -> dict:
        handles = [h for row in self.handles for h in row]
        return {
            "n_shards": self.n_shards,
            "n_replicas": self.n_replicas,
            "live_replicas": self.live_replicas(),
            "searches": self.n_searches,
            "failures": self.n_failures,
            "retries": self.n_retries,
            "degraded": self.n_degraded,
            "respawns": self.n_respawns,
            "hedges": self.n_hedges,
            "hedge_wins": self.n_hedge_wins,
            "resyncs": self.n_resyncs,
            "breaker_trips": sum(h.breaker.n_trips for h in handles),
            "breaker_readmits": sum(h.breaker.n_readmits for h in handles),
            "breakers_open": sum(h.breaker.state != resilience.CLOSED
                                 for h in handles),
            "catchup_depth": max((len(h.pending) for h in handles),
                                 default=0),
            "catchup_overflows": sum(h.catchup_overflow for h in handles),
            "deleted_gids": len(self._deleted),
            "next_gid": self._next_gid,
            "pq_shared": self._pq is not None,
        }

    def stats(self) -> dict:
        """Per-replica stats plus the collision-free merged rollup."""
        shard_stats = []
        with self._io_lock:
            for replicas in self.handles:
                for handle in replicas:
                    if not handle.alive:
                        shard_stats.append({"shard_id": handle.shard_id,
                                            "replica_id": handle.replica_id,
                                            "alive": False})
                        continue
                    try:
                        stats = self._check(
                            handle.rpc({"op": "stats"}))["stats"]
                        stats["alive"] = True
                        shard_stats.append(stats)
                    except ConnectionError:
                        self._note_failure()
                        shard_stats.append({"shard_id": handle.shard_id,
                                            "replica_id": handle.replica_id,
                                            "alive": False})
        return {
            "router": self.router_stats(),
            "shards": shard_stats,
            "merged": merge_stats(shard_stats),
        }

    def health(self) -> dict:
        """Cluster navigability rollup from the per-shard maintenance
        policies.

        Score-like gauges aggregate by *worst shard* (see
        :data:`repro.cluster.stats.MAX_KEYS`) — one badly degraded
        partition degrades every query that fans out to it — while
        event counters (storms, triggers, repairs) sum.  Shards running
        the default cadence policy report no signal fields; the rollup
        then carries only liveness and repair/merge totals.
        """
        snap = self.stats()
        shards = snap["shards"]
        serving = snap["merged"].get("serving") or {}
        policy = serving.get("policy") or {}
        per_shard = []
        for s in shards:
            shard_policy = (s.get("serving") or {}).get("policy") or {}
            per_shard.append({
                "shard_id": s.get("shard_id"),
                "replica_id": s.get("replica_id"),
                "alive": bool(s.get("alive")),
                "signal_score": shard_policy.get("signal_score"),
                "storm_active": shard_policy.get("storm_active"),
            })
        return {
            "live_replicas": sum(1 for s in shards if s.get("alive")),
            "total_replicas": len(shards),
            "policy": policy.get("policy"),
            "signal_score": policy.get("signal_score"),
            "signal_slope": policy.get("signal_slope"),
            "storms_active": policy.get("storm_active", 0),
            "storm_detections": policy.get("storm_detections", 0),
            "triggers_fired": policy.get("triggers_fired", 0),
            "repairs_skipped": policy.get("repairs_skipped", 0),
            "repairs": serving.get("repairs", 0),
            "merges": serving.get("merges", 0),
            "repair_seconds": serving.get("repair_seconds", 0.0),
            "merge_seconds": serving.get("merge_seconds", 0.0),
            "replicas": per_shard,
        }
