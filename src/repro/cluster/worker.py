"""Shard worker: one process owning one partition's :class:`VectorStore`.

A worker is forked by the router with one end of a ``socketpair`` and a
*spec* describing its partition: shard/replica ids, store geometry, an
optional WAL directory (each shard journals to — and recovers from — its
own directory), and compressed-mode settings.  It then serves a
request/reply loop over the length-prefixed frames of
:mod:`repro.cluster.protocol`.

Id translation lives here, not in the router: every insert arrives with the
*global* ids the router assigned, the worker stores each gid as the row's
WAL-journaled payload, and search replies already carry gids — so the
router needs no id map at all, and a recovered worker rebuilds its own
``gid -> local`` map from the payloads the snapshot + WAL replay restored.
Inserts are idempotent per gid (an already-present gid is skipped), which
makes the router's catch-up replay after a crash safe under at-least-once
delivery.

Fault injection: every request dispatch fires the ``cluster.worker_op``
point, so a chaos plan armed via the ``arm_faults`` op can kill the process
(``os._exit(137)``) on the Nth operation — *before* the op applies,
matching the acked-write contract (no ack ⇒ not applied ⇒ safe to replay).
The ``worker.pre_reply`` point fires after the op applied but *before* the
reply frame is written: a ``delay`` rule there makes the worker
slow-but-alive — deterministic gray failure on demand for the hedging and
circuit-breaker chaos suites.
"""

from __future__ import annotations

import pathlib
import traceback

import numpy as np

from repro.cluster.protocol import recv_msg, send_msg
from repro.distances import Metric
from repro.faults import FAULTS, FaultPlan
from repro.quantization.pq import ProductQuantizer

#: Fault-injection point fired at the top of every worker request dispatch.
WORKER_OP_POINT = "cluster.worker_op"

#: Fault-injection point fired just before the worker sends each reply —
#: a ``delay`` rule here simulates a gray (slow-but-alive) replica.
WORKER_PRE_REPLY_POINT = "worker.pre_reply"


def pq_signature(pq: ProductQuantizer) -> str:
    """Stable fingerprint of a fitted quantizer's codebooks (hex crc32)."""
    import zlib
    if pq is None or not pq.is_fitted:
        return ""
    return f"{zlib.crc32(np.ascontiguousarray(pq.codebooks).tobytes()):08x}"


def _jsonable(value):
    """Coerce stats payloads to JSON-serializable plain python."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class _ShardServer:
    """The in-process state behind one worker's request loop."""

    def __init__(self, spec: dict):
        self.spec = spec
        self.shard_id = int(spec["shard_id"])
        self.replica_id = int(spec.get("replica_id", 0))
        self.store = None
        self.recovery_report: dict | None = None
        self.shared_pq: ProductQuantizer | None = None
        # local id -> gid (append-only; grows with inserts)
        self._gids = np.empty(0, dtype=np.int64)
        self._local_of_gid: dict[int, int] = {}
        if spec.get("recover"):
            self._recover()
        else:
            self._fresh_store()

    # -- store lifecycle ----------------------------------------------------

    def _store_kwargs(self) -> dict:
        spec = self.spec
        return dict(
            M=int(spec.get("M", 12)),
            ef_construction=int(spec.get("ef_construction", 60)),
            seed=int(spec.get("seed", 0)),
            merge_every=int(spec.get("merge_every", 256)),
            scheduler_mode=spec.get("scheduler_mode", "inline"),
            compressed=bool(spec.get("compressed", False)),
            pq_m=spec.get("pq_m"),
            pq_ks=int(spec.get("pq_ks", 32)),
            rerank=int(spec.get("rerank", 50)),
            beam_width=(int(spec["beam_width"])
                        if spec.get("beam_width") else None),
            policy=spec.get("policy"),
            policy_config=spec.get("policy_config"),
            tuned_config=spec.get("tuned_config"),
        )

    def _fresh_store(self) -> None:
        from repro.store import VectorStore
        spec = self.spec
        wal_dir = spec.get("wal_dir")
        self.store = VectorStore(
            dim=int(spec["dim"]), metric=spec.get("metric", "cosine"),
            wal_dir=wal_dir, sync_every=int(spec.get("sync_every", 8)),
            **self._store_kwargs())

    def _recover(self) -> None:
        from repro.durability import recover
        wal_dir = self.spec.get("wal_dir")
        if not wal_dir:
            raise RuntimeError("recover=True requires a wal_dir in the spec")
        store, report = recover(wal_dir)
        self.store = store
        self.recovery_report = report.to_dict()
        self._rebuild_gid_maps()

    def _rebuild_gid_maps(self) -> None:
        """Reconstruct gid translation from the journaled payloads."""
        size = self.store.dc.size if self.store.dc is not None else 0
        self._gids = np.full(max(size, 0), -1, dtype=np.int64)
        self._local_of_gid = {}
        for local, payload in self.store._payloads.items():
            gid = payload.get("g") if isinstance(payload, dict) else None
            if gid is None:
                continue
            gid = int(gid)
            if local >= self._gids.shape[0]:
                grown = np.full(local + 1, -1, dtype=np.int64)
                grown[: self._gids.shape[0]] = self._gids
                self._gids = grown
            self._gids[local] = gid
            self._local_of_gid[gid] = int(local)

    def _note_ids(self, locals_: list[int], gids: np.ndarray) -> None:
        top = max(locals_) + 1 if locals_ else 0
        if top > self._gids.shape[0]:
            grown = np.full(top, -1, dtype=np.int64)
            grown[: self._gids.shape[0]] = self._gids
            self._gids = grown
        for local, gid in zip(locals_, gids):
            self._gids[local] = int(gid)
            self._local_of_gid[int(gid)] = int(local)

    # -- operations ---------------------------------------------------------

    def op_ping(self, msg: dict) -> dict:
        return {"ok": True, "shard": self.shard_id,
                "replica": self.replica_id,
                "built": bool(self.store is not None and self.store.is_built)}

    def op_health(self, msg: dict) -> dict:
        """Cheap liveness/readiness answer (the breaker probe target)."""
        return {"ok": True, "shard": self.shard_id,
                "replica": self.replica_id,
                "n_gids": len(self._local_of_gid),
                "built": bool(self.store is not None and self.store.is_built)}

    def op_gid_list(self, msg: dict) -> dict:
        """Live global ids on this replica (anti-entropy resync diffing)."""
        gids = np.fromiter(self._local_of_gid.keys(), dtype=np.int64,
                           count=len(self._local_of_gid))
        gids.sort()
        return {"ok": True, "gids": gids}

    def op_export_rows(self, msg: dict) -> dict:
        """Ship raw vectors (+ user payloads) for a gid set to a peer.

        Vectors come from the store's resident tier; for cosine stores
        they are the normalized rows, which re-normalize idempotently on
        the receiving side.  Unknown gids are an error — the caller just
        diffed the gid sets, so asking for a gid this replica lacks means
        the resync raced a concurrent delete and must be retried.
        """
        gids = np.asarray(msg["gids"], dtype=np.int64)
        missing = [int(g) for g in gids.tolist()
                   if int(g) not in self._local_of_gid]
        if missing:
            return {"err": f"export_rows: gids not present: {missing[:8]}"}
        locals_ = [self._local_of_gid[int(g)] for g in gids.tolist()]
        vectors = np.ascontiguousarray(
            self.store.dc.data[locals_], dtype=np.float32)
        payloads = []
        for local in locals_:
            p = self.store._payloads.get(local)
            payloads.append(p.get("u") if isinstance(p, dict) else None)
        return {"ok": True, "vectors": vectors, "payloads": payloads}

    def op_set_pq(self, msg: dict) -> dict:
        """Adopt the router-trained codebook (per-shard PQ code shipping)."""
        codebooks = np.asarray(msg["codebooks"], dtype=np.float32)
        m, ks, d_sub = codebooks.shape
        pq = ProductQuantizer(m=m, ks=ks,
                              metric=self.spec.get("metric", "cosine"),
                              seed=int(self.spec.get("seed", 0)))
        pq.codebooks = codebooks
        pq.dim = m * d_sub
        self.shared_pq = pq
        self.store.apply_pq(pq)
        return {"ok": True, "pq_sig": pq_signature(pq)}

    def _add_rows(self, vectors: np.ndarray, gids: np.ndarray,
                  user_payloads=None) -> int:
        """Idempotent insert: rows whose gid is already present are skipped."""
        fresh = [i for i, g in enumerate(gids.tolist())
                 if int(g) not in self._local_of_gid]
        if not fresh:
            return 0
        vectors = np.ascontiguousarray(vectors[fresh], dtype=np.float32)
        payloads = []
        for i in fresh:
            p = {"g": int(gids[i])}
            if user_payloads is not None and user_payloads[i] is not None:
                p["u"] = user_payloads[i]
            payloads.append(p)
        locals_ = self.store.add(vectors, payloads=payloads)
        self._note_ids(locals_, gids[fresh])
        return len(fresh)

    def op_load(self, msg: dict) -> dict:
        """Bulk ingest + build (+ optional history fit)."""
        added = self._add_rows(msg["vectors"], msg["gids"],
                               msg.get("payloads"))
        self.store.build()
        train = msg.get("train")
        if train is not None and len(train):
            self.store.fit_history(np.asarray(train, dtype=np.float32))
        return {"ok": True, "added": added, "n": int(self.store.dc.size)}

    def op_add(self, msg: dict) -> dict:
        added = self._add_rows(msg["vectors"], msg["gids"],
                               msg.get("payloads"))
        return {"ok": True, "added": added}

    def op_delete(self, msg: dict) -> dict:
        gids = np.asarray(msg["gids"], dtype=np.int64)
        locals_ = [self._local_of_gid[g] for g in gids.tolist()
                   if g in self._local_of_gid]
        if locals_:
            self.store.delete(locals_)
        for g in gids.tolist():
            self._local_of_gid.pop(int(g), None)
        return {"ok": True, "deleted": len(locals_)}

    def op_search(self, msg: dict) -> dict:
        queries = np.asarray(msg["q"], dtype=np.float32)
        k = int(msg["k"])
        ef = msg.get("ef")
        deadline_ms = msg.get("deadline_ms")
        store = self.store
        ndc0 = store.dc.ndc
        searcher = store.searcher
        adc0 = searcher.adc_scored if searcher is not None else 0
        kwargs = {"batch_size": int(msg.get("batch_size", 256))}
        if deadline_ms is not None:
            kwargs["deadline_ms"] = float(deadline_ms)
        results = store.search_batch(queries, k, ef, **kwargs)
        ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
        dists = np.full((queries.shape[0], k), np.inf, dtype=np.float64)
        degraded = np.zeros(queries.shape[0], dtype=bool)
        for i, result in enumerate(results):
            m = min(k, len(result.ids))
            if m:
                ids[i, :m] = self._gids[result.ids[:m]]  # local -> gid
                dists[i, :m] = result.distances[:m]
            degraded[i] = bool(result.degraded)
        return {
            "ok": True, "ids": ids, "dists": dists, "degraded": degraded,
            "ndc": int(store.dc.ndc - ndc0),
            "adc": int((searcher.adc_scored - adc0)
                       if searcher is not None else 0),
        }

    def op_observe(self, msg: dict) -> dict:
        accepted = self.store.observe(np.asarray(msg["q"], dtype=np.float32))
        return {"ok": True, "accepted": bool(accepted)}

    def op_stats(self, msg: dict) -> dict:
        stats = _jsonable(self.store.stats())
        stats["shard_id"] = self.shard_id
        stats["replica_id"] = self.replica_id
        stats["n_gids"] = len(self._local_of_gid)
        stats["pq_sig"] = pq_signature(
            self.store.adc.pq if self.store.adc is not None
            else self.shared_pq)
        return {"ok": True, "stats": stats}

    def op_checkpoint(self, msg: dict) -> dict:
        info = self.store.checkpoint()
        return {"ok": True, "snapshot_id": int(info.snapshot_id),
                "wal_seq": int(info.wal_seq)}

    def op_flush(self, msg: dict) -> dict:
        return {"ok": True, "drained": bool(self.store.flush())}

    def op_recovery_report(self, msg: dict) -> dict:
        return {"ok": True, "report": self.recovery_report}

    def op_arm_faults(self, msg: dict) -> dict:
        plan = FaultPlan(seed=int(msg.get("seed", 0)))
        for rule in msg["rules"]:
            plan.on(rule["point"], rule.get("action", "raise"),
                    nth=int(rule.get("nth", 1)),
                    every=bool(rule.get("every", False)),
                    delay_s=float(rule.get("delay_s", 0.05)),
                    probability=rule.get("probability"))
        FAULTS.arm(plan)
        return {"ok": True, "armed": len(msg["rules"])}

    def op_disarm_faults(self, msg: dict) -> dict:
        FAULTS.disarm()
        return {"ok": True}

    def dispatch(self, msg: dict) -> dict:
        op = msg.get("op", "")
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            return {"err": f"unknown op {op!r}"}
        return handler(msg)


def worker_main(sock, parent_sock, spec: dict) -> None:
    """Request loop of one forked shard worker (never returns normally).

    ``parent_sock`` is the router's end inherited through fork; it is closed
    first so the router sees a clean EOF if this process dies.
    """
    if parent_sock is not None:
        try:
            parent_sock.close()
        except OSError:
            pass
    Metric.parse(spec.get("metric", "cosine"))  # fail fast on bad spec
    try:
        server = _ShardServer(spec)
    except Exception as exc:
        try:
            send_msg(sock, {"err": f"worker startup failed: {exc!r}",
                            "trace": traceback.format_exc()})
        finally:
            sock.close()
        return
    send_msg(sock, {"ok": True, "shard": server.shard_id,
                    "replica": server.replica_id,
                    "recovered": server.recovery_report is not None})
    try:
        while True:
            try:
                msg = recv_msg(sock)
            except ConnectionError:
                break  # router gone; exit quietly
            FAULTS.fire(WORKER_OP_POINT)  # chaos: die/raise before applying
            if msg.get("op") == "shutdown":
                try:
                    if server.store is not None:
                        server.store.close()
                finally:
                    send_msg(sock, {"ok": True})
                break
            try:
                reply = server.dispatch(msg)
            except Exception as exc:
                reply = {"err": repr(exc),
                         "trace": traceback.format_exc(limit=8)}
            FAULTS.fire(WORKER_PRE_REPLY_POINT)  # gray failure: slow reply
            send_msg(sock, reply)
    finally:
        sock.close()


def shard_wal_dir(base_dir, shard_id: int, replica_id: int) -> pathlib.Path:
    """Canonical per-replica durability directory under ``base_dir``."""
    return (pathlib.Path(base_dir)
            / f"shard-{shard_id:03d}" / f"replica-{replica_id}")
