"""Metric definitions and vectorized distance kernels.

Distances are comparison-oriented: each metric maps to a value where smaller
means closer, which is the only property graph traversal needs.  For L2 the
squared distance is used (monotone in the true distance, cheaper); callers
that need the true Euclidean value (e.g. relative-distance-error reporting)
can take the square root.
"""

from __future__ import annotations

import enum

import numpy as np


class Metric(enum.Enum):
    """Supported vector similarity metrics (see Table 1 of the paper)."""

    L2 = "l2"
    INNER_PRODUCT = "ip"
    COSINE = "cosine"

    @classmethod
    def parse(cls, value: "Metric | str") -> "Metric":
        """Accept either a ``Metric`` or its string value ("l2", "ip", "cosine")."""
        if isinstance(value, Metric):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown metric {value!r}; expected one of: {valid}") from None


def normalize_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalize each row of ``x`` (used to reduce cosine to dot product)."""
    x = np.asarray(x, dtype=np.float32)
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, eps)


def distances_to_query(data: np.ndarray, query: np.ndarray, metric: Metric) -> np.ndarray:
    """Distances from every row of ``data`` to ``query`` (1-D result).

    ``data`` rows for COSINE are assumed *already normalized*; ``query`` is
    normalized here.  This matches how :class:`~repro.distances.DistanceComputer`
    stores its matrix.
    """
    metric = Metric.parse(metric)
    if metric is Metric.L2:
        diff = data - query
        return np.einsum("ij,ij->i", diff, diff)
    if metric is Metric.INNER_PRODUCT:
        return -(data @ query)
    # COSINE: rows pre-normalized, normalize only the query.
    qn = np.linalg.norm(query)
    q = query / qn if qn > 1e-12 else query
    return 1.0 - data @ q


def pairwise_distances(a: np.ndarray, b: np.ndarray, metric: Metric) -> np.ndarray:
    """Full (len(a), len(b)) distance matrix.

    Unlike :func:`distances_to_query` this function normalizes both sides for
    COSINE, so it is safe on raw (un-normalized) inputs.  Used for brute-force
    ground truth and dataset statistics.
    """
    metric = Metric.parse(metric)
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if metric is Metric.L2:
        aa = np.einsum("ij,ij->i", a, a)[:, None]
        bb = np.einsum("ij,ij->i", b, b)[None, :]
        d = aa + bb - 2.0 * (a @ b.T)
        np.maximum(d, 0.0, out=d)
        return d
    if metric is Metric.INNER_PRODUCT:
        return -(a @ b.T)
    return 1.0 - normalize_rows(a) @ normalize_rows(b).T


def distance_point(a: np.ndarray, b: np.ndarray, metric: Metric) -> float:
    """Distance between two single vectors (normalizing both for COSINE)."""
    metric = Metric.parse(metric)
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if metric is Metric.L2:
        diff = a - b
        return float(diff @ diff)
    if metric is Metric.INNER_PRODUCT:
        return float(-(a @ b))
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na < 1e-12 or nb < 1e-12:
        return 1.0
    return float(1.0 - (a @ b) / (na * nb))
