"""Distance kernels and NDC-counting distance computers.

All indexes in this library express similarity as a *distance* where smaller
means closer, regardless of the underlying metric:

- ``Metric.L2``            -> squared Euclidean distance
- ``Metric.INNER_PRODUCT`` -> negated inner product
- ``Metric.COSINE``        -> 1 - cosine similarity

The paper reports efficiency both as QPS and as the Number of Distance
Calculations (NDC); :class:`DistanceComputer` counts every vector-to-vector
distance it evaluates so NDC can be reported exactly.
"""

from repro.distances.metrics import (
    Metric,
    pairwise_distances,
    distances_to_query,
    normalize_rows,
)
from repro.distances.computer import DistanceComputer

__all__ = [
    "Metric",
    "pairwise_distances",
    "distances_to_query",
    "normalize_rows",
    "DistanceComputer",
]
