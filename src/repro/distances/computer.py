"""NDC-counting distance computer bound to a base dataset.

Graph indexes hold a :class:`DistanceComputer` rather than the raw matrix so
that (1) COSINE data is normalized exactly once, (2) every distance
evaluation is counted, giving the paper's NDC efficiency metric for free, and
(3) queries are prepared once per search (normalization for COSINE).
"""

from __future__ import annotations

import mmap
import os
import pathlib

import numpy as np

from repro.distances.metrics import Metric, normalize_rows
from repro.utils.validation import check_matrix, check_vector


class DistanceComputer:
    """Distances from stored base vectors to queries/each other, with NDC count.

    Parameters
    ----------
    data:
        ``(n, d)`` base vectors.  Copied (and row-normalized for COSINE).
    metric:
        One of :class:`Metric` or its string form.
    """

    def __init__(self, data: np.ndarray, metric: Metric | str):
        self.metric = Metric.parse(metric)
        data = check_matrix(data, "data")
        if self.metric is Metric.COSINE:
            data = normalize_rows(data)
        self._data = data
        self.ndc = 0
        self._memmap_path: pathlib.Path | None = None

    @property
    def data(self) -> np.ndarray:
        """The stored (possibly normalized) base matrix; treat as read-only."""
        return self._data

    @property
    def size(self) -> int:
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        return self._data.shape[1]

    # -- memmap tier ---------------------------------------------------------

    @staticmethod
    def _open_memmap(path: pathlib.Path, shape: tuple) -> np.ndarray:
        """Read-only memmap with random-access paging hints.

        The disk tier is gathered by scattered re-rank row fetches, so
        sequential readahead only drags untouched neighbors into memory;
        ``MADV_RANDOM`` keeps page-ins to the rows actually read.
        """
        data = np.memmap(path, dtype=np.float32, mode="r", shape=shape)
        try:
            data._mmap.madvise(mmap.MADV_RANDOM)
        except (AttributeError, OSError):  # platform without madvise
            pass
        return data

    @property
    def is_memmap(self) -> bool:
        """Whether the base matrix is disk-resident (``np.memmap``-backed)."""
        return self._memmap_path is not None

    @property
    def memmap_path(self) -> pathlib.Path | None:
        return self._memmap_path

    @property
    def vector_bytes(self) -> int:
        """Raw bytes of the base matrix (file size in memmap mode)."""
        return int(self._data.nbytes)

    def use_memmap(self, path: str | pathlib.Path) -> pathlib.Path:
        """Spill the base matrix to ``path`` and serve it memory-mapped.

        The stored (already COSINE-normalized) float32 matrix is written
        row-major to a raw file and ``_data`` is re-pointed at a read-only
        ``np.memmap`` over it, releasing the resident copy.  Distance
        kernels are unchanged — row gathers lazily page in only the rows
        they touch, which on the compressed hot path means the exact
        re-rank shortlist, not the traversal frontier.  Idempotent for the
        same path.
        """
        path = pathlib.Path(path)
        if self._memmap_path == path:
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        shape = self._data.shape
        arr = np.ascontiguousarray(self._data, dtype=np.float32)
        with open(path, "wb") as f:
            arr.tofile(f)
            f.flush()
            os.fsync(f.fileno())
        del arr
        self._data = self._open_memmap(path, shape)
        self._memmap_path = path
        return path

    def remap(self) -> None:
        """Re-open the memmap, dropping this process's resident mapping.

        A fresh mapping starts with zero resident pages, so RSS measured
        after ``remap()`` reflects only the rows gathered *since* — the
        serving-phase disk-tier footprint, untainted by pages touched
        during build, PQ training, or ground-truth computation.
        """
        if self._memmap_path is None:
            raise ValueError("remap() requires memmap mode; call use_memmap")
        shape = self._data.shape
        self._data = self._open_memmap(self._memmap_path, shape)

    @classmethod
    def from_memmap(cls, path: str | pathlib.Path, dim: int,
                    metric: Metric | str) -> "DistanceComputer":
        """Open a spill file written by :meth:`use_memmap` without reading it.

        The file is trusted to hold prepared float32 rows (finite, and
        already normalized for COSINE) — validation would defeat the point
        of not paging the matrix in.  Row count is derived from the file
        size.
        """
        path = pathlib.Path(path)
        itemsize = np.dtype(np.float32).itemsize
        nbytes = path.stat().st_size
        if dim <= 0 or nbytes == 0 or nbytes % (itemsize * dim):
            raise ValueError(
                f"{path} ({nbytes} bytes) is not a whole number of "
                f"float32 rows of dimension {dim}")
        self = cls.__new__(cls)
        self.metric = Metric.parse(metric)
        self._data = self._open_memmap(path,
                                       (nbytes // (itemsize * dim), dim))
        self.ndc = 0
        self._memmap_path = path
        return self

    def append(self, rows: np.ndarray) -> int:
        """Append new base vectors (normalizing for COSINE); returns first new id.

        Supports incremental insertion (paper Sec. 5.5.1); existing ids are
        unchanged.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float32))
        if rows.shape[1] != self.dim:
            raise ValueError(f"expected dimension {self.dim}, got {rows.shape[1]}")
        if not np.isfinite(rows).all():
            raise ValueError("appended rows contain NaN or Inf")
        if self.metric is Metric.COSINE:
            rows = normalize_rows(rows)
        first_new = self.size
        if self._memmap_path is not None:
            # Disk-resident tier: append the prepared rows to the spill file
            # and remap at the new length — existing pages stay shared.
            with open(self._memmap_path, "ab") as f:
                np.ascontiguousarray(rows, dtype=np.float32).tofile(f)
                f.flush()
                os.fsync(f.fileno())
            self._data = self._open_memmap(
                self._memmap_path, (first_new + rows.shape[0], self.dim))
        else:
            self._data = np.ascontiguousarray(np.vstack([self._data, rows]))
        return first_new

    def reset_ndc(self) -> int:
        """Zero the NDC counter, returning the previous value."""
        previous = self.ndc
        self.ndc = 0
        return previous

    def prepare_query(self, query: np.ndarray) -> np.ndarray:
        """Validate (and for COSINE normalize) a query vector once per search."""
        q = check_vector(query, "query", dim=self.dim)
        return self._normalize_rows(q[None, :])[0]

    def prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Batch :meth:`prepare_query`: one ``(B, d)`` block, vectorized.

        Per-query preparation is ef-independent overhead that dominates
        small-``ef`` batched searches (it is why a shard-sized block does
        not get proportionally cheaper as its graph shrinks).  Both entry
        points share :meth:`_normalize_rows`, so a row prepared here is
        bit-identical to the same vector prepared alone — the
        sequential/batched equivalence of the search engines depends on it.
        """
        qm = np.ascontiguousarray(queries, dtype=np.float32)
        if qm.ndim != 2:
            raise ValueError(f"queries must be 2-D, got shape {qm.shape}")
        if qm.shape[1] != self.dim:
            raise ValueError(f"queries must have dimension {self.dim}, "
                             f"got {qm.shape[1]}")
        if not np.isfinite(qm).all():
            raise ValueError("queries contain NaN or Inf")
        return self._normalize_rows(qm)

    def _normalize_rows(self, qm: np.ndarray) -> np.ndarray:
        """Shared COSINE row normalization (other metrics pass through).

        Near-zero rows are left unnormalized but force the whole block to
        float64, matching what stacking per-row prepared vectors (float32
        rows + float64 degenerate rows) always produced.
        """
        if self.metric is not Metric.COSINE:
            return qm
        norms = np.sqrt(np.einsum("ij,ij->i", qm, qm))
        safe = norms > 1e-12
        out = qm / np.where(safe, norms, 1.0)[:, None]
        if not safe.all():
            out = out.astype(np.float64)
        return out

    def _rows_to_query_rows(self, rows: np.ndarray, qrows: np.ndarray) -> np.ndarray:
        """Row-aligned distance reduction shared by the scalar and block paths.

        Both paths must run the identical einsum reduction: BLAS
        matrix-vector products accumulate in a different order, which would
        break the bit-level equivalence between sequential and batched
        search that the batch engine guarantees.
        """
        if self.metric is Metric.L2:
            diff = rows - qrows
            return np.einsum("ij,ij->i", diff, diff)
        if self.metric is Metric.INNER_PRODUCT:
            return -np.einsum("ij,ij->i", rows, qrows)
        return 1.0 - np.einsum("ij,ij->i", rows, qrows)

    def to_query(self, ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Distances from base rows ``ids`` to a *prepared* query vector."""
        ids = np.asarray(ids, dtype=np.int64)
        self.ndc += ids.shape[0]
        rows = self._data[ids]
        return self._rows_to_query_rows(rows, np.broadcast_to(query, rows.shape))

    def block_to_queries(self, ids: np.ndarray, queries: np.ndarray,
                         owners: np.ndarray) -> np.ndarray:
        """Distances from base rows ``ids[i]`` to prepared ``queries[owners[i]]``.

        The batched-search kernel: one call scores every frontier neighbor
        of every active query in a block (``ids``/``owners`` are
        row-aligned into the ``(B, d)`` prepared-query matrix).  NDC accrues
        exactly as the equivalent per-query :meth:`to_query` calls would,
        and the shared per-row reduction makes the distances bit-identical
        to them.
        """
        ids = np.asarray(ids, dtype=np.int64)
        owners = np.asarray(owners, dtype=np.int64)
        if ids.shape != owners.shape:
            raise ValueError("ids and owners must align")
        self.ndc += ids.shape[0]
        return self._rows_to_query_rows(self._data[ids], queries[owners])

    def one_to_query(self, i: int, query: np.ndarray) -> float:
        """Distance from base row ``i`` to a prepared query."""
        self.ndc += 1
        row = self._data[i]
        if self.metric is Metric.L2:
            diff = row - query
            return float(diff @ diff)
        if self.metric is Metric.INNER_PRODUCT:
            return float(-(row @ query))
        return float(1.0 - row @ query)

    def between(self, i: int, j: int) -> float:
        """Distance between two stored base rows."""
        return self.one_to_query(int(j), self._data[int(i)])

    def many_between(self, ids: np.ndarray, j: int) -> np.ndarray:
        """Distances from base rows ``ids`` to base row ``j``."""
        return self.to_query(ids, self._data[int(j)])

    def all_to_query(self, query: np.ndarray) -> np.ndarray:
        """Distances from every base row to a prepared query (brute force)."""
        self.ndc += self.size
        if self.metric is Metric.L2:
            diff = self._data - query
            return np.einsum("ij,ij->i", diff, diff)
        if self.metric is Metric.INNER_PRODUCT:
            return -(self._data @ query)
        return 1.0 - self._data @ query
