"""NDC-counting distance computer bound to a base dataset.

Graph indexes hold a :class:`DistanceComputer` rather than the raw matrix so
that (1) COSINE data is normalized exactly once, (2) every distance
evaluation is counted, giving the paper's NDC efficiency metric for free, and
(3) queries are prepared once per search (normalization for COSINE).
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import Metric, normalize_rows
from repro.utils.validation import check_matrix, check_vector


class DistanceComputer:
    """Distances from stored base vectors to queries/each other, with NDC count.

    Parameters
    ----------
    data:
        ``(n, d)`` base vectors.  Copied (and row-normalized for COSINE).
    metric:
        One of :class:`Metric` or its string form.
    """

    def __init__(self, data: np.ndarray, metric: Metric | str):
        self.metric = Metric.parse(metric)
        data = check_matrix(data, "data")
        if self.metric is Metric.COSINE:
            data = normalize_rows(data)
        self._data = data
        self.ndc = 0

    @property
    def data(self) -> np.ndarray:
        """The stored (possibly normalized) base matrix; treat as read-only."""
        return self._data

    @property
    def size(self) -> int:
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        return self._data.shape[1]

    def append(self, rows: np.ndarray) -> int:
        """Append new base vectors (normalizing for COSINE); returns first new id.

        Supports incremental insertion (paper Sec. 5.5.1); existing ids are
        unchanged.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float32))
        if rows.shape[1] != self.dim:
            raise ValueError(f"expected dimension {self.dim}, got {rows.shape[1]}")
        if not np.isfinite(rows).all():
            raise ValueError("appended rows contain NaN or Inf")
        if self.metric is Metric.COSINE:
            rows = normalize_rows(rows)
        first_new = self.size
        self._data = np.ascontiguousarray(np.vstack([self._data, rows]))
        return first_new

    def reset_ndc(self) -> int:
        """Zero the NDC counter, returning the previous value."""
        previous = self.ndc
        self.ndc = 0
        return previous

    def prepare_query(self, query: np.ndarray) -> np.ndarray:
        """Validate (and for COSINE normalize) a query vector once per search."""
        q = check_vector(query, "query", dim=self.dim)
        if self.metric is Metric.COSINE:
            # Always float64 (even for near-zero norms) so a block of
            # prepared queries stacks into one homogeneous matrix.
            norm = np.linalg.norm(q)
            q = q / norm if norm > 1e-12 else q.astype(np.float64)
        return q

    def _rows_to_query_rows(self, rows: np.ndarray, qrows: np.ndarray) -> np.ndarray:
        """Row-aligned distance reduction shared by the scalar and block paths.

        Both paths must run the identical einsum reduction: BLAS
        matrix-vector products accumulate in a different order, which would
        break the bit-level equivalence between sequential and batched
        search that the batch engine guarantees.
        """
        if self.metric is Metric.L2:
            diff = rows - qrows
            return np.einsum("ij,ij->i", diff, diff)
        if self.metric is Metric.INNER_PRODUCT:
            return -np.einsum("ij,ij->i", rows, qrows)
        return 1.0 - np.einsum("ij,ij->i", rows, qrows)

    def to_query(self, ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Distances from base rows ``ids`` to a *prepared* query vector."""
        ids = np.asarray(ids, dtype=np.int64)
        self.ndc += ids.shape[0]
        rows = self._data[ids]
        return self._rows_to_query_rows(rows, np.broadcast_to(query, rows.shape))

    def block_to_queries(self, ids: np.ndarray, queries: np.ndarray,
                         owners: np.ndarray) -> np.ndarray:
        """Distances from base rows ``ids[i]`` to prepared ``queries[owners[i]]``.

        The batched-search kernel: one call scores every frontier neighbor
        of every active query in a block (``ids``/``owners`` are
        row-aligned into the ``(B, d)`` prepared-query matrix).  NDC accrues
        exactly as the equivalent per-query :meth:`to_query` calls would,
        and the shared per-row reduction makes the distances bit-identical
        to them.
        """
        ids = np.asarray(ids, dtype=np.int64)
        owners = np.asarray(owners, dtype=np.int64)
        if ids.shape != owners.shape:
            raise ValueError("ids and owners must align")
        self.ndc += ids.shape[0]
        return self._rows_to_query_rows(self._data[ids], queries[owners])

    def one_to_query(self, i: int, query: np.ndarray) -> float:
        """Distance from base row ``i`` to a prepared query."""
        self.ndc += 1
        row = self._data[i]
        if self.metric is Metric.L2:
            diff = row - query
            return float(diff @ diff)
        if self.metric is Metric.INNER_PRODUCT:
            return float(-(row @ query))
        return float(1.0 - row @ query)

    def between(self, i: int, j: int) -> float:
        """Distance between two stored base rows."""
        return self.one_to_query(int(j), self._data[int(i)])

    def many_between(self, ids: np.ndarray, j: int) -> np.ndarray:
        """Distances from base rows ``ids`` to base row ``j``."""
        return self.to_query(ids, self._data[int(j)])

    def all_to_query(self, query: np.ndarray) -> np.ndarray:
        """Distances from every base row to a prepared query (brute force)."""
        self.ndc += self.size
        if self.metric is Metric.L2:
            diff = self._data - query
            return np.einsum("ij,ij->i", diff, diff)
        if self.metric is Metric.INNER_PRODUCT:
            return -(self._data @ query)
        return 1.0 - self._data @ query
