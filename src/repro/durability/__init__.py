"""repro.durability — crash-safe persistence for the serving layer.

Three pieces, composed by :class:`~repro.store.VectorStore` when built with
a ``wal_dir``:

- :mod:`~repro.durability.wal` — an append-only, CRC-framed write-ahead log
  of every acknowledged mutation (insert/delete/observe-repair/merge-cut),
  with fsync batching and torn-tail truncation on open.
- :mod:`~repro.durability.snapshot` — atomic full-index snapshots
  (tmp-file + ``os.replace``, manifest-written-last commit protocol) that
  bound WAL replay and let old segments be pruned.
- :mod:`~repro.durability.recovery` — ``recover(wal_dir)``: load the newest
  valid snapshot, replay the WAL tail, verify the terminal sequence number,
  and hand back a serving-ready store plus a :class:`RecoveryReport`.

Format, fsync policy, and recovery semantics: ``docs/durability.md``.
"""

from repro.durability.recovery import RecoveryError, RecoveryReport, recover
from repro.durability.snapshot import SnapshotInfo, SnapshotManager
from repro.durability.wal import WalRecord, WriteAheadLog, read_wal

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "read_wal",
    "SnapshotManager",
    "SnapshotInfo",
    "RecoveryReport",
    "RecoveryError",
    "recover",
]
