"""Write-ahead log: append-only, CRC-framed, segment-rotated.

Every acknowledged mutation of a durable :class:`~repro.store.VectorStore`
lands here *before* the caller gets its result back, so recovery can replay
exactly the acknowledged history on top of the newest snapshot.

Record framing (all little-endian)::

    frame   := header body
    header  := u32 body_len, u32 crc32(body)
    body    := u64 seq, u8 op, op-specific payload

Ops:

====  ===========  ====================================================
 1    INSERT       u32 n, u32 dim, u64 first_id, n*dim float32 rows,
                   u32 payload_len, payload_len bytes of JSON (list of
                   per-row payloads, or ``null``)
 2    DELETE       u32 n, n int64 ids
 3    OBSERVE      u32 dim, dim float32 (a repaired query, logged after
                   the repair committed)
 4    MERGE_CUT    empty (an epoch merge point; replay re-cuts so the
                   recovered store's epoch cadence matches the original)
 5    BUILD        empty (the bulk-build boundary: inserts before this
                   record were indexed in one HNSW construction; replay
                   builds here so the recovered graph's structure matches
                   the original's build/insert split)
====  ===========  ====================================================

Durability contract: every append is flushed to the OS (``file.flush``) —
an acknowledged write survives *process* death unconditionally.  ``fsync``
is batched every ``sync_every`` records (1 = every record, 0 = never), so
the window lost to *power* failure is at most ``sync_every - 1``
acknowledged records.  A torn final frame (crash mid-write) is detected by
the length/CRC framing and truncated away on open; everything before it
replays intact.

The log is a directory of segments named ``wal-<first_seq>.log``.
``rotate()`` (called by snapshotting) seals the active segment and opens a
fresh one; ``prune(upto_seq)`` deletes sealed segments fully covered by a
snapshot, keeping the log bounded.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import struct
import threading
import time
import zlib
from typing import Iterator, Sequence

import numpy as np

from repro.faults import FAULTS
from repro.obs import OBS, SECONDS_BUCKETS

_HEADER = struct.Struct("<II")
_BODY_PREFIX = struct.Struct("<QB")
_INSERT_HEAD = struct.Struct("<IIQ")
_U32 = struct.Struct("<I")

OP_INSERT = 1
OP_DELETE = 2
OP_OBSERVE = 3
OP_MERGE_CUT = 4
OP_BUILD = 5
_OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete",
             OP_OBSERVE: "observe", OP_MERGE_CUT: "merge_cut",
             OP_BUILD: "build"}

_WAL_APPENDS = OBS.counter(
    "wal_appends", "records appended to the write-ahead log")
_WAL_BYTES = OBS.counter(
    "wal_bytes_written", "bytes appended to the write-ahead log")
_WAL_FSYNCS = OBS.counter(
    "wal_fsyncs", "fsync calls issued by the write-ahead log")
_WAL_FSYNC_SECONDS = OBS.histogram(
    "wal_fsync_seconds", "one WAL fsync's latency in seconds",
    buckets=SECONDS_BUCKETS)
_WAL_ROTATIONS = OBS.counter(
    "wal_rotations", "WAL segment rotations")
_WAL_TRUNCATED = OBS.counter(
    "wal_truncated_bytes", "torn-tail bytes truncated on WAL open")


@dataclasses.dataclass
class WalRecord:
    """One decoded WAL record."""

    seq: int
    op: str
    first_id: int = -1
    vectors: np.ndarray | None = None
    payloads: list | None = None
    ids: np.ndarray | None = None
    query: np.ndarray | None = None


def _encode_insert(seq: int, first_id: int, vectors: np.ndarray,
                   payloads: Sequence | None) -> bytes:
    rows = np.ascontiguousarray(vectors, dtype=np.float32)
    blob = json.dumps(list(payloads) if payloads is not None else None)
    blob = blob.encode("utf-8")
    return (_BODY_PREFIX.pack(seq, OP_INSERT)
            + _INSERT_HEAD.pack(rows.shape[0], rows.shape[1], first_id)
            + rows.tobytes() + _U32.pack(len(blob)) + blob)


def _encode_delete(seq: int, ids: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(ids, dtype=np.int64)
    return (_BODY_PREFIX.pack(seq, OP_DELETE)
            + _U32.pack(arr.shape[0]) + arr.tobytes())


def _encode_observe(seq: int, query: np.ndarray) -> bytes:
    q = np.ascontiguousarray(query, dtype=np.float32).ravel()
    return (_BODY_PREFIX.pack(seq, OP_OBSERVE)
            + _U32.pack(q.shape[0]) + q.tobytes())


def _decode_body(body: bytes) -> WalRecord:
    seq, op = _BODY_PREFIX.unpack_from(body, 0)
    offset = _BODY_PREFIX.size
    name = _OP_NAMES.get(op)
    if name is None:
        raise ValueError(f"unknown WAL op {op} at seq {seq}")
    if op == OP_INSERT:
        n, dim, first_id = _INSERT_HEAD.unpack_from(body, offset)
        offset += _INSERT_HEAD.size
        vectors = np.frombuffer(
            body, dtype=np.float32, count=n * dim, offset=offset,
        ).reshape(n, dim).copy()
        offset += 4 * n * dim
        (blob_len,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        payloads = json.loads(body[offset:offset + blob_len].decode("utf-8"))
        return WalRecord(seq, name, first_id=first_id, vectors=vectors,
                         payloads=payloads)
    if op == OP_DELETE:
        (n,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        ids = np.frombuffer(body, dtype=np.int64, count=n,
                            offset=offset).copy()
        return WalRecord(seq, name, ids=ids)
    if op == OP_OBSERVE:
        (dim,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        query = np.frombuffer(body, dtype=np.float32, count=dim,
                              offset=offset).copy()
        return WalRecord(seq, name, query=query)
    return WalRecord(seq, name)


def _segment_path(directory: pathlib.Path, first_seq: int) -> pathlib.Path:
    return directory / f"wal-{first_seq:016d}.log"


def _segments(directory: pathlib.Path) -> list[tuple[int, pathlib.Path]]:
    """(first_seq, path) for every segment, ordered by first_seq."""
    out = []
    for path in directory.glob("wal-*.log"):
        try:
            out.append((int(path.stem.split("-", 1)[1]), path))
        except ValueError:
            continue
    out.sort()
    return out


def _scan_segment(path: pathlib.Path, truncate: bool) -> tuple[int | None, int, int]:
    """Walk one segment; returns (last_seq, n_records, torn_bytes).

    A frame that is short, CRC-corrupt, or length-implausible marks the torn
    tail: scanning stops at the last good frame and, when ``truncate`` is
    set, the file is cut there so subsequent appends extend a clean log.
    """
    size = path.stat().st_size
    last_seq: int | None = None
    n_records = 0
    good = 0
    with open(path, "rb") as f:
        while True:
            header = f.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            body_len, crc = _HEADER.unpack(header)
            if body_len < _BODY_PREFIX.size or good + _HEADER.size + body_len > size:
                break
            body = f.read(body_len)
            if len(body) < body_len or zlib.crc32(body) != crc:
                break
            try:
                seq, _op = _BODY_PREFIX.unpack_from(body, 0)
            except struct.error:
                break
            last_seq = seq
            n_records += 1
            good += _HEADER.size + body_len
    torn = size - good
    if torn and truncate:
        with open(path, "r+b") as f:
            f.truncate(good)
        if OBS.enabled:
            _WAL_TRUNCATED.inc(torn)
    return last_seq, n_records, torn


def read_wal(directory: str | pathlib.Path,
             after_seq: int = 0) -> Iterator[WalRecord]:
    """Yield decoded records with ``seq > after_seq``, oldest first.

    Read-only: a torn tail ends iteration without modifying the file
    (use :class:`WriteAheadLog` to truncate it for appending).
    """
    directory = pathlib.Path(directory)
    for _first, path in _segments(directory):
        size = path.stat().st_size
        good = 0
        with open(path, "rb") as f:
            while True:
                header = f.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                body_len, crc = _HEADER.unpack(header)
                if (body_len < _BODY_PREFIX.size
                        or good + _HEADER.size + body_len > size):
                    break
                body = f.read(body_len)
                if len(body) < body_len or zlib.crc32(body) != crc:
                    break
                good += _HEADER.size + body_len
                record = _decode_body(body)
                if record.seq > after_seq:
                    yield record


class WriteAheadLog:
    """Append side of the log (reads go through :func:`read_wal`).

    Appends are internally serialized: sequence allocation, the frame
    write/flush, and fsync batching all happen under one lock, so
    concurrent writers (a foreground mutator plus the background
    maintenance worker journaling repairs and merges) always produce
    gap-free, monotonically ordered records.  ``seq`` advances only after
    a frame is fully written — a failed append (injected fault, ENOSPC)
    leaves the counter untouched, so the next successful record never
    skips a number.

    Opening an existing directory recovers the terminal sequence number by
    scanning all segments and truncates any torn tail from the newest one,
    so the first append after a crash continues the acknowledged history.
    """

    def __init__(self, directory: str | pathlib.Path, *, sync_every: int = 8):
        if sync_every < 0:
            raise ValueError(f"sync_every must be >= 0, got {sync_every}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_every = sync_every
        self._lock = threading.Lock()
        self.seq = 0
        self.n_records = 0
        self.n_fsyncs = 0
        self.truncated_bytes = 0
        self._unsynced = 0
        segments = _segments(self.directory)
        for i, (first, path) in enumerate(segments):
            last = i == len(segments) - 1
            last_seq, n_records, torn = _scan_segment(path, truncate=last)
            # An empty (or fully torn) segment still pins the sequence:
            # its name says the previous segment ended at first - 1.
            self.seq = max(self.seq, first - 1)
            if last_seq is not None:
                self.seq = max(self.seq, last_seq)
            self.n_records += n_records
            if last:
                self.truncated_bytes = torn
        if segments:
            self._path = segments[-1][1]
        else:
            self._path = _segment_path(self.directory, 1)
        self._f = open(self._path, "ab")

    # -- appends -----------------------------------------------------------

    def _append(self, encode) -> int:
        """Allocate the next seq, encode, and write one frame atomically.

        ``encode(seq) -> bytes`` builds the body for the sequence number
        this append claims.  ``self.seq`` is published only after the
        frame hit the file, so a raising append (fault, full disk) never
        burns a number and recovery never sees a gap it didn't earn.
        """
        with self._lock:
            seq = self.seq + 1
            body = encode(seq)
            FAULTS.fire("wal.pre_append")
            frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
            self._f.write(frame)
            self._f.flush()  # into the OS: acknowledged writes survive a crash
            self.seq = seq
            self.n_records += 1
            self._unsynced += 1
            if OBS.enabled:
                _WAL_APPENDS.inc()
                _WAL_BYTES.inc(len(frame))
            if self.sync_every and self._unsynced >= self.sync_every:
                self._sync_locked()
            return seq

    def log_insert(self, first_id: int, vectors: np.ndarray,
                   payloads: Sequence | None = None) -> int:
        """Log an acknowledged insert batch; returns its seq."""
        return self._append(
            lambda seq: _encode_insert(seq, first_id, vectors, payloads))

    def log_delete(self, ids) -> int:
        arr = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        return self._append(lambda seq: _encode_delete(seq, arr))

    def log_observe(self, query: np.ndarray) -> int:
        return self._append(lambda seq: _encode_observe(seq, query))

    def log_merge_cut(self) -> int:
        return self._append(lambda seq: _BODY_PREFIX.pack(seq, OP_MERGE_CUT))

    def log_build(self) -> int:
        """Log the bulk-build boundary (replay builds at this record)."""
        return self._append(lambda seq: _BODY_PREFIX.pack(seq, OP_BUILD))

    # -- durability boundary ------------------------------------------------

    def sync(self) -> None:
        """Force the unsynced tail to stable storage (fsync)."""
        with self._lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        if self._f.closed:
            return
        self._f.flush()
        FAULTS.fire("wal.pre_fsync")
        t0 = time.perf_counter()
        os.fsync(self._f.fileno())
        self.n_fsyncs += 1
        self._unsynced = 0
        if OBS.enabled:
            _WAL_FSYNCS.inc()
            _WAL_FSYNC_SECONDS.observe(time.perf_counter() - t0)

    # -- segment lifecycle --------------------------------------------------

    def rotate(self) -> pathlib.Path:
        """Seal the active segment and open a new one at ``seq + 1``."""
        with self._lock:
            self._sync_locked()
            self._f.close()
            self._path = _segment_path(self.directory, self.seq + 1)
            self._f = open(self._path, "ab")
            if OBS.enabled:
                _WAL_ROTATIONS.inc()
            return self._path

    def prune(self, upto_seq: int) -> int:
        """Delete sealed segments whose records are all ``<= upto_seq``.

        A segment is prunable when the *next* segment starts at or below
        ``upto_seq + 1`` (so every record it holds is covered by the
        snapshot at ``upto_seq``).  The active segment is never deleted.
        Returns the number of segments removed.
        """
        segments = _segments(self.directory)
        removed = 0
        for (_first, path), (next_first, _next_path) in zip(
                segments, segments[1:]):
            if path == self._path:
                break
            if next_first <= upto_seq + 1:
                path.unlink()
                removed += 1
            else:
                break
        return removed

    def close(self) -> None:
        with self._lock:
            if not self._f.closed:
                self._sync_locked()
                self._f.close()

    def stats(self) -> dict:
        return {
            "seq": self.seq,
            "records": self.n_records,
            "fsyncs": self.n_fsyncs,
            "sync_every": self.sync_every,
            "unsynced": self._unsynced,
            "segments": len(_segments(self.directory)),
            "truncated_bytes": self.truncated_bytes,
            "active_segment": self._path.name,
        }
