"""Crash recovery: newest valid snapshot + WAL-tail replay.

``recover(wal_dir)`` rebuilds a serving-ready
:class:`~repro.store.VectorStore` from a durability directory:

1. Load the newest *committed* snapshot (manifest present — torn snapshot
   writes are invisible by construction).  Its manifest pins the WAL
   sequence number it captures.
2. Open the WAL (torn-tail truncation happens here) and replay every
   record after that sequence number, in order: inserts re-enter the
   graph (pending until the build marker, incrementally after it — the
   same bulk/incremental split the original store used), build markers
   run the one-shot HNSW construction, deletes re-tombstone (and
   re-trigger the same compactions), observe records re-run the online
   NGFix/RFix repair that was acknowledged before the crash, and
   merge-cut markers re-cut epochs so the recovered store's serving
   cadence matches the original.
3. Verify the terminal sequence number and structural invariants
   (sequence continuity, vector-count accounting, every replayed delete
   tombstoned or compacted) and surface the outcome as a
   :class:`RecoveryReport`.

Snapshots are loaded as :class:`ReplayableIndex` — a
:class:`~repro.io.FrozenIndex` extended with single-layer greedy
insertion — so a recovered store accepts new writes, unlike a plain
``VectorStore.load()`` store.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time

import numpy as np

from repro.durability.snapshot import SnapshotManager
from repro.durability.wal import WriteAheadLog, read_wal
from repro.graphs.base import medoid_id
from repro.graphs.pruning import rng_prune_backfill
from repro.graphs.search import greedy_search
from repro.io import FrozenIndex, load_index
from repro.obs import OBS, SECONDS_BUCKETS

#: Written by VectorStore into its wal_dir so recovery can rebuild the
#: store shell without the original constructor arguments.
CONFIG_NAME = "store-config.json"

_RECOVERIES = OBS.counter(
    "recovery_runs", "recovery attempts")
_RECOVERY_RECORDS = OBS.counter(
    "recovery_replayed_records", "WAL records replayed during recovery")
_RECOVERY_ERRORS = OBS.counter(
    "recovery_inconsistencies", "consistency violations found by recovery")
_RECOVERY_SECONDS = OBS.histogram(
    "recovery_seconds", "one full recovery's latency in seconds",
    buckets=SECONDS_BUCKETS)


class RecoveryError(RuntimeError):
    """Recovery cannot proceed (no snapshot and no replayable WAL)."""


class ReplayableIndex(FrozenIndex):
    """A loaded snapshot that supports incremental insertion.

    ``FrozenIndex`` is searchable but rejects writes; WAL replay (and any
    post-recovery traffic) needs ``insert``.  Insertion here is the
    single-layer core of HNSW's algorithm: greedy-search the graph for
    ``ef_construction`` candidates, RNG-prune (with nearest backfill) to
    the degree budget, link both directions, and re-prune any reverse
    neighbor that overflowed its budget past the shrink slack.
    """

    def __init__(self, data: np.ndarray, metric, entry: int, *,
                 M: int = 16, ef_construction: int = 100):
        super().__init__(data, metric, entry)
        self.M0 = 2 * M
        self.ef_construction = ef_construction
        self._shrink_slack = 4
        self._medoid: int | None = None

    def insert(self, vector: np.ndarray) -> int:
        new_id = self.dc.append(vector)
        self.adjacency.grow(1)
        self._visited.grow(self.dc.size)
        self._medoid = None
        q = self.dc.data[new_id]  # append already normalized (cosine)
        result = greedy_search(
            self.dc, self.adjacency.neighbors, [self.entry], q,
            k=self.ef_construction, ef=self.ef_construction,
            visited=self._visited, prepared=True,
        )
        keep = result.ids != new_id
        cand_ids, cand_d = result.ids[keep], result.distances[keep]
        selected = rng_prune_backfill(self.dc, new_id, cand_ids, self.M0,
                                      distances=cand_d)
        self.adjacency.set_base_neighbors(new_id, selected)
        for v in selected:
            self.adjacency.add_base_edge(v, new_id)
            if self.adjacency.base_degree(v) > self.M0 + self._shrink_slack:
                neigh = np.asarray(self.adjacency.base_neighbors_ro(v),
                                   dtype=np.int64)
                self.adjacency.set_base_neighbors(
                    v, rng_prune_backfill(self.dc, v, neigh, self.M0))
        return new_id

    def medoid(self) -> int:
        if self._medoid is None:
            self._medoid = medoid_id(self.dc)
        return self._medoid


@dataclasses.dataclass
class RecoveryReport:
    """What a recovery did, and whether the result is consistent."""

    wal_dir: str
    snapshot_id: int | None
    snapshot_wal_seq: int
    terminal_seq: int
    replayed: dict
    truncated_bytes: int
    n_vectors: int
    n_deleted: int
    elapsed_seconds: float
    errors: list[str]

    @property
    def consistent(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["consistent"] = self.consistent
        return out


def read_store_config(wal_dir: str | pathlib.Path) -> dict | None:
    path = pathlib.Path(wal_dir) / CONFIG_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text())


def recover(wal_dir: str | pathlib.Path, *, fix_config=None,
            serving: bool | None = None, scheduler_mode: str | None = None,
            merge_every: int | None = None, sync_every: int | None = None,
            policy=None, policy_config: dict | None = None,
            replay_observes: bool = True, attach_wal: bool = True):
    """Rebuild a store from ``wal_dir``; returns ``(store, report)``.

    Keyword overrides default to the values recorded in the directory's
    ``store-config.json`` (written at original construction).  With
    ``attach_wal`` (default) the recovered store continues logging into
    the same WAL, so it is immediately crash-safe again; pass False for a
    read-mostly post-mortem load.

    Raises :class:`RecoveryError` when the directory holds neither a
    committed snapshot nor a replayable insert history.
    """
    from repro.store import VectorStore  # deferred: store imports wal/snapshot

    t0 = time.perf_counter()
    wal_dir = pathlib.Path(wal_dir)
    config = read_store_config(wal_dir) or {}
    if serving is None:
        serving = bool(config.get("serving", True))
    if scheduler_mode is None:
        scheduler_mode = config.get("scheduler_mode", "inline")
    if merge_every is None:
        merge_every = int(config.get("merge_every", 256))
    if sync_every is None:
        sync_every = int(config.get("sync_every", 8))
    M = int(config.get("M", 16))
    ef_construction = int(config.get("ef_construction", 100))
    seed = int(config.get("seed", 0))
    # Compressed-mode settings persist with the store config so a recovered
    # store serves the same PQ-resident hot path the original did (codes are
    # re-fit at adopt time; they are derived state, not journaled).
    compressed = bool(config.get("compressed", False)) and serving
    pq_m = config.get("pq_m")
    pq_ks = int(config.get("pq_ks", 32))
    rerank = int(config.get("rerank", 50))
    if policy is None:
        policy = config.get("policy")
        if policy_config is None:
            policy_config = config.get("policy_config")
    # The fitted tuned table persists with the config: a recovered store
    # plans with the same per-bin settings the original served (landmark
    # entry ids are resolved fresh against the rebuilt graph).
    tuned_config = config.get("tuned_config")

    snapshots = SnapshotManager(wal_dir)
    info = snapshots.latest()
    # Opening the log truncates any torn tail *before* replay reads it.
    wal = WriteAheadLog(wal_dir, sync_every=sync_every)

    if info is None and wal.n_records == 0:
        wal.close()
        raise RecoveryError(
            f"{wal_dir} has no committed snapshot and no WAL records")

    errors: list[str] = []
    if info is not None:
        dim = int(config.get("dim", 0))
        metric = config.get("metric")
        index = load_index(
            info.path,
            index_cls=lambda data, m, entry: ReplayableIndex(
                data, m, entry, M=M, ef_construction=ef_construction))
        store = VectorStore(
            dim=dim or index.dc.dim, metric=metric or index.dc.metric,
            M=M, ef_construction=ef_construction, fix_config=fix_config,
            seed=seed, serving=serving, scheduler_mode=scheduler_mode,
            merge_every=merge_every, compressed=compressed, pq_m=pq_m,
            pq_ks=pq_ks, rerank=rerank,
            policy=policy, policy_config=policy_config,
            tuned_config=tuned_config)
        payloads = {}
        if info.payloads_path.exists():
            payloads = {int(k): v for k, v in json.loads(
                info.payloads_path.read_text()).items()}
        store._adopt_index(index, payloads)
        snap_seq = info.wal_seq
        base_n = info.n_vectors
        if index.dc.size != base_n:
            errors.append(
                f"snapshot {info.snapshot_id} holds {index.dc.size} vectors, "
                f"manifest says {base_n}")
    else:
        if "dim" not in config:
            wal.close()
            raise RecoveryError(
                f"{wal_dir} has WAL records but no snapshot and no "
                f"{CONFIG_NAME}; cannot rebuild the store shell")
        store = VectorStore(
            dim=int(config["dim"]), metric=config.get("metric", "cosine"),
            M=M, ef_construction=ef_construction, fix_config=fix_config,
            seed=seed, serving=serving, scheduler_mode=scheduler_mode,
            merge_every=merge_every, compressed=compressed, pq_m=pq_m,
            pq_ks=pq_ks, rerank=rerank,
            policy=policy, policy_config=policy_config,
            tuned_config=tuned_config)
        snap_seq = 0
        base_n = 0

    replayed = {"insert": 0, "build": 0, "delete": 0, "observe": 0,
                "merge_cut": 0, "rows_inserted": 0}
    deleted_replayed: set[int] = set()
    last_seq = snap_seq
    for record in read_wal(wal_dir, after_seq=snap_seq):
        if record.seq != last_seq + 1:
            errors.append(f"sequence gap: {last_seq} -> {record.seq}")
        last_seq = record.seq
        if record.op == "insert":
            ids = store.add(record.vectors, payloads=record.payloads)
            replayed["insert"] += 1
            replayed["rows_inserted"] += len(ids)
            if ids and ids[0] != record.first_id:
                errors.append(
                    f"seq {record.seq}: replayed insert got id {ids[0]}, "
                    f"log recorded {record.first_id}")
        else:
            # Build markers place the bulk/incremental boundary exactly
            # where the original store built; any other op implies the
            # store was built by then (older logs lack the marker).
            if not store.is_built:
                store.build()
            if record.op == "build":
                replayed["build"] += 1
            elif record.op == "delete":
                store.delete(record.ids)
                deleted_replayed.update(int(i) for i in record.ids)
                replayed["delete"] += 1
            elif record.op == "observe":
                if replay_observes:
                    # Repair directly (bypassing admission control): the
                    # record exists because this repair was acknowledged.
                    scheduler = store.scheduler
                    if scheduler is not None:
                        with scheduler.write_lock:
                            store._fixer.fix_query(record.query)
                    else:
                        store._fixer.fix_query(record.query)
                replayed["observe"] += 1
            else:  # merge_cut
                if store.scheduler is not None:
                    store.scheduler.merge_now()
                replayed["merge_cut"] += 1
    if not store.is_built:
        if store._pending:
            store.build()
        else:
            wal.close()
            raise RecoveryError(
                f"{wal_dir}: WAL holds no insert records and no snapshot "
                "exists; nothing to recover")

    # -- consistency checks -------------------------------------------------
    if last_seq != wal.seq:
        errors.append(
            f"terminal seq mismatch: replayed through {last_seq}, "
            f"log scan says {wal.seq}")
    expected_n = base_n + replayed["rows_inserted"]
    if store.dc.size != expected_n:
        errors.append(
            f"vector count {store.dc.size} != snapshot {base_n} + "
            f"replayed {replayed['rows_inserted']}")
    missing = deleted_replayed - store.deleted_ids
    if missing:
        errors.append(
            f"{len(missing)} replayed deletes not tombstoned/compacted: "
            f"{sorted(missing)[:8]}")
    if store.epochs is not None and store.epochs.overlay is None:
        errors.append("serving stack attached without an overlay")

    if attach_wal:
        store._attach_wal(wal, SnapshotManager(wal_dir))
    else:
        wal.close()

    elapsed = time.perf_counter() - t0
    if OBS.enabled:
        _RECOVERIES.inc()
        _RECOVERY_RECORDS.inc(sum(
            replayed[op] for op in ("insert", "build", "delete", "observe",
                                    "merge_cut")))
        _RECOVERY_ERRORS.inc(len(errors))
        _RECOVERY_SECONDS.observe(elapsed)
    report = RecoveryReport(
        wal_dir=str(wal_dir),
        snapshot_id=info.snapshot_id if info is not None else None,
        snapshot_wal_seq=snap_seq,
        terminal_seq=last_seq,
        replayed=replayed,
        truncated_bytes=wal.truncated_bytes,
        n_vectors=store.dc.size,
        n_deleted=len(store.deleted_ids),
        elapsed_seconds=elapsed,
        errors=errors,
    )
    return store, report
