"""Atomic full-index snapshots bounding WAL replay.

A snapshot is three files, written in a fixed order so a crash at any
point leaves the previous snapshot intact and the half-written one
invisible:

1. ``snapshot-<id>.npz`` — the graph artifact (vectors, CSR adjacency,
   extra edges, tombstones, entry), via the atomic
   :func:`~repro.io.save_index` (tmp-file + ``os.replace``).
2. ``snapshot-<id>.payloads.json`` — the payload sidecar, same protocol.
3. ``snapshot-<id>.manifest.json`` — written *last*; its presence is the
   commit point.  It records the WAL sequence number the snapshot
   captures, so recovery replays only records after it.

:meth:`SnapshotManager.latest` returns the newest snapshot whose manifest
and data files all exist; anything without a manifest is garbage from a
crashed writer and is ignored (and removed by :meth:`prune`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time

from repro.faults import FAULTS
from repro.io import save_index
from repro.obs import OBS, SECONDS_BUCKETS

_MANIFEST_VERSION = 1

_SNAPSHOTS = OBS.counter(
    "snapshots_written", "index snapshots committed")
_SNAPSHOT_SECONDS = OBS.histogram(
    "snapshot_write_seconds", "one snapshot write's latency in seconds",
    buckets=SECONDS_BUCKETS)


@dataclasses.dataclass
class SnapshotInfo:
    """One committed snapshot (parsed from its manifest)."""

    snapshot_id: int
    path: pathlib.Path
    payloads_path: pathlib.Path
    manifest_path: pathlib.Path
    wal_seq: int
    n_vectors: int
    created_at: float


def atomic_write_text(path: str | pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp sibling + ``os.replace``)."""
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class SnapshotManager:
    """Writes, lists, and prunes snapshots inside one durability directory."""

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- writing -----------------------------------------------------------

    def _base(self, snapshot_id: int) -> pathlib.Path:
        return self.directory / f"snapshot-{snapshot_id:08d}"

    def write(self, fixer, payloads: dict, wal_seq: int) -> SnapshotInfo:
        """Atomically persist ``fixer``'s index + payloads at ``wal_seq``."""
        t0 = time.perf_counter()
        latest = self.latest()
        snapshot_id = (latest.snapshot_id if latest is not None else 0) + 1
        base = self._base(snapshot_id)
        npz = save_index(fixer, base.with_suffix(".npz"))
        payloads_path = base.with_suffix(".payloads.json")
        atomic_write_text(payloads_path, json.dumps(
            {str(k): v for k, v in payloads.items()}))
        manifest_path = base.with_suffix(".manifest.json")
        FAULTS.fire("snapshot.pre_manifest")
        atomic_write_text(manifest_path, json.dumps({
            "manifest_version": _MANIFEST_VERSION,
            "snapshot_id": snapshot_id,
            "wal_seq": int(wal_seq),
            "n_vectors": int(fixer.dc.size),
            "created_at": time.time(),
            "index": npz.name,
            "payloads": payloads_path.name,
        }))
        if OBS.enabled:
            _SNAPSHOTS.inc()
            _SNAPSHOT_SECONDS.observe(time.perf_counter() - t0)
        return SnapshotInfo(
            snapshot_id=snapshot_id, path=npz, payloads_path=payloads_path,
            manifest_path=manifest_path, wal_seq=int(wal_seq),
            n_vectors=int(fixer.dc.size), created_at=time.time())

    # -- reading -----------------------------------------------------------

    def list(self) -> list[SnapshotInfo]:
        """All committed snapshots, oldest first; invalid ones are skipped."""
        out = []
        for manifest_path in sorted(self.directory.glob(
                "snapshot-*.manifest.json")):
            try:
                meta = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if meta.get("manifest_version") != _MANIFEST_VERSION:
                continue
            path = manifest_path.with_name(meta["index"])
            payloads_path = manifest_path.with_name(meta["payloads"])
            if not path.exists():
                continue
            out.append(SnapshotInfo(
                snapshot_id=int(meta["snapshot_id"]), path=path,
                payloads_path=payloads_path,
                manifest_path=manifest_path,
                wal_seq=int(meta["wal_seq"]),
                n_vectors=int(meta["n_vectors"]),
                created_at=float(meta.get("created_at", 0.0))))
        return out

    def latest(self) -> SnapshotInfo | None:
        """The newest committed (manifest-valid) snapshot, or None."""
        snapshots = self.list()
        return snapshots[-1] if snapshots else None

    # -- retention ---------------------------------------------------------

    def prune(self, keep: int = 2) -> int:
        """Drop all but the ``keep`` newest snapshots (and crash orphans).

        An orphan is a data/payload file with no manifest — debris from a
        writer that died before its commit point.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        snapshots = self.list()
        removed = 0
        keep_ids = {s.snapshot_id for s in snapshots[-keep:]}
        for info in snapshots[:-keep] if len(snapshots) > keep else []:
            for path in (info.manifest_path, info.path, info.payloads_path):
                path.unlink(missing_ok=True)
            removed += 1
        # Orphans: snapshot-prefixed files whose id has no manifest.
        for path in self.directory.glob("snapshot-*"):
            stem = path.name.split(".", 1)[0]
            try:
                sid = int(stem.split("-", 1)[1])
            except ValueError:
                continue
            has_manifest = self._base(sid).with_suffix(
                ".manifest.json").exists()
            if not has_manifest and sid not in keep_ids:
                path.unlink(missing_ok=True)
        return removed
