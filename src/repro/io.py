"""Index persistence: save any built graph index, reload it searchable.

A production deployment builds (and fixes) once, then serves from many
processes; this module serializes the searchable artifact — base vectors,
metric, adjacency (base edges as CSR, extra edges as (u, v, EH) triplets),
tombstones, and the entry point — into a single ``.npz`` file.

The loaded object is a :class:`FrozenIndex`: fully searchable, usable as an
:class:`~repro.core.fixer.NGFixer` base (so fixing can continue on a loaded
index), but without the original builder's insert machinery.  Re-building is
required to insert new points into a frozen index.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.distances import Metric
from repro.faults import FAULTS
from repro.graphs.base import GraphIndex

_FORMAT_VERSION = 1


class FrozenIndex(GraphIndex):
    """A searchable graph index reconstructed from a saved artifact."""

    def __init__(self, data: np.ndarray, metric: Metric | str, entry: int):
        super().__init__(data, metric)
        self.entry = int(entry)

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self.entry]


def _resolve_target(obj) -> GraphIndex:
    """Accept a GraphIndex or an NGFixer-like wrapper exposing ``.index``."""
    if isinstance(obj, GraphIndex):
        return obj
    inner = getattr(obj, "index", None)
    if isinstance(inner, GraphIndex):
        return inner
    raise TypeError(f"cannot save object of type {type(obj).__name__}")


def _entry_of(obj, index: GraphIndex) -> int:
    if hasattr(obj, "entry"):  # NGFixer
        return int(obj.entry)
    if hasattr(index, "medoid"):
        return int(index.medoid())
    return 0


def save_index(obj, path: str | pathlib.Path) -> pathlib.Path:
    """Serialize a graph index (or an NGFixer wrapping one) to ``path``.

    Returns the written path (``.npz`` appended if missing).

    The write is atomic: bytes go to a ``*.tmp`` sibling (fsynced) and the
    final name appears only via ``os.replace``, so a crash mid-save can
    never corrupt a previous good artifact at ``path``.
    """
    index = _resolve_target(obj)
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")

    adjacency = index.adjacency
    indptr = np.zeros(adjacency.n_nodes + 1, dtype=np.int64)
    indices = []
    extra_u, extra_v, extra_eh = [], [], []
    for u in range(adjacency.n_nodes):
        base = adjacency.base_neighbors_ro(u)
        indices.extend(base)
        indptr[u + 1] = indptr[u] + len(base)
        for v, eh in adjacency.extra_neighbors_ro(u).items():
            extra_u.append(u)
            extra_v.append(v)
            extra_eh.append(eh)

    meta = {
        "format_version": _FORMAT_VERSION,
        "metric": index.metric.value,
        "source_class": type(index).__name__,
        "entry": _entry_of(obj, index),
    }
    # Atomic publish: savez against an open handle (so numpy cannot append
    # a second .npz suffix to the tmp name), fsync, then one os.replace.
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(
                f,
                data=index.dc.data,
                indptr=indptr,
                indices=np.array(indices, dtype=np.int64),
                extra_u=np.array(extra_u, dtype=np.int64),
                extra_v=np.array(extra_v, dtype=np.int64),
                extra_eh=np.array(extra_eh, dtype=np.float64),
                tombstones=np.array(sorted(adjacency.tombstones),
                                    dtype=np.int64),
                removed=np.array(sorted(adjacency.removed), dtype=np.int64),
                meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            )
            f.flush()
            os.fsync(f.fileno())
        FAULTS.fire("snapshot.pre_replace")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_index(path: str | pathlib.Path, index_cls=None,
               memmap_dir: str | pathlib.Path | None = None) -> FrozenIndex:
    """Reload a saved index as a searchable :class:`FrozenIndex`.

    ``index_cls`` optionally substitutes the reconstructed class — any
    ``(data, metric, entry)`` callable returning a :class:`FrozenIndex`
    subclass (recovery uses this to load snapshots as a
    :class:`~repro.durability.recovery.ReplayableIndex`).

    ``memmap_dir`` enables the disk-resident vector tier: after
    reconstruction the base matrix is spilled to
    ``<memmap_dir>/<stem>.vecs`` and served through ``np.memmap`` (see
    :meth:`~repro.distances.DistanceComputer.use_memmap`), so steady-state
    RSS excludes the raw vectors.  Loading still decompresses the matrix
    once (npz holds it inline); only the serving footprint shrinks.
    """
    path = pathlib.Path(path)
    if index_cls is None:
        index_cls = FrozenIndex
    with np.load(path) as payload:
        meta = json.loads(bytes(payload["meta"]).decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {meta.get('format_version')!r}")
        index = index_cls(payload["data"], meta["metric"], meta["entry"])
        indptr = payload["indptr"]
        indices = payload["indices"]
        for u in range(indptr.shape[0] - 1):
            index.adjacency.set_base_neighbors(
                u, indices[indptr[u]:indptr[u + 1]].tolist())
        for u, v, eh in zip(payload["extra_u"], payload["extra_v"],
                            payload["extra_eh"]):
            index.adjacency.add_extra_edge(int(u), int(v), float(eh))
        index.adjacency.tombstones.update(int(t) for t in payload["tombstones"])
        if "removed" in payload:  # absent in pre-compaction-aware artifacts
            index.adjacency.removed.update(int(t) for t in payload["removed"])
    if memmap_dir is not None:
        index.dc.use_memmap(pathlib.Path(memmap_dir) / f"{path.stem}.vecs")
    return index
