"""Epoch-based serving layer: immutable graph epochs + delta overlay +
background maintenance.

The mutation/serving stack is split into three explicit layers so that the
query hot path never pays for — or races with — index repair:

- :class:`GraphEpoch` — an immutable snapshot of the graph: a frozen
  :class:`~repro.graphs.csr.CSRGraphView`, the entry point, and the tombstone
  set, all captured at one instant.  Epochs are never mutated; a search that
  pinned an epoch completes against exactly that state.
- :class:`DeltaOverlay` — an append-only log of every mutation made to the
  live :class:`~repro.graphs.adjacency.AdjacencyStore` since the epoch was
  cut.  The store feeds it from ``_touch`` (a full post-mutation snapshot of
  the touched node's combined neighbor array) and from tombstone additions.
  Each record carries a monotone sequence number that is *published only
  after* the record is in place, so a reader holding a sequence number sees a
  complete, frozen prefix of the log.
- :class:`EpochView` — the read view the search paths traverse: the epoch's
  CSR plus the overlay prefix at a pinned sequence number.  It is callable
  (drop-in ``neighbors_fn`` for :func:`~repro.graphs.search.greedy_search`)
  and implements ``neighbors_block`` for the
  :class:`~repro.graphs.search.BatchSearchEngine`, overlaying per-node deltas
  after the bulk CSR gather.

:class:`EpochManager` owns the current (epoch, overlay) pair and hands out
:class:`EpochPin` handles; :class:`ServingSearcher` is the index-protocol
facade that serves pinned searches; :class:`MaintenanceScheduler` serializes
all writes behind one lock, merges the overlay into a fresh epoch in the
background (the only O(E) operation, and it never runs on the query path),
and repairs queries flagged hard while serving via NGFix/RFix.

Concurrency model: one writer at a time (everything mutating the graph holds
``MaintenanceScheduler.write_lock``), any number of readers, no reader locks.
Reader safety rests on three invariants: epoch arrays are immutable, overlay
logs are append-only with publish-after-write sequence numbers, and CPython
list appends are atomic under the GIL.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque

import numpy as np

from repro.control.policy import CadencePolicy, MaintenancePolicy
from repro.faults import FAULTS
from repro.graphs.csr import CSRGraphView
from repro.graphs.search import BatchSearchEngine, SearchResult, VisitedTable, greedy_search
from repro.obs import OBS, SECONDS_BUCKETS, TRACES, QueryTrace
from repro.quantization.searcher import (exact_rerank, fallback_shortlist,
                                         pq_greedy_search, visited_shortlist)

_EMPTY = np.empty(0, dtype=np.int64)

_PINS_TOTAL = OBS.counter(
    "serving_pins", "epoch pins taken by searches")
_PIN_SECONDS = OBS.histogram(
    "serving_pin_seconds", "epoch pin lifetime in seconds",
    buckets=SECONDS_BUCKETS)
_SERVE_QUERIES = OBS.counter(
    "serving_queries", "queries served through ServingSearcher.search")
_OBSERVED = OBS.counter(
    "maintenance_observed", "queries queued for online repair")
_REPAIRS = OBS.counter(
    "maintenance_repairs", "online NGFix/RFix repairs completed")
_REPAIR_SECONDS = OBS.histogram(
    "maintenance_repair_seconds", "one online repair's latency in seconds",
    buckets=SECONDS_BUCKETS)
_MERGES = OBS.counter(
    "maintenance_merges", "epoch merges (overlay folded into a fresh cut)")
_MERGE_SECONDS = OBS.histogram(
    "maintenance_merge_seconds", "one epoch merge's latency in seconds",
    buckets=SECONDS_BUCKETS)
_QUEUE_DROPS = OBS.counter(
    "maintenance_queue_dropped", "repair-queue entries dropped under pressure")
_WORKER_ERRORS = OBS.counter(
    "maintenance_worker_errors", "exceptions caught by the background worker")
_BULK_ABORTS = OBS.counter(
    "maintenance_bulk_aborts", "bulk rebuilds aborted by an exception")
_DEGRADED = OBS.counter(
    "serving_degraded_searches",
    "searches that returned best-so-far after a deadline budget expired")
_COMPRESSED_QUERIES = OBS.counter(
    "serving_compressed_queries",
    "queries served through the compressed (ADC + exact re-rank) path")
_ADC_SCORED = OBS.counter(
    "pq_adc_scored", "ADC table-lookup scorings on the compressed path")
_RERANK_NDC = OBS.histogram(
    "pq_rerank_ndc",
    "exact re-rank distance computations per compressed search")
_PAGEIN_SECONDS = OBS.counter(
    "memmap_pagein_seconds",
    "wall-clock spent gathering (possibly disk-resident) rows for re-rank")
_OBSERVE_SHED = OBS.counter(
    "maintenance_observe_shed",
    "observe() calls shed by admission control (queue saturated/worker dead)")
_FLUSH_TIMEOUTS = OBS.counter(
    "maintenance_flush_timeouts", "flush() calls that timed out undrained")
_FAILED_JOINS = OBS.counter(
    "maintenance_failed_joins", "stop() join timeouts (worker kept running)")


class DeltaOverlay:
    """Append-only mutation log since an epoch cut.

    For every node whose out-edges changed, the overlay stores the full
    post-mutation combined neighbor array (base edges first, extra edges in
    insertion order — exactly ``AdjacencyStore.neighbors``), stamped with a
    sequence number.  Resolving a node at a pinned sequence number is a
    binary search over that node's (short) log.  Tombstone additions are
    logged the same way.

    Writers must be serialized externally (the scheduler's write lock); the
    published ``seq`` is advanced only after the record is appended, so a
    reader that captured ``seq`` observes a complete prefix even while later
    writes land.
    """

    __slots__ = ("base_n_nodes", "seq", "_node_log", "_tomb_log")

    def __init__(self, base_n_nodes: int):
        self.base_n_nodes = base_n_nodes
        self.seq = 0  # last *published* sequence number
        self._node_log: dict[int, list[tuple[int, np.ndarray]]] = {}
        self._tomb_log: list[tuple[int, int]] = []

    @property
    def n_ops(self) -> int:
        """Published mutation count (monotone)."""
        return self.seq

    def record_node(self, u: int, combined: np.ndarray) -> None:
        """Log node ``u``'s post-mutation combined neighbor array."""
        stamp = self.seq + 1
        self._node_log.setdefault(u, []).append((stamp, combined))
        self.seq = stamp  # publish last: pinned readers never see a torn log

    def record_tombstone(self, node: int) -> None:
        """Log a lazy deletion."""
        stamp = self.seq + 1
        self._tomb_log.append((stamp, int(node)))
        self.seq = stamp

    def resolve(self, u: int, seq: int) -> np.ndarray | None:
        """Node ``u``'s neighbor array at sequence ``seq`` (None = unchanged)."""
        log = self._node_log.get(u)
        if not log:
            return None
        i = bisect.bisect_right(log, seq, key=lambda entry: entry[0])
        return log[i - 1][1] if i else None

    def tombstones_at(self, seq: int) -> set[int]:
        """Tombstones added up to (and including) sequence ``seq``."""
        out: set[int] = set()
        for stamp, node in self._tomb_log:
            if stamp > seq:
                break
            out.add(node)
        return out

    def touched_count(self) -> int:
        return len(self._node_log)


class GraphEpoch:
    """One immutable serving snapshot of the graph.

    ``graph`` is a frozen CSR view, ``entry`` the search entry point, and
    ``tombstones`` the lazily deleted ids — all captured at the cut instant.
    Nothing here is ever mutated; searches pinned to an epoch are therefore
    reproducible bit-for-bit for as long as they hold the pin.
    """

    __slots__ = ("epoch_id", "graph", "entry", "tombstones", "n_nodes")

    def __init__(self, epoch_id: int, graph: CSRGraphView, entry: int,
                 tombstones: frozenset[int]):
        self.epoch_id = epoch_id
        self.graph = graph
        self.entry = int(entry)
        self.tombstones = tombstones
        self.n_nodes = graph.n_nodes


class EpochView:
    """Consistent read view: epoch CSR + overlay prefix at a fixed ``seq``.

    Callable with a node id (drop-in ``neighbors_fn``), and provides
    ``neighbors_block`` so the batch engine can keep its one-gather-per-hop
    shape: the bulk CSR gather is used verbatim whenever no node in the
    frontier has an overlay delta, and only deltaed frontiers fall back to
    per-node assembly.
    """

    __slots__ = ("epoch", "overlay", "seq", "_excluded")

    def __init__(self, epoch: GraphEpoch, overlay: DeltaOverlay, seq: int):
        self.epoch = epoch
        self.overlay = overlay
        self.seq = seq
        self._excluded: set[int] | None = None

    def neighbors(self, u: int) -> np.ndarray:
        """Out-neighbors of ``u`` under this view."""
        delta = self.overlay.resolve(u, self.seq)
        if delta is not None:
            return delta
        if u < self.epoch.n_nodes:
            return self.epoch.graph.neighbors(u)
        return _EMPTY  # node inserted after this view's horizon

    __call__ = neighbors

    def neighbors_block(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bulk frontier gather with overlay patch-up after the CSR gather."""
        log = self.overlay._node_log
        n0 = self.epoch.n_nodes
        in_horizon = not nodes.size or int(nodes.max()) < n0
        if not log and in_horizon:
            return self.epoch.graph.neighbors_block(nodes)
        # Only deltaed or post-horizon nodes need individual assembly; the
        # clean majority keeps the one vectorized CSR gather per hop.
        patches: dict[int, np.ndarray] = {}
        for i, u in enumerate(nodes.tolist()):
            if u >= n0:
                patches[i] = self.neighbors(u)
            elif u in log:
                delta = self.overlay.resolve(u, self.seq)
                if delta is not None:
                    patches[i] = delta
        if in_horizon:
            flat, counts = self.epoch.graph.neighbors_block(nodes)
        else:
            # Post-horizon ids are all patched; gather placeholder rows.
            flat, counts = self.epoch.graph.neighbors_block(
                np.where(nodes < n0, nodes, 0))
        if not patches:
            return flat, counts
        offsets = np.concatenate(([0], np.cumsum(counts)))
        parts = [patches.get(i, flat[offsets[i]:offsets[i + 1]])
                 for i in range(len(nodes))]
        new_counts = counts.copy()
        for i, arr in patches.items():
            new_counts[i] = arr.size
        if not int(new_counts.sum()):
            return _EMPTY, new_counts
        return np.concatenate(parts), new_counts

    def excluded(self) -> set[int] | None:
        """Ids barred from results: epoch tombstones + overlay prefix."""
        if self._excluded is None:
            combined = set(self.epoch.tombstones)
            combined |= self.overlay.tombstones_at(self.seq)
            self._excluded = combined
        return self._excluded or None


class EpochPin:
    """A cheap handle keeping one (epoch, overlay-seq) pair live for a search.

    Usable as a context manager; :meth:`release` is idempotent and also runs
    from ``__del__`` so a dropped pin never leaks the epoch's pin count.
    """

    __slots__ = ("epoch", "view", "created", "_manager", "_released")

    def __init__(self, manager: "EpochManager", epoch: GraphEpoch,
                 view: EpochView):
        self.epoch = epoch
        self.view = view
        self.created = time.perf_counter()
        self._manager = manager
        self._released = False

    def age(self) -> float:
        """Seconds since this pin was taken."""
        return time.perf_counter() - self.created

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._manager._unpin(self.epoch.epoch_id)
            if OBS.enabled:
                _PIN_SECONDS.observe(time.perf_counter() - self.created)

    def __enter__(self) -> "EpochPin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass


class EpochManager:
    """Owns the current epoch + overlay of one live adjacency store.

    ``cut()`` freezes the live store into a fresh immutable epoch and swaps
    in an empty overlay — the only O(E) operation in the serving stack, and
    it is called off the query path (by the maintenance scheduler or at
    bulk-operation boundaries).  ``pin()`` is what the query path calls: it
    captures the current (epoch, overlay, seq) triple under a short lock.

    The caller must guarantee no concurrent mutations during ``cut()``
    (the scheduler holds its write lock); pins require no such guarantee.
    """

    def __init__(self, adjacency, entry: int):
        self.adjacency = adjacency
        self._lock = threading.Lock()
        self._epoch_counter = 0
        self._pin_counts: dict[int, int] = {}
        self.n_cuts = 0
        self.current: GraphEpoch | None = None
        self.overlay: DeltaOverlay | None = None
        self._suspended = False
        self._cut_time = time.monotonic()
        self.cut(entry)
        # Callback gauges read live state at scrape time; re-registration by
        # a newer manager instance replaces the callbacks (newest wins).
        OBS.gauge_fn("epoch_id",
                     lambda: self.current.epoch_id if self.current else -1,
                     "current serving epoch id")
        OBS.gauge_fn("epoch_age_seconds",
                     lambda: time.monotonic() - self._cut_time,
                     "seconds since the current epoch was cut")
        OBS.gauge_fn("epoch_active_pins", self.active_pins,
                     "pins currently held by in-flight searches")
        OBS.gauge_fn("overlay_ops",
                     lambda: self.overlay.n_ops if self.overlay else 0,
                     "published mutations in the current overlay")
        OBS.gauge_fn("overlay_nodes_touched",
                     lambda: (self.overlay.touched_count()
                              if self.overlay else 0),
                     "distinct nodes with overlay deltas")

    # -- lifecycle ----------------------------------------------------------

    def cut(self, entry: int | None = None) -> GraphEpoch:
        """Freeze the live store into a new epoch; start a fresh overlay.

        Callers must hold the write lock (no concurrent mutations).  Old
        epochs/overlays stay alive for as long as pins reference them.
        """
        graph = self.adjacency.freeze()
        # Compacted (removed) ids stay excluded forever: their edges are
        # gone but their data rows remain, so result filtering is the last
        # line of defense against them resurfacing.
        tombstones = frozenset(self.adjacency.tombstones
                               | self.adjacency.removed)
        overlay = DeltaOverlay(graph.n_nodes)
        with self._lock:
            self._epoch_counter += 1
            self.n_cuts += 1
            if entry is None:
                entry = self.current.entry
            epoch = GraphEpoch(self._epoch_counter, graph, entry, tombstones)
            self.current, self.overlay = epoch, overlay
            self._suspended = False
            self._cut_time = time.monotonic()
        self.adjacency.attach_overlay(overlay)
        return epoch

    def suspend_overlay(self) -> None:
        """Stop logging mutations (bulk rebuild ahead; serve the old epoch).

        While suspended, pins keep returning the pre-suspension epoch plus
        the (now frozen) overlay — a consistent, slightly stale view.  Call
        :meth:`cut` to resume with a fresh epoch reflecting the bulk work,
        or :meth:`resume_overlay` to back out of an aborted bulk.
        """
        self.adjacency.detach_overlay()
        with self._lock:
            self._suspended = True

    def resume_overlay(self) -> None:
        """Re-attach the pre-suspension overlay without cutting (bulk abort).

        The failure-path inverse of :meth:`suspend_overlay`: the current
        (epoch, overlay) pair keeps serving exactly the pre-bulk state, and
        subsequent mutations are logged again.  Mutations made *while*
        suspended were never logged, so they stay invisible to pins until
        the next cut folds the live graph into a fresh epoch.
        """
        with self._lock:
            self._suspended = False
        if self.overlay is not None:
            self.adjacency.attach_overlay(self.overlay)

    # -- pinning ------------------------------------------------------------

    def pin(self) -> EpochPin:
        """Pin the current epoch for one search."""
        with self._lock:
            epoch, overlay = self.current, self.overlay
            view = EpochView(epoch, overlay, overlay.seq)
            self._pin_counts[epoch.epoch_id] = \
                self._pin_counts.get(epoch.epoch_id, 0) + 1
        _PINS_TOTAL.inc()
        return EpochPin(self, epoch, view)

    def _unpin(self, epoch_id: int) -> None:
        with self._lock:
            count = self._pin_counts.get(epoch_id, 0) - 1
            if count <= 0:
                self._pin_counts.pop(epoch_id, None)
            else:
                self._pin_counts[epoch_id] = count

    def active_pins(self) -> int:
        with self._lock:
            return sum(self._pin_counts.values())

    def stats(self) -> dict:
        with self._lock:
            overlay = self.overlay
            return {
                "epoch_id": self.current.epoch_id,
                "epoch_n_nodes": self.current.n_nodes,
                "n_cuts": self.n_cuts,
                "overlay_ops": overlay.n_ops if overlay is not None else 0,
                "overlay_nodes_touched": (overlay.touched_count()
                                          if overlay is not None else 0),
                "active_pins": sum(self._pin_counts.values()),
                "suspended": self._suspended,
                "epoch_age_seconds": time.monotonic() - self._cut_time,
            }


class ServingSearcher:
    """Index-protocol facade serving epoch-pinned searches.

    Exposes ``search``/``search_batch``/``search_many`` and ``dc`` exactly
    like a :class:`~repro.graphs.base.GraphIndex`, so it drops into
    :func:`~repro.evalx.runner.evaluate_index` unchanged.  Every search pins
    the current epoch; batched searches pin once per engine block.  The
    query path never touches the store's dynamic lists, its refreeze
    hysteresis, or the O(E) ``freeze`` — epoch-consistency and wait-freedom
    come from the pin.

    **Compressed mode.**  When an :class:`~repro.quantization.adc.ADCComputer`
    is attached (``adc=``), traversal scoring runs over its resident uint8
    code matrix — ADC table lookups instead of full-precision rows — and
    only the top-``rerank`` shortlist is re-scored exactly against ``dc``.
    With a memmap-backed ``dc`` the raw vectors stay on disk and the
    re-rank gather is the only thing that pages them in.  Tombstone/removed
    exclusion, ``deadline_ms`` degradation, and epoch pinning behave
    identically to the uncompressed path.
    """

    def __init__(self, fixer, manager: EpochManager, batch_size: int = 32,
                 adc=None, rerank: int = 50, beam_width: int | None = None):
        self.fixer = fixer
        self.manager = manager
        self.adc = adc
        self.rerank = rerank
        # Default beam: wide only where scoring is cheap (ADC); the
        # full-precision engine keeps width 1 (sequential equivalence).
        # An explicit beam_width overrides — shard-sized graphs at small
        # ef are lock-step-round-bound, and a wide beam cuts rounds at the
        # cost of a few extra (vectorized, cheap) distance evaluations.
        if beam_width is None:
            beam_width = 4 if adc is not None else 1
        self.beam_width = beam_width
        self._visited = VisitedTable(fixer.dc.size)
        self._engine: BatchSearchEngine | None = None
        self._engine_batch = batch_size
        self._block_pin: EpochPin | None = None
        # Hardness-aware query planner (repro.tuning).  None — the default —
        # leaves every search path bit-identical to the planner-less stack;
        # attach_planner() routes ef-less searches through per-bin settings.
        self.planner = None
        self._planned_engines: dict[tuple, BatchSearchEngine] = {}
        self.n_degraded = 0
        self.adc_scored = 0     # cumulative ADC scorings (compressed mode)
        self.rerank_ndc = 0     # cumulative exact re-rank computations
        self.pagein_seconds = 0.0  # re-rank gather wall-clock (memmap timing)
        # Telemetry hook: the owning store points this at its scheduler's
        # queue so per-query traces carry the repair backlog.
        self.queue_depth_fn = None
        # Control-plane hook: when a trace-hungry maintenance policy is
        # installed the store points this at the scheduler's ``note_trace``.
        # None (the default) keeps the hot path free of trace construction
        # unless telemetry is on — trace-blind policies pay nothing.
        self.trace_sink = None

    @property
    def dc(self):
        return self.fixer.dc

    @property
    def compressed(self) -> bool:
        return self.adc is not None

    def attach_adc(self, adc, rerank: int | None = None,
                   beam_width: int = 4) -> None:
        """Swap in (or install) an ADC computer and invalidate the engine.

        The cached :class:`BatchSearchEngine` keys on batch size and beam
        width but not on the distance computer, so a codebook swap (e.g.
        the cluster router shipping a shared PQ) must drop it explicitly —
        otherwise blocks would keep scoring with the old codes.
        """
        self.adc = adc
        if rerank is not None:
            self.rerank = rerank
        self.beam_width = beam_width if adc is not None else 1
        self._engine = None
        self._planned_engines.clear()

    def attach_planner(self, planner) -> None:
        """Install (or remove) the hardness-aware query planner.

        With a planner attached, searches that pass ``ef=None`` are routed
        per predicted hardness bin (see :mod:`repro.tuning`); an explicit
        ``ef`` always overrides the planner.  Passing None restores the
        planner-less behavior exactly.
        """
        self.planner = planner
        self._planned_engines.clear()

    def stats(self) -> dict:
        """Aggregatable searcher counters (summed across shards via
        :func:`repro.cluster.stats.merge_stats`)."""
        out = {
            "n_degraded": self.n_degraded,
            "adc_scored": self.adc_scored,
            "rerank_ndc": self.rerank_ndc,
            "pagein_seconds": self.pagein_seconds,
            "compressed": self.compressed,
        }
        if self.planner is not None:
            out["planner"] = self.planner.stats()
        return out

    def _rerank_exact(self, shortlist: np.ndarray, q: np.ndarray, k: int,
                      degraded: bool) -> SearchResult:
        """Exact re-rank of one shortlist; the path's only full-dim touches."""
        t0 = time.perf_counter()
        if shortlist.size:
            exact = self.dc.to_query(shortlist, q)
            order = np.argsort(exact, kind="stable")[:k]
            result = SearchResult(ids=shortlist[order],
                                  distances=exact[order].astype(np.float64),
                                  degraded=degraded)
        else:
            result = SearchResult(ids=np.empty(0, dtype=np.int64),
                                  distances=np.empty(0, dtype=np.float64),
                                  degraded=degraded)
        elapsed = time.perf_counter() - t0
        self.rerank_ndc += int(shortlist.size)
        self.pagein_seconds += elapsed
        if OBS.enabled:
            _RERANK_NDC.observe(int(shortlist.size))
            _PAGEIN_SECONDS.inc(elapsed)
        return result

    def _search_compressed(self, q: np.ndarray, k: int, ef: int,
                           deadline: float | None,
                           rerank: int | None = None,
                           ) -> tuple[SearchResult, tuple[int, int, float]]:
        """Sequential compressed search against a pinned epoch view."""
        budget = max(rerank if rerank is not None else self.rerank, k)
        with self.manager.pin() as pin:
            view = pin.view
            table = self.adc.begin_query(q)  # syncs codes incrementally
            excluded = view.excluded()
            # The beam runs at the caller's ef; the shortlist draws from all
            # visited (ADC-scored) nodes, so the re-rank budget costs exact
            # distances only, not traversal width.
            shortlist, n_scored, degraded = pq_greedy_search(
                self.adc.pq, self.adc.codes, view, [pin.epoch.entry], table,
                k=k, ef=max(ef, k), visited=self._visited,
                excluded=excluded, deadline=deadline)
            shortlist = shortlist[:budget]
            if shortlist.size == 0:
                shortlist = fallback_shortlist(self.adc, table, excluded,
                                               budget)
                n_scored += self.adc.codes.shape[0]
            self.adc_scored += n_scored
            result = self._rerank_exact(shortlist, q, k, degraded)
            if OBS.enabled:
                _COMPRESSED_QUERIES.inc()
                _ADC_SCORED.inc(n_scored)
            trace = (pin.epoch.epoch_id, view.seq, pin.age())
        return result, trace

    def search(self, query: np.ndarray, k: int, ef: int | None = None,
               collect_visited: bool = False,
               deadline_ms: float | None = None) -> SearchResult:
        """Top-k search against a pinned epoch view.

        ``deadline_ms`` caps the search's latency budget: past it the
        search stops expanding and returns best-so-far results with
        ``SearchResult.degraded`` set (and the
        ``serving_degraded_searches`` counter bumped) instead of blocking
        the caller — graceful degradation, never an error.

        With a planner attached (:meth:`attach_planner`), ``ef=None``
        resolves to the query's predicted hardness bin's fitted setting
        (ef + route); an explicit ``ef`` always bypasses the planner.
        """
        setting = None
        if ef is None:
            if self.planner is not None:
                setting = self.planner.config.setting(
                    int(self.planner.predict(
                        np.atleast_2d(np.asarray(query, dtype=np.float32))
                    )[0]))
                ef = setting.ef
            else:
                ef = max(k, 10)
        deadline = (None if deadline_ms is None
                    else time.perf_counter() + deadline_ms / 1000.0)
        dc = self.dc
        q = dc.prepare_query(query)
        telemetry = OBS.enabled
        sink = self.trace_sink
        track = telemetry or sink is not None
        if track:
            t0 = time.perf_counter()
            ndc0 = dc.ndc
        use_adc = self.adc is not None and (
            setting is None or setting.route != "exact")
        if use_adc:
            result, (epoch_id, seq, pin_s) = self._search_compressed(
                q, k, ef, deadline,
                rerank=setting.rerank if setting is not None else None)
            if result.degraded:
                self.n_degraded += 1
                _DEGRADED.inc()
            if track:
                trace = QueryTrace(
                    k=k, ef=ef, n_hops=result.n_hops, ndc=dc.ndc - ndc0,
                    frontier_peak=result.frontier_peak,
                    epoch_id=epoch_id, overlay_seq=seq, pin_seconds=pin_s,
                    elapsed_seconds=time.perf_counter() - t0,
                    queue_depth=(self.queue_depth_fn()
                                 if self.queue_depth_fn is not None else 0),
                    degraded=result.degraded,
                )
                if telemetry:
                    _SERVE_QUERIES.inc()
                    TRACES.record(trace)
                if sink is not None:
                    sink(trace, query=q)
            return result
        with self.manager.pin() as pin:
            view = pin.view
            result = greedy_search(
                dc, view, [pin.epoch.entry], q, k=k, ef=ef,
                visited=self._visited, excluded=view.excluded(),
                collect_visited=collect_visited, prepared=True,
                deadline=deadline,
            )
            if result.degraded:
                self.n_degraded += 1
                _DEGRADED.inc()
            if track:
                trace = QueryTrace(
                    k=k, ef=ef, n_hops=result.n_hops,
                    ndc=dc.ndc - ndc0,
                    frontier_peak=result.frontier_peak,
                    epoch_id=pin.epoch.epoch_id, overlay_seq=view.seq,
                    pin_seconds=pin.age(),
                    elapsed_seconds=time.perf_counter() - t0,
                    queue_depth=(self.queue_depth_fn()
                                 if self.queue_depth_fn is not None else 0),
                    degraded=result.degraded,
                )
                if telemetry:
                    _SERVE_QUERIES.inc()
                    TRACES.record(trace)
                if sink is not None:
                    sink(trace, query=q)
        return result

    # -- batched path -------------------------------------------------------

    def _pin_block(self) -> EpochView:
        """graph_fn hook: re-pin at each engine block boundary."""
        if self._block_pin is not None:
            self._block_pin.release()
        self._block_pin = self.manager.pin()
        return self._block_pin.view

    def _block_excluded(self) -> set[int] | None:
        return self._block_pin.view.excluded()

    def search_batch(self, queries: np.ndarray, k: int,
                     ef: int | None = None, batch_size: int = 32,
                     deadline_ms: float | None = None) -> list[SearchResult]:
        """Batched pinned search; each engine block sees one epoch view.

        ``deadline_ms`` budgets the whole batch: the engine checks it once
        per lock-step round and finalizes still-active queries best-so-far
        (flagged ``degraded``) when it expires.

        With a planner attached (:meth:`attach_planner`), ``ef=None``
        partitions the batch by predicted hardness bin and runs each group
        under its fitted setting; an explicit ``ef`` always bypasses the
        planner and runs today's single-setting path unchanged.
        """
        if ef is None:
            if self.planner is not None:
                return self._search_batch_planned(queries, k, batch_size,
                                                  deadline_ms)
            ef = max(k, 10)
        deadline = (None if deadline_ms is None
                    else time.perf_counter() + deadline_ms / 1000.0)
        compressed = self.adc is not None
        engine = self._engine
        if (engine is None or engine.batch_size != batch_size
                or engine.beam_width != self.beam_width):
            engine = BatchSearchEngine(
                self.adc if compressed else self.dc,
                # Fallback never used: graph_fn always supplies a view.
                lambda u: self._block_pin.view(u),
                lambda q: [self._block_pin.epoch.entry],
                excluded_fn=self._block_excluded,
                batch_size=batch_size,
                graph_fn=self._pin_block,
                beam_width=self.beam_width,
                # The epoch entry is query-independent: seed it once per
                # block instead of once per query.
                entry_points_block_fn=(
                    lambda qmat: [self._block_pin.epoch.entry]),
            )
            self._engine = engine
        sink = self.trace_sink
        if sink is not None:
            ndc0 = self.dc.ndc
        try:
            if compressed:
                results = self._search_batch_compressed(engine, queries, k,
                                                        ef, deadline)
            else:
                results = engine.search_batch(queries, k, ef,
                                              deadline=deadline)
            if deadline is not None:
                n_degraded = sum(1 for r in results if r.degraded)
                if n_degraded:
                    self.n_degraded += n_degraded
                    _DEGRADED.inc(n_degraded)
            if sink is not None:
                self._sink_batch_traces(sink, queries, results, k, ef, ndc0)
            return results
        finally:
            if self._block_pin is not None:
                self._block_pin.release()
                self._block_pin = None

    def _sink_batch_traces(self, sink, queries: np.ndarray,
                           results: list[SearchResult], k: int, ef: int,
                           ndc0: int) -> None:
        """Feed per-result traces to the control plane after a batch.

        Distance computations are block-shared, so each trace carries the
        batch-averaged NDC — the policy consumes window means, for which
        the average is the right per-query attribution.
        """
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        ndc_each = int((self.dc.ndc - ndc0) / max(len(results), 1))
        for row, r in zip(qmat, results):
            sink(QueryTrace(k=k, ef=ef, n_hops=r.n_hops, ndc=ndc_each,
                            frontier_peak=r.frontier_peak, batched=True,
                            degraded=r.degraded), query=row)

    # -- planned path --------------------------------------------------------

    def _planned_block_entries(self, qmat: np.ndarray) -> list[int]:
        """Epoch entry plus the planner's adaptive landmark entry (if any)."""
        view = self._block_pin.view
        entries = [self._block_pin.epoch.entry]
        if self.planner is not None:
            extra = self.planner.entry_for_block(
                qmat, n_nodes=view.epoch.n_nodes, excluded=view.excluded())
            if extra is not None and extra not in entries:
                entries.append(extra)
        return entries

    def _group_engine(self, batch_size: int, beam: int,
                      use_adc: bool) -> BatchSearchEngine:
        """Engine for one planned group, cached per (batch, beam, path).

        Kept separate from :attr:`_engine` so the planner-off batched path
        stays byte-for-byte on today's single engine.
        """
        key = (batch_size, beam, use_adc)
        engine = self._planned_engines.get(key)
        if engine is None:
            engine = BatchSearchEngine(
                self.adc if use_adc else self.dc,
                lambda u: self._block_pin.view(u),
                lambda q: [self._block_pin.epoch.entry],
                excluded_fn=self._block_excluded,
                batch_size=batch_size,
                graph_fn=self._pin_block,
                beam_width=beam,
                entry_points_block_fn=self._planned_block_entries,
            )
            self._planned_engines[key] = engine
        return engine

    def search_group(self, queries: np.ndarray, k: int, setting,
                     batch_size: int = 32,
                     deadline: float | None = None) -> list[SearchResult]:
        """Run one batch group under a bin's :class:`BinSetting`.

        Public because the tuner measures candidate settings through this
        exact method — fitted tables describe precisely what serving runs.
        ``route="exact"`` forces full-precision traversal even on a
        compressed store; ``route="pq"``/``"default"`` keep the ADC hot
        path when codes are attached.
        """
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        use_adc = self.adc is not None and setting.route != "exact"
        if setting.beam_width is not None:
            beam = int(setting.beam_width)
        elif self.adc is not None and not use_adc:
            # Exact route on a compressed store: the wide ADC beam exists
            # to absorb quantization noise; full-precision walks don't pay
            # it, so default narrow.
            beam = 1
        else:
            beam = self.beam_width
        engine = self._group_engine(batch_size, beam, use_adc)
        try:
            if use_adc:
                return self._search_batch_compressed(
                    engine, qmat, k, setting.ef, deadline,
                    rerank=setting.rerank)
            return engine.search_batch(qmat, k, setting.ef,
                                       deadline=deadline)
        finally:
            if self._block_pin is not None:
                self._block_pin.release()
                self._block_pin = None

    def _search_batch_planned(self, queries: np.ndarray, k: int,
                              batch_size: int,
                              deadline_ms: float | None
                              ) -> list[SearchResult]:
        """Partition a batch by predicted bin; run each group on its setting.

        Per-block partitioning keeps the lock-step engine's one-gather-
        per-hop shape — groups run as dense sub-batches, never per-query
        fallback.  Results reassemble into caller order.
        """
        qmat = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        deadline = (None if deadline_ms is None
                    else time.perf_counter() + deadline_ms / 1000.0)
        sink = self.trace_sink
        bins, groups = self.planner.plan(qmat)
        results: list[SearchResult | None] = [None] * qmat.shape[0]
        for _b, idx, setting in groups:
            if sink is not None:
                ndc0 = self.dc.ndc
            group = self.search_group(qmat[idx], k, setting,
                                      batch_size=batch_size,
                                      deadline=deadline)
            for i, r in zip(idx.tolist(), group):
                results[i] = r
            if sink is not None:
                self._sink_batch_traces(sink, qmat[idx], group, k,
                                        setting.ef, ndc0)
        if deadline is not None:
            n_degraded = sum(1 for r in results if r.degraded)
            if n_degraded:
                self.n_degraded += n_degraded
                _DEGRADED.inc(n_degraded)
        self.planner.note_outcomes(bins, results)
        return results

    def _search_batch_compressed(self, engine: BatchSearchEngine,
                                 queries: np.ndarray, k: int, ef: int,
                                 deadline: float | None,
                                 rerank: int | None = None,
                                 ) -> list[SearchResult]:
        """Batched ADC traversal over pinned views + one exact re-rank gather."""
        budget = max(rerank if rerank is not None else self.rerank, k)
        adc0 = self.adc.ndc
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        qmat = self.dc.prepare_queries(queries)
        # Beam at the caller's ef; shortlists carved from the visited set
        # (see PQRerankSearcher.search_batch for the rationale).
        approx = engine.search_batch(qmat, k=k, ef=max(ef, k),
                                     deadline=deadline, collect_visited=True,
                                     prepared=True)
        # Live exclusion set (superset of any pinned view's): neither the
        # shortlist nor the fallback scan may surface a tombstoned/removed
        # id.
        excluded = self.fixer.adjacency.excluded_ids()
        shortlists = [
            visited_shortlist(r.visited_ids, r.visited_distances,
                              excluded, budget)
            for r in approx]
        empties = [i for i, s in enumerate(shortlists) if s.size == 0]
        if empties:
            for i in empties:
                table = self.adc.pq.adc_table(qmat[i])
                shortlists[i] = fallback_shortlist(self.adc, table,
                                                   excluded, budget)
        t0 = time.perf_counter()
        results, exact_ndc = exact_rerank(
            self.dc, qmat, shortlists, k,
            degraded=[r.degraded for r in approx],
            hops=[r.n_hops for r in approx])
        elapsed = time.perf_counter() - t0
        n_scored = self.adc.ndc - adc0
        self.adc_scored += n_scored
        self.rerank_ndc += exact_ndc
        self.pagein_seconds += elapsed
        if OBS.enabled:
            _COMPRESSED_QUERIES.inc(queries.shape[0])
            _ADC_SCORED.inc(n_scored)
            _RERANK_NDC.observe(exact_ndc)
            _PAGEIN_SECONDS.inc(elapsed)
        return results

    def search_many(self, queries: np.ndarray, k: int, ef: int | None = None,
                    batch_size: int = 32) -> tuple[np.ndarray, np.ndarray]:
        """Batched search returning padded (ids, distances) arrays."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
        distances = np.full((queries.shape[0], k), np.inf)
        if batch_size == 1:
            results = (self.search(q, k=k, ef=ef) for q in queries)
        else:
            results = self.search_batch(queries, k, ef, batch_size=batch_size)
        for i, result in enumerate(results):
            m = min(k, len(result.ids))
            ids[i, :m] = result.ids[:m]
            distances[i, :m] = result.distances[:m]
        return ids, distances


class MaintenanceScheduler:
    """Serializes writes and folds them into fresh epochs off the query path.

    Three responsibilities:

    1. **Write serialization** — every mutation of the live graph (insert,
       delete, online fix, merge) runs under :attr:`write_lock`, so the
       single-writer invariant the overlay relies on holds.
    2. **Merging** — once the overlay accumulates ``merge_every`` published
       ops, the scheduler cuts a fresh epoch (the O(E) ``freeze``), swapping
       it in atomically for new pins.  In-flight pinned searches are
       untouched.
    3. **Online repair** — queries fed to :meth:`observe` are queued and
       repaired with the fixer's NGFix/RFix pass (``fix_query``): hardness is
       measured against the live graph and edges are added only where the
       Escape Hardness measurement demands them, so "flagged hard" is
       decided by the same machinery ``fit()`` uses — now continuously,
       while serving.

    ``mode="inline"`` (default) drains pending work synchronously at
    well-defined points (:meth:`observe`, :meth:`note_mutations`,
    :meth:`run_pending`) — fully deterministic, no threads.
    ``mode="thread"`` runs the same drain loop on a daemon worker so repair
    and merging overlap serving; :meth:`flush` waits for quiescence.

    **Control plane.**  *When* to merge, whether to admit an ``observe()``
    repair, and how many repairs a drain may run are delegated to a
    :class:`~repro.control.MaintenancePolicy` — the scheduler keeps only
    the execution invariants (write serialization, journal order, epoch
    atomicity).  The default :class:`~repro.control.CadencePolicy` is
    decision-for-decision identical to the historical fixed-cadence
    behavior; a :class:`~repro.control.SignalPolicy` consumes query traces
    (via :meth:`note_trace`) and mutation notices (via
    :meth:`note_mutation_kind`) to trigger maintenance from navigability
    signals instead.
    """

    def __init__(self, fixer, manager: EpochManager, *,
                 merge_every: int = 256, queue_limit: int = 64,
                 mode: str = "inline",
                 policy: MaintenancePolicy | None = None):
        if merge_every <= 0:
            raise ValueError(f"merge_every must be positive, got {merge_every}")
        if mode not in ("inline", "thread"):
            raise ValueError(f"mode must be 'inline' or 'thread', got {mode!r}")
        self.fixer = fixer
        self.manager = manager
        self.merge_every = merge_every
        self.queue_limit = queue_limit
        self.mode = mode
        self.policy = policy if policy is not None else CadencePolicy(
            merge_every)
        self.policy.bind(self)
        # Recent served queries a trace-hungry policy may claim for burst
        # repair (newest first).  Trace-blind policies keep it None so the
        # serving path never copies query vectors it won't use.
        self.recent_queries: deque[np.ndarray] | None = (
            deque(maxlen=max(queue_limit, 1))
            if self.policy.wants_traces else None)
        self.write_lock = threading.RLock()
        self._queue: deque[np.ndarray] = deque()
        self._idle = threading.Condition()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.n_merges = 0
        self.n_repairs = 0
        self.n_observed = 0
        self.n_dropped = 0
        self.n_shed = 0
        self.n_worker_errors = 0
        self.n_bulk_aborts = 0
        self.n_flush_timeouts = 0
        self.n_failed_joins = 0
        self.last_worker_error: str | None = None
        # Durability hook: the owning store points this at its write-ahead
        # log so repair/merge commits are journaled (see repro.durability).
        self.wal = None
        self.last_merge_seconds = 0.0
        self.repair_seconds = 0.0   # cumulative online-repair wall-clock
        self.merge_seconds = 0.0    # cumulative epoch-cut wall-clock
        self.n_policy_repairs = 0   # repairs the policy self-enqueued
        self._last_heartbeat = time.monotonic()
        OBS.gauge_fn("maintenance_queue_depth", lambda: len(self._queue),
                     "repair queries waiting in the scheduler queue")
        OBS.gauge_fn("maintenance_worker_alive",
                     lambda: float(self.worker_alive()),
                     "1 when background maintenance can make progress")
        OBS.gauge_fn("maintenance_worker_heartbeat_age_seconds",
                     lambda: time.monotonic() - self._last_heartbeat,
                     "seconds since the maintenance drain loop last ran")

    # -- write-side hooks ---------------------------------------------------

    def observe(self, query: np.ndarray) -> bool:
        """Queue one served query for online NGFix/RFix repair.

        Admission control: repair is best-effort quality improvement, so
        when the system cannot keep up — the queue is saturated or the
        background worker is dead — the call is *shed* (returns False,
        ``maintenance_observe_shed`` counted) rather than queued into a
        backlog nobody will drain.  Searches are never shed; only repair
        feedback is.  Under milder pressure the bounded queue still drops
        the *oldest* entry (the most recent traffic best reflects the
        current workload).  Inline mode drains immediately; thread mode
        wakes the worker.  Returns True when the query was accepted.

        The maintenance policy sees the request first: a signal-driven
        policy declines repair feedback while the graph looks healthy
        (``maintenance_policy_repairs_skipped``), which is where its cost
        savings come from.  The default cadence policy admits everything.
        """
        if not self.policy.admit_repair():
            return False
        if self._should_shed():
            self.n_shed += 1
            _OBSERVE_SHED.inc()
            return False
        query = np.array(query, dtype=np.float32, copy=True)
        _OBSERVED.inc()
        with self._idle:
            self._queue.append(query)
            self.n_observed += 1
            if len(self._queue) > self.queue_limit:
                self._queue.popleft()
                self.n_dropped += 1
                _QUEUE_DROPS.inc()
        if self.mode == "inline":
            self.run_pending()
        else:
            self._wake.set()
        return True

    def _should_shed(self) -> bool:
        """Whether to refuse new repair work (saturated queue / dead worker)."""
        if self.mode == "thread" and not self.worker_alive():
            return True
        return len(self._queue) >= self.queue_limit

    def note_mutations(self) -> None:
        """Signal that graph mutations landed (insert/delete paths call this)."""
        if not self._merge_due():
            return
        if self.mode == "inline":
            # The policy bounds how much repair may piggyback on a
            # mutation-triggered drain: 0 for cadence (merge only, the
            # historical behavior), a storm/degraded budget for signal.
            self.run_pending(max_repairs=self.policy.mutation_repair_budget())
        else:
            self._wake.set()

    def note_trace(self, trace, query: np.ndarray | None = None) -> None:
        """Control-plane feed: one served query's trace (+ its vector).

        Wired as ``ServingSearcher.trace_sink`` when the policy wants
        traces.  The query vector is copied into the recent-query ring so
        a policy-requested burst repair can re-fix exactly the traffic
        that was being served when navigability degraded.
        """
        if self.recent_queries is not None and query is not None:
            self.recent_queries.append(
                np.array(query, dtype=np.float32, copy=True))
        self.policy.on_trace(trace)

    def note_mutation_kind(self, kind: str, n: int = 1) -> None:
        """Control-plane feed: ``n`` committed mutations of ``kind``.

        Mutation paths call this *before* :meth:`note_mutations` so the
        policy's storm detector sees the delete pressure that the very
        next merge decision should react to.
        """
        self.policy.note_mutation(kind, n)

    def _merge_due(self) -> bool:
        overlay = self.manager.overlay
        return overlay is not None and self.policy.should_merge(overlay.n_ops)

    # -- draining -----------------------------------------------------------

    def run_pending(self, max_repairs: int | None = None) -> dict:
        """Drain queued repairs, then merge if the overlay is due.

        Safe to call from any thread; all work runs under the write lock.
        Returns counts of what was done.
        """
        repaired = 0
        self._last_heartbeat = time.monotonic()
        FAULTS.fire("worker.drain")
        with self.write_lock:
            self._enqueue_policy_repairs()
            budget = (self.policy.repair_budget() if max_repairs is None
                      else max_repairs)
            while budget is None or repaired < budget:
                with self._idle:
                    if not self._queue:
                        break
                    query = self._queue.popleft()
                # Chaos hook: a crash here loses the in-flight repair but
                # nothing else — it was never journaled (see below), so
                # replay simply skips it.
                FAULTS.fire("scheduler.pre_repair")
                t0 = time.perf_counter()
                self.fixer.fix_query(query)
                # Journal the repair only after it committed to the graph:
                # replay re-runs exactly the repairs that actually landed.
                if self.wal is not None:
                    self.wal.log_observe(query)
                elapsed = time.perf_counter() - t0
                self.repair_seconds += elapsed
                _REPAIR_SECONDS.observe(elapsed)
                _REPAIRS.inc()
                self.n_repairs += 1
                repaired += 1
            merged = False
            if self._merge_due():
                self.merge_now()
                merged = True
        with self._idle:
            self._idle.notify_all()
        return {"repaired": repaired, "merged": merged}

    def _enqueue_policy_repairs(self) -> None:
        """Pull policy-requested burst repairs off the recent-query ring.

        A storm or threshold trigger makes the policy *request* repairs
        (``claim_repair_requests``); the scheduler satisfies them from the
        newest served queries so the burst re-fixes exactly the traffic
        that exposed the degradation.  No-op for trace-blind policies.
        """
        if self.recent_queries is None:
            return
        want = self.policy.claim_repair_requests()
        if want <= 0:
            return
        with self._idle:
            while want > 0 and self.recent_queries:
                self._queue.append(self.recent_queries.pop())
                self.n_policy_repairs += 1
                want -= 1

    def merge_now(self) -> GraphEpoch:
        """Cut a fresh epoch from the live graph (O(E), off the query path)."""
        with self.write_lock:
            FAULTS.fire("scheduler.pre_merge")
            start = time.perf_counter()
            epoch = self.manager.cut(entry=self.fixer.entry)
            if self.wal is not None:
                self.wal.log_merge_cut()
            self.last_merge_seconds = time.perf_counter() - start
            self.merge_seconds += self.last_merge_seconds
            self.n_merges += 1
            _MERGES.inc()
            _MERGE_SECONDS.observe(self.last_merge_seconds)
            self.policy.on_merge()
            return epoch

    def bulk(self):
        """Context manager for bulk rebuilds (``fit``, compaction).

        Suspends overlay logging (serving continues against the pinned
        pre-bulk epoch), holds the write lock for the duration, and cuts a
        fresh epoch on exit so the bulk result becomes visible atomically.
        """
        return _BulkContext(self)

    # -- background worker --------------------------------------------------

    def start(self) -> "MaintenanceScheduler":
        """Start the background worker (thread mode only; idempotent)."""
        if self.mode != "thread":
            raise RuntimeError("start() requires mode='thread'")
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._worker, name="repro-maintenance", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> bool:
        """Stop the background worker, draining nothing further.

        Returns True once the worker has actually exited.  On join timeout
        the thread handle is deliberately *kept*: the worker may still be
        running, so dropping the handle would make ``worker_alive()``
        report a live worker as dead and let a second ``start()`` spawn a
        duplicate.  The failed join is counted
        (``maintenance_failed_joins``); calling ``stop()`` again retries
        the join.
        """
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        if thread.is_alive():
            self.n_failed_joins += 1
            _FAILED_JOINS.inc()
            return False
        self._thread = None
        return True

    def flush(self, timeout: float | None = 10.0) -> bool:
        """Block until the repair queue is empty and no merge is due.

        In inline mode this drains synchronously.  Returns False on timeout.
        """
        if self.mode == "inline" or self._thread is None:
            self.run_pending()
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        self._wake.set()
        with self._idle:
            while self._queue or self._merge_due():
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    self.n_flush_timeouts += 1
                    _FLUSH_TIMEOUTS.inc()
                    return False
                self._idle.wait(0.05 if remaining is None
                                else min(0.05, remaining))
                self._wake.set()
        return True

    def _worker(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=0.05)
            self._wake.clear()
            self._last_heartbeat = time.monotonic()
            if self._stop.is_set():
                break
            try:
                self.run_pending()
            except Exception as exc:
                # One poisoned repair (or a failing merge) must not silently
                # kill background maintenance forever: count it, remember it
                # for stats()/telemetry, and keep draining.  The query that
                # raised was already popped, so the loop cannot wedge on it.
                self.n_worker_errors += 1
                self.last_worker_error = repr(exc)
                _WORKER_ERRORS.inc()

    def worker_alive(self) -> bool:
        """Whether background maintenance can make progress.

        Inline mode drains synchronously at call sites, so it is always
        "alive"; thread mode requires a started, living worker thread.
        """
        if self.mode == "inline":
            return True
        return self._thread is not None and self._thread.is_alive()

    def stats(self) -> dict:
        with self._idle:
            queued = len(self._queue)
        return {
            "mode": self.mode,
            "merges": self.n_merges,
            "repairs": self.n_repairs,
            "observed": self.n_observed,
            "dropped": self.n_dropped,
            "shed": self.n_shed,
            "queued": queued,
            "flush_timeouts": self.n_flush_timeouts,
            "failed_joins": self.n_failed_joins,
            "last_merge_seconds": self.last_merge_seconds,
            "repair_seconds": self.repair_seconds,
            "merge_seconds": self.merge_seconds,
            "policy_repairs": self.n_policy_repairs,
            "policy": self.policy.stats(),
            "worker_alive": self.worker_alive(),
            "worker_errors": self.n_worker_errors,
            "worker_last_error": self.last_worker_error,
            "worker_heartbeat_age_seconds":
                time.monotonic() - self._last_heartbeat,
            "bulk_aborts": self.n_bulk_aborts,
            **{f"epoch_{k}": v for k, v in self.manager.stats().items()},
        }


class _BulkContext:
    """Write-locked overlay suspension around a bulk rebuild.

    The success path cuts a fresh epoch on exit so the bulk result becomes
    visible atomically.  The failure path must NOT cut: the bulk body died
    partway, and publishing would hand every new pin a half-built graph.
    Instead the pre-bulk (epoch, overlay) pair keeps serving, overlay
    logging resumes for subsequent mutations, the abort is counted
    (``n_bulk_aborts`` + the ``maintenance_bulk_aborts`` counter), and the
    exception propagates.  The failed bulk's partial mutations stay
    invisible until the next cut deliberately folds the live graph.
    """

    def __init__(self, scheduler: MaintenanceScheduler):
        self._scheduler = scheduler

    def __enter__(self):
        self._scheduler.write_lock.acquire()
        self._scheduler.manager.suspend_overlay()
        return self._scheduler

    def __exit__(self, exc_type, exc, tb):
        scheduler = self._scheduler
        try:
            if exc_type is None:
                scheduler.manager.cut(entry=scheduler.fixer.entry)
                scheduler.n_merges += 1
                _MERGES.inc()
                scheduler.policy.on_merge()
            else:
                scheduler.manager.resume_overlay()
                scheduler.n_bulk_aborts += 1
                _BULK_ABORTS.inc()
        finally:
            scheduler.write_lock.release()
        return False  # propagate any exception from the bulk body
