"""repro — reproduction of "Dynamically Detect and Fix Hardness for
Efficient Approximate Nearest Neighbor Search" (NGFix / RFix).

Quickstart::

    from repro import load_dataset, HNSW, NGFixer, FixConfig
    from repro import compute_ground_truth, evaluate_index

    ds = load_dataset("laion-sim")
    base = HNSW(ds.base, ds.metric, M=16, single_layer=True)
    fixer = NGFixer(base, FixConfig(k=10, preprocess="approx"))
    fixer.fit(ds.train_queries)

    gt = compute_ground_truth(ds.base, ds.test_queries, k=10, metric=ds.metric)
    print(evaluate_index(fixer, ds.test_queries, gt, k=10, ef=40))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.distances import Metric, DistanceComputer, pairwise_distances
from repro.datasets import (
    Dataset,
    load_dataset,
    list_datasets,
    dataset_statistics,
    make_cross_modal_dataset,
    make_single_modal_dataset,
    make_drifting_workload,
    DriftingWorkload,
    CrossModalConfig,
    ood_report,
)
from repro.evalx import (
    GroundTruth,
    compute_ground_truth,
    recall_at_k,
    rderr_at_k,
    OperatingPoint,
    evaluate_index,
    sweep,
    qps_at_recall,
    ndc_at_rderr,
)
from repro.graphs import (
    HNSW,
    NSG,
    NSW,
    TauMNG,
    RoarGraph,
    Vamana,
    RobustVamana,
    BruteForceIndex,
    GraphIndex,
    SearchResult,
    greedy_search,
)
from repro.graphs.entry import MultiEntryIndex, MedoidEntry, RandomEntry, CentroidsEntry
from repro.io import save_index, load_index, FrozenIndex
from repro.obs import OBS, TRACES, MetricsRegistry, QueryTrace, TraceLog
from repro.quantization import ProductQuantizer, PQRerankSearcher, IVFFlat
from repro.serving import (
    DeltaOverlay,
    EpochManager,
    EpochPin,
    EpochView,
    GraphEpoch,
    MaintenanceScheduler,
    ServingSearcher,
)
from repro.store import VectorStore
from repro.durability import (
    RecoveryError,
    RecoveryReport,
    SnapshotManager,
    WriteAheadLog,
    read_wal,
    recover,
)
from repro.tuning import (
    BinSetting,
    TunedConfig,
    coerce_tuned_config,
    HardnessPlanner,
    fit_tuned_config,
    fit_landmarks,
    replay_traces,
    suggest_ef_grid,
)
from repro.faults import FAULTS, FaultInjected, FaultPlan
from repro.cluster import ClusterRouter, FrontDoor, merge_stats, merge_topk_batch
from repro.core import (
    escape_hardness,
    EscapeHardnessResult,
    reachability_matrix,
    build_qng,
    qng_connectivity_report,
    ngfix_query,
    rfix_query,
    FixConfig,
    NGFixer,
    IndexMaintainer,
    augment_queries,
    ngfix_plus_query,
    HashTableCache,
    CachedSearcher,
    AdaptiveSearcher,
    WorkloadAdapter,
    explain_query,
    phase_reach_stats,
)

__version__ = "1.0.0"

__all__ = [
    "Metric",
    "DistanceComputer",
    "pairwise_distances",
    "Dataset",
    "load_dataset",
    "list_datasets",
    "dataset_statistics",
    "make_cross_modal_dataset",
    "make_single_modal_dataset",
    "CrossModalConfig",
    "ood_report",
    "GroundTruth",
    "compute_ground_truth",
    "recall_at_k",
    "rderr_at_k",
    "OperatingPoint",
    "evaluate_index",
    "sweep",
    "qps_at_recall",
    "ndc_at_rderr",
    "HNSW",
    "NSG",
    "TauMNG",
    "RoarGraph",
    "Vamana",
    "RobustVamana",
    "NSW",
    "explain_query",
    "save_index",
    "load_index",
    "FrozenIndex",
    "BruteForceIndex",
    "GraphIndex",
    "SearchResult",
    "greedy_search",
    "escape_hardness",
    "EscapeHardnessResult",
    "reachability_matrix",
    "build_qng",
    "qng_connectivity_report",
    "ngfix_query",
    "rfix_query",
    "FixConfig",
    "NGFixer",
    "IndexMaintainer",
    "augment_queries",
    "ngfix_plus_query",
    "HashTableCache",
    "CachedSearcher",
    "AdaptiveSearcher",
    "WorkloadAdapter",
    "phase_reach_stats",
    "MultiEntryIndex",
    "MedoidEntry",
    "RandomEntry",
    "CentroidsEntry",
    "ProductQuantizer",
    "PQRerankSearcher",
    "IVFFlat",
    "make_drifting_workload",
    "DriftingWorkload",
    "VectorStore",
    "OBS",
    "TRACES",
    "MetricsRegistry",
    "QueryTrace",
    "TraceLog",
    "GraphEpoch",
    "DeltaOverlay",
    "EpochView",
    "EpochPin",
    "EpochManager",
    "ServingSearcher",
    "MaintenanceScheduler",
    "WriteAheadLog",
    "read_wal",
    "SnapshotManager",
    "RecoveryReport",
    "RecoveryError",
    "recover",
    "BinSetting",
    "TunedConfig",
    "coerce_tuned_config",
    "HardnessPlanner",
    "fit_tuned_config",
    "fit_landmarks",
    "replay_traces",
    "suggest_ef_grid",
    "FAULTS",
    "FaultPlan",
    "FaultInjected",
    "ClusterRouter",
    "FrontDoor",
    "merge_stats",
    "merge_topk_batch",
    "__version__",
]
