"""Thread-safe metrics primitives with a near-zero disabled fast path.

The serving stack is instrumented unconditionally — every call site keeps
its counter/histogram updates compiled in — so the cost model has to make
the *disabled* path almost free: each instrument method loads one attribute
(``registry.enabled``) and returns, taking no lock and allocating nothing.
Enabled updates take the registry's single shared lock (updates are rare
relative to the numpy work around them: once per search, per engine block,
per repair, per merge).

Three instrument kinds, mirroring the Prometheus data model:

- :class:`Counter` — monotone float/int total (``_total`` suffix on export).
- :class:`Gauge` — a settable level, or (via
  :meth:`MetricsRegistry.gauge_fn`) a callback evaluated at export time so
  liveness/queue-depth/epoch-age style values are always current.
  Re-registering a callback gauge under the same name replaces the callback
  (the newest instance of a serving component wins).
- :class:`Histogram` — bounded fixed buckets (cumulative ``le`` semantics on
  export) plus ``_sum``/``_count``, so quantile-ish questions about hops,
  NDC, pin lifetimes, and merge latency cost O(len(buckets)) memory forever.

Exposition is dual: :meth:`MetricsRegistry.prometheus_text` emits the
Prometheus text format (``# HELP``/``# TYPE`` + samples) and
:meth:`MetricsRegistry.snapshot` returns a JSON-serializable dict.
"""

from __future__ import annotations

import bisect
import json
import math
import threading

# Generic magnitude buckets: hops, NDC, queue depths, occupancies.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                   1000.0, 2500.0, 5000.0, 10000.0)
# Latency buckets in seconds (100us .. 10s).
SECONDS_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "help", "registry", "value")

    def __init__(self, registry: "MetricsRegistry", name: str, help: str):
        self.registry = registry
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n=1) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value += n

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A level that can go up and down; optionally backed by a callback."""

    __slots__ = ("name", "help", "registry", "value", "fn")

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 fn=None):
        self.registry = registry
        self.name = name
        self.help = help
        self.value = 0.0
        self.fn = fn

    def set(self, value) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value = value

    def inc(self, n=1) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value += n

    def dec(self, n=1) -> None:
        self.inc(-n)

    def read(self):
        """Current value; callback gauges are evaluated on read."""
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                return math.nan  # a dead provider must not break exposition
        return self.value

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram (bounded memory, cumulative ``le`` on export)."""

    __slots__ = ("name", "help", "registry", "buckets", "bucket_counts",
                 "sum", "count")

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 buckets=DEFAULT_BUCKETS):
        self.registry = registry
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # One slot per finite bound plus the implicit +Inf overflow slot.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def _reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """Named instruments + dual exposition, togglable at runtime.

    Instruments are memoized by name: fetching ``registry.counter("x")``
    twice returns the same object, and fetching an existing name as a
    different kind raises.  ``reset()`` zeroes every value but keeps the
    instrument objects, so module-level instrument handles stay valid across
    test/benchmark arms.
    """

    def __init__(self, namespace: str = "repro", enabled: bool = False):
        self.namespace = namespace
        self.enabled = enabled
        self._lock = threading.RLock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Zero all values (instrument handles remain valid)."""
        with self._lock:
            for instrument in self._instruments.values():
                instrument._reset()

    # -- instrument factories ----------------------------------------------

    def _get(self, kind, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}")
                return existing
            instrument = kind(self, name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def gauge_fn(self, name: str, fn, help: str = "") -> Gauge:
        """Callback-backed gauge; re-registration swaps in the new callback."""
        gauge = self._get(Gauge, name, help, fn=fn)
        gauge.fn = fn
        return gauge

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    # -- exposition ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable {metric_name: value} view of every instrument."""
        out: dict = {}
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            if isinstance(instrument, Counter):
                out[instrument.name] = instrument.value
            elif isinstance(instrument, Gauge):
                value = instrument.read()
                out[instrument.name] = None if math.isnan(value) else value
            else:
                cumulative, running = [], 0
                for count in instrument.bucket_counts:
                    running += count
                    cumulative.append(running)
                out[instrument.name] = {
                    "buckets": {
                        **{_fmt(b): c for b, c in
                           zip(instrument.buckets, cumulative)},
                        "+Inf": running,
                    },
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def prometheus_text(self) -> str:
        """Prometheus text exposition format (one scrape's worth)."""
        lines: list[str] = []
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            full = f"{self.namespace}_{instrument.name}"
            help_text = instrument.help or instrument.name.replace("_", " ")
            if isinstance(instrument, Counter):
                lines.append(f"# HELP {full}_total {help_text}")
                lines.append(f"# TYPE {full}_total counter")
                lines.append(f"{full}_total {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# HELP {full} {help_text}")
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {_fmt(instrument.read())}")
            else:
                lines.append(f"# HELP {full} {help_text}")
                lines.append(f"# TYPE {full} histogram")
                running = 0
                for bound, count in zip(instrument.buckets,
                                        instrument.bucket_counts):
                    running += count
                    lines.append(f'{full}_bucket{{le="{_fmt(bound)}"}} {running}')
                running += instrument.bucket_counts[-1]
                lines.append(f'{full}_bucket{{le="+Inf"}} {running}')
                lines.append(f"{full}_sum {_fmt(instrument.sum)}")
                lines.append(f"{full}_count {instrument.count}")
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    """Prometheus sample value: integers without a trailing .0."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)
