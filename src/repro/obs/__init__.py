"""repro.obs — the observability layer: metrics registry + query traces.

One process-wide :data:`OBS` registry (disabled by default — every
instrument call is a single attribute check when off) and one
:data:`TRACES` ring buffer.  The serving stack instruments itself against
these module-level singletons; ``repro stats`` and the ``--telemetry`` CLI
flag flip them on and expose Prometheus text / JSON snapshots.

Typical use::

    from repro import obs
    obs.enable()
    ...  # serve traffic
    print(obs.OBS.prometheus_text())
    print(obs.OBS.to_json(indent=2))
    print(obs.TRACES.to_json(n=10))

Metric catalog and trace schema: docs/observability.md.
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import QueryTrace, TraceLog

#: Process-wide registry every built-in instrumentation site reports to.
OBS = MetricsRegistry(namespace="repro", enabled=False)

#: Process-wide ring of recent per-query traces (bounded memory).
TRACES = TraceLog(capacity=256)


def enable() -> MetricsRegistry:
    """Turn on metric collection (and trace recording) process-wide."""
    return OBS.enable()


def disable() -> MetricsRegistry:
    """Turn collection off; the disabled hot path is a single attribute check."""
    return OBS.disable()


def reset() -> None:
    """Zero all metric values and drop retained traces."""
    OBS.reset()
    TRACES.clear()


__all__ = [
    "OBS",
    "TRACES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "TraceLog",
    "DEFAULT_BUCKETS",
    "SECONDS_BUCKETS",
    "enable",
    "disable",
    "reset",
]
