"""Per-query trace records and the bounded ring buffer that keeps them.

A :class:`QueryTrace` is one served query's worth of observability: how the
search behaved (hops, NDC, peak frontier), which serving state it saw (epoch
id, overlay sequence number, pin lifetime), and how the caches treated it.
Traces are recorded only while the owning registry is enabled, into a
fixed-capacity ring (:class:`TraceLog`) — memory is bounded no matter how
long the process serves.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import deque


@dataclasses.dataclass(slots=True)
class QueryTrace:
    """One served query's execution record (see docs/observability.md)."""

    k: int = 0
    ef: int = 0
    n_hops: int = 0
    ndc: int = 0
    frontier_peak: int = 0
    epoch_id: int = -1
    overlay_seq: int = -1
    pin_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    cache_hit: bool = False
    batched: bool = False
    queue_depth: int = 0
    degraded: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class TraceLog:
    """Bounded ring of the most recent :class:`QueryTrace` records."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buffer: deque[QueryTrace] = deque(maxlen=capacity)
        self.n_recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def record(self, trace: QueryTrace) -> None:
        with self._lock:
            self._buffer.append(trace)
            self.n_recorded += 1

    def recent(self, n: int | None = None) -> list[QueryTrace]:
        """The newest ``n`` traces (all retained ones when ``n`` is None)."""
        with self._lock:
            traces = list(self._buffer)
        return traces if n is None else traces[-n:]

    def to_json(self, n: int | None = None, indent: int | None = None) -> str:
        return json.dumps([t.to_dict() for t in self.recent(n)], indent=indent)

    def clear(self) -> None:
        """Drop the retained traces; ``n_recorded`` stays monotonic.

        Rate/baseline consumers (:class:`repro.control.NavigabilitySignals`,
        scrape deltas) difference ``n_recorded`` across reads — resetting it
        here would make those deltas go negative.
        """
        with self._lock:
            self._buffer.clear()
