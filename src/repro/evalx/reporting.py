"""Plain-text table formatting for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures report;
this keeps the output dependency-free and diff-able into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def format_percentiles(percentiles: dict, prefix: str = "recall") -> str:
    """One-line ``recall p50=0.98 p95=0.95 p99=0.90`` summary string."""
    parts = " ".join(f"{name}={_fmt(float(value))}"
                     for name, value in percentiles.items())
    return f"{prefix} {parts}" if parts else prefix


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
