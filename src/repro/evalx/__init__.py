"""Evaluation substrate: ground truth, accuracy metrics, and sweep harness.

Named ``evalx`` (not ``eval``) to avoid shadowing the Python builtin.

Provides the paper's four evaluation quantities: recall@k and rderr@k for
accuracy, QPS and NDC (number of distance calculations) for efficiency, plus
the ef-sweep machinery that produces the recall–QPS / rderr–NDC curves in
every figure of Section 6.
"""

from repro.evalx.ground_truth import GroundTruth, compute_ground_truth
from repro.evalx.metrics import (
    recall_at_k,
    recall_per_query,
    recall_percentiles,
    rderr_at_k,
)
from repro.evalx.runner import (
    ChurnReport,
    OperatingPoint,
    StormReport,
    delete_storm_workload,
    evaluate_index,
    interleaved_workload,
    sweep,
    qps_at_recall,
    ndc_at_rderr,
    ndc_at_recall,
    ef_for_recall,
)
from repro.evalx.reporting import format_percentiles, format_table
from repro.evalx.significance import bootstrap_ci, paired_bootstrap_diff
from repro.evalx.tuning import TuningResult, tune_fix_config

__all__ = [
    "GroundTruth",
    "compute_ground_truth",
    "recall_at_k",
    "rderr_at_k",
    "recall_per_query",
    "recall_percentiles",
    "OperatingPoint",
    "ChurnReport",
    "StormReport",
    "delete_storm_workload",
    "evaluate_index",
    "interleaved_workload",
    "sweep",
    "qps_at_recall",
    "ndc_at_rderr",
    "ndc_at_recall",
    "ef_for_recall",
    "format_percentiles",
    "format_table",
    "bootstrap_ci",
    "paired_bootstrap_diff",
    "TuningResult",
    "tune_fix_config",
]
