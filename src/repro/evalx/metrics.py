"""Accuracy metrics: recall@k and relative distance error (Sec. 2).

For a query q:

- ``recall@k``  = |found ∩ exact top-k| / k
- ``rderr@k``   = mean over ranks i of (d(found_i, q) - d(nn_i, q)) / d(nn_i, q)

rderr uses the library's comparison distances.  For inner-product metrics the
paper's definition divides by the exact distance; distances can be negative
there, so the denominator uses |d| with a floor to stay well-defined — the
*ordering* of rderr values across indexes (which is what the NDC–rderr curves
compare) is unaffected.
"""

from __future__ import annotations

import numpy as np

_DENOM_FLOOR = 1e-9


def recall_per_query(found_ids: np.ndarray, gt_ids: np.ndarray) -> np.ndarray:
    """recall@k for each query; shapes ``(nq, >=k)`` found vs ``(nq, k)`` exact."""
    found_ids = np.asarray(found_ids)
    gt_ids = np.asarray(gt_ids)
    if found_ids.ndim != 2 or gt_ids.ndim != 2:
        raise ValueError("found_ids and gt_ids must be 2-D (one row per query)")
    if found_ids.shape[0] != gt_ids.shape[0]:
        raise ValueError("query count mismatch between found and ground truth")
    k = gt_ids.shape[1]
    out = np.empty(gt_ids.shape[0], dtype=np.float64)
    for i in range(gt_ids.shape[0]):
        out[i] = len(set(found_ids[i, :k].tolist()) & set(gt_ids[i].tolist())) / k
    return out


def recall_at_k(found_ids: np.ndarray, gt_ids: np.ndarray) -> float:
    """Mean recall@k over all queries."""
    return float(recall_per_query(found_ids, gt_ids).mean())


def recall_percentiles(per_query: np.ndarray,
                       percentiles=(50, 95, 99)) -> dict[str, float]:
    """Tail percentiles of a per-query recall array.

    Recall is a higher-is-better metric, so "p99 recall" follows the
    latency convention on the *lower* tail: the value R such that 99% of
    queries achieve recall >= R (i.e. ``np.percentile(values, 100 - p)``).
    A mean that hides a collapsed tail — the failure mode of churn under
    fixed-cadence maintenance — shows up here as p99 falling away from p50.
    Returns ``{"p50": ..., "p95": ..., "p99": ...}``; empty input yields
    zeros.
    """
    values = np.asarray(per_query, dtype=np.float64).ravel()
    if values.size == 0:
        return {f"p{p:g}": 0.0 for p in percentiles}
    return {f"p{p:g}": float(np.percentile(values, 100.0 - p))
            for p in percentiles}


def rderr_per_query(found_distances: np.ndarray, gt_distances: np.ndarray) -> np.ndarray:
    """rderr@k for each query from aligned found/exact distance rows."""
    found = np.asarray(found_distances, dtype=np.float64)
    exact = np.asarray(gt_distances, dtype=np.float64)
    if found.shape[0] != exact.shape[0]:
        raise ValueError("query count mismatch between found and ground truth")
    k = exact.shape[1]
    if found.shape[1] < k:
        raise ValueError(f"found distances provide {found.shape[1]} < k={k} columns")
    found = np.sort(found[:, :k], axis=1)
    exact = np.sort(exact, axis=1)
    denom = np.maximum(np.abs(exact), _DENOM_FLOOR)
    err = (found - exact) / denom
    return np.maximum(err, 0.0).mean(axis=1)


def rderr_at_k(found_distances: np.ndarray, gt_distances: np.ndarray) -> float:
    """Mean rderr@k over all queries."""
    return float(rderr_per_query(found_distances, gt_distances).mean())
