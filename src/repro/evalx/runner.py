"""Sweep harness producing the paper's recall–QPS and rderr–NDC curves.

An index under evaluation must provide ``search(query, k, ef)`` returning an
object with ``ids``/``distances`` arrays, and expose its
:class:`~repro.distances.DistanceComputer` as ``dc`` so distance calculations
can be counted (all indexes in :mod:`repro.graphs` satisfy this).

The paper's protocol (Sec. 6.1) is followed: sweep the search list size ef
upward from k, record (recall, rderr, QPS, NDC) at each setting, then read
off QPS at fixed recall / NDC at fixed rderr by interpolation.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.evalx.ground_truth import GroundTruth
from repro.evalx.metrics import recall_per_query, recall_percentiles, rderr_per_query
from repro.obs import OBS
from repro.utils.parallel import chunk_bounds, effective_workers, parallel_map
from repro.utils.validation import check_positive

# Aggregate accounting flows through the registry (recorded once per run, in
# the master process, so the fork-pool NDC-delta bookkeeping is unaffected).
_EVAL_QUERIES = OBS.counter(
    "eval_queries", "queries evaluated by evaluate_index")
_EVAL_NDC = OBS.counter(
    "eval_ndc", "distance computations accounted by evaluate_index")
_EVAL_SECONDS = OBS.histogram(
    "eval_run_seconds", "wall-clock seconds of one evaluate_index call",
    buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
             60.0))
_EVAL_RECALL = OBS.gauge("eval_last_recall", "recall of the last evaluation")
_EVAL_QPS = OBS.gauge("eval_last_qps", "QPS of the last evaluation")
_CHURN_SEARCH_SECONDS = OBS.counter(
    "churn_search_seconds", "search wall-clock inside interleaved workloads")
_CHURN_MUTATION_SECONDS = OBS.counter(
    "churn_mutation_seconds",
    "mutation wall-clock inside interleaved workloads")
_CHURN_MUTATIONS = OBS.counter(
    "churn_mutations", "inserts + deletes applied by interleaved workloads")


@dataclasses.dataclass
class OperatingPoint:
    """One point on an index's trade-off curve (one ef setting).

    ``ndc_per_query`` counts full-precision distance computations; on a
    compressed (PQ) searcher it collapses to the exact re-rank budget while
    ``adc_per_query`` carries the cheap table-lookup scorings (0.0 for
    uncompressed indexes).  ``ef=None`` marks a planned run: the index
    chose per-query settings itself (hardness-aware planner / defaults).
    """

    ef: int | None
    recall: float
    rderr: float
    qps: float
    ndc_per_query: float
    elapsed_s: float
    adc_per_query: float = 0.0


def evaluate_index(
    index,
    queries: np.ndarray,
    gt: GroundTruth,
    k: int,
    ef: int | None,
    batch_size: int = 1,
    n_workers: int = 1,
) -> OperatingPoint:
    """Run every query at one ef setting and aggregate metrics.

    ``batch_size > 1`` routes queries through the index's batch engine
    (``search_batch``); ``n_workers > 1`` additionally spreads query chunks
    over a fork pool (each worker reads the same frozen graph).  Recall,
    rderr, and NDC are identical on every path — only wall-clock QPS
    changes.

    ``ef=None`` lets the index pick its own setting per query — on a
    store with a tuned config attached that is the hardness-aware planner
    (per-bin ef/route), otherwise the index default.
    """
    check_positive(k, "k")
    check_positive(batch_size, "batch_size")
    if ef is not None and ef < k:
        raise ValueError(f"ef={ef} must be >= k={k}")
    queries = np.asarray(queries, dtype=np.float32)
    if queries.shape[0] != gt.n_queries:
        raise ValueError("query count differs from ground truth")
    gt_k = gt.top(k)
    n_queries = queries.shape[0]

    found_ids = np.empty((n_queries, k), dtype=np.int64)
    found_d = np.empty((n_queries, k), dtype=np.float64)

    def run_chunk(bounds: tuple[int, int]):
        start, stop = bounds
        c_ids = np.empty((stop - start, k), dtype=np.int64)
        c_d = np.empty((stop - start, k), dtype=np.float64)
        ndc0 = index.dc.ndc
        adc0 = getattr(index, "adc_scored", 0)
        if batch_size > 1:
            results = index.search_batch(queries[start:stop], k, ef,
                                         batch_size=batch_size)
        else:
            results = (index.search(query, k=k, ef=ef)
                       for query in queries[start:stop])
        for i, result in enumerate(results):
            m = min(k, len(result.ids))
            c_ids[i, :m] = result.ids[:m]
            c_d[i, :m] = result.distances[:m]
            if m < k:  # pad short results with sentinel misses
                c_ids[i, m:] = -1
                c_d[i, m:] = np.inf
        ndc_delta = index.dc.ndc - ndc0
        index.dc.ndc = ndc0
        adc_delta = getattr(index, "adc_scored", 0) - adc0
        if adc_delta:
            index.adc_scored = adc0
        return c_ids, c_d, ndc_delta, adc_delta

    workers = effective_workers(n_workers)
    if workers > 1:
        bounds = chunk_bounds(n_queries, max(1, -(-n_queries // (4 * workers))))
    else:
        bounds = [(0, n_queries)]
    index.dc.reset_ndc()
    start = time.perf_counter()
    chunks = parallel_map(run_chunk, bounds, n_workers=n_workers)
    elapsed = time.perf_counter() - start
    ndc = 0
    adc = 0
    for (c_start, c_stop), (c_ids, c_d, ndc_delta, adc_delta) in zip(
            bounds, chunks):
        found_ids[c_start:c_stop] = c_ids
        found_d[c_start:c_stop] = c_d
        ndc += ndc_delta
        adc += adc_delta

    recall = float(recall_per_query(found_ids, gt_k.ids).mean())
    finite = np.isfinite(found_d).all(axis=1)
    if finite.any():
        rderr = float(rderr_per_query(found_d[finite], gt_k.distances[finite]).mean())
    else:
        rderr = float("inf")
    qps = queries.shape[0] / max(elapsed, 1e-9)
    if OBS.enabled:
        _EVAL_QUERIES.inc(n_queries)
        _EVAL_NDC.inc(int(ndc))
        _EVAL_SECONDS.observe(elapsed)
        _EVAL_RECALL.set(recall)
        _EVAL_QPS.set(qps)
    return OperatingPoint(
        ef=ef,
        recall=recall,
        rderr=rderr,
        qps=qps,
        ndc_per_query=ndc / queries.shape[0],
        elapsed_s=elapsed,
        adc_per_query=adc / queries.shape[0],
    )


def sweep(
    index,
    queries: np.ndarray,
    gt: GroundTruth,
    k: int,
    ef_values: list[int] | None = None,
    stop_at_recall: float = 0.999,
    batch_size: int = 1,
    n_workers: int = 1,
) -> list[OperatingPoint]:
    """Evaluate an increasing ef schedule, stopping once recall saturates.

    Default schedule mirrors the paper: start at ef=k and step upward; we use
    multiplicative steps to cover the curve with fewer points at small scale.
    """
    if ef_values is None:
        ef_values, ef = [], k
        while ef <= 64 * k:
            ef_values.append(ef)
            ef = max(ef + 10, int(ef * 1.5))
    points = []
    for ef in ef_values:
        point = evaluate_index(index, queries, gt, k, ef,
                               batch_size=batch_size, n_workers=n_workers)
        points.append(point)
        if point.recall >= stop_at_recall:
            break
    return points


def _interp(points: list[OperatingPoint], x_attr: str, y_attr: str,
            target: float, increasing: bool) -> float | None:
    """Linear interpolation of y at x=target along a curve; None if unreached."""
    pairs = sorted(
        ((getattr(p, x_attr), getattr(p, y_attr)) for p in points),
        key=lambda t: t[0],
    )
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    if increasing:
        reached = [i for i, x in enumerate(xs) if x >= target]
    else:
        reached = [i for i, x in enumerate(xs) if x <= target]
    if not reached:
        return None
    j = reached[0] if increasing else reached[-1]
    if xs[j] == target or (increasing and j == 0) or (not increasing and j == len(xs) - 1):
        return ys[j]
    i = j - 1 if increasing else j + 1
    x0, x1, y0, y1 = xs[i], xs[j], ys[i], ys[j]
    if x1 == x0:
        return y1
    frac = (target - x0) / (x1 - x0)
    return y0 + frac * (y1 - y0)


def qps_at_recall(points: list[OperatingPoint], target_recall: float) -> float | None:
    """QPS the curve achieves at the target recall (None if never reached)."""
    return _interp(points, "recall", "qps", target_recall, increasing=True)


def ndc_at_rderr(points: list[OperatingPoint], target_rderr: float) -> float | None:
    """NDC/query needed to push rderr down to the target (None if never)."""
    return _interp(points, "rderr", "ndc_per_query", target_rderr, increasing=False)


def ndc_at_recall(points: list[OperatingPoint], target_recall: float) -> float | None:
    """NDC/query needed to reach the target recall (None if never)."""
    return _interp(points, "recall", "ndc_per_query", target_recall, increasing=True)


def ef_for_recall(points: list[OperatingPoint], target_recall: float) -> int | None:
    """Smallest swept ef whose recall meets the target (None if never)."""
    for point in sorted(points, key=lambda p: p.ef):
        if point.recall >= target_recall:
            return point.ef
    return None


def _maintenance_seconds(scheduler) -> float:
    """Cumulative repair+merge wall-clock a scheduler has spent (0 sans one)."""
    if scheduler is None:
        return 0.0
    return (getattr(scheduler, "repair_seconds", 0.0)
            + getattr(scheduler, "merge_seconds", 0.0))


@dataclasses.dataclass
class ChurnReport:
    """Outcome of one interleaved search/mutation (churn) run.

    ``qps`` counts *search time only* (the sum of per-batch search
    wall-clock), so it isolates the serving path's cost under churn from the
    unrelated cost of the mutations themselves; ``mutation_seconds`` records
    the latter.  ``query_path_freezes`` is the number of O(E) CSR rebuilds
    that ran on the query path: total freezes minus those attributable to
    epoch cuts — the serving layer's contract is that this is zero.

    ``recall_p50``/``recall_p95``/``recall_p99`` are lower-tail percentiles
    (the recall 50/95/99% of queries meet or beat — see
    :func:`~repro.evalx.metrics.recall_percentiles`); churn damage that a
    mean hides shows up as ``recall_p99`` collapsing.
    ``maintenance_seconds`` is the scheduler's cumulative repair + merge
    wall-clock attributable to this run — the cost a maintenance policy is
    judged on.
    """

    n_queries: int
    n_inserts: int
    n_deletes: int
    n_observed: int
    recall: float
    qps: float
    search_seconds: float
    mutation_seconds: float
    merges: int
    repairs: int
    query_path_freezes: int
    recall_p50: float = 0.0
    recall_p95: float = 0.0
    recall_p99: float = 0.0
    maintenance_seconds: float = 0.0


def interleaved_workload(
    store,
    queries: np.ndarray,
    gt: GroundTruth,
    k: int,
    ef: int,
    batch_size: int = 32,
    mutation_fraction: float = 0.1,
    churn_ids: list[int] | None = None,
    observe_every: int = 0,
    seed: int = 0,
    vectors: np.ndarray | None = None,
) -> ChurnReport:
    """Serve queries while continuously mutating the index (churn protocol).

    ``store`` is a :class:`~repro.store.VectorStore`-like object
    (``search_batch``/``add``/``delete``/``observe``/``dc``, plus
    ``scheduler``/``epochs`` when serving is enabled).  Queries run in
    batches; between batches, delete/re-insert pairs are applied so that
    mutations make up ``mutation_fraction`` of all operations (the paper-era
    serving mix — 0.1 reproduces a 90% search / 10% mutation workload).

    Churn is *recall-neutral by construction*: only ids outside every
    query's ground-truth top-k (``churn_ids``; derived automatically when
    omitted) are deleted, and each deletion is later compensated by
    re-inserting the same vector under a fresh id — so measured recall under
    churn is directly comparable to the read-only recall at the same ``ef``,
    and any gap is graph damage the serving/repair layers failed to contain.

    ``observe_every > 0`` additionally feeds every Nth query batch's first
    query to ``store.observe`` (online NGFix/RFix repair).

    ``vectors`` supplies the base matrix indexed by id for delete/re-insert
    pairs; when omitted the store's own ``dc.data`` is read.  Pass it for
    stores that do not expose resident vectors — e.g. a
    :class:`~repro.cluster.router.ClusterRouter`, whose vectors live in the
    shard worker processes.
    """
    check_positive(k, "k")
    check_positive(batch_size, "batch_size")
    queries = np.asarray(queries, dtype=np.float32)
    gt_k = gt.top(k)
    rng = np.random.default_rng(seed)

    def vector_of(vid: int) -> np.ndarray:
        if vectors is not None:
            return np.array(vectors[vid], copy=True)
        return np.array(store.dc.data[vid], copy=True)

    if churn_ids is None:
        protected = set(np.unique(gt_k.ids).tolist())
        churn_ids = [i for i in range(store.dc.size) if i not in protected]
    churn_ids = list(churn_ids)
    rng.shuffle(churn_ids)
    if not churn_ids:
        raise ValueError("no churn-eligible ids (every id is in the gt top-k)")

    # Each batch of B searches owes B * f / (1 - f) mutation ops; the
    # fractional remainder carries over so the long-run ratio is exact.
    ops_per_batch = batch_size * mutation_fraction / (1.0 - mutation_fraction)

    found_ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
    pending_reinserts: list[tuple[int, np.ndarray]] = []
    churn_cursor = 0
    owed = 0.0
    search_s = 0.0
    mutation_s = 0.0
    n_inserts = n_deletes = n_observed = 0

    fixer = getattr(store, "_fixer", None)
    adjacency = fixer.adjacency if fixer is not None else None
    freezes0 = getattr(adjacency, "n_freezes", 0)
    manager = getattr(store, "epochs", None)
    cuts0 = manager.n_cuts if manager is not None else 0
    scheduler = getattr(store, "scheduler", None)
    merges0 = scheduler.n_merges if scheduler is not None else 0
    repairs0 = scheduler.n_repairs if scheduler is not None else 0
    maint0 = _maintenance_seconds(scheduler)

    n_batches = 0
    for start in range(0, queries.shape[0], batch_size):
        block = queries[start:start + batch_size]
        t0 = time.perf_counter()
        results = store.search_batch(block, k, ef, batch_size=batch_size)
        search_s += time.perf_counter() - t0
        for i, result in enumerate(results):
            m = min(k, len(result.ids))
            found_ids[start + i, :m] = result.ids[:m]

        t0 = time.perf_counter()
        owed += ops_per_batch
        while owed >= 1.0:
            owed -= 1.0
            if pending_reinserts and (churn_cursor >= len(churn_ids)
                                      or rng.random() < 0.5):
                _, vector = pending_reinserts.pop(0)
                store.add(vector[None, :])
                n_inserts += 1
            elif churn_cursor < len(churn_ids):
                victim = churn_ids[churn_cursor]
                churn_cursor += 1
                pending_reinserts.append((victim, vector_of(victim)))
                store.delete([victim])
                n_deletes += 1
        n_batches += 1
        if observe_every and n_batches % observe_every == 0:
            store.observe(block[0])
            n_observed += 1
        mutation_s += time.perf_counter() - t0

    per_query = recall_per_query(found_ids, gt_k.ids)
    pct = recall_percentiles(per_query)
    recall = float(per_query.mean())
    freezes = getattr(adjacency, "n_freezes", 0) - freezes0
    cuts = (manager.n_cuts - cuts0) if manager is not None else 0
    if OBS.enabled:
        _CHURN_SEARCH_SECONDS.inc(search_s)
        _CHURN_MUTATION_SECONDS.inc(mutation_s)
        _CHURN_MUTATIONS.inc(n_inserts + n_deletes)
    return ChurnReport(
        n_queries=queries.shape[0],
        n_inserts=n_inserts,
        n_deletes=n_deletes,
        n_observed=n_observed,
        recall=recall,
        qps=queries.shape[0] / max(search_s, 1e-9),
        search_seconds=search_s,
        mutation_seconds=mutation_s,
        merges=(scheduler.n_merges - merges0) if scheduler is not None else 0,
        repairs=(scheduler.n_repairs - repairs0) if scheduler is not None else 0,
        query_path_freezes=freezes - cuts,
        recall_p50=pct["p50"],
        recall_p95=pct["p95"],
        recall_p99=pct["p99"],
        maintenance_seconds=_maintenance_seconds(scheduler) - maint0,
    )


@dataclasses.dataclass
class StormReport:
    """Outcome of one bursty delete-storm run (the adversarial churn
    protocol).

    Same accounting conventions as :class:`ChurnReport` — ``qps`` over
    search seconds only, recall percentiles on the lower tail,
    ``maintenance_seconds`` = the scheduler's repair + merge wall-clock —
    plus storm bookkeeping.  ``n_queries`` counts query *executions*
    (each round re-serves the query set; recurring traffic is what makes
    post-storm repair pay off, and what the p99 gate measures).
    """

    n_queries: int
    n_storms: int
    n_deletes: int
    n_reinserts: int
    n_observed: int
    recall: float
    recall_p50: float
    recall_p95: float
    recall_p99: float
    qps: float
    search_seconds: float
    mutation_seconds: float
    maintenance_seconds: float
    repairs: int
    merges: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def delete_storm_workload(
    store,
    queries: np.ndarray,
    gt: GroundTruth,
    k: int,
    ef: int,
    *,
    batch_size: int = 16,
    rounds: int = 3,
    storm_every: int = 12,
    storm_size: int = 24,
    calm_mutations: int = 2,
    observe_every: int = 1,
    seed: int = 0,
    vectors: np.ndarray | None = None,
) -> StormReport:
    """Serve queries under bursty delete storms (tail-recall stressor).

    The steady-state churn of :func:`interleaved_workload` spreads
    mutations evenly; this protocol is adversarial instead: every
    ``storm_every``-th query batch deletes ``storm_size`` ids in one call
    (tombstones pile up and compaction rewires edges store-wide), while
    calm batches trickle ``calm_mutations`` re-inserts of previously
    deleted vectors so the corpus size recovers between storms.  The query
    set is served ``rounds`` times so post-storm traffic revisits the
    damaged regions — exactly the traffic a signal-driven policy repairs
    for.

    Like the steady-state protocol, storms are *recall-neutral by
    construction* (only ids outside every query's ground-truth top-k are
    deleted), so any recall drop — and in particular the p99 tail this
    harness gates on — is navigability damage, not missing answers.

    ``observe_every > 0`` offers every Nth batch's first query to
    ``store.observe``: the repair feedback stream a cadence policy repairs
    unconditionally and a signal policy admits selectively.

    Determinism: storms fire on batch counts, deletions follow a seeded
    shuffle, and the policy's storm detector counts operations — the run
    is reproducible wall-clock-free.
    """
    check_positive(k, "k")
    check_positive(batch_size, "batch_size")
    check_positive(rounds, "rounds")
    check_positive(storm_every, "storm_every")
    check_positive(storm_size, "storm_size")
    queries = np.asarray(queries, dtype=np.float32)
    gt_k = gt.top(k)
    rng = np.random.default_rng(seed)

    def vector_of(vid: int) -> np.ndarray:
        if vectors is not None:
            return np.array(vectors[vid], copy=True)
        return np.array(store.dc.data[vid], copy=True)

    protected = set(np.unique(gt_k.ids).tolist())
    churn_ids = [i for i in range(store.dc.size) if i not in protected]
    rng.shuffle(churn_ids)
    if len(churn_ids) < storm_size:
        raise ValueError(
            f"only {len(churn_ids)} churn-eligible ids for storms of "
            f"{storm_size}; grow the corpus or shrink storm_size")

    scheduler = getattr(store, "scheduler", None)
    merges0 = scheduler.n_merges if scheduler is not None else 0
    repairs0 = scheduler.n_repairs if scheduler is not None else 0
    maint0 = _maintenance_seconds(scheduler)

    n_q = queries.shape[0]
    found_ids = np.full((rounds * n_q, k), -1, dtype=np.int64)
    pending_reinserts: list[tuple[int, np.ndarray]] = []
    churn_cursor = 0
    search_s = 0.0
    mutation_s = 0.0
    n_storms = n_deletes = n_reinserts = n_observed = 0
    n_batches = 0

    for r in range(rounds):
        for start in range(0, n_q, batch_size):
            block = queries[start:start + batch_size]
            t0 = time.perf_counter()
            results = store.search_batch(block, k, ef, batch_size=batch_size)
            search_s += time.perf_counter() - t0
            row0 = r * n_q + start
            for i, result in enumerate(results):
                m = min(k, len(result.ids))
                found_ids[row0 + i, :m] = result.ids[:m]

            n_batches += 1
            t0 = time.perf_counter()
            if n_batches % storm_every == 0:
                # The storm: one burst delete call, tombstones land at once.
                take = min(storm_size, len(churn_ids) - churn_cursor)
                if take > 0:
                    victims = churn_ids[churn_cursor:churn_cursor + take]
                    churn_cursor += take
                    pending_reinserts.extend(
                        (v, vector_of(v)) for v in victims)
                    store.delete(victims)
                    n_deletes += take
                    n_storms += 1
            else:
                for _ in range(calm_mutations):
                    if not pending_reinserts:
                        break
                    _, vector = pending_reinserts.pop(0)
                    store.add(vector[None, :])
                    n_reinserts += 1
            if observe_every and n_batches % observe_every == 0:
                store.observe(block[0])
                n_observed += 1
            mutation_s += time.perf_counter() - t0

    gt_tiled = np.tile(gt_k.ids, (rounds, 1))
    per_query = recall_per_query(found_ids, gt_tiled)
    pct = recall_percentiles(per_query)
    if OBS.enabled:
        _CHURN_SEARCH_SECONDS.inc(search_s)
        _CHURN_MUTATION_SECONDS.inc(mutation_s)
        _CHURN_MUTATIONS.inc(n_deletes + n_reinserts)
    return StormReport(
        n_queries=rounds * n_q,
        n_storms=n_storms,
        n_deletes=n_deletes,
        n_reinserts=n_reinserts,
        n_observed=n_observed,
        recall=float(per_query.mean()),
        recall_p50=pct["p50"],
        recall_p95=pct["p95"],
        recall_p99=pct["p99"],
        qps=rounds * n_q / max(search_s, 1e-9),
        search_seconds=search_s,
        mutation_seconds=mutation_s,
        maintenance_seconds=_maintenance_seconds(scheduler) - maint0,
        repairs=(scheduler.n_repairs - repairs0
                 if scheduler is not None else 0),
        merges=(scheduler.n_merges - merges0
                if scheduler is not None else 0),
    )
