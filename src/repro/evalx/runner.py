"""Sweep harness producing the paper's recall–QPS and rderr–NDC curves.

An index under evaluation must provide ``search(query, k, ef)`` returning an
object with ``ids``/``distances`` arrays, and expose its
:class:`~repro.distances.DistanceComputer` as ``dc`` so distance calculations
can be counted (all indexes in :mod:`repro.graphs` satisfy this).

The paper's protocol (Sec. 6.1) is followed: sweep the search list size ef
upward from k, record (recall, rderr, QPS, NDC) at each setting, then read
off QPS at fixed recall / NDC at fixed rderr by interpolation.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.evalx.ground_truth import GroundTruth
from repro.evalx.metrics import recall_per_query, rderr_per_query
from repro.utils.parallel import chunk_bounds, effective_workers, parallel_map
from repro.utils.validation import check_positive


@dataclasses.dataclass
class OperatingPoint:
    """One point on an index's trade-off curve (one ef setting)."""

    ef: int
    recall: float
    rderr: float
    qps: float
    ndc_per_query: float
    elapsed_s: float


def evaluate_index(
    index,
    queries: np.ndarray,
    gt: GroundTruth,
    k: int,
    ef: int,
    batch_size: int = 1,
    n_workers: int = 1,
) -> OperatingPoint:
    """Run every query at one ef setting and aggregate metrics.

    ``batch_size > 1`` routes queries through the index's batch engine
    (``search_batch``); ``n_workers > 1`` additionally spreads query chunks
    over a fork pool (each worker reads the same frozen graph).  Recall,
    rderr, and NDC are identical on every path — only wall-clock QPS
    changes.
    """
    check_positive(k, "k")
    check_positive(batch_size, "batch_size")
    if ef < k:
        raise ValueError(f"ef={ef} must be >= k={k}")
    queries = np.asarray(queries, dtype=np.float32)
    if queries.shape[0] != gt.n_queries:
        raise ValueError("query count differs from ground truth")
    gt_k = gt.top(k)
    n_queries = queries.shape[0]

    found_ids = np.empty((n_queries, k), dtype=np.int64)
    found_d = np.empty((n_queries, k), dtype=np.float64)

    def run_chunk(bounds: tuple[int, int]):
        start, stop = bounds
        c_ids = np.empty((stop - start, k), dtype=np.int64)
        c_d = np.empty((stop - start, k), dtype=np.float64)
        ndc0 = index.dc.ndc
        if batch_size > 1:
            results = index.search_batch(queries[start:stop], k, ef,
                                         batch_size=batch_size)
        else:
            results = (index.search(query, k=k, ef=ef)
                       for query in queries[start:stop])
        for i, result in enumerate(results):
            m = min(k, len(result.ids))
            c_ids[i, :m] = result.ids[:m]
            c_d[i, :m] = result.distances[:m]
            if m < k:  # pad short results with sentinel misses
                c_ids[i, m:] = -1
                c_d[i, m:] = np.inf
        ndc_delta = index.dc.ndc - ndc0
        index.dc.ndc = ndc0
        return c_ids, c_d, ndc_delta

    workers = effective_workers(n_workers)
    if workers > 1:
        bounds = chunk_bounds(n_queries, max(1, -(-n_queries // (4 * workers))))
    else:
        bounds = [(0, n_queries)]
    index.dc.reset_ndc()
    start = time.perf_counter()
    chunks = parallel_map(run_chunk, bounds, n_workers=n_workers)
    elapsed = time.perf_counter() - start
    ndc = 0
    for (c_start, c_stop), (c_ids, c_d, ndc_delta) in zip(bounds, chunks):
        found_ids[c_start:c_stop] = c_ids
        found_d[c_start:c_stop] = c_d
        ndc += ndc_delta

    recall = float(recall_per_query(found_ids, gt_k.ids).mean())
    finite = np.isfinite(found_d).all(axis=1)
    if finite.any():
        rderr = float(rderr_per_query(found_d[finite], gt_k.distances[finite]).mean())
    else:
        rderr = float("inf")
    return OperatingPoint(
        ef=ef,
        recall=recall,
        rderr=rderr,
        qps=queries.shape[0] / max(elapsed, 1e-9),
        ndc_per_query=ndc / queries.shape[0],
        elapsed_s=elapsed,
    )


def sweep(
    index,
    queries: np.ndarray,
    gt: GroundTruth,
    k: int,
    ef_values: list[int] | None = None,
    stop_at_recall: float = 0.999,
    batch_size: int = 1,
    n_workers: int = 1,
) -> list[OperatingPoint]:
    """Evaluate an increasing ef schedule, stopping once recall saturates.

    Default schedule mirrors the paper: start at ef=k and step upward; we use
    multiplicative steps to cover the curve with fewer points at small scale.
    """
    if ef_values is None:
        ef_values, ef = [], k
        while ef <= 64 * k:
            ef_values.append(ef)
            ef = max(ef + 10, int(ef * 1.5))
    points = []
    for ef in ef_values:
        point = evaluate_index(index, queries, gt, k, ef,
                               batch_size=batch_size, n_workers=n_workers)
        points.append(point)
        if point.recall >= stop_at_recall:
            break
    return points


def _interp(points: list[OperatingPoint], x_attr: str, y_attr: str,
            target: float, increasing: bool) -> float | None:
    """Linear interpolation of y at x=target along a curve; None if unreached."""
    pairs = sorted(
        ((getattr(p, x_attr), getattr(p, y_attr)) for p in points),
        key=lambda t: t[0],
    )
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    if increasing:
        reached = [i for i, x in enumerate(xs) if x >= target]
    else:
        reached = [i for i, x in enumerate(xs) if x <= target]
    if not reached:
        return None
    j = reached[0] if increasing else reached[-1]
    if xs[j] == target or (increasing and j == 0) or (not increasing and j == len(xs) - 1):
        return ys[j]
    i = j - 1 if increasing else j + 1
    x0, x1, y0, y1 = xs[i], xs[j], ys[i], ys[j]
    if x1 == x0:
        return y1
    frac = (target - x0) / (x1 - x0)
    return y0 + frac * (y1 - y0)


def qps_at_recall(points: list[OperatingPoint], target_recall: float) -> float | None:
    """QPS the curve achieves at the target recall (None if never reached)."""
    return _interp(points, "recall", "qps", target_recall, increasing=True)


def ndc_at_rderr(points: list[OperatingPoint], target_rderr: float) -> float | None:
    """NDC/query needed to push rderr down to the target (None if never)."""
    return _interp(points, "rderr", "ndc_per_query", target_rderr, increasing=False)


def ndc_at_recall(points: list[OperatingPoint], target_recall: float) -> float | None:
    """NDC/query needed to reach the target recall (None if never)."""
    return _interp(points, "recall", "ndc_per_query", target_recall, increasing=True)


def ef_for_recall(points: list[OperatingPoint], target_recall: float) -> int | None:
    """Smallest swept ef whose recall meets the target (None if never)."""
    for point in sorted(points, key=lambda p: p.ef):
        if point.recall >= target_recall:
            return point.ef
    return None
