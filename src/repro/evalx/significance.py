"""Bootstrap confidence intervals for recall comparisons.

Small-scale reproductions live and die by noise: a 1-point recall gap over
150 queries may be luck.  These helpers quantify that — percentile-bootstrap
CIs for a mean per-query metric, and a paired bootstrap test for the
difference between two indexes evaluated on the same queries.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_positive


def bootstrap_ci(values: np.ndarray, confidence: float = 0.95,
                 n_resamples: int = 2000,
                 seed: int | np.random.Generator | None = 0) -> tuple[float, float, float]:
    """(mean, lo, hi) percentile-bootstrap CI of the mean of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    check_positive(n_resamples, "n_resamples")
    rng = ensure_rng(seed)
    idx = rng.integers(0, values.size, size=(n_resamples, values.size))
    means = values[idx].mean(axis=1)
    alpha = (1 - confidence) / 2
    lo, hi = np.quantile(means, [alpha, 1 - alpha])
    return float(values.mean()), float(lo), float(hi)


def paired_bootstrap_diff(
    a: np.ndarray,
    b: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> dict:
    """Paired bootstrap for mean(a) - mean(b) over the same queries.

    Returns the observed difference, its CI, and ``significant`` (CI
    excludes zero).  Pairing by query removes the query-difficulty variance
    that dominates unpaired comparisons.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("a and b must be 1-D arrays of equal length")
    diffs = a - b
    mean, lo, hi = bootstrap_ci(diffs, confidence, n_resamples, seed)
    return {
        "diff": mean,
        "ci_low": lo,
        "ci_high": hi,
        "significant": bool(lo > 0 or hi < 0),
    }
