"""Auto-tuning of NGFix* parameters under an index-size budget.

The paper's Sec. 6.6 guidance condensed into a tool: given a base graph, a
historical query sample, and a validation query set, grid-search the
(extra-degree budget, EH threshold, round schedule) space and return the
configuration that minimizes work-at-recall subject to a cap on extra index
bytes.  Every candidate clones the base graph, so the input index is never
mutated.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from repro.evalx.ground_truth import GroundTruth
from repro.evalx.runner import ndc_at_recall, sweep
from repro.utils.validation import check_positive


@dataclasses.dataclass
class TuningResult:
    """One evaluated configuration."""

    params: dict
    ndc_at_target: float | None
    extra_edges: int
    extra_bytes: int
    feasible: bool


def tune_fix_config(
    base_index,
    train_queries: np.ndarray,
    valid_queries: np.ndarray,
    gt: GroundTruth,
    k: int,
    target_recall: float = 0.95,
    max_extra_bytes: int | None = None,
    degree_grid=(4, 8, 16),
    threshold_grid=(None,),
    rounds_grid=None,
    ef_values=None,
) -> tuple[dict, list[TuningResult]]:
    """Grid-search FixConfig knobs; returns (best params, all results).

    "Best" = lowest NDC at the target recall among configurations whose
    extra-edge footprint fits ``max_extra_bytes`` (unlimited when None).
    Falls back to the feasible configuration with the highest terminal
    recall if none reach the target.
    """
    from repro.core.fixer import FixConfig, NGFixer  # local: avoid cycle

    check_positive(k, "k")
    if rounds_grid is None:
        rounds_grid = ((k,),)
    results: list[TuningResult] = []
    for degree, threshold, rounds in itertools.product(
            degree_grid, threshold_grid, rounds_grid):
        params = dict(k=k, max_extra_degree=degree, eh_threshold=threshold,
                      rounds=tuple(rounds), preprocess="approx")
        fixer = NGFixer(base_index.clone(), FixConfig(**params))
        fixer.fit(train_queries)
        extra_edges = fixer.adjacency.n_extra_edges()
        extra_bytes = 6 * extra_edges  # id + 16-bit EH tag per extra edge
        feasible = max_extra_bytes is None or extra_bytes <= max_extra_bytes
        points = sweep(fixer, valid_queries, gt, k, ef_values)
        ndc = ndc_at_recall(points, target_recall)
        results.append(TuningResult(
            params=params, ndc_at_target=ndc, extra_edges=extra_edges,
            extra_bytes=extra_bytes, feasible=feasible))

    feasible = [r for r in results if r.feasible]
    pool = feasible or results
    reaching = [r for r in pool if r.ndc_at_target is not None]
    if reaching:
        best = min(reaching, key=lambda r: r.ndc_at_target)
    else:
        best = min(pool, key=lambda r: r.extra_bytes)
    return best.params, results
