"""Exact k-NN ground truth via batched brute force.

This is the paper's preprocessing method (1) in Sec. 5.1: accumulate queries
into batches and turn exact-NN computation into matrix multiplication.  It is
used both for evaluation ground truth and (optionally) for NGFix
preprocessing when exact NNs are requested.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.distances import Metric, pairwise_distances
from repro.utils.parallel import chunk_bounds, parallel_map
from repro.utils.validation import check_matrix, check_positive


@dataclasses.dataclass
class GroundTruth:
    """Exact nearest neighbors for a query set.

    ``ids[i, j]`` is the id of query ``i``'s (j+1)-th nearest base vector and
    ``distances[i, j]`` the corresponding distance (metric convention of
    :mod:`repro.distances`: smaller is closer).
    """

    ids: np.ndarray
    distances: np.ndarray
    metric: Metric
    k: int

    def __post_init__(self):
        if self.ids.shape != self.distances.shape:
            raise ValueError("ids and distances shapes differ")
        if self.ids.shape[1] < self.k:
            raise ValueError(f"ground truth holds {self.ids.shape[1]} < k={self.k} columns")

    @property
    def n_queries(self) -> int:
        return self.ids.shape[0]

    def top(self, k: int) -> "GroundTruth":
        """A view truncated to the top ``k`` neighbors."""
        check_positive(k, "k")
        if k > self.ids.shape[1]:
            raise ValueError(f"requested k={k} exceeds stored {self.ids.shape[1]}")
        return GroundTruth(self.ids[:, :k], self.distances[:, :k], self.metric, k)

    def take(self, indices) -> "GroundTruth":
        """A view restricted to the given query rows (for query subsets)."""
        indices = np.asarray(indices)
        return GroundTruth(self.ids[indices], self.distances[indices],
                           self.metric, self.k)


def compute_ground_truth(
    base: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: Metric | str,
    batch_size: int = 512,
    n_workers: int = 1,
) -> GroundTruth:
    """Exact top-``k`` neighbors of each query by batched brute force.

    Batches of ``batch_size`` queries (the paper's example batch size) are
    scored against the full base via one matrix product, then partially
    sorted with ``argpartition`` so cost is O(n + k log k) per query after the
    product.  ``n_workers > 1`` computes the blocks on a fork pool; worker
    chunks are exactly the serial ``batch_size`` blocks, so every GEMM sees
    identical inputs and the result is bit-identical to a serial run.
    """
    metric = Metric.parse(metric)
    base = check_matrix(base, "base")
    queries = check_matrix(queries, "queries")
    check_positive(k, "k")
    if k > base.shape[0]:
        raise ValueError(f"k={k} exceeds base size {base.shape[0]}")

    n_queries = queries.shape[0]
    ids = np.empty((n_queries, k), dtype=np.int64)
    distances = np.empty((n_queries, k), dtype=np.float64)

    def block(bounds: tuple[int, int]):
        start, stop = bounds
        dist_block = pairwise_distances(queries[start:stop], base, metric)
        part = np.argpartition(dist_block, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(dist_block, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        return (np.take_along_axis(part, order, axis=1),
                np.take_along_axis(part_d, order, axis=1))

    bounds = chunk_bounds(n_queries, batch_size)
    for (start, stop), (block_ids, block_d) in zip(
            bounds, parallel_map(block, bounds, n_workers=n_workers)):
        ids[start:stop] = block_ids
        distances[start:stop] = block_d
    return GroundTruth(ids=ids, distances=distances, metric=metric, k=k)
