"""Command-line interface: build, fix, evaluate, and analyze indexes.

Usage (also via ``python -m repro.cli``)::

    python -m repro.cli datasets
    python -m repro.cli build --dataset laion-sim --index hnsw --out /tmp/g.npz
    python -m repro.cli fix --dataset laion-sim --out /tmp/fixed.npz
    python -m repro.cli evaluate --dataset laion-sim --index-file /tmp/fixed.npz
    python -m repro.cli churn --dataset laion-sim --mutation-fraction 0.1
    python -m repro.cli churn --dataset laion-sim --wal-dir /tmp/wal
    python -m repro.cli cluster --n-shards 4 --frontdoor --chaos
    python -m repro.cli tune --dataset laion-sim --out /tmp/tuned.json
    python -m repro.cli churn --dataset laion-sim --tuned-config /tmp/tuned.json
    python -m repro.cli recover /tmp/wal
    python -m repro.cli analyze --dataset laion-sim
    python -m repro.cli stats --dataset laion-sim --format both

Every command accepts ``--scale`` to shrink the synthetic corpora,
``--seed`` for reproducibility, and ``--telemetry`` to collect metrics
(see docs/observability.md) and dump a Prometheus-text exposition at the
end of the run.  ``stats`` serves a sample workload with telemetry forced
on and emits the full metric surface (Prometheus text and/or JSON).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="laion-sim",
                        help="registry dataset name (see `datasets`)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="corpus scale multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=10,
                        help="neighbors per query")
    parser.add_argument("--n-workers", type=int, default=1,
                        help="fork-pool width for offline stages (ground "
                             "truth, parallel construction, NGFix "
                             "preprocessing, evaluation); results are "
                             "identical for any value")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect metrics during the run and print the "
                             "Prometheus text exposition at the end")


def _add_compressed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--compressed", action="store_true",
                        help="serve through the PQ-resident compressed hot "
                             "path (ADC traversal + exact re-rank)")
    parser.add_argument("--pq-m", type=int, default=None,
                        help="PQ subspace count (default: largest of "
                             "8/6/4/3/2/1 dividing dim)")
    parser.add_argument("--pq-ks", type=int, default=32,
                        help="PQ centroids per subspace (<= 256)")
    parser.add_argument("--rerank", type=int, default=50,
                        help="exact re-rank shortlist size (full-precision "
                             "NDC budget per query)")
    parser.add_argument("--memmap-dir",
                        help="spill base vectors to <dir>/vectors.vecs and "
                             "serve them via np.memmap (disk-resident tier)")


def _add_policy(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", default=None,
                        choices=["cadence", "signal"],
                        help="maintenance policy: 'cadence' = fixed "
                             "merge_every/repair-on-observe (the default "
                             "behavior), 'signal' = navigability-triggered "
                             "merge/repair (see docs/architecture.md)")
    parser.add_argument("--policy-config", default=None,
                        help="JSON dict of keyword arguments for the chosen "
                             "policy, e.g. "
                             "'{\"storm_deletes\": 16, \"min_traces\": 8}'")


def _policy_kwargs(args) -> dict:
    import json as _json
    kwargs = {}
    if getattr(args, "policy", None):
        kwargs["policy"] = args.policy
        if getattr(args, "policy_config", None):
            kwargs["policy_config"] = _json.loads(args.policy_config)
    elif getattr(args, "policy_config", None):
        raise SystemExit("--policy-config requires --policy")
    return kwargs


def _print_policy_stats(store) -> None:
    scheduler = store.scheduler
    if scheduler is None:
        return
    pol = scheduler.stats()["policy"]
    if pol.get("policy") == "signal":
        print(f"  policy signal: score {pol['signal_score']:.3f} "
              f"(slope {pol['signal_slope']:+.3f}), "
              f"{pol['triggers_fired']} triggers, "
              f"{pol['storm_detections']} storms, "
              f"{pol['repairs_skipped']} repairs skipped, "
              f"{pol['repairs_requested']} burst repairs, "
              f"{pol['deferred_merges']} merges deferred")
    else:
        print(f"  policy {pol.get('policy')}: "
              f"merge_every {pol.get('merge_every')}")


def _add_tuned(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tuned-config", default=None,
                        help="fitted TunedConfig JSON (from `repro tune`); "
                             "attaches the hardness-aware planner, so "
                             "ef-less searches route per predicted bin")


def _tuned_kwargs(args) -> dict:
    tuned = getattr(args, "tuned_config", None)
    return {"tuned_config": tuned} if tuned else {}


def _store_compressed_kwargs(args) -> dict:
    import pathlib
    kwargs = {}
    if getattr(args, "compressed", False):
        kwargs.update(compressed=True, pq_m=args.pq_m, pq_ks=args.pq_ks,
                      rerank=args.rerank)
    if getattr(args, "memmap_dir", None):
        kwargs["memmap_path"] = (
            pathlib.Path(args.memmap_dir) / "vectors.vecs")
    return kwargs


def _print_compressed_stats(store) -> None:
    stats = store.stats()
    comp = stats.get("compressed")
    if comp:
        print(f"  PQ: m={comp['pq_m']} ks={comp['pq_ks']} "
              f"rerank={comp['rerank']} ({comp['code_bytes']} code bytes); "
              f"{comp['adc_scored']} ADC scorings, "
              f"{comp['rerank_ndc']} exact re-rank NDC, "
              f"{comp['pagein_seconds'] * 1e3:.1f}ms page-in")
    mm = stats.get("memmap")
    if mm:
        print(f"  memmap tier: {mm['path']} ({mm['vector_bytes']} bytes)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NGFix/RFix ANNS reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registry datasets with statistics")

    p_build = sub.add_parser("build", help="build a baseline index")
    _add_common(p_build)
    p_build.add_argument("--index", default="hnsw",
                         choices=["hnsw", "nsg", "roargraph", "vamana",
                                  "robust-vamana", "tau-mng"])
    p_build.add_argument("--out", help="save the built index to this .npz")

    p_fix = sub.add_parser("fix", help="build HNSW and run NGFix* on history")
    _add_common(p_fix)
    p_fix.add_argument("--preprocess", default="approx",
                       choices=["approx", "exact"])
    p_fix.add_argument("--max-extra-degree", type=int, default=12)
    p_fix.add_argument("--out", help="save the fixed index to this .npz")

    p_eval = sub.add_parser("evaluate", help="sweep ef and print the curve")
    _add_common(p_eval)
    p_eval.add_argument("--index-file", help="load a saved .npz index; "
                        "otherwise a fresh HNSW-NGFix* is built")
    p_eval.add_argument("--efs", type=int, nargs="*",
                        default=[10, 20, 40, 80, 160])
    p_eval.add_argument("--batch-size", type=int, default=1,
                        help="queries advanced together through the batch "
                             "engine; 1 = sequential per-query loop "
                             "(identical results either way)")

    p_churn = sub.add_parser(
        "churn", help="serve queries while mutating (epoch serving layer)")
    _add_common(p_churn)
    p_churn.add_argument("--ef", type=int, default=40)
    p_churn.add_argument("--batch-size", type=int, default=32)
    p_churn.add_argument("--mutation-fraction", type=float, default=0.1,
                         help="share of operations that are mutations "
                              "(0.1 = 90%% search / 10%% mutation)")
    p_churn.add_argument("--observe-every", type=int, default=0,
                         help="feed every Nth batch's first query to online "
                              "NGFix/RFix repair (0 = off)")
    p_churn.add_argument("--merge-every", type=int, default=256,
                         help="overlay ops per background epoch merge")
    p_churn.add_argument("--wal-dir",
                         help="journal mutations to a write-ahead log in this "
                              "directory (must be fresh; restart with "
                              "'repro recover')")
    p_churn.add_argument("--sync-every", type=int, default=8,
                         help="fsync the WAL every N records (1 = every "
                              "record, 0 = never; requires --wal-dir)")
    p_churn.add_argument("--storm", action="store_true",
                         help="run the bursty delete-storm protocol "
                              "(tail-recall stressor) instead of "
                              "steady-state churn")
    p_churn.add_argument("--storm-every", type=int, default=12,
                         help="query batches between delete storms")
    p_churn.add_argument("--storm-size", type=int, default=24,
                         help="ids deleted per storm burst")
    p_churn.add_argument("--rounds", type=int, default=3,
                         help="passes over the query set in storm mode")
    p_churn.add_argument("--json", action="store_true",
                         help="emit the report (incl. recall percentiles "
                              "and policy counters) as JSON")
    _add_policy(p_churn)
    _add_compressed(p_churn)
    _add_tuned(p_churn)

    p_rec = sub.add_parser(
        "recover", help="rebuild a store from its WAL directory and report")
    p_rec.add_argument("wal_dir", help="durability directory (snapshots + WAL)")
    p_rec.add_argument("--no-observes", action="store_true",
                       help="skip replaying observe (online repair) records")
    p_rec.add_argument("--json", action="store_true",
                       help="emit the RecoveryReport as JSON")

    p_an = sub.add_parser("analyze", help="hardness diagnostics for a dataset")
    _add_common(p_an)

    p_stats = sub.add_parser(
        "stats", help="serve a sample workload with telemetry and dump "
                      "the metric surface")
    _add_common(p_stats)
    p_stats.add_argument("--ef", type=int, default=40)
    p_stats.add_argument("--batch-size", type=int, default=32)
    p_stats.add_argument("--format", default="both",
                         choices=["prom", "json", "both"],
                         help="Prometheus text, JSON snapshot, or both")
    p_stats.add_argument("--traces", type=int, default=0,
                         help="also dump the N most recent per-query traces "
                              "as JSON (0 = off)")
    _add_policy(p_stats)
    _add_compressed(p_stats)

    p_cluster = sub.add_parser(
        "cluster", help="serve a dataset through the sharded scatter-gather "
                        "router (forked shard workers + coalescing front "
                        "door)")
    _add_common(p_cluster)
    p_cluster.add_argument("--n-shards", type=int, default=4,
                           help="hash partitions (one worker process each)")
    p_cluster.add_argument("--n-replicas", type=int, default=1,
                           help="replicas per partition (read scaling + "
                                "failover)")
    p_cluster.add_argument("--ef", type=int, default=40,
                           help="per-shard search list size")
    p_cluster.add_argument("--batch-size", type=int, default=64)
    p_cluster.add_argument("--deadline-ms", type=float, default=None,
                           help="per-call latency budget; shards get "
                                "budget*(1-merge_reserve) each")
    p_cluster.add_argument("--base-dir",
                           help="durability root (per-replica WAL dirs "
                                "underneath); default: temp dir")
    p_cluster.add_argument("--frontdoor", action="store_true",
                           help="drive the workload through the asyncio "
                                "coalescing front door instead of direct "
                                "batched calls")
    p_cluster.add_argument("--window-ms", type=float, default=2.0,
                           help="front-door coalescing window")
    p_cluster.add_argument("--max-queue", type=int, default=1024,
                           help="front-door admission bound (queued + "
                                "in-flight); excess arrivals are shed with "
                                "a typed Overloaded rejection")
    p_cluster.add_argument("--no-hedge", action="store_true",
                           help="disable hedged reads (strictly sequential "
                                "replica failover)")
    p_cluster.add_argument("--hedge-ms", type=float, default=None,
                           help="fixed hedge delay override; default: "
                                "per-replica EWMA p95")
    p_cluster.add_argument("--max-pending", type=int, default=1024,
                           help="per-replica catch-up buffer bound; overflow "
                                "forces a peer resync at respawn")
    p_cluster.add_argument("--chaos", action="store_true",
                           help="kill shard 0 mid-run via repro.faults, then "
                                "respawn it through WAL recovery")
    p_cluster.add_argument("--gray-chaos", action="store_true",
                           help="delay replica (0,0)'s replies mid-run (gray "
                                "failure) and report hedging + breaker "
                                "re-admission instead of a respawn")
    _add_policy(p_cluster)
    _add_compressed(p_cluster)
    _add_tuned(p_cluster)

    p_tune = sub.add_parser(
        "tune", help="fit a per-hardness-bin tuned config by trace replay")
    _add_common(p_tune)
    p_tune.add_argument("--out", default="tuned-config.json",
                        help="write the fitted TunedConfig JSON here")
    p_tune.add_argument("--target-recall", type=float, default=0.9,
                        help="recall@k floor the fitted table must meet on "
                             "the calibration mix")
    p_tune.add_argument("--n-bins", type=int, default=3,
                        help="hardness bins (quantiles of landmark distance)")
    p_tune.add_argument("--n-landmarks", type=int, default=16,
                        help="k-means landmarks defining the hardness "
                             "measure (and adaptive entry points)")
    p_tune.add_argument("--ef-grid", type=int, nargs="*", default=None,
                        help="candidate ef ladder (default: doubling from "
                             "k; anchored at --traces' observed mix when "
                             "given)")
    p_tune.add_argument("--traces", dest="trace_file", default=None,
                        help="recorded TraceLog JSON (`repro stats "
                             "--traces N`) whose ef/NDC mix seeds the grid")
    p_tune.add_argument("--batch-size", type=int, default=64)
    p_tune.add_argument("--no-validate", action="store_true",
                        help="skip the tuned-vs-default comparison on the "
                             "test queries")
    _add_policy(p_tune)
    _add_compressed(p_tune)

    p_ex = sub.add_parser("explain", help="diagnose one test query in depth")
    _add_common(p_ex)
    p_ex.add_argument("--query-index", type=int, default=0,
                      help="which test query to explain")
    p_ex.add_argument("--fixed", action="store_true",
                      help="diagnose against the NGFix*-fixed graph instead "
                           "of plain HNSW")
    return parser


def _load_dataset(args):
    from repro import load_dataset
    return load_dataset(args.dataset, seed=args.seed, scale=args.scale)


def _build_index(args, ds):
    from repro import HNSW, NSG, RoarGraph, TauMNG
    from repro.graphs.vamana import RobustVamana, Vamana
    if args.index == "hnsw":
        return HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                    single_layer=True, seed=args.seed)
    if args.index == "nsg":
        return NSG(ds.base, ds.metric, R=24, L=60, n_workers=args.n_workers)
    if args.index == "roargraph":
        return RoarGraph(ds.base, ds.metric, ds.train_queries, M=24,
                         n_query_neighbors=32, n_workers=args.n_workers)
    if args.index == "vamana":
        return Vamana(ds.base, ds.metric, R=24, L=60, seed=args.seed)
    if args.index == "robust-vamana":
        return RobustVamana(ds.base, ds.metric, ds.train_queries, R=24, L=60,
                            seed=args.seed)
    return TauMNG(ds.base, ds.metric, R=24, L=60, tau=0.01,
                  n_workers=args.n_workers)


def _cmd_datasets(args) -> int:
    from repro import dataset_statistics
    from repro.evalx import format_table
    rows = [(s.name, s.n_base, s.n_train, s.n_test, s.dim, s.metric,
             s.modality) for s in dataset_statistics(scale=0.25)]
    print(format_table(
        ["name", "base", "train", "test", "dim", "metric", "modality"],
        rows, title="registry datasets (shown at scale=0.25)"))
    return 0


def _cmd_build(args) -> int:
    from repro.io import save_index
    ds = _load_dataset(args)
    index = _build_index(args, ds)
    stats = index.stats()
    print(f"built {args.index} over {ds.n} vectors: "
          f"{stats['n_base_edges']} edges, "
          f"avg degree {stats['avg_out_degree']:.1f}")
    if args.out:
        path = save_index(index, args.out)
        print(f"saved to {path}")
    return 0


def _cmd_fix(args) -> int:
    from repro import HNSW, FixConfig, NGFixer
    from repro.io import save_index
    ds = _load_dataset(args)
    base = HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                single_layer=True, seed=args.seed)
    fixer = NGFixer(base, FixConfig(
        k=args.k, preprocess=args.preprocess,
        max_extra_degree=args.max_extra_degree,
        n_workers=args.n_workers))
    fixer.fit(ds.train_queries)
    stats = fixer.stats()
    print(f"fixed {stats['queries_fixed']} historical queries: "
          f"+{stats['n_extra_edges']} extra edges in "
          f"{stats['preprocess_seconds'] + stats['fix_seconds']:.2f}s")
    if args.out:
        path = save_index(fixer, args.out)
        print(f"saved to {path}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro import HNSW, FixConfig, NGFixer, compute_ground_truth, sweep
    from repro.evalx import format_table
    from repro.io import load_index
    ds = _load_dataset(args)
    if args.index_file:
        index = load_index(args.index_file)
        label = args.index_file
    else:
        base = HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                    single_layer=True, seed=args.seed)
        index = NGFixer(base, FixConfig(k=args.k, preprocess="approx",
                                        n_workers=args.n_workers))
        index.fit(ds.train_queries)
        label = "HNSW-NGFix* (freshly built)"
    gt = compute_ground_truth(ds.base, ds.test_queries, args.k, ds.metric,
                              n_workers=args.n_workers)
    points = sweep(index, ds.test_queries, gt, args.k,
                   [max(ef, args.k) for ef in args.efs],
                   batch_size=args.batch_size, n_workers=args.n_workers)
    rows = [(p.ef, round(p.recall, 4), round(p.rderr, 6), round(p.qps, 1),
             round(p.ndc_per_query, 1)) for p in points]
    print(format_table(["ef", "recall", "rderr", "QPS", "NDC/query"], rows,
                       title=f"{label} on {ds.name} (recall@{args.k})"))
    return 0


def _cmd_churn(args) -> int:
    import dataclasses as _dc
    import json as _json

    from repro import VectorStore, compute_ground_truth
    from repro.evalx import (delete_storm_workload, evaluate_index,
                             format_percentiles, interleaved_workload)
    ds = _load_dataset(args)
    store = VectorStore(dim=ds.base.shape[1], metric=ds.metric,
                        M=12, ef_construction=60, seed=args.seed,
                        merge_every=args.merge_every,
                        wal_dir=args.wal_dir, sync_every=args.sync_every,
                        **_policy_kwargs(args),
                        **_store_compressed_kwargs(args),
                        **_tuned_kwargs(args))
    store.add(ds.base)
    store.build()
    store.fit_history(ds.train_queries)
    gt = compute_ground_truth(ds.base, ds.test_queries, args.k, ds.metric,
                              n_workers=args.n_workers)
    # The store's index protocol is batched (search() returns payload
    # triples, not SearchResults), so the evaluation runs batch-only.
    batch_size = max(2, args.batch_size)
    baseline = evaluate_index(store, ds.test_queries, gt, args.k,
                              max(args.ef, args.k), batch_size=batch_size)
    if args.storm:
        report = delete_storm_workload(
            store, ds.test_queries, gt, args.k, max(args.ef, args.k),
            batch_size=batch_size, rounds=args.rounds,
            storm_every=args.storm_every, storm_size=args.storm_size,
            observe_every=max(args.observe_every, 1), seed=args.seed)
    else:
        report = interleaved_workload(
            store, ds.test_queries, gt, args.k, max(args.ef, args.k),
            batch_size=batch_size,
            mutation_fraction=args.mutation_fraction,
            observe_every=args.observe_every, seed=args.seed)
    scheduler = store.scheduler
    policy_stats = (scheduler.stats()["policy"]
                    if scheduler is not None else {})
    if args.json:
        out = {
            "dataset": ds.name,
            "mode": "storm" if args.storm else "steady",
            "baseline": {"qps": baseline.qps, "recall": baseline.recall},
            "report": _dc.asdict(report),
            "policy": policy_stats,
        }
        print(_json.dumps(out, indent=2))
        store.close()
        return 0
    pct = {"p50": report.recall_p50, "p95": report.recall_p95,
           "p99": report.recall_p99}
    print(f"{ds.name}: read-only {baseline.qps:.1f} QPS "
          f"@ recall {baseline.recall:.4f}")
    if args.storm:
        print(f"delete storm ({report.n_storms} storms x "
              f"{args.storm_size} deletes): {report.qps:.1f} QPS "
              f"@ recall {report.recall:.4f} "
              f"({report.qps / baseline.qps:.0%} of read-only)")
        print(f"  {report.n_deletes} deletes, {report.n_reinserts} "
              f"re-inserts, {report.n_observed} observed, "
              f"{report.merges} epoch merges, {report.repairs} repairs "
              f"({report.maintenance_seconds * 1e3:.1f}ms maintenance)")
    else:
        print(f"churn ({args.mutation_fraction:.0%} mutations): "
              f"{report.qps:.1f} QPS @ recall {report.recall:.4f} "
              f"({report.qps / baseline.qps:.0%} of read-only)")
        print(f"  {report.n_inserts} inserts, {report.n_deletes} deletes, "
              f"{report.n_observed} observed, {report.merges} epoch merges, "
              f"{report.repairs} online repairs")
        print(f"  query-path O(E) refreezes: {report.query_path_freezes}")
    print(f"  {format_percentiles(pct)}")
    _print_policy_stats(store)
    _print_compressed_stats(store)
    if store.wal is not None:
        wal_stats = store.wal.stats()
        print(f"  WAL: {wal_stats['records']} records, "
              f"{wal_stats['fsyncs']} fsyncs, seq {wal_stats['seq']} "
              f"(recover with: repro recover {args.wal_dir})")
    store.close()
    return 0


def _cmd_recover(args) -> int:
    import json as _json

    from repro.durability import RecoveryError, recover
    try:
        store, report = recover(args.wal_dir,
                                replay_observes=not args.no_observes)
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    store.close()
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        snap = (f"snapshot {report.snapshot_id} @ seq {report.snapshot_wal_seq}"
                if report.snapshot_id is not None else "no snapshot (WAL only)")
        print(f"recovered {report.n_vectors} vectors "
              f"({report.n_deleted} tombstoned) from {report.wal_dir}")
        print(f"  base: {snap}; replayed {report.replayed} "
              f"to terminal seq {report.terminal_seq}")
        if report.truncated_bytes:
            print(f"  torn tail: truncated {report.truncated_bytes} bytes")
        print(f"  elapsed {report.elapsed_seconds:.3f}s; "
              f"consistent: {report.consistent}")
        for err in report.errors:
            print(f"  INCONSISTENCY: {err}", file=sys.stderr)
    return 0 if report.consistent else 1


def _cmd_stats(args) -> int:
    """Serve a representative workload with telemetry on, dump the metrics.

    Exercises every instrumented layer so the exposition demonstrates the
    full catalog: batched + sequential epoch-pinned serving, hash-cache hits
    and misses, online repair on the background worker (liveness heartbeat),
    and an epoch merge.
    """
    from repro import VectorStore, obs
    from repro.core.hash_cache import CachedSearcher
    obs.enable()
    ds = _load_dataset(args)
    store = VectorStore(dim=ds.base.shape[1], metric=ds.metric,
                        M=12, ef_construction=60, seed=args.seed,
                        scheduler_mode="thread",
                        **_policy_kwargs(args),
                        **_store_compressed_kwargs(args))
    store.add(ds.base)
    store.build()
    try:
        k, ef = args.k, max(args.ef, args.k)
        searcher = store.searcher
        cached = CachedSearcher(searcher)
        # Warm the cache on half the test queries, then serve the full set
        # batched: half hit, half miss — a visible hit ratio.
        warm = ds.test_queries[: len(ds.test_queries) // 2]
        ids, dists = searcher.search_many(warm, k, ef,
                                          batch_size=args.batch_size)
        cached.warm(warm, ids, dists)
        cached.search_batch(ds.test_queries, k, ef,
                            batch_size=args.batch_size)
        for query in ds.test_queries[:4]:
            store.search(query, k=k, ef=ef)   # sequential pinned path
            store.observe(query)              # background NGFix/RFix repair
        store.flush()
        store.scheduler.merge_now()
        # Snapshot while the worker is still running so liveness gauges
        # reflect the serving state, not the post-shutdown one.
        prom = obs.OBS.prometheus_text()
        blob = obs.OBS.to_json(indent=2)
        traces = obs.TRACES.to_json(n=args.traces, indent=2)
    finally:
        store.scheduler.stop()
    if args.format in ("prom", "both"):
        print(prom)
    if args.format in ("json", "both"):
        print(blob)
    if args.traces:
        print(traces)
    return 0


def _cmd_cluster(args) -> int:
    """Serve the dataset through a sharded router and report the outcome."""
    from repro import compute_ground_truth
    from repro.cluster import WORKER_OP_POINT, ClusterRouter
    from repro.evalx import evaluate_index
    ds = _load_dataset(args)
    gt = compute_ground_truth(ds.base, ds.test_queries, args.k, ds.metric,
                              n_workers=args.n_workers)
    kwargs = {}
    if args.compressed:
        kwargs.update(compressed=True, pq_m=args.pq_m, pq_ks=args.pq_ks,
                      rerank=args.rerank)
    kwargs.update(_policy_kwargs(args))
    kwargs.update(_tuned_kwargs(args))
    router = ClusterRouter(
        dim=ds.base.shape[1], metric=ds.metric, n_shards=args.n_shards,
        n_replicas=args.n_replicas, base_dir=args.base_dir,
        M=12, ef_construction=60, seed=args.seed,
        hedge=not args.no_hedge, hedge_ms=args.hedge_ms,
        max_pending=args.max_pending, **kwargs)
    try:
        router.load(ds.base, train_queries=ds.train_queries)
        k, ef = args.k, max(args.ef, args.k)
        point = evaluate_index(router, ds.test_queries, gt, k, ef,
                               batch_size=max(2, args.batch_size))
        print(f"{ds.name}: {args.n_shards} shards x {args.n_replicas} "
              f"replicas — {point.qps:.1f} QPS @ recall {point.recall:.4f} "
              f"(ef={ef}, NDC/query {point.ndc_per_query:.1f})")
        if args.frontdoor:
            import asyncio

            from repro.cluster import FrontDoor
            door = FrontDoor(router, window_ms=args.window_ms,
                             max_batch=args.batch_size, k=k, ef=ef,
                             deadline_ms=args.deadline_ms,
                             max_queue=args.max_queue)

            async def serve():
                await asyncio.gather(
                    *(door.search(q) for q in ds.test_queries),
                    return_exceptions=True)
                await door.drain()
            asyncio.run(serve())
            fd = door.stats()
            print(f"  front door: {fd['dispatched']} queries in "
                  f"{fd['blocks']} blocks (mean batch "
                  f"{fd['mean_batch']:.1f}, window {args.window_ms}ms, "
                  f"{fd['shed']} shed, peak depth {fd['max_depth_seen']}/"
                  f"{fd['max_queue']})")
        if args.chaos:
            handle = router.handles[0][0]
            handle.rpc({"op": "arm_faults", "rules": [
                {"point": WORKER_OP_POINT, "action": "kill", "nth": 2}]})
            # Single searches: each one is an op on every shard, so the
            # armed kill fires on the victim's second op — mid-run, with
            # the remaining answers served degraded by the survivors.
            results = [router.search(q, k, ef)
                       for q in ds.test_queries[:32]]
            degraded = sum(r.degraded for r in results)
            report = router.respawn(0, 0)
            print(f"  chaos: killed shard 0 mid-run — {degraded}/32 "
                  f"degraded answers, recovery consistent: "
                  f"{report.get('consistent') if report else 'n/a'}, "
                  f"{router.live_replicas()} replicas live")
        if args.gray_chaos:
            import time as _time

            from repro.cluster import WORKER_PRE_REPLY_POINT
            victim = router.handles[0][0]
            victim.rpc({"op": "arm_faults", "rules": [
                {"point": WORKER_PRE_REPLY_POINT, "action": "delay",
                 "every": True, "delay_s": 0.05}]})
            for q in ds.test_queries[:48]:
                router.search(q, k, ef)
            tripped = victim.breaker.state
            victim.rpc({"op": "disarm_faults"})
            _time.sleep(0.6)  # let the breaker's retry backoff elapse
            for q in ds.test_queries[:32]:
                router.search(q, k, ef)
                _time.sleep(0.005)
            rs = router.router_stats()
            print(f"  gray chaos: replica 0.0 delayed 50ms — breaker "
                  f"{tripped} under fault, {rs['hedges']} hedges "
                  f"({rs['hedge_wins']} won), re-admitted: "
                  f"{victim.breaker.state == 'closed'} "
                  f"({rs['breaker_readmits']} readmits, "
                  f"{rs['respawns']} respawns)")
        merged = router.stats()["merged"]
        stats = router.router_stats()
        print(f"  router: {stats['searches']} searches, "
              f"{stats['retries']} replica retries, "
              f"{stats['degraded']} degraded, "
              f"{stats['hedges']} hedges, "
              f"{stats['breaker_trips']} breaker trips, "
              f"{stats['respawns']} respawns")
        comp = merged.get("compressed")
        if isinstance(comp, dict):
            print(f"  merged shards: {comp.get('adc_scored', 0)} ADC "
                  f"scorings, {comp.get('rerank_ndc', 0)} exact re-rank "
                  f"NDC (pq_sig shared: {merged.get('pq_sig')})")
        if args.policy:
            health = router.health()
            print(f"  policy ({health.get('policy')}): worst score "
                  f"{health.get('signal_score', 0.0):.3f}, "
                  f"{health.get('storms_active', 0)} storms active "
                  f"({health.get('storm_detections', 0)} detected), "
                  f"{health.get('triggers_fired', 0)} triggers, "
                  f"{health.get('repairs_skipped', 0)} repairs skipped, "
                  f"{health.get('live_replicas')}/"
                  f"{health.get('total_replicas')} replicas live")
    finally:
        router.close()
    return 0


def _cmd_tune(args) -> int:
    """Fit a per-hardness-bin tuned config and (optionally) validate it."""
    from repro import VectorStore, compute_ground_truth
    from repro.evalx import evaluate_index
    from repro.tuning import fit_tuned_config, replay_traces
    ds = _load_dataset(args)
    store = VectorStore(dim=ds.base.shape[1], metric=ds.metric,
                        M=12, ef_construction=60, seed=args.seed,
                        **_policy_kwargs(args),
                        **_store_compressed_kwargs(args))
    store.add(ds.base)
    store.build()
    store.fit_history(ds.train_queries)
    trace_stats = None
    if args.trace_file:
        trace_stats = replay_traces(args.trace_file)
        print(f"replayed {trace_stats['n_traces']} traces: "
              f"ef mean {trace_stats['ef_mean']:.1f}, "
              f"NDC mean {trace_stats['ndc_mean']:.1f}, "
              f"degraded {trace_stats['degraded_rate']:.1%}")
    queries = ds.train_queries
    gt = compute_ground_truth(ds.base, queries, args.k, ds.metric,
                              n_workers=args.n_workers)
    config = fit_tuned_config(
        store.searcher, queries, args.k,
        target_recall=args.target_recall,
        ef_grid=args.ef_grid or None,
        n_bins=args.n_bins, n_landmarks=args.n_landmarks,
        batch_size=args.batch_size, gt_ids=gt.top(args.k).ids,
        trace_stats=trace_stats, seed=args.seed)
    path = config.save(args.out)
    print(f"fitted {config.n_bins} hardness bins over {len(queries)} "
          f"calibration queries (untuned default ef {config.default_ef})")
    for b, s in enumerate(config.bins):
        extras = [f"route={s.route}"] if s.route != "default" else []
        if s.rerank is not None:
            extras.append(f"rerank={s.rerank}")
        if s.beam_width is not None:
            extras.append(f"beam={s.beam_width}")
        print(f"  bin {b}: ef={s.ef}" +
              (" (" + ", ".join(extras) + ")" if extras else ""))
    print(f"saved to {path}")
    if not args.no_validate:
        test_gt = compute_ground_truth(ds.base, ds.test_queries, args.k,
                                       ds.metric, n_workers=args.n_workers)
        batch = max(2, args.batch_size)
        untuned = evaluate_index(store.searcher, ds.test_queries, test_gt,
                                 args.k, max(config.default_ef, args.k),
                                 batch_size=batch)
        store.apply_tuned_config(config)
        tuned = evaluate_index(store.searcher, ds.test_queries, test_gt,
                               args.k, None, batch_size=batch)
        print(f"validation on {ds.name} test queries (recall@{args.k}):")
        print(f"  untuned ef={config.default_ef}: recall "
              f"{untuned.recall:.4f}, {untuned.qps:.1f} QPS, "
              f"NDC/query {untuned.ndc_per_query:.1f}")
        print(f"  tuned (planned)   : recall {tuned.recall:.4f}, "
              f"{tuned.qps:.1f} QPS, NDC/query {tuned.ndc_per_query:.1f}")
    store.close()
    return 0


def _cmd_analyze(args) -> int:
    from repro import HNSW, compute_ground_truth
    from repro.core.analysis import phase_reach_stats
    from repro.core.visualize import render_qng
    ds = _load_dataset(args)
    index = HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                 single_layer=True, seed=args.seed)
    gt = compute_ground_truth(ds.base, ds.test_queries, 3 * args.k, ds.metric)
    stats = phase_reach_stats(index, ds.test_queries, gt, k=args.k,
                              ef=2 * args.k)
    print(f"{ds.name}: phase-1 success "
          f"{stats['reached_vicinity_fraction']:.3f}, "
          f"mean recall@{args.k} {stats['mean_recall']:.3f}")
    for bucket, fraction in stats["histogram"].items():
        print(f"  recall {bucket}: {fraction:.2f}")
    hard = int(np.argmin(stats["recalls"]))
    print(f"\nhardest query #{hard} "
          f"(recall {stats['recalls'][hard]:.2f}) — QNG layout:")
    print(render_qng(index, gt, hard, args.k))
    return 0


def _cmd_explain(args) -> int:
    from repro import HNSW, FixConfig, NGFixer, explain_query
    ds = _load_dataset(args)
    index = HNSW(ds.base, ds.metric, M=12, ef_construction=60,
                 single_layer=True, seed=args.seed)
    if args.fixed:
        fixer = NGFixer(index, FixConfig(k=args.k, preprocess="approx"))
        fixer.fit(ds.train_queries)
        index = fixer
    if not 0 <= args.query_index < len(ds.test_queries):
        raise SystemExit(f"--query-index out of range "
                         f"[0, {len(ds.test_queries)})")
    report = explain_query(index, ds.test_queries[args.query_index], k=args.k)
    print(f"query #{args.query_index} on {ds.name} "
          f"({'fixed' if args.fixed else 'plain'} graph)")
    print(f"  verdict         : {report['verdict']}")
    print(f"  recommended ef  : {report['recommended_ef']}")
    qng = report["qng"]
    print(f"  QNG             : {qng['n_edges']} edges, "
          f"{qng['avg_reachable_fraction']:.2f} reachable fraction, "
          f"{qng['isolated_points']} isolated")
    eh = report["escape_hardness"]
    print(f"  escape hardness : {eh['unreachable_pairs']} unreachable pairs, "
          f"score {eh['hardness_score']:.2f}, max finite {eh['max_finite_eh']:.0f}")
    p1 = report["phase1"]
    print(f"  phase 1         : reaches vicinity = {p1['reaches_vicinity']} "
          f"(anchor {p1['anchor_distance']:.4f} vs k-th NN "
          f"{p1['kth_nn_distance']:.4f})")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "build": _cmd_build,
    "fix": _cmd_fix,
    "evaluate": _cmd_evaluate,
    "churn": _cmd_churn,
    "cluster": _cmd_cluster,
    "tune": _cmd_tune,
    "recover": _cmd_recover,
    "analyze": _cmd_analyze,
    "stats": _cmd_stats,
    "explain": _cmd_explain,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    telemetry = getattr(args, "telemetry", False)
    if telemetry:
        from repro import obs
        obs.enable()
    code = _COMMANDS[args.command](args)
    if telemetry and args.command != "stats":
        from repro import obs
        print("\n# telemetry (Prometheus text exposition)")
        print(obs.OBS.prometheus_text(), end="")
    return code


if __name__ == "__main__":
    sys.exit(main())
