"""RoarGraph (Chen et al. 2024) — the paper's primary comparator.

RoarGraph bridges the base/query distribution gap in three steps:

1. **Query-base bipartite graph** — compute each historical query's exact
   nearest base neighbors (RoarGraph *requires* exact NN; the paper under
   reproduction highlights this as a construction-time weakness).
2. **Projection** — instead of inserting query points, each query is
   projected onto its nearest base point (the pivot), and the pivot receives
   the query's remaining neighbors as candidate out-edges; candidates are
   occlusion-pruned to the degree budget.  Reverse edges are added while
   capacity allows so the bipartite information flows both ways.
3. **Connectivity enhancement** — each node tops up its neighbor list from a
   base k-NN graph and neighbors-of-neighbors, and a spanning pass from the
   medoid guarantees global reachability.

Search enters at the medoid.  The implementation keeps RoarGraph's essential
behavior the paper's comparison turns on: edges follow the *query*
distribution at pivots, the build needs many historical queries with exact
ground truth, and a workload change requires full reconstruction.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.distances import Metric
from repro.evalx.ground_truth import compute_ground_truth
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.kgraph import brute_force_knn_graph
from repro.graphs.pruning import rng_prune_backfill
from repro.utils.parallel import chunk_bounds, effective_workers, parallel_map
from repro.utils.validation import check_matrix, check_positive


class RoarGraph(GraphIndex):
    """Projected bipartite graph for cross-modal ANNS.

    Parameters
    ----------
    train_queries:
        Historical queries whose distribution shapes the graph.
    M:
        Out-degree budget per node.
    n_query_neighbors:
        Exact base neighbors computed per historical query (the paper's
        N_q; the bipartite fan-out).
    n_workers:
        Fork-pool width for the exact bipartite ground truth and the
        per-node projection pruning; the built graph is identical for any
        value.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        train_queries: np.ndarray,
        M: int = 32,
        n_query_neighbors: int = 32,
        knn_k: int = 16,
        n_workers: int = 1,
    ):
        check_positive(M, "M")
        check_positive(n_query_neighbors, "n_query_neighbors")
        super().__init__(data, metric)
        self.M = M
        self.n_query_neighbors = min(n_query_neighbors, self.size - 1)
        self.knn_k = min(knn_k, self.size - 1)
        self.n_workers = n_workers
        self._medoid = medoid_id(self.dc)
        train_queries = check_matrix(train_queries, "train_queries")
        self._build(train_queries)

    def _build(self, train_queries: np.ndarray) -> None:
        # Step 1: exact bipartite neighbors (the expensive preprocessing the
        # paper contrasts NGFix's approximate mode against).
        gt = compute_ground_truth(
            self.dc.data, train_queries, self.n_query_neighbors, self.metric,
            n_workers=self.n_workers)

        # Step 2: projection — pivot = query's 1-NN; candidates = the rest.
        candidates: dict[int, set[int]] = {}
        for row in gt.ids:
            pivot = int(row[0])
            candidates.setdefault(pivot, set()).update(int(v) for v in row[1:])

        knn = brute_force_knn_graph(self.dc.data, self.knn_k, self.metric)

        # Per-node occlusion pruning over static inputs (candidates + knn):
        # embarrassingly parallel; workers return lists plus NDC deltas so
        # serial and parallel builds account distances identically.
        def chunk(bounds: tuple[int, int]):
            start, stop = bounds
            ndc0 = self.dc.ndc
            lists = []
            for u in range(start, stop):
                pool = set(candidates.get(u, ()))
                pool.update(int(v) for v in knn[u, : self.knn_k // 2])
                pool.discard(u)
                lists.append(rng_prune_backfill(self.dc, u, pool, self.M))
            ndc_delta = self.dc.ndc - ndc0
            self.dc.ndc = ndc0
            return lists, ndc_delta

        workers = effective_workers(self.n_workers)
        size = max(1, -(-self.size // (4 * workers))) if workers > 1 else self.size
        bounds = chunk_bounds(self.size, size)
        for (start, stop), (lists, ndc_delta) in zip(
                bounds, parallel_map(chunk, bounds, n_workers=self.n_workers)):
            self.dc.ndc += ndc_delta
            for u, selected in zip(range(start, stop), lists):
                self.adjacency.set_base_neighbors(u, selected)

        # Reverse bipartite edges while capacity allows (mutates as it
        # scans — serial; the body only touches v != u lists).
        for u in range(self.size):
            for v in self.adjacency.base_neighbors_ro(u):
                if self.adjacency.base_degree(v) < self.M:
                    self.adjacency.add_base_edge(v, u)

        # Step 3: connectivity enhancement via neighbors-of-neighbors top-up.
        for u in range(self.size):
            neigh = self.adjacency.base_neighbors_ro(u)
            if len(neigh) >= self.M // 2:
                continue
            pool = set(neigh)
            for v in neigh:
                pool.update(self.adjacency.base_neighbors_ro(v))
            pool.update(int(v) for v in knn[u])
            pool.discard(u)
            self.adjacency.set_base_neighbors(
                u, rng_prune_backfill(self.dc, u, pool, self.M))

        self._spanning_connect(knn)

    def _spanning_connect(self, knn: np.ndarray) -> None:
        reached = np.zeros(self.size, dtype=bool)
        queue = deque([self._medoid])
        reached[self._medoid] = True
        while queue:
            u = queue.popleft()
            for v in self.adjacency.neighbors(u):
                if not reached[v]:
                    reached[v] = True
                    queue.append(int(v))
        for u in range(self.size):
            if reached[u]:
                continue
            anchors = [int(v) for v in knn[u] if reached[v]]
            anchor = anchors[0] if anchors else self._medoid
            self.adjacency.add_base_edge(anchor, u)
            queue = deque([u])
            reached[u] = True
            while queue:
                w = queue.popleft()
                for v in self.adjacency.neighbors(w):
                    if not reached[v]:
                        reached[v] = True
                        queue.append(int(v))

    def medoid(self) -> int:
        """The fixed entry point."""
        return self._medoid

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self._medoid]
