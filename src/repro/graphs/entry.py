"""Entry-point selection strategies (Sec. 3's "entry point problem").

Several works the paper cites (LSH-APG, HVS, HM-ANN) attack graph search by
choosing better entry points; the paper itself fixes the entry at the base
medoid (Sec. 5.4) and repairs navigability with RFix instead.  These
strategies make that design decision testable: wrap any index with
:class:`MultiEntryIndex` and compare.

- :class:`MedoidEntry` — the paper's choice: one fixed, central entry.
- :class:`RandomEntry` — ``n_entries`` fresh random starts per query.
- :class:`CentroidsEntry` — k-means cluster medoids; each query enters at
  the ``n_probe`` centroids nearest to it (an LSH-APG-flavored router at a
  fraction of the machinery).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.distances import DistanceComputer, pairwise_distances
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.search import SearchResult, greedy_search
from repro.quantization.kmeans import kmeans
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_positive


class EntryStrategy(abc.ABC):
    """Chooses starting nodes for a (prepared) query."""

    @abc.abstractmethod
    def entries(self, dc: DistanceComputer, query: np.ndarray) -> list[int]:
        """Entry node ids for this query."""


class MedoidEntry(EntryStrategy):
    """Single fixed entry at the base-data medoid (the paper's choice)."""

    def __init__(self, dc: DistanceComputer):
        self._medoid = medoid_id(dc)

    def entries(self, dc: DistanceComputer, query: np.ndarray) -> list[int]:
        return [self._medoid]


class RandomEntry(EntryStrategy):
    """``n_entries`` random starting nodes, re-drawn per query."""

    def __init__(self, n_entries: int = 3,
                 seed: int | np.random.Generator | None = 0):
        check_positive(n_entries, "n_entries")
        self.n_entries = n_entries
        self._rng = ensure_rng(seed)

    def entries(self, dc: DistanceComputer, query: np.ndarray) -> list[int]:
        picks = self._rng.choice(dc.size, size=min(self.n_entries, dc.size),
                                 replace=False)
        return [int(p) for p in picks]


class CentroidsEntry(EntryStrategy):
    """Enter at the nearest of ``n_centroids`` k-means cluster medoids.

    Routing cost is ``n_centroids`` distance computations per query (counted
    against NDC, as it would be in a real deployment).
    """

    def __init__(self, dc: DistanceComputer, n_centroids: int = 16,
                 n_probe: int = 2, seed: int | np.random.Generator | None = 0):
        check_positive(n_centroids, "n_centroids")
        check_positive(n_probe, "n_probe")
        self.n_probe = min(n_probe, n_centroids)
        centers, _ = kmeans(dc.data, min(n_centroids, dc.size), seed=seed)
        # snap centroids to their nearest base points
        d = pairwise_distances(centers, dc.data, dc.metric)
        self._anchor_ids = np.unique(d.argmin(axis=1))

    def entries(self, dc: DistanceComputer, query: np.ndarray) -> list[int]:
        dists = dc.to_query(self._anchor_ids, query)
        order = np.argsort(dists, kind="stable")[: self.n_probe]
        return [int(self._anchor_ids[j]) for j in order]


class MultiEntryIndex:
    """Wrap any graph index with a pluggable entry strategy."""

    def __init__(self, index: GraphIndex, strategy: EntryStrategy):
        self.index = index
        self.strategy = strategy

    @property
    def dc(self):
        return self.index.dc

    @property
    def adjacency(self):
        return self.index.adjacency

    def entry_points(self, query: np.ndarray) -> list[int]:
        return self.strategy.entries(self.index.dc, query)

    def search(self, query: np.ndarray, k: int, ef: int | None = None,
               collect_visited: bool = False) -> SearchResult:
        if ef is None:
            ef = max(k, 10)
        q = self.index.dc.prepare_query(query)
        return greedy_search(
            self.index.dc, self.index.adjacency.neighbors,
            self.strategy.entries(self.index.dc, q), q, k=k, ef=ef,
            visited=self.index._visited,
            excluded=self.index.adjacency.excluded_ids(),
            collect_visited=collect_visited, prepared=True)
