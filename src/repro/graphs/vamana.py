"""Vamana (DiskANN) and RobustVamana (OOD-DiskANN) — Sec. 3 comparators.

Vamana (Subramanya et al. 2019) builds a flat graph by two passes of
greedy-search-then-α-prune over a random initial graph; the α > 1 occlusion
margin keeps longer detour edges than the RNG rule, giving robust routing.

RobustVamana (Jaiswal et al. 2022) is the paper's *other* OOD-aware
baseline: it inserts historical **query points into the graph as navigation
nodes** — they route searches into the regions OOD queries care about but
are excluded from result sets.  The paper's critique (Sec. 3): the query
nodes lengthen search paths, so the improvement is small; NGFix instead adds
base-to-base edges.  Both behaviors are reproducible here.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.pruning import alpha_prune
from repro.graphs.search import greedy_search
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix, check_positive


class Vamana(GraphIndex):
    """DiskANN's flat graph index.

    Parameters
    ----------
    R:
        Maximum out-degree.
    L:
        Search list size used during construction.
    alpha:
        Pruning relaxation; pass 1 runs with α=1, pass 2 with this value.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        R: int = 32,
        L: int = 64,
        alpha: float = 1.2,
        seed: int | np.random.Generator | None = 0,
    ):
        check_positive(R, "R")
        check_positive(L, "L")
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        super().__init__(data, metric)
        self.R = R
        self.L = max(L, R)
        self.alpha = alpha
        self._rng = ensure_rng(seed)
        self._medoid = medoid_id(self.dc)
        self._build()

    def _random_init(self) -> None:
        n = self.size
        for u in range(n):
            picks = self._rng.choice(n - 1, size=min(self.R, n - 1),
                                     replace=False)
            picks[picks >= u] += 1
            self.adjacency.set_base_neighbors(u, picks.tolist())

    def _robust_prune(self, u: int, pool, alpha: float) -> None:
        pool = np.asarray(list(pool), dtype=np.int64)
        pool = pool[pool != u]
        if pool.size == 0:
            return
        self.adjacency.set_base_neighbors(
            u, alpha_prune(self.dc, u, pool, self.R, alpha=alpha))

    def _pass(self, alpha: float, order: np.ndarray) -> None:
        for u in order:
            u = int(u)
            result = greedy_search(
                self.dc, self.adjacency.neighbors, [self._medoid],
                self.dc.data[u], k=self.L, ef=self.L, visited=self._visited,
                collect_visited=True, prepared=True)
            pool = set(result.visited_ids.tolist())
            pool.update(self.adjacency.base_neighbors_ro(u))
            self._robust_prune(u, pool, alpha)
            # Reverse edges with overflow pruning; the body only mutates
            # v != u lists, so u's internal list is stable to iterate.
            for v in self.adjacency.base_neighbors_ro(u):
                neigh_v = self.adjacency.base_neighbors_ro(v)
                if u in neigh_v:
                    continue
                if len(neigh_v) < self.R:
                    self.adjacency.add_base_edge(v, u)
                else:
                    self._robust_prune(v, set(neigh_v) | {u}, alpha)

    def _build(self) -> None:
        self._random_init()
        order = self._rng.permutation(self.size)
        self._pass(1.0, order)
        if self.alpha > 1.0:
            self._pass(self.alpha, order)

    def medoid(self) -> int:
        """The fixed entry point."""
        return self._medoid

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self._medoid]


class RobustVamana(Vamana):
    """OOD-DiskANN: historical queries join the graph as navigators.

    The index is built over ``base ∪ train_queries``; query nodes are
    tombstoned, so greedy search routes *through* them (they bridge the
    distribution gap) but never returns them.  ``n_base`` marks the id
    boundary: ids below it are base vectors, at or above it query nodes.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        train_queries: np.ndarray,
        R: int = 32,
        L: int = 64,
        alpha: float = 1.2,
        seed: int | np.random.Generator | None = 0,
    ):
        data = check_matrix(data, "data")
        train_queries = check_matrix(train_queries, "train_queries")
        if train_queries.shape[1] != data.shape[1]:
            raise ValueError("train_queries dimension differs from data")
        self.n_base = data.shape[0]
        self.n_navigators = train_queries.shape[0]
        joint = np.vstack([data, train_queries])
        super().__init__(joint, metric, R=R, L=L, alpha=alpha, seed=seed)
        # Navigator nodes route but are never returned (lazy-delete style).
        self.adjacency.tombstones.update(
            range(self.n_base, self.n_base + self.n_navigators))

    def medoid(self) -> int:
        return self._medoid

    def stats(self) -> dict:
        out = super().stats()
        out["n_navigators"] = self.n_navigators
        return out
