"""GraphIndex base class and the brute-force reference index."""

from __future__ import annotations

import abc
import copy

import numpy as np

from repro.distances import DistanceComputer, Metric
from repro.graphs.adjacency import AdjacencyStore
from repro.graphs.search import (BatchSearchEngine, SearchResult, VisitedTable,
                                 greedy_search)


def medoid_id(dc: DistanceComputer) -> int:
    """Id of the base point closest to the dataset centroid.

    The paper fixes the search entry point at "the centroid of the base data"
    (Sec. 5.4); since the centroid itself is not a data point, the nearest
    base point (the medoid in this loose sense) is used, as NSG does.
    """
    centroid = dc.data.mean(axis=0)
    q = dc.prepare_query(centroid)
    saved = dc.ndc
    dists = dc.all_to_query(q)
    dc.ndc = saved  # index-build bookkeeping, not query work
    return int(np.argmin(dists))


class GraphIndex(abc.ABC):
    """Common shell for all graph indexes.

    Subclasses populate ``self.adjacency`` (an :class:`AdjacencyStore` over
    the bottom search layer) and implement :meth:`entry_points`.  Search runs
    Algorithm 1 over the combined base+extra adjacency, honoring tombstones.
    """

    def __init__(self, data: np.ndarray, metric: Metric | str):
        self.dc = DistanceComputer(data, metric)
        self.adjacency = AdjacencyStore(self.dc.size)
        self._visited = VisitedTable(self.dc.size)
        self._batch_engine: BatchSearchEngine | None = None

    @property
    def size(self) -> int:
        return self.dc.size

    @property
    def dim(self) -> int:
        return self.dc.dim

    @property
    def metric(self) -> Metric:
        return self.dc.metric

    @abc.abstractmethod
    def entry_points(self, query: np.ndarray) -> list[int]:
        """Starting node ids for a (prepared) query."""

    def freeze(self):
        """Force a frozen CSR snapshot of the adjacency (see AdjacencyStore)."""
        return self.adjacency.freeze()

    def _neighbors_fn(self):
        """The traversal callable for the current store state.

        The frozen :class:`~repro.graphs.csr.CSRGraphView` when one is
        available under the store's refreeze policy (it is callable), the
        dynamic per-node path otherwise.  Either returns the same neighbor
        sequence per node, so search results are identical.
        """
        view = self.adjacency.traversal()
        return view if view is not None else self.adjacency.neighbors

    def search(self, query: np.ndarray, k: int, ef: int | None = None,
               collect_visited: bool = False) -> SearchResult:
        """Greedy-search the bottom layer for the top-``k`` neighbors."""
        if ef is None:
            ef = max(k, 10)
        q = self.dc.prepare_query(query)
        excluded = self.adjacency.excluded_ids()
        return greedy_search(
            self.dc,
            self._neighbors_fn(),
            self.entry_points(q),
            q,
            k=k,
            ef=ef,
            visited=self._visited,
            excluded=excluded,
            collect_visited=collect_visited,
            prepared=True,
        )

    def _engine(self, batch_size: int) -> BatchSearchEngine:
        """The lazily built batch engine (recreated when batch_size changes)."""
        engine = self._batch_engine
        if engine is None or engine.batch_size != batch_size:
            engine = BatchSearchEngine(
                self.dc,
                self.adjacency.neighbors,
                self.entry_points,
                excluded_fn=self.adjacency.excluded_ids,
                batch_size=batch_size,
                graph_fn=self.adjacency.traversal,
            )
            self._batch_engine = engine
        return engine

    def search_batch(self, queries: np.ndarray, k: int, ef: int | None = None,
                     batch_size: int = 32) -> list[SearchResult]:
        """Batched search: one :class:`SearchResult` per query row.

        Produces the same (ids, distances, NDC) as calling :meth:`search`
        per query, but advances ``batch_size`` queries in lock step so
        distance work coalesces into block kernels.
        """
        if ef is None:
            ef = max(k, 10)
        return self._engine(batch_size).search_batch(queries, k, ef)

    def search_many(self, queries: np.ndarray, k: int, ef: int | None = None,
                    batch_size: int = 32) -> tuple[np.ndarray, np.ndarray]:
        """Search a batch; returns (ids, distances) of shape (nq, k).

        Rows whose graph region yields fewer than k results are padded with
        id -1 / distance inf.  Queries run through the batch engine;
        ``batch_size=1`` falls back to the sequential per-query loop (the
        two paths return identical results).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
        distances = np.full((queries.shape[0], k), np.inf)
        if batch_size == 1:
            results = (self.search(query, k=k, ef=ef) for query in queries)
        else:
            results = self.search_batch(queries, k, ef, batch_size=batch_size)
        for i, result in enumerate(results):
            m = min(k, len(result.ids))
            ids[i, :m] = result.ids[:m]
            distances[i, :m] = result.distances[:m]
        return ids, distances

    def clone(self) -> "GraphIndex":
        """An independent copy sharing nothing mutable with the original.

        Cloning an already-built index is far cheaper than rebuilding it;
        benchmarks use this to fork one cached base graph into several
        fixing/ablation arms.
        """
        out = self.__class__.__new__(self.__class__)
        for key, value in self.__dict__.items():
            if key == "dc":
                out.dc = DistanceComputer(self.dc.data, self.dc.metric)
            elif key == "adjacency":
                out.adjacency = self.adjacency.copy()
            elif key == "_visited":
                out._visited = VisitedTable(self.dc.size)
            elif key == "_batch_engine":
                out._batch_engine = None  # holds refs to the source's dc/graph
            else:
                setattr(out, key, copy.deepcopy(value))
        return out

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict:
        """Degree/size statistics (paper Sec. 6.5 accounting)."""
        return {
            "n_nodes": self.size,
            "n_base_edges": self.adjacency.n_base_edges(),
            "n_extra_edges": self.adjacency.n_extra_edges(),
            "avg_out_degree": self.adjacency.average_out_degree(),
            "index_size_bytes": self.adjacency.index_size_bytes(),
            "n_tombstones": len(self.adjacency.tombstones),
        }


class BruteForceIndex:
    """Exact search by full scan — the accuracy ceiling for sanity checks.

    Implements the same ``search``/``dc`` interface as graph indexes so it
    can run through the evaluation harness.
    """

    def __init__(self, data: np.ndarray, metric: Metric | str):
        self.dc = DistanceComputer(data, metric)

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> SearchResult:
        """Exact top-k by scanning all base vectors (``ef`` ignored)."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        q = self.dc.prepare_query(query)
        dists = self.dc.all_to_query(q)
        k = min(k, dists.shape[0])
        part = np.argpartition(dists, k - 1)[:k]
        order = np.argsort(dists[part], kind="stable")
        ids = part[order].astype(np.int64)
        return SearchResult(ids=ids, distances=dists[ids].astype(np.float64))
