"""Greedy (beam) search — Algorithm 1 of the paper.

The search keeps a candidate min-heap ``C`` and a bounded result max-heap
``R`` of size ``ef`` (the paper's search list size L).  At each step the
closest unexpanded candidate is popped; if it is farther than the worst
result and ``R`` is full, the search terminates.  Otherwise its unvisited
neighbors are batch-scored (one vectorized distance call — this is where NDC
accrues) and pushed.

Tombstoned nodes still *navigate* (lazy deletion, Sec. 5.5.2) but are
excluded from the result heap.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro.distances import DistanceComputer


class VisitedTable:
    """O(1)-reset visited marks via version stamping.

    A fresh boolean array per query would cost O(n) per search; instead an
    int32 stamp array is compared against a per-search version counter.
    """

    def __init__(self, n: int):
        self._stamps = np.zeros(n, dtype=np.int32)
        self._version = 0

    def next_epoch(self) -> None:
        """Start a new search; previously set marks become invisible."""
        self._version += 1
        if self._version == np.iinfo(np.int32).max:
            self._stamps[:] = 0
            self._version = 1

    def grow(self, n: int) -> None:
        """Extend capacity to ``n`` nodes."""
        if n > self._stamps.shape[0]:
            extra = np.zeros(n - self._stamps.shape[0], dtype=np.int32)
            self._stamps = np.concatenate([self._stamps, extra])

    def filter_unvisited(self, ids: np.ndarray) -> np.ndarray:
        """Return the subset of ``ids`` not yet visited, marking them visited."""
        mask = self._stamps[ids] != self._version
        fresh = ids[mask]
        self._stamps[fresh] = self._version
        return fresh

    def mark(self, i: int) -> None:
        self._stamps[i] = self._version

    def is_visited(self, i: int) -> bool:
        return self._stamps[i] == self._version


@dataclasses.dataclass
class SearchResult:
    """Outcome of one greedy search.

    ``ids``/``distances`` are the top-k results sorted ascending by distance.
    ``visited_ids``/``visited_distances`` are populated only when the search
    was asked to collect them (used by RFix's candidate expansion and by the
    approximate-NN preprocessing mode) and cover every node whose distance to
    the query was computed.
    """

    ids: np.ndarray
    distances: np.ndarray
    n_hops: int = 0
    visited_ids: np.ndarray | None = None
    visited_distances: np.ndarray | None = None


def greedy_search(
    dc: DistanceComputer,
    neighbors_fn,
    entry_points,
    query: np.ndarray,
    k: int,
    ef: int,
    visited: VisitedTable | None = None,
    excluded: set[int] | None = None,
    collect_visited: bool = False,
    prepared: bool = False,
) -> SearchResult:
    """Beam search over a directed graph (paper Algorithm 1).

    Parameters
    ----------
    dc:
        Distance computer over the base vectors (counts NDC).
    neighbors_fn:
        ``node_id -> np.ndarray`` of out-neighbors.
    entry_points:
        Iterable of starting node ids.
    k, ef:
        Result count and search list size; ``ef`` is clamped up to ``k``.
    visited:
        Reusable :class:`VisitedTable`; allocated fresh when omitted.
    excluded:
        Node ids barred from the result set (tombstones); they still expand.
    collect_visited:
        Also return every (id, distance) pair evaluated.
    prepared:
        Set True when ``query`` already went through ``dc.prepare_query``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    ef = max(ef, k)
    q = query if prepared else dc.prepare_query(query)
    if visited is None:
        visited = VisitedTable(dc.size)
    visited.next_epoch()

    entry_ids = np.unique(np.asarray(list(entry_points), dtype=np.int64))
    if entry_ids.size == 0:
        raise ValueError("at least one entry point is required")
    visited._stamps[entry_ids] = visited._version
    entry_d = dc.to_query(entry_ids, q)

    collect_i: list[np.ndarray] = [entry_ids] if collect_visited else []
    collect_d: list[np.ndarray] = [entry_d] if collect_visited else []

    candidates: list[tuple[float, int]] = []  # min-heap on distance
    results: list[tuple[float, int]] = []  # max-heap via negated distance
    for node, dist in zip(entry_ids.tolist(), entry_d.tolist()):
        heapq.heappush(candidates, (dist, node))
        if excluded is None or node not in excluded:
            heapq.heappush(results, (-dist, node))
    while len(results) > ef:
        heapq.heappop(results)

    n_hops = 0
    while candidates:
        dist_u, u = heapq.heappop(candidates)
        if len(results) >= ef and dist_u > -results[0][0]:
            break
        n_hops += 1
        neigh = neighbors_fn(u)
        if neigh.size == 0:
            continue
        fresh = visited.filter_unvisited(neigh)
        if fresh.size == 0:
            continue
        dists = dc.to_query(fresh, q)
        if collect_visited:
            collect_i.append(fresh)
            collect_d.append(dists)
        if len(results) >= ef:
            bound = -results[0][0]
            keep = dists < bound
            fresh, dists = fresh[keep], dists[keep]
        for node, dist in zip(fresh.tolist(), dists.tolist()):
            if len(results) >= ef and dist >= -results[0][0]:
                continue
            heapq.heappush(candidates, (dist, node))
            if excluded is None or node not in excluded:
                heapq.heappush(results, (-dist, node))
                if len(results) > ef:
                    heapq.heappop(results)

    ordered = sorted((-d, node) for d, node in results)[:k]
    ids = np.array([node for _, node in ordered], dtype=np.int64)
    distances = np.array([d for d, _ in ordered], dtype=np.float64)
    result = SearchResult(ids=ids, distances=distances, n_hops=n_hops)
    if collect_visited:
        result.visited_ids = np.concatenate(collect_i)
        result.visited_distances = np.concatenate(collect_d)
    return result
