"""Greedy (beam) search — Algorithm 1 of the paper — plus the batch engine.

The sequential search keeps a candidate min-heap ``C`` and a bounded result
max-heap ``R`` of size ``ef`` (the paper's search list size L).  At each step
the closest unexpanded candidate is popped; if it is farther than the worst
result and ``R`` is full, the search terminates.  Otherwise its unvisited
neighbors are batch-scored (one vectorized distance call — this is where NDC
accrues) and pushed.

:class:`BatchSearchEngine` advances the same algorithm for a *block* of
queries in lock step: every round each active query expands its closest
unexpanded candidate, and all frontier neighbors across the block are scored
in one :meth:`~repro.distances.DistanceComputer.block_to_queries` call.
Candidate/result state lives in per-block NumPy arrays instead of Python
heaps, which is where the batch speedup comes from; the results are
bit-identical to :func:`greedy_search` (see the engine docstring).

Tombstoned nodes still *navigate* (lazy deletion, Sec. 5.5.2) but are
excluded from the result heap.
"""

from __future__ import annotations

import dataclasses
import heapq
import time

import numpy as np

from repro.distances import DistanceComputer
from repro.obs import OBS, SECONDS_BUCKETS

_SEARCH_QUERIES = OBS.counter(
    "search_queries", "sequential greedy searches served")
_SEARCH_HOPS = OBS.histogram(
    "search_hops", "hops per sequential greedy search")
_SEARCH_NDC = OBS.histogram(
    "search_ndc", "distance computations per sequential greedy search")
_SEARCH_FRONTIER = OBS.histogram(
    "search_frontier_peak", "peak candidate-pool size per sequential search")
_SEARCH_SECONDS = OBS.histogram(
    "search_seconds", "sequential search latency in seconds",
    buckets=SECONDS_BUCKETS)
_BATCH_BLOCKS = OBS.counter(
    "batch_blocks", "lock-step engine blocks executed")
_BATCH_QUERIES = OBS.counter(
    "batch_queries", "queries served through the batch engine")
_BATCH_OCCUPANCY = OBS.histogram(
    "batch_block_occupancy", "queries per engine block",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512))
_BATCH_ROUNDS = OBS.histogram(
    "batch_block_rounds", "lock-step rounds per engine block")
_BATCH_NDC = OBS.histogram(
    "batch_block_ndc", "distance computations per engine block")
_BATCH_SECONDS = OBS.histogram(
    "batch_block_seconds", "engine block latency in seconds",
    buckets=SECONDS_BUCKETS)


class VisitedTable:
    """O(1)-reset visited marks via version stamping.

    A fresh boolean array per query would cost O(n) per search; instead an
    int32 stamp array is compared against a per-search version counter.
    """

    def __init__(self, n: int):
        self._stamps = np.zeros(n, dtype=np.int32)
        self._version = 0

    def next_epoch(self) -> None:
        """Start a new search; previously set marks become invisible."""
        self._version += 1
        if self._version == np.iinfo(np.int32).max:
            self._stamps[:] = 0
            self._version = 1

    def grow(self, n: int) -> None:
        """Extend capacity to ``n`` nodes."""
        if n > self._stamps.shape[0]:
            extra = np.zeros(n - self._stamps.shape[0], dtype=np.int32)
            self._stamps = np.concatenate([self._stamps, extra])

    def filter_unvisited(self, ids: np.ndarray) -> np.ndarray:
        """Return the subset of ``ids`` not yet visited, marking them visited."""
        mask = self._stamps[ids] != self._version
        fresh = ids[mask]
        self._stamps[fresh] = self._version
        return fresh

    def mark(self, i: int) -> None:
        self._stamps[i] = self._version

    def mark_many(self, ids: np.ndarray) -> None:
        """Mark all ``ids`` visited in one scatter (no per-id loop)."""
        self._stamps[ids] = self._version

    def is_visited(self, i: int) -> bool:
        return self._stamps[i] == self._version


@dataclasses.dataclass
class SearchResult:
    """Outcome of one greedy search.

    ``ids``/``distances`` are the top-k results sorted ascending by distance.
    ``visited_ids``/``visited_distances`` are populated only when the search
    was asked to collect them (used by RFix's candidate expansion and by the
    approximate-NN preprocessing mode) and cover every node whose distance to
    the query was computed.  ``degraded`` is set when a deadline budget
    expired before natural termination: the results are the best found so
    far, not the full-effort answer.
    """

    ids: np.ndarray
    distances: np.ndarray
    n_hops: int = 0
    visited_ids: np.ndarray | None = None
    visited_distances: np.ndarray | None = None
    frontier_peak: int = 0
    degraded: bool = False


def greedy_search(
    dc: DistanceComputer,
    neighbors_fn,
    entry_points,
    query: np.ndarray,
    k: int,
    ef: int,
    visited: VisitedTable | None = None,
    excluded: set[int] | None = None,
    collect_visited: bool = False,
    prepared: bool = False,
    deadline: float | None = None,
) -> SearchResult:
    """Beam search over a directed graph (paper Algorithm 1).

    Parameters
    ----------
    dc:
        Distance computer over the base vectors (counts NDC).
    neighbors_fn:
        ``node_id -> np.ndarray`` of out-neighbors.
    entry_points:
        Iterable of starting node ids.
    k, ef:
        Result count and search list size; ``ef`` is clamped up to ``k``.
    visited:
        Reusable :class:`VisitedTable`; allocated fresh when omitted.
    excluded:
        Node ids barred from the result set (tombstones); they still expand.
    collect_visited:
        Also return every (id, distance) pair evaluated.
    prepared:
        Set True when ``query`` already went through ``dc.prepare_query``.
    deadline:
        Absolute ``time.perf_counter()`` budget; when it passes, the search
        stops expanding and returns best-so-far results flagged
        ``degraded`` (graceful degradation under load).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    telemetry = OBS.enabled
    if telemetry:
        t0 = time.perf_counter()
        ndc0 = dc.ndc
    ef = max(ef, k)
    q = query if prepared else dc.prepare_query(query)
    if visited is None:
        visited = VisitedTable(dc.size)
    # A reused table may predate incremental insertion (dc.append +
    # adjacency.grow); without this, stamping new node ids raises IndexError.
    visited.grow(dc.size)
    visited.next_epoch()

    entry_ids = np.unique(np.asarray(list(entry_points), dtype=np.int64))
    if entry_ids.size == 0:
        raise ValueError("at least one entry point is required")
    visited.mark_many(entry_ids)
    entry_d = dc.to_query(entry_ids, q)

    collect_i: list[np.ndarray] = [entry_ids] if collect_visited else []
    collect_d: list[np.ndarray] = [entry_d] if collect_visited else []

    candidates: list[tuple[float, int]] = []  # min-heap on distance
    results: list[tuple[float, int]] = []  # max-heap via negated distance
    for node, dist in zip(entry_ids.tolist(), entry_d.tolist()):
        heapq.heappush(candidates, (dist, node))
        if excluded is None or node not in excluded:
            heapq.heappush(results, (-dist, node))
    while len(results) > ef:
        heapq.heappop(results)

    n_hops = 0
    degraded = False
    frontier_peak = len(candidates)
    while candidates:
        if deadline is not None and time.perf_counter() > deadline:
            degraded = True
            break
        if len(candidates) > frontier_peak:
            frontier_peak = len(candidates)
        dist_u, u = heapq.heappop(candidates)
        if len(results) >= ef and dist_u > -results[0][0]:
            break
        n_hops += 1
        neigh = neighbors_fn(u)
        if neigh.size == 0:
            continue
        fresh = visited.filter_unvisited(neigh)
        if fresh.size == 0:
            continue
        dists = dc.to_query(fresh, q)
        if collect_visited:
            collect_i.append(fresh)
            collect_d.append(dists)
        if len(results) >= ef:
            bound = -results[0][0]
            keep = dists < bound
            fresh, dists = fresh[keep], dists[keep]
        for node, dist in zip(fresh.tolist(), dists.tolist()):
            if len(results) >= ef and dist >= -results[0][0]:
                continue
            heapq.heappush(candidates, (dist, node))
            if excluded is None or node not in excluded:
                heapq.heappush(results, (-dist, node))
                if len(results) > ef:
                    heapq.heappop(results)

    ordered = sorted((-d, node) for d, node in results)[:k]
    ids = np.array([node for _, node in ordered], dtype=np.int64)
    distances = np.array([d for d, _ in ordered], dtype=np.float64)
    result = SearchResult(ids=ids, distances=distances, n_hops=n_hops,
                          frontier_peak=frontier_peak, degraded=degraded)
    if collect_visited:
        result.visited_ids = np.concatenate(collect_i)
        result.visited_distances = np.concatenate(collect_d)
    if telemetry:
        _SEARCH_QUERIES.inc()
        _SEARCH_HOPS.observe(n_hops)
        _SEARCH_FRONTIER.observe(frontier_peak)
        _SEARCH_NDC.observe(dc.ndc - ndc0)
        _SEARCH_SECONDS.observe(time.perf_counter() - t0)
    return result


class BatchSearchEngine:
    """Lock-step batched beam search over one graph.

    Runs Algorithm 1 for a block of up to ``batch_size`` queries
    simultaneously.  Each round every active query expands its closest
    unexpanded candidate; the unvisited frontier neighbors of the whole
    block are gathered and scored in a single
    :meth:`~repro.distances.DistanceComputer.block_to_queries` call, then
    scattered back into per-query candidate/result pools held as block-wide
    NumPy arrays.  Visited marks use one version-stamped table over the
    flattened ``(block_row, node)`` space, reused (and regrown on demand)
    across calls instead of being allocated per query — memory cost is
    ``batch_size * n_nodes`` int32 stamps.

    **Equivalence.** The engine returns the same (ids, distances, NDC) as
    running :func:`greedy_search` per query: candidate selection uses the
    same (distance, id) order, expansion stops at the same bound, the
    frontier is scored before bound-pruning exactly as the sequential code
    does, and the distance kernel shares its per-row reduction with
    ``to_query``.  The only permitted divergence is the ordering of results
    whose distances are *exactly* equal at the pruning bound, which cannot
    occur for generic float workloads.

    Parameters
    ----------
    dc:
        Distance computer over the base vectors (counts NDC).
    neighbors_fn:
        ``node_id -> np.ndarray`` of out-neighbors.
    entry_points_fn:
        ``prepared_query -> iterable of entry node ids``.
    excluded_fn:
        Nullary callable returning the current excluded set (tombstones) or
        None; evaluated once per block so lazy deletions are honored.
    graph_fn:
        Nullary callable returning a frozen
        :class:`~repro.graphs.csr.CSRGraphView` (anything with
        ``neighbors_block``) or None; evaluated once per block.  When a view
        is returned, the whole frontier is gathered with one bulk CSR call
        instead of one ``neighbors_fn`` call per expanded node; when None
        the engine walks ``neighbors_fn`` as before.  Neighbor order per
        node is identical on either path, so results are unaffected.
    batch_size:
        Queries advanced together per block.
    beam_width:
        Candidates expanded per query per round.  The default 1 preserves
        the sequential equivalence above exactly.  Widths above 1 expand the
        ``beam_width`` closest in-bound candidates each round, which divides
        the number of lock-step rounds (where the per-round Python overhead
        lives) at the cost of some speculative scoring; the scored set is a
        superset of the width-1 set, so with ``collect_visited`` re-ranking
        the wider beam can only help recall.  Termination is unchanged: a
        row finishes when its best unexpanded candidate exceeds the bound.
    """

    def __init__(self, dc, neighbors_fn, entry_points_fn, excluded_fn=None,
                 batch_size: int = 32, graph_fn=None, beam_width: int = 1,
                 entry_points_block_fn=None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if beam_width <= 0:
            raise ValueError(f"beam_width must be positive, got {beam_width}")
        self.dc = dc
        self.neighbors_fn = neighbors_fn
        self.entry_points_fn = entry_points_fn
        # Optional fast path for query-independent entry strategies: called
        # once per block (with the prepared query matrix) instead of once
        # per query, returning entries shared by every row.
        self.entry_points_block_fn = entry_points_block_fn
        self.excluded_fn = excluded_fn
        self.graph_fn = graph_fn
        self.batch_size = batch_size
        self.beam_width = beam_width
        self._visited = VisitedTable(1)
        # Scratch for wide-beam intra-round dedup (see _search_block); holds
        # last-writer positions, read back immediately, so no epoch needed.
        self._dedup = np.empty(0, dtype=np.int32)

    def search_batch(self, queries: np.ndarray, k: int, ef: int,
                     deadline: float | None = None,
                     collect_visited: bool = False,
                     prepared: bool = False) -> list[SearchResult]:
        """Search all ``queries``; returns one :class:`SearchResult` per row.

        ``deadline`` (absolute ``time.perf_counter()``) applies to the whole
        batch: blocks check it each lock-step round and finalize their
        still-active rows best-so-far, flagged ``degraded``, once it passes.
        ``collect_visited`` additionally records every (node, distance)
        scored for each query — the batched counterpart of
        :func:`greedy_search`'s flag, and what the compressed path re-ranks
        from (the visited set is a strict superset of the ef-pool, so an
        exact re-rank over it recovers recall the approximate ordering
        lost, at zero extra traversal cost).  ``prepared`` marks the rows as
        already passed through ``dc.prepare_query`` (the caller built the
        matrix for its own use, e.g. ADC tables), skipping a second
        per-row preparation pass.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if prepared:
            queries = np.atleast_2d(np.asarray(queries))
        else:
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        out: list[SearchResult] = []
        for start in range(0, queries.shape[0], self.batch_size):
            out.extend(self._search_block(queries[start:start + self.batch_size],
                                          k, max(ef, k), deadline,
                                          collect_visited, prepared))
        return out

    def _search_block(self, block: np.ndarray, k: int, ef: int,
                      deadline: float | None = None,
                      collect_visited: bool = False,
                      prepared: bool = False) -> list[SearchResult]:
        dc = self.dc
        n_queries = block.shape[0]
        telemetry = OBS.enabled
        if telemetry:
            t0 = time.perf_counter()
            ndc0 = dc.ndc
        # Graph snapshot for this block, when the provider has one.  Must be
        # resolved *before* the excluded set: an epoch-pinning graph_fn (see
        # repro.serving.ServingSearcher) establishes the block's pinned view
        # here, and its excluded_fn reads tombstones from that same pin — the
        # other order could pair an old exclusion set with a newer graph.
        graph = self.graph_fn() if self.graph_fn is not None else None
        if self.excluded_fn is not None:
            excluded = self.excluded_fn()
        elif graph is not None and hasattr(graph, "excluded"):
            excluded = graph.excluded()
        else:
            excluded = None
        # Exclusion test is on the per-hop hot path: an O(1) mask lookup
        # beats np.isin's sort+searchsorted by an order of magnitude.  The
        # trailing always-False sentinel absorbs (via clip) any node id
        # beyond the mask, e.g. one inserted after the mask was built.
        if excluded:
            excl_arr = np.fromiter(excluded, dtype=np.int64,
                                   count=len(excluded))
            excl_mask = np.zeros(int(excl_arr.max()) + 2, dtype=bool)
            excl_mask[excl_arr] = True
        else:
            excl_mask = None

        if prepared:
            qmat = np.asarray(block)
        else:
            prepare_queries = getattr(dc, "prepare_queries", None)
            if prepare_queries is not None:
                qmat = prepare_queries(block)
            else:
                qmat = np.array([dc.prepare_query(q) for q in block])
        # Block-scoped scoring state: an ADC computer (see
        # repro.quantization.adc.ADCComputer) precomputes this block's
        # per-query lookup tables here, after which every frontier gather is
        # a table fancy-index instead of a full-precision kernel.  Runs
        # before ``dc.size`` is read: the hook may sync freshly appended
        # rows into the code matrix.
        begin_block = getattr(dc, "begin_block", None)
        if begin_block is not None:
            begin_block(qmat)
        n = dc.size

        visited = self._visited
        visited.grow(n_queries * n)
        visited.next_epoch()

        if self.entry_points_block_fn is not None:
            shared = np.unique(np.asarray(
                list(self.entry_points_block_fn(qmat)), dtype=np.int64))
            if shared.size == 0:
                raise ValueError("at least one entry point is required")
            entry_lists = [shared] * n_queries
        else:
            entry_lists = []
            for q in qmat:
                entries = np.unique(np.asarray(list(self.entry_points_fn(q)),
                                               dtype=np.int64))
                if entries.size == 0:
                    raise ValueError("at least one entry point is required")
                entry_lists.append(entries)

        # Block state.  Rows are physically compacted as queries finish;
        # ``alive[row]`` maps back to the original block position (which also
        # keys the visited-table offsets and the prepared-query matrix).
        # Result pools are *partitioned*, not sorted: column ef-1 always holds
        # the ef-th smallest distance (the pruning bound); finish() sorts.
        alive = np.arange(n_queries, dtype=np.int64)
        res_d = np.full((n_queries, ef), np.inf)
        res_id = np.full((n_queries, ef), -1, dtype=np.int64)
        cap = ef + 64
        pool_d = np.full((n_queries, cap), np.inf)        # unexpanded candidates
        pool_id = np.full((n_queries, cap), -1, dtype=np.int64)
        pool_fill = np.zeros(n_queries, dtype=np.int64)   # next free column
        hops = np.zeros(n_queries, dtype=np.int64)
        final: list[SearchResult | None] = [None] * n_queries

        def merge_and_admit(rows, nodes, dists):
            """Fold newly scored (row, node, dist) triples into both pools.

            Mirrors the sequential push loop: results keep the ef best
            non-excluded nodes; the candidate pool admits nodes strictly
            inside the bound the row had *before* this batch (extra
            candidates the evolving sequential bound would have skipped are
            provably never expanded, so outputs are unaffected).
            """
            nonlocal pool_d, pool_id, cap
            a_rows = alive.shape[0]
            pre_bound = res_d[rows, ef - 1]
            # Distances are finite (validated data), so < inf always passes:
            # rows whose result pool is not yet full admit everything.
            admit = dists < pre_bound

            # Result pools: top-ef of old ∪ new non-excluded.
            if excl_mask is not None:
                relevant = admit & ~excl_mask[
                    np.minimum(nodes, excl_mask.size - 1)]
            else:
                relevant = admit
            if relevant.any():
                r_counts = np.bincount(rows[relevant], minlength=a_rows)
                m_rows = np.flatnonzero(r_counts)
                m_counts = r_counts[m_rows]
                m_starts = np.concatenate(([0], np.cumsum(m_counts)[:-1]))
                m_ranks = (np.arange(int(relevant.sum()))
                           - np.repeat(m_starts, m_counts))
                width = int(m_counts.max())
                row_of = np.searchsorted(m_rows, rows[relevant])
                new_d = np.full((m_rows.shape[0], width), np.inf)
                new_id = np.full((m_rows.shape[0], width), -1, dtype=np.int64)
                new_d[row_of, m_ranks] = dists[relevant]
                new_id[row_of, m_ranks] = nodes[relevant]
                cat_d = np.concatenate((res_d[m_rows], new_d), axis=1)
                cat_id = np.concatenate((res_id[m_rows], new_id), axis=1)
                order = np.argpartition(cat_d, ef - 1, axis=1)[:, :ef]
                take = np.arange(m_rows.shape[0])[:, None]
                res_d[m_rows] = cat_d[take, order]
                res_id[m_rows] = cat_id[take, order]

            # Candidate pool admission (bound taken before the merge above).
            if not admit.any():
                return
            p_rows, p_nodes, p_d = rows[admit], nodes[admit], dists[admit]
            p_counts = np.bincount(p_rows, minlength=a_rows)
            need = int((pool_fill + p_counts).max())
            if need > cap:
                pool_d, pool_id = self._compact_pool(pool_d, pool_id,
                                                     res_d[:, ef - 1])
                pool_fill[:] = (pool_id >= 0).sum(axis=1)
                need = int((pool_fill + p_counts).max())
                if need > cap:
                    grow = max(need, 2 * cap) - cap
                    pool_d = np.pad(pool_d, ((0, 0), (0, grow)),
                                    constant_values=np.inf)
                    pool_id = np.pad(pool_id, ((0, 0), (0, grow)),
                                     constant_values=-1)
                    cap = pool_d.shape[1]
            pu = np.flatnonzero(p_counts)
            pc = p_counts[pu]
            p_starts = np.concatenate(([0], np.cumsum(pc)[:-1]))
            p_ranks = np.arange(p_rows.shape[0]) - np.repeat(p_starts, pc)
            cols = pool_fill[p_rows] + p_ranks
            pool_d[p_rows, cols] = p_d
            pool_id[p_rows, cols] = p_nodes
            pool_fill[pu] += pc

        def finish(rows, degraded: bool = False):
            """Finalize ``rows`` (current indices) and drop them from state."""
            nonlocal alive, res_d, res_id, pool_d, pool_id, pool_fill, hops
            # Batched equivalent of each row's mask-then-lexsort((ids, d)):
            # stable-sort columns by id, then stably by distance.  Invalid
            # slots (id -1, distance inf) sink to the end of the distance
            # sort — real distances are finite — so a row's first n_valid
            # columns are exactly its per-row lexsort output.
            sub_id = res_id[rows]
            o1 = np.argsort(sub_id, axis=1, kind="stable")
            d1 = np.take_along_axis(res_d[rows], o1, axis=1)
            i1 = np.take_along_axis(sub_id, o1, axis=1)
            o2 = np.argsort(d1, axis=1, kind="stable")[:, :k]
            d_sorted = np.take_along_axis(d1, o2, axis=1)
            id_sorted = np.take_along_axis(i1, o2, axis=1)
            n_valid = np.minimum((sub_id >= 0).sum(axis=1), k)
            group_hops = hops[rows]
            for j, r in enumerate(rows.tolist()):
                m = int(n_valid[j])
                final[int(alive[r])] = SearchResult(
                    ids=id_sorted[j, :m], distances=d_sorted[j, :m],
                    n_hops=int(group_hops[j]), degraded=degraded)
            keep = np.ones(alive.shape[0], dtype=bool)
            keep[rows] = False
            alive, hops, pool_fill = alive[keep], hops[keep], pool_fill[keep]
            res_d, res_id = res_d[keep], res_id[keep]
            pool_d, pool_id = pool_d[keep], pool_id[keep]

        # Entry points: mark visited, score in one call, seed both pools.
        e_counts = np.array([e.size for e in entry_lists], dtype=np.int64)
        e_rows = np.repeat(np.arange(n_queries, dtype=np.int64), e_counts)
        e_nodes = np.concatenate(entry_lists)
        visited.mark_many(e_rows * n + e_nodes)
        e_dists = dc.block_to_queries(e_nodes, qmat, e_rows).astype(
            np.float64, copy=False)
        # Collection buffers hold original block positions (e_rows and
        # fr_orig below), so row compaction in finish() never remaps them.
        coll_rows = [e_rows] if collect_visited else None
        coll_nodes = [e_nodes] if collect_visited else None
        coll_d = [e_dists] if collect_visited else None
        merge_and_admit(e_rows, e_nodes, e_dists)

        int64_max = np.iinfo(np.int64).max
        rounds = 0
        while alive.shape[0]:
            if deadline is not None and time.perf_counter() > deadline:
                # Budget spent: every still-active row returns best-so-far.
                finish(np.arange(alive.shape[0]), degraded=True)
                break
            rounds += 1
            sel_cols = np.argmin(pool_d, axis=1)
            row_range = np.arange(alive.shape[0])
            best = pool_d[row_range, sel_cols]
            bound = res_d[:, ef - 1]
            done = np.isinf(best) | (best > bound)
            if done.any():
                finish(np.flatnonzero(done))
                if not alive.shape[0]:
                    break
                keep = ~done
                sel_cols, best = sel_cols[keep], best[keep]
                row_range = np.arange(alive.shape[0])
            if self.beam_width == 1:
                # Expand the (distance, id)-minimal unexpanded candidate per
                # row.  argmin picks the first minimal *column*; the
                # sequential heap pops the smallest id among distance ties,
                # so rows with more than one minimal entry are re-selected
                # by id.
                sel_nodes = pool_id[row_range, sel_cols]
                ties = (pool_d == best[:, None]).sum(axis=1) > 1
                if ties.any():
                    multi = np.flatnonzero(ties)
                    masked = np.where(pool_d[multi] == best[multi, None],
                                      pool_id[multi], int64_max)
                    sel_nodes[multi] = masked.min(axis=1)
                    sel_cols[multi] = masked.argmin(axis=1)
                pool_d[row_range, sel_cols] = np.inf
                pool_id[row_range, sel_cols] = -1
                sel_rows = row_range
                hops += 1
            else:
                # Wide beam: expand up to beam_width in-bound candidates per
                # row in one round.  The done-check above guarantees each
                # alive row has at least one (its best ≤ bound).
                W = min(self.beam_width, cap)
                bound = res_d[:, ef - 1]
                part = np.argpartition(pool_d, W - 1, axis=1)[:, :W]
                cand_d = pool_d[row_range[:, None], part]
                # Finiteness matters: an unfilled result pool has bound inf,
                # and inf <= inf would select empty (-1) pool slots.
                valid = np.isfinite(cand_d) & (cand_d <= bound[:, None])
                n_sel = valid.sum(axis=1)
                sel_rows = np.repeat(row_range, n_sel)
                sel_cols = part[valid]              # row-major, matches repeat
                sel_nodes = pool_id[sel_rows, sel_cols]
                pool_d[sel_rows, sel_cols] = np.inf
                pool_id[sel_rows, sel_cols] = -1
                hops += n_sel

            if graph is not None:
                flat_nodes, counts = graph.neighbors_block(sel_nodes)
                if not flat_nodes.size:
                    continue
            else:
                neigh = [self.neighbors_fn(int(u)) for u in sel_nodes]
                counts = np.fromiter((a.size for a in neigh), dtype=np.int64,
                                     count=len(neigh))
                if not counts.sum():
                    continue
                flat_nodes = np.concatenate(neigh)
            flat_rows = np.repeat(sel_rows, counts)
            fresh = visited.filter_unvisited(alive[flat_rows] * n + flat_nodes)
            if not fresh.size:
                continue
            if self.beam_width > 1 and sel_rows.shape[0] > alive.shape[0]:
                # Two expansions of the same row can share a neighbor within
                # one round; filter_unvisited marks after masking, so such
                # duplicates survive it and must be collapsed.  Scatter each
                # key's position into the scratch buffer (last writer wins)
                # and keep only positions that read back — O(n), no sort.
                if self._dedup.shape[0] < n_queries * n:
                    self._dedup = np.empty(n_queries * n, dtype=np.int32)
                pos = np.arange(fresh.shape[0], dtype=np.int32)
                self._dedup[fresh] = pos
                keep_f = self._dedup[fresh] == pos
                if not keep_f.all():
                    fresh = fresh[keep_f]
            fr_orig = fresh // n                      # original block position
            fr_nodes = fresh - fr_orig * n
            fr_rows = np.searchsorted(alive, fr_orig)  # alive is sorted
            dists = dc.block_to_queries(fr_nodes, qmat, fr_orig).astype(
                np.float64, copy=False)
            if collect_visited:
                coll_rows.append(fr_orig)
                coll_nodes.append(fr_nodes)
                coll_d.append(dists)
            merge_and_admit(fr_rows, fr_nodes, dists)

        if collect_visited:
            rows_all = np.concatenate(coll_rows)
            order = np.argsort(rows_all, kind="stable")
            nodes_all = np.concatenate(coll_nodes)[order]
            d_all = np.concatenate(coll_d)[order]
            offsets = np.concatenate(
                ([0], np.cumsum(np.bincount(rows_all, minlength=n_queries))))
            for i in range(n_queries):
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                final[i].visited_ids = nodes_all[lo:hi]
                final[i].visited_distances = d_all[lo:hi]

        if telemetry:
            _BATCH_BLOCKS.inc()
            _BATCH_QUERIES.inc(n_queries)
            _BATCH_OCCUPANCY.observe(n_queries)
            _BATCH_ROUNDS.observe(rounds)
            _BATCH_NDC.observe(dc.ndc - ndc0)
            _BATCH_SECONDS.observe(time.perf_counter() - t0)
        return final  # type: ignore[return-value]

    @staticmethod
    def _compact_pool(pool_d, pool_id, bound):
        """Left-align live pool entries, pruning those beyond the bound.

        Entries strictly outside the current result bound can never be
        expanded (the bound only shrinks), so dropping them preserves the
        sequential semantics while keeping the pool narrow.
        """
        valid = (pool_id >= 0) & (pool_d <= bound[:, None])
        order = np.argsort(~valid, axis=1, kind="stable")
        take = np.arange(pool_d.shape[0])[:, None]
        pool_d = np.where(valid, pool_d, np.inf)[take, order]
        pool_id = np.where(valid, pool_id, -1)[take, order]
        return pool_d, pool_id
