"""Directed adjacency storage with base/extra edge separation.

The paper represents a fixed graph index as ``G = (V, E_base ∪ E_extra)``
(Sec. 5.3): ``E_base`` comes from the underlying index construction (HNSW,
NSG, …) and ``E_extra`` is added by NGFix/RFix.  Extra edges carry their
Escape Hardness value (the paper stores 16 bits per extra edge) which drives
eviction when a node's extra out-degree budget is exhausted, and partial
rebuilds drop only extra edges.  Tombstones implement lazy deletion.

Two read paths coexist:

- the **dynamic** path (``neighbors``/per-node caches) serves construction
  and fixing, where edges mutate constantly;
- the **frozen** path (:meth:`freeze` → :class:`~repro.graphs.csr.CSRGraphView`)
  serves the query hot path: a contiguous CSR snapshot whose bulk gather
  lets the batch engine expand a whole frontier with array ops.  Every
  mutation marks the snapshot dirty; :meth:`traversal` refreezes once reads
  settle (see its docstring), so callers transparently get whichever
  representation is currently profitable.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraphView

_EMPTY = np.empty(0, dtype=np.int64)

# Sentinel EH for edges that must never be evicted (RFix navigation edges).
EH_INFINITE = float("inf")


class ObservedTombstones(set):
    """Tombstone set that mirrors additions into the store's delta overlay.

    Installed by :meth:`AdjacencyStore.attach_overlay` so the serving layer
    sees lazy deletions with the same sequence-number ordering as edge
    mutations.  Removal (``clear`` during compaction) is intentionally not
    logged: the overlay is append-only, and an epoch view excluding an id
    that compaction already unlinked is harmless.
    """

    __slots__ = ("_store",)

    def __init__(self, iterable=(), store: "AdjacencyStore | None" = None):
        super().__init__(iterable)
        self._store = store

    def add(self, node: int) -> None:
        if node not in self:
            super().add(node)
            store = self._store
            if store is not None and store._overlay is not None:
                store._overlay.record_tombstone(node)

    def update(self, *others) -> None:
        for other in others:
            for node in other:
                self.add(node)

# Consecutive clean reads after which a dirty store refreezes its CSR view.
# A fixing loop that alternates search and edge mutation never reaches the
# threshold (refreezing per mutation would cost O(E) each time), while a
# query-serving phase crosses it on its second search and stays frozen.
FREEZE_AFTER_READS = 2


class AdjacencyStore:
    """Per-node base neighbors, extra neighbors (with EH tags), tombstones.

    The combined neighbor array of each node is cached as a NumPy array for
    the dynamic search path and invalidated on mutation; a whole-graph CSR
    snapshot (:meth:`freeze`) serves the batched query path.
    """

    def __init__(self, n_nodes: int):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._base: list[list[int]] = [[] for _ in range(n_nodes)]
        self._extra: list[dict[int, float]] = [{} for _ in range(n_nodes)]
        self._cache: list[np.ndarray | None] = [None] * n_nodes
        self.tombstones: set[int] = set()
        # Ids physically compacted away (edges stripped, row still in the
        # data matrix).  Unlike tombstones this set is never cleared: a
        # compacted id must stay out of search results and out of repair's
        # ground truth forever, or online fixing can re-link ("resurrect")
        # it through the stale data row.
        self.removed: set[int] = set()
        # Freeze bookkeeping: a monotone mutation counter, the per-node stamp
        # of the last mutation that touched each node's out-edges (used by
        # the parallel fixer to validate speculative EH results), the cached
        # frozen view, and the clean-read counter driving refreeze.
        self._mutation_version = 0
        self._node_stamp = np.zeros(n_nodes, dtype=np.int64)
        self._frozen: CSRGraphView | None = None
        self._reads_since_mutation = 0
        # Serving-layer hook: while an overlay is attached, every out-edge
        # mutation and tombstone addition is also logged there so pinned
        # epoch views stay consistent without refreezing.
        self._overlay = None
        # Count of actual O(E) CSR builds — lets benchmarks prove the query
        # path never pays for a refreeze.
        self.n_freezes = 0

    def _touch(self, u: int) -> None:
        """Record a mutation of node ``u``'s out-edges."""
        self._mutation_version += 1
        self._node_stamp[u] = self._mutation_version
        self._frozen = None
        self._reads_since_mutation = 0
        overlay = self._overlay
        if overlay is None:
            self._cache[u] = None
        else:
            # Snapshot the post-mutation combined array: it doubles as the
            # dynamic-path cache and the overlay's frozen per-node record
            # (bit-identical to ``neighbors(u)`` by construction).
            combined = self._base[u] + list(self._extra[u])
            arr = np.array(combined, dtype=np.int64) if combined else _EMPTY
            self._cache[u] = arr
            overlay.record_node(u, arr)

    # -- serving overlay ----------------------------------------------------

    def attach_overlay(self, overlay) -> None:
        """Mirror subsequent mutations into ``overlay`` (serving layer).

        The overlay only sees mutations made *after* attachment; the caller
        (:class:`~repro.serving.EpochManager`) freezes the store first so the
        epoch CSR plus the overlay log always reconstruct the live graph.
        """
        self._overlay = overlay
        if not isinstance(self.tombstones, ObservedTombstones):
            self.tombstones = ObservedTombstones(self.tombstones, self)

    def detach_overlay(self) -> None:
        """Stop mirroring mutations (bulk rebuild ahead)."""
        self._overlay = None

    # -- size bookkeeping ---------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self._base)

    def grow(self, n_new: int) -> None:
        """Append ``n_new`` isolated nodes (for incremental insertion)."""
        if n_new < 0:
            raise ValueError(f"n_new must be non-negative, got {n_new}")
        if n_new == 0:
            return
        self._base.extend([] for _ in range(n_new))
        self._extra.extend({} for _ in range(n_new))
        self._cache.extend([None] * n_new)
        self._node_stamp = np.concatenate(
            [self._node_stamp, np.zeros(n_new, dtype=np.int64)])
        self._mutation_version += 1
        self._frozen = None
        self._reads_since_mutation = 0

    # -- edge mutation --------------------------------------------------------

    def set_base_neighbors(self, u: int, neighbors) -> None:
        """Replace node ``u``'s base neighbor list."""
        self._base[u] = [int(v) for v in neighbors if int(v) != u]
        self._touch(u)

    def add_base_edge(self, u: int, v: int) -> bool:
        """Add base edge u->v; returns False if it already existed."""
        u, v = int(u), int(v)
        if u == v or v in self._base[u]:
            return False
        self._base[u].append(v)
        self._touch(u)
        return True

    def add_extra_edge(self, u: int, v: int, eh: float) -> bool:
        """Add (or re-tag) extra edge u->v carrying Escape Hardness ``eh``.

        Re-adding an existing extra edge keeps the larger EH tag (an edge
        proven hard by any query stays protected).  Returns True if the edge
        is new.
        """
        u, v = int(u), int(v)
        if u == v:
            return False
        existing = self._extra[u].get(v)
        if existing is not None:
            if eh > existing:
                self._extra[u][v] = eh
            return False
        if v in self._base[u]:
            return False
        self._extra[u][v] = eh
        self._touch(u)
        return True

    def remove_extra_edge(self, u: int, v: int) -> bool:
        """Remove extra edge u->v if present."""
        if self._extra[u].pop(v, None) is None:
            return False
        self._touch(u)
        return True

    def evict_lowest_eh(self, u: int) -> tuple[int, float] | None:
        """Drop node ``u``'s extra edge with the smallest EH tag.

        Paper Algorithm 3 lines 13-16: when the extra-degree budget is
        exceeded, edges whose EH is low (i.e. edges that were easy to do
        without) are pruned first.  Infinite-EH edges (RFix) are never
        evicted.  The choice is the lexicographic minimum over ``(eh, v)``,
        so ties on EH deterministically evict the smallest target id — the
        outcome depends only on the edge *set*, never on dict insertion
        order, keeping repair runs reproducible across worker counts.
        Returns the evicted (target, eh) or None.
        """
        best: tuple[float, int] | None = None
        for v, eh in self._extra[u].items():
            if eh == EH_INFINITE:
                continue
            if best is None or (eh, v) < best:
                best = (eh, v)
        if best is None:
            return None
        best_eh, best_v = best
        del self._extra[u][best_v]
        self._touch(u)
        return best_v, best_eh

    # -- reads ----------------------------------------------------------------

    def base_neighbors(self, u: int) -> list[int]:
        """Base neighbors of ``u`` as a defensive copy (safe to mutate)."""
        return list(self._base[u])

    def extra_neighbors(self, u: int) -> dict[int, float]:
        """Extra neighbors of ``u`` mapped to their EH tags (copy)."""
        return dict(self._extra[u])

    def base_neighbors_ro(self, u: int) -> list[int]:
        """Node ``u``'s *internal* base list — read-only, never mutate.

        Hot-path variant of :meth:`base_neighbors`: construction loops read
        neighbor lists thousands of times per node, and the defensive copy
        dominated those call sites.
        """
        return self._base[u]

    def extra_neighbors_ro(self, u: int) -> dict[int, float]:
        """Node ``u``'s *internal* extra dict — read-only, never mutate."""
        return self._extra[u]

    def neighbors(self, u: int) -> np.ndarray:
        """Combined base+extra out-neighbors as an int64 array (cached)."""
        cached = self._cache[u]
        if cached is None:
            combined = self._base[u] + list(self._extra[u])
            cached = np.array(combined, dtype=np.int64) if combined else _EMPTY
            self._cache[u] = cached
        return cached

    def out_degree(self, u: int) -> int:
        return len(self._base[u]) + len(self._extra[u])

    def base_degree(self, u: int) -> int:
        return len(self._base[u])

    def extra_degree(self, u: int) -> int:
        return len(self._extra[u])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._extra[u] or v in self._base[u]

    # -- frozen CSR snapshot ---------------------------------------------------

    @property
    def mutation_version(self) -> int:
        """Monotone counter incremented by every edge mutation."""
        return self._mutation_version

    def last_touched(self, nodes) -> int:
        """Largest mutation stamp among ``nodes``'s out-edge sets.

        ``last_touched(nodes) <= v0`` certifies that no node in ``nodes``
        changed its out-edges after the store was at version ``v0`` — the
        validity condition for Escape Hardness matrices computed against a
        snapshot (EH depends only on the NN set's out-edges).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return 0
        return int(self._node_stamp[nodes].max())

    def freeze(self) -> CSRGraphView:
        """Build (and cache) the CSR snapshot of the combined adjacency.

        Neighbor order per node matches :meth:`neighbors` exactly (base
        edges in list order, then extra edges in insertion order), so any
        search over the view is bit-identical to the dynamic path.
        """
        frozen = self.csr_view()
        if frozen is not None:
            return frozen
        n = self.n_nodes
        indptr = np.zeros(n + 1, dtype=np.int32)
        counts = np.fromiter(
            (len(b) + len(e) for b, e in zip(self._base, self._extra)),
            dtype=np.int32, count=n)
        np.cumsum(counts, out=indptr[1:])
        n_edges = int(indptr[-1])
        indices = np.empty(n_edges, dtype=np.int32)
        edge_eh = np.full(n_edges, np.nan)
        pos = 0
        for base, extra in zip(self._base, self._extra):
            nb = len(base)
            if nb:
                indices[pos:pos + nb] = base
                pos += nb
            if extra:
                ne = len(extra)
                indices[pos:pos + ne] = list(extra.keys())
                edge_eh[pos:pos + ne] = list(extra.values())
                pos += ne
        self._frozen = CSRGraphView(indptr, indices, edge_eh,
                                    store_version=self._mutation_version)
        self.n_freezes += 1
        return self._frozen

    def csr_view(self) -> CSRGraphView | None:
        """The cached frozen view if it is current, else None (no refreeze).

        Guards against ever serving a snapshot whose shape lags the store:
        if the cached view predates a :meth:`grow` (``n_nodes`` mismatch) or
        any edge mutation (``store_version`` mismatch), it is dropped here
        rather than returned — no caller can traverse a stale view even if a
        future code path forgets to invalidate on growth.
        """
        frozen = self._frozen
        if frozen is not None and (frozen.n_nodes != self.n_nodes
                                   or frozen.store_version
                                   != self._mutation_version):
            self._frozen = None
            return None
        return frozen

    def traversal(self) -> CSRGraphView | None:
        """The traversal source the read path should use *right now*.

        Returns the frozen CSR view when one is current.  When the store is
        dirty, each call counts as one clean read; after
        ``FREEZE_AFTER_READS`` consecutive reads with no interleaved
        mutation the store refreezes (an O(E) rebuild) and returns the
        fresh view.  Until then it returns None and the caller falls back
        to the dynamic :meth:`neighbors` path — which keeps fixing loops
        (mutate, search, mutate, …) from thrashing O(E) refreezes.
        """
        frozen = self.csr_view()
        if frozen is not None:
            return frozen
        self._reads_since_mutation += 1
        if self._reads_since_mutation >= FREEZE_AFTER_READS:
            return self.freeze()
        return None

    # -- aggregates -----------------------------------------------------------

    def n_base_edges(self) -> int:
        return sum(len(lst) for lst in self._base)

    def n_extra_edges(self) -> int:
        return sum(len(d) for d in self._extra)

    def average_out_degree(self) -> float:
        return (self.n_base_edges() + self.n_extra_edges()) / self.n_nodes

    def index_size_bytes(self) -> int:
        """Estimated serialized size: 4 B per edge id + 2 B EH per extra edge.

        Mirrors the paper's accounting (Sec. 6.5): NGFix* stores an extra
        16-bit EH per added edge, making it slightly larger per-edge than
        RoarGraph/NSG.
        """
        return 4 * self.n_base_edges() + 6 * self.n_extra_edges()

    # -- maintenance ----------------------------------------------------------

    def drop_extra_fraction(self, fraction: float,
                            rng: np.random.Generator) -> int:
        """Randomly remove ``fraction`` of all extra edges; reset kept EH to 0.

        Implements step (1) of the paper's partial rebuild (Sec. 5.5.1):
        remove a proportion of extra outgoing edges (base edges untouched)
        and reset remaining EH values, because stale hardness estimates no
        longer reflect the current graph.  Infinite-EH edges (RFix navigation
        edges, paper Alg. 4) are never dropped and keep their sentinel tag —
        the same never-evict guarantee :meth:`evict_lowest_eh` upholds.
        Returns the number removed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        targets = [(u, v) for u in range(self.n_nodes)
                   for v, eh in self._extra[u].items() if eh != EH_INFINITE]
        n_drop = int(round(fraction * len(targets)))
        if n_drop:
            for i in rng.choice(len(targets), size=n_drop, replace=False):
                u, v = targets[int(i)]
                del self._extra[u][v]
        for u, v in targets:
            if v in self._extra[u]:
                self._extra[u][v] = 0.0
            self._touch(u)
        return n_drop

    def excluded_ids(self) -> set[int] | None:
        """Ids barred from search results: live tombstones + compacted ids.

        ``None`` when both sets are empty, so hot paths keep their
        no-allocation fast path.
        """
        if self.removed:
            return self.tombstones | self.removed
        return self.tombstones or None

    def remove_node_edges(self, deleted: set[int]) -> None:
        """Physically remove all edges into/out of ``deleted`` nodes.

        Used by the compaction path of deletion (Sec. 5.5.2): once tombstones
        exceed the threshold, a full traversal strips deleted points and
        their incoming edges.  The ids join :attr:`removed` permanently.
        """
        self.removed |= set(deleted)
        for u in range(self.n_nodes):
            if u in deleted:
                self._base[u] = []
                self._extra[u] = {}
                self._touch(u)
                continue
            base = [v for v in self._base[u] if v not in deleted]
            if len(base) != len(self._base[u]):
                self._base[u] = base
                self._touch(u)
            extra_hits = [v for v in self._extra[u] if v in deleted]
            for v in extra_hits:
                del self._extra[u][v]
            if extra_hits:
                self._touch(u)

    def copy(self) -> "AdjacencyStore":
        """Deep copy (used by ablation benches to fork a base graph)."""
        out = AdjacencyStore(self.n_nodes)
        out._base = [list(lst) for lst in self._base]
        out._extra = [dict(d) for d in self._extra]
        out.tombstones = set(self.tombstones)
        out.removed = set(self.removed)
        out._mutation_version = self._mutation_version
        out._node_stamp = self._node_stamp.copy()
        return out
