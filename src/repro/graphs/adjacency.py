"""Directed adjacency storage with base/extra edge separation.

The paper represents a fixed graph index as ``G = (V, E_base ∪ E_extra)``
(Sec. 5.3): ``E_base`` comes from the underlying index construction (HNSW,
NSG, …) and ``E_extra`` is added by NGFix/RFix.  Extra edges carry their
Escape Hardness value (the paper stores 16 bits per extra edge) which drives
eviction when a node's extra out-degree budget is exhausted, and partial
rebuilds drop only extra edges.  Tombstones implement lazy deletion.
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)

# Sentinel EH for edges that must never be evicted (RFix navigation edges).
EH_INFINITE = float("inf")


class AdjacencyStore:
    """Per-node base neighbors, extra neighbors (with EH tags), tombstones.

    The combined neighbor array of each node is cached as a NumPy array for
    the search hot path and invalidated on mutation.
    """

    def __init__(self, n_nodes: int):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._base: list[list[int]] = [[] for _ in range(n_nodes)]
        self._extra: list[dict[int, float]] = [{} for _ in range(n_nodes)]
        self._cache: list[np.ndarray | None] = [None] * n_nodes
        self.tombstones: set[int] = set()

    # -- size bookkeeping ---------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self._base)

    def grow(self, n_new: int) -> None:
        """Append ``n_new`` isolated nodes (for incremental insertion)."""
        if n_new < 0:
            raise ValueError(f"n_new must be non-negative, got {n_new}")
        self._base.extend([] for _ in range(n_new))
        self._extra.extend({} for _ in range(n_new))
        self._cache.extend([None] * n_new)

    # -- edge mutation --------------------------------------------------------

    def set_base_neighbors(self, u: int, neighbors) -> None:
        """Replace node ``u``'s base neighbor list."""
        self._base[u] = [int(v) for v in neighbors if int(v) != u]
        self._cache[u] = None

    def add_base_edge(self, u: int, v: int) -> bool:
        """Add base edge u->v; returns False if it already existed."""
        u, v = int(u), int(v)
        if u == v or v in self._base[u]:
            return False
        self._base[u].append(v)
        self._cache[u] = None
        return True

    def add_extra_edge(self, u: int, v: int, eh: float) -> bool:
        """Add (or re-tag) extra edge u->v carrying Escape Hardness ``eh``.

        Re-adding an existing extra edge keeps the larger EH tag (an edge
        proven hard by any query stays protected).  Returns True if the edge
        is new.
        """
        u, v = int(u), int(v)
        if u == v:
            return False
        existing = self._extra[u].get(v)
        if existing is not None:
            if eh > existing:
                self._extra[u][v] = eh
            return False
        if v in self._base[u]:
            return False
        self._extra[u][v] = eh
        self._cache[u] = None
        return True

    def remove_extra_edge(self, u: int, v: int) -> bool:
        """Remove extra edge u->v if present."""
        if self._extra[u].pop(v, None) is None:
            return False
        self._cache[u] = None
        return True

    def evict_lowest_eh(self, u: int) -> tuple[int, float] | None:
        """Drop node ``u``'s extra edge with the smallest EH tag.

        Paper Algorithm 3 lines 13-16: when the extra-degree budget is
        exceeded, edges whose EH is low (i.e. edges that were easy to do
        without) are pruned first.  Infinite-EH edges (RFix) are never
        evicted.  Returns the evicted (target, eh) or None.
        """
        finite = [(eh, v) for v, eh in self._extra[u].items() if eh != EH_INFINITE]
        if not finite:
            return None
        eh, v = min(finite)
        del self._extra[u][v]
        self._cache[u] = None
        return v, eh

    # -- reads ----------------------------------------------------------------

    def base_neighbors(self, u: int) -> list[int]:
        return list(self._base[u])

    def extra_neighbors(self, u: int) -> dict[int, float]:
        """Extra neighbors of ``u`` mapped to their EH tags (copy)."""
        return dict(self._extra[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Combined base+extra out-neighbors as an int64 array (cached)."""
        cached = self._cache[u]
        if cached is None:
            combined = self._base[u] + list(self._extra[u])
            cached = np.array(combined, dtype=np.int64) if combined else _EMPTY
            self._cache[u] = cached
        return cached

    def out_degree(self, u: int) -> int:
        return len(self._base[u]) + len(self._extra[u])

    def extra_degree(self, u: int) -> int:
        return len(self._extra[u])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._extra[u] or v in self._base[u]

    # -- aggregates -----------------------------------------------------------

    def n_base_edges(self) -> int:
        return sum(len(lst) for lst in self._base)

    def n_extra_edges(self) -> int:
        return sum(len(d) for d in self._extra)

    def average_out_degree(self) -> float:
        return (self.n_base_edges() + self.n_extra_edges()) / self.n_nodes

    def index_size_bytes(self) -> int:
        """Estimated serialized size: 4 B per edge id + 2 B EH per extra edge.

        Mirrors the paper's accounting (Sec. 6.5): NGFix* stores an extra
        16-bit EH per added edge, making it slightly larger per-edge than
        RoarGraph/NSG.
        """
        return 4 * self.n_base_edges() + 6 * self.n_extra_edges()

    # -- maintenance ----------------------------------------------------------

    def drop_extra_fraction(self, fraction: float,
                            rng: np.random.Generator) -> int:
        """Randomly remove ``fraction`` of all extra edges; reset kept EH to 0.

        Implements step (1) of the paper's partial rebuild (Sec. 5.5.1):
        remove a proportion of extra outgoing edges (base edges untouched)
        and reset remaining EH values, because stale hardness estimates no
        longer reflect the current graph.  Infinite-EH edges (RFix navigation
        edges, paper Alg. 4) are never dropped and keep their sentinel tag —
        the same never-evict guarantee :meth:`evict_lowest_eh` upholds.
        Returns the number removed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        targets = [(u, v) for u in range(self.n_nodes)
                   for v, eh in self._extra[u].items() if eh != EH_INFINITE]
        n_drop = int(round(fraction * len(targets)))
        if n_drop:
            for i in rng.choice(len(targets), size=n_drop, replace=False):
                u, v = targets[int(i)]
                del self._extra[u][v]
        for u, v in targets:
            if v in self._extra[u]:
                self._extra[u][v] = 0.0
            self._cache[u] = None
        return n_drop

    def remove_node_edges(self, deleted: set[int]) -> None:
        """Physically remove all edges into/out of ``deleted`` nodes.

        Used by the compaction path of deletion (Sec. 5.5.2): once tombstones
        exceed the threshold, a full traversal strips deleted points and
        their incoming edges.
        """
        for u in range(self.n_nodes):
            if u in deleted:
                self._base[u] = []
                self._extra[u] = {}
                self._cache[u] = None
                continue
            base = [v for v in self._base[u] if v not in deleted]
            if len(base) != len(self._base[u]):
                self._base[u] = base
                self._cache[u] = None
            extra_hits = [v for v in self._extra[u] if v in deleted]
            for v in extra_hits:
                del self._extra[u][v]
            if extra_hits:
                self._cache[u] = None

    def copy(self) -> "AdjacencyStore":
        """Deep copy (used by ablation benches to fork a base graph)."""
        out = AdjacencyStore(self.n_nodes)
        out._base = [list(lst) for lst in self._base]
        out._extra = [dict(d) for d in self._extra]
        out.tombstones = set(self.tombstones)
        return out
