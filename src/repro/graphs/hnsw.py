"""HNSW (Malkov & Yashunin 2020) — baseline and NGFix*'s default base graph.

Full implementation: exponential level assignment, per-layer greedy descent,
RNG-heuristic neighbor selection with pruned-connection backfill, and
bidirectional linking with degree shrinking.  Two details follow the paper's
experimental setup (Sec. 6.1):

- ``single_layer=True`` builds only the bottom layer and searches from the
  dataset medoid — the paper uses just HNSW's base layer as the NGFix base
  graph because upper layers contribute little in high dimensions.
- Incremental :meth:`insert` is supported after construction, which the
  maintenance experiments (Fig. 18) rely on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distances import Metric
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.pruning import rng_prune
from repro.graphs.search import greedy_search
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_positive

_EMPTY = np.empty(0, dtype=np.int64)


class HNSW(GraphIndex):
    """Hierarchical Navigable Small World index.

    Parameters
    ----------
    data, metric:
        Base vectors and similarity metric.
    M:
        Target out-degree on upper layers; the bottom layer allows ``2 * M``.
    ef_construction:
        Beam width while collecting link candidates during insertion.
    single_layer:
        Build only the bottom layer (all nodes at level 0) and enter at the
        medoid, as the paper does for the NGFix base graph.
    keep_pruned:
        Backfill pruned candidates up to the degree budget (hnswlib's
        ``keepPrunedConnections`` heuristic).
    seed:
        Level-assignment randomness.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        M: int = 16,
        ef_construction: int = 100,
        single_layer: bool = False,
        keep_pruned: bool = True,
        seed: int | np.random.Generator | None = 0,
    ):
        check_positive(M, "M")
        check_positive(ef_construction, "ef_construction")
        super().__init__(data, metric)
        self.M = M
        self.M0 = 2 * M
        self.ef_construction = ef_construction
        self.single_layer = single_layer
        self.keep_pruned = keep_pruned
        self._rng = ensure_rng(seed)
        self._mult = 1.0 / math.log(M)
        self._shrink_slack = 4
        self._levels: list[int] = []
        self._upper: list[dict[int, list[int]]] = []  # layers 1..max_level
        self._entry: int | None = None
        self._medoid: int | None = None

        for i in range(self.dc.size):
            self._insert_node(i)

    # -- construction -----------------------------------------------------

    def _assign_level(self) -> int:
        if self.single_layer:
            return 0
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._mult)

    def _layer_neighbors_fn(self, level: int):
        if level == 0:
            return self.adjacency.neighbors
        layer = self._upper[level - 1]

        def fn(u: int) -> np.ndarray:
            lst = layer.get(u)
            return np.array(lst, dtype=np.int64) if lst else _EMPTY

        return fn

    def _descend(self, q: np.ndarray, start: int, from_level: int,
                 to_level: int) -> int:
        """Greedy ef=1 walk from ``from_level`` down to ``to_level`` (exclusive)."""
        cur = start
        cur_d = self.dc.one_to_query(cur, q)
        for level in range(from_level, to_level, -1):
            layer = self._upper[level - 1]
            improved = True
            while improved:
                improved = False
                neigh = layer.get(cur)
                if not neigh:
                    break
                arr = np.array(neigh, dtype=np.int64)
                dists = self.dc.to_query(arr, q)
                j = int(np.argmin(dists))
                if dists[j] < cur_d:
                    cur, cur_d = int(arr[j]), float(dists[j])
                    improved = True
        return cur

    def _select_neighbors(self, u: int, candidate_ids: np.ndarray,
                          candidate_dists: np.ndarray, max_degree: int) -> list[int]:
        """RNG-heuristic selection with optional pruned backfill."""
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        if candidate_dists is None:
            candidate_dists = self.dc.many_between(candidate_ids, u)
        kept = rng_prune(self.dc, u, candidate_ids, max_degree,
                         distances=candidate_dists)
        if self.keep_pruned and len(kept) < max_degree:
            kept_set = set(kept)
            order = np.argsort(candidate_dists, kind="stable")
            for j in order:
                c = int(candidate_ids[j])
                if c != u and c not in kept_set:
                    kept.append(c)
                    kept_set.add(c)
                    if len(kept) >= max_degree:
                        break
        return kept

    def _shrink(self, v: int, level: int) -> None:
        """Re-prune node ``v``'s links on ``level`` back to the degree cap."""
        if level == 0:
            neigh = self.adjacency.base_neighbors_ro(v)
            cap = self.M0
            if len(neigh) <= cap:
                return
            self.adjacency.set_base_neighbors(
                v, self._select_neighbors(v, np.array(neigh), None, cap))
        else:
            layer = self._upper[level - 1]
            neigh = layer.get(v, [])
            if len(neigh) <= self.M:
                return
            layer[v] = self._select_neighbors(v, np.array(neigh), None, self.M)

    def _insert_node(self, new_id: int) -> None:
        level = self._assign_level()
        self._levels.append(level)
        while len(self._upper) < level:
            self._upper.append({})
        for lv in range(1, level + 1):
            self._upper[lv - 1].setdefault(new_id, [])
        self._medoid = None  # invalidated by any insertion

        if self._entry is None:
            self._entry = new_id
            return
        q = self.dc.data[new_id]
        entry = self._entry
        top = self._levels[self._entry]
        if top > level:
            entry = self._descend(q, entry, top, level)

        eps = [entry]
        for lv in range(min(level, top), -1, -1):
            result = greedy_search(
                self.dc, self._layer_neighbors_fn(lv), eps, q,
                k=self.ef_construction, ef=self.ef_construction,
                visited=self._visited, prepared=True,
            )
            cand_ids = result.ids[result.ids != new_id]
            cand_d = result.distances[result.ids != new_id]
            cap = self.M0 if lv == 0 else self.M
            selected = self._select_neighbors(new_id, cand_ids, cand_d, cap)
            if lv == 0:
                self.adjacency.set_base_neighbors(new_id, selected)
            else:
                self._upper[lv - 1][new_id] = list(selected)
            for v in selected:
                if lv == 0:
                    self.adjacency.add_base_edge(v, new_id)
                    # Shrink with a small slack so re-pruning amortizes over
                    # several reverse-edge additions instead of firing on
                    # every one (quality is unaffected: degree only ever
                    # overshoots the cap by the slack).
                    if self.adjacency.base_degree(v) > self.M0 + self._shrink_slack:
                        self._shrink(v, 0)
                else:
                    layer = self._upper[lv - 1]
                    layer.setdefault(v, []).append(new_id)
                    if len(layer[v]) > self.M + self._shrink_slack:
                        self._shrink(v, lv)
            eps = cand_ids.tolist() or [entry]

        if level > self._levels[self._entry]:
            self._entry = new_id

    # -- public API ---------------------------------------------------------

    def insert(self, vector: np.ndarray) -> int:
        """Insert one new vector, returning its id (paper Sec. 5.5.1)."""
        new_id = self.dc.append(vector)
        self.adjacency.grow(1)
        self._visited.grow(self.dc.size)
        self._insert_node(new_id)
        return new_id

    def medoid(self) -> int:
        """Medoid entry point used in single-layer mode (cached)."""
        if self._medoid is None:
            self._medoid = medoid_id(self.dc)
        return self._medoid

    def entry_points(self, query: np.ndarray) -> list[int]:
        if self.single_layer or not self._upper:
            return [self.medoid()]
        top = self._levels[self._entry]
        return [self._descend(query, self._entry, top, 0)]

    def max_level(self) -> int:
        """Highest occupied layer."""
        return max(self._levels) if self._levels else 0
