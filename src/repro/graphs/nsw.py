"""NSW (Malkov et al. 2014) — the navigable-small-world predecessor of HNSW.

Included for completeness of the baseline family (Sec. 3's lineage):
points are inserted sequentially and linked bidirectionally to their ``f``
nearest points found by searching the graph built so far — no occlusion
pruning, no hierarchy.  Long-range links arise organically because early
insertions connect across what later becomes dense space.  Degrees are
unbounded by construction, so NSW graphs are denser than HNSW's and searches
cost more NDC at equal quality — the gap HNSW's pruning closed.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.search import greedy_search
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_positive


class NSW(GraphIndex):
    """Navigable Small World graph.

    Parameters
    ----------
    f:
        Number of bidirectional links per inserted point.
    ef_construction:
        Beam width for the insertion-time search.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        f: int = 10,
        ef_construction: int = 40,
        seed: int | np.random.Generator | None = 0,
    ):
        check_positive(f, "f")
        check_positive(ef_construction, "ef_construction")
        super().__init__(data, metric)
        self.f = f
        self.ef_construction = max(ef_construction, f)
        self._rng = ensure_rng(seed)
        self._medoid: int | None = None
        order = self._rng.permutation(self.size)
        for i in order:
            self._insert(int(i))

    def _insert(self, new_id: int) -> None:
        if not hasattr(self, "_inserted"):
            self._inserted: list[int] = []
        if not self._inserted:
            self._inserted.append(new_id)
            return
        entry = self._inserted[0]
        result = greedy_search(
            self.dc, self.adjacency.neighbors, [entry],
            self.dc.data[new_id], k=self.f, ef=self.ef_construction,
            visited=self._visited, prepared=True)
        for v in result.ids.tolist():
            if v != new_id:
                self.adjacency.add_base_edge(new_id, v)
                self.adjacency.add_base_edge(v, new_id)
        self._inserted.append(new_id)

    def medoid(self) -> int:
        if self._medoid is None:
            self._medoid = medoid_id(self.dc)
        return self._medoid

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self.medoid()]
