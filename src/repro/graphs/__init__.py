"""Graph-index substrates: storage, search, pruning, and baseline indexes.

Everything the paper's evaluation depends on is implemented here from
scratch:

- :mod:`adjacency` — edge storage with separate *base* and *extra* edge sets
  (NGFix adds extra edges tagged with their Escape Hardness) and tombstones.
- :mod:`search` — the greedy/beam search of Algorithm 1 with NDC counting.
- :mod:`pruning` — RNG / MRNG / α / τ edge-selection rules shared by all
  builders, plus the EH-based and random pruning variants of Fig. 14.
- :mod:`hnsw`, :mod:`nsg`, :mod:`tau_mng`, :mod:`roargraph` — the paper's
  baselines (HNSW also serves as NGFix*'s default base graph).
- :mod:`exact` — exact RNG/MRNG/k-NN graphs at toy scale for theory checks.
"""

from repro.graphs.adjacency import AdjacencyStore
from repro.graphs.csr import CSRGraphView
from repro.graphs.search import SearchResult, VisitedTable, greedy_search
from repro.graphs.base import GraphIndex, BruteForceIndex
from repro.graphs.pruning import (
    rng_prune,
    mrng_prune,
    alpha_prune,
    tau_prune,
    random_prune,
)
from repro.graphs.kgraph import brute_force_knn_graph, nn_descent_knn_graph
from repro.graphs.hnsw import HNSW
from repro.graphs.nsg import NSG
from repro.graphs.tau_mng import TauMNG
from repro.graphs.roargraph import RoarGraph
from repro.graphs.vamana import Vamana, RobustVamana
from repro.graphs.nsw import NSW
from repro.graphs.entry import (
    EntryStrategy,
    MedoidEntry,
    RandomEntry,
    CentroidsEntry,
    MultiEntryIndex,
)
from repro.graphs.exact import exact_rng, exact_mrng, exact_knn_graph, delaunay_graph

__all__ = [
    "AdjacencyStore",
    "CSRGraphView",
    "SearchResult",
    "VisitedTable",
    "greedy_search",
    "GraphIndex",
    "BruteForceIndex",
    "rng_prune",
    "mrng_prune",
    "alpha_prune",
    "tau_prune",
    "random_prune",
    "brute_force_knn_graph",
    "nn_descent_knn_graph",
    "HNSW",
    "NSG",
    "TauMNG",
    "RoarGraph",
    "Vamana",
    "RobustVamana",
    "NSW",
    "EntryStrategy",
    "MedoidEntry",
    "RandomEntry",
    "CentroidsEntry",
    "MultiEntryIndex",
    "exact_rng",
    "exact_mrng",
    "exact_knn_graph",
    "delaunay_graph",
]
