"""Edge-selection (pruning) rules shared by all graph builders.

All rules take a node ``u`` and a candidate list sorted ascending by distance
to ``u`` and return the retained neighbor ids (at most ``max_degree``):

- :func:`rng_prune` / :func:`mrng_prune` — the Relative Neighborhood Graph
  occlusion rule used by HNSW's heuristic and NSG: a candidate is kept only
  if no already-kept neighbor is closer to it than ``u`` is.  Geometrically
  this enforces a >60° angle between kept edges, the dispersion property RFix
  relies on (Sec. 5.4).
- :func:`alpha_prune` — Vamana/DiskANN's relaxation: occluders must be
  ``alpha``× closer, retaining longer detour edges for robustness.
- :func:`tau_prune` — the τ-MNG rule (Peng et al. 2023): an occluder only
  prunes when it is closer by a 3τ margin, preserving τ-monotonic paths.
- :func:`random_prune` / EH-aware eviction — the Fig. 14 ablation
  comparators for NGFix's extra-edge budget.
"""

from __future__ import annotations

import numpy as np

from repro.distances import DistanceComputer, pairwise_distances
from repro.utils.rng_utils import ensure_rng


# Candidate pools larger than this are truncated to the closest entries
# before pruning; occlusion rules essentially never keep candidates that far
# down the list, and the cap bounds the pairwise matrix below.
_POOL_CAP = 1024


def _occlusion_prune(
    dc: DistanceComputer,
    candidates: list[tuple[float, int]],
    max_degree: int,
    margin_fn,
) -> list[int]:
    """Generic occlusion rule: keep c unless some kept s occludes it.

    All candidate-to-candidate distances are computed as one pairwise matrix
    (pool sizes are modest — see ``_POOL_CAP``), so the selection loop does
    only array lookups.
    """
    if not candidates:
        return []
    ids = np.fromiter((c for _, c in candidates), dtype=np.int64,
                      count=len(candidates))
    d_u = np.fromiter((d for d, _ in candidates), dtype=np.float64,
                      count=len(candidates))
    between = pairwise_distances(dc.data[ids], dc.data[ids], dc.metric)
    kept_rows = np.empty(max_degree, dtype=np.int64)
    kept: list[int] = []
    for i in range(ids.shape[0]):
        if len(kept) >= max_degree:
            break
        if kept and (between[kept_rows[: len(kept)], i] < margin_fn(d_u[i])).any():
            continue
        kept_rows[len(kept)] = i
        kept.append(int(ids[i]))
    return kept


def _sorted_candidates(
    dc: DistanceComputer, u: int, candidate_ids, distances=None,
) -> list[tuple[float, int]]:
    ids = np.asarray(list(candidate_ids), dtype=np.int64)
    ids = ids[ids != u]
    if ids.size == 0:
        return []
    ids = np.unique(ids)
    if distances is None:
        dists = dc.many_between(ids, u)
    else:
        lookup = {int(i): float(d) for i, d in zip(candidate_ids, distances)}
        dists = np.array([lookup[int(i)] for i in ids])
    order = np.argsort(dists, kind="stable")[:_POOL_CAP]
    return [(float(dists[j]), int(ids[j])) for j in order]


def rng_prune(dc: DistanceComputer, u: int, candidate_ids, max_degree: int,
              distances=None) -> list[int]:
    """RNG rule: keep c iff every kept s satisfies d(s, c) >= d(u, c)."""
    candidates = _sorted_candidates(dc, u, candidate_ids, distances)
    return _occlusion_prune(dc, candidates, max_degree, lambda d: d)


# MRNG's local selection rule coincides with the RNG occlusion test applied
# to a candidate set sorted by distance (Fu et al. 2019 build NSG this way).
mrng_prune = rng_prune


def alpha_prune(dc: DistanceComputer, u: int, candidate_ids, max_degree: int,
                alpha: float = 1.2, distances=None) -> list[int]:
    """Vamana α-rule: s occludes c only when alpha * d(s, c) < d(u, c)."""
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    candidates = _sorted_candidates(dc, u, candidate_ids, distances)
    return _occlusion_prune(dc, candidates, max_degree, lambda d: d / alpha)


def tau_prune(dc: DistanceComputer, u: int, candidate_ids, max_degree: int,
              tau: float = 0.0, distances=None) -> list[int]:
    """τ-MNG rule: s occludes c only when d(s, c) < d(u, c) - 3τ.

    With τ=0 this reduces to the RNG rule; larger τ keeps more (longer)
    edges, buying τ-monotonicity of search paths at higher degree.
    """
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    candidates = _sorted_candidates(dc, u, candidate_ids, distances)
    return _occlusion_prune(dc, candidates, max_degree, lambda d: d - 3.0 * tau)


def rng_prune_backfill(dc: DistanceComputer, u: int, candidate_ids,
                       max_degree: int, distances=None) -> list[int]:
    """RNG rule, then backfill nearest pruned candidates up to the budget.

    This is the selection HNSW's ``keepPrunedConnections`` heuristic and
    RoarGraph's neighbor lists use: occlusion picks the well-spread core and
    the remaining slots go to the closest rejected candidates, keeping the
    out-degree near the budget instead of collapsing on tightly clustered
    pools.
    """
    candidates = _sorted_candidates(dc, u, candidate_ids, distances)
    kept = _occlusion_prune(dc, candidates, max_degree, lambda d: d)
    if len(kept) < max_degree:
        kept_set = set(kept)
        for _, c in candidates:
            if c not in kept_set:
                kept.append(c)
                kept_set.add(c)
                if len(kept) >= max_degree:
                    break
    return kept


def random_prune(candidate_ids, max_degree: int,
                 seed: int | np.random.Generator | None = 0) -> list[int]:
    """Keep a uniform random subset — the Fig. 14 'random pruning' baseline."""
    rng = ensure_rng(seed)
    ids = list(dict.fromkeys(int(c) for c in candidate_ids))
    if len(ids) <= max_degree:
        return ids
    picks = rng.choice(len(ids), size=max_degree, replace=False)
    return [ids[int(i)] for i in picks]
