"""k-NN graph construction: exact (batched brute force) and NN-descent.

The k-NN graph is the raw material for NSG/τ-MNG construction and the exact
variant doubles as ground truth for base-to-base neighborhoods.  NN-descent
(Dong et al.) is provided for larger corpora: it converges to a high-recall
approximate k-NN graph in a few neighbor-of-neighbor refinement rounds
without any O(n²) pass.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, pairwise_distances
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix, check_positive


def brute_force_knn_graph(
    data: np.ndarray,
    k: int,
    metric: Metric | str,
    batch_size: int = 256,
) -> np.ndarray:
    """Exact k-NN lists for every base point (self excluded); shape (n, k)."""
    data = check_matrix(data, "data")
    check_positive(k, "k")
    metric = Metric.parse(metric)
    n = data.shape[0]
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")
    out = np.empty((n, k), dtype=np.int64)
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        dists = pairwise_distances(data[start:stop], data, metric)
        rows = np.arange(start, stop)
        dists[np.arange(stop - start), rows] = np.inf  # mask self
        part = np.argpartition(dists, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(dists, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        out[start:stop] = np.take_along_axis(part, order, axis=1)
    return out


def nn_descent_knn_graph(
    data: np.ndarray,
    k: int,
    metric: Metric | str,
    n_iters: int = 8,
    sample_rate: float = 0.8,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Approximate k-NN graph via NN-descent; shape (n, k).

    Starts from random neighbor lists and repeatedly proposes
    neighbors-of-neighbors, keeping each point's best k.  Terminates early
    when an iteration improves fewer than 0.1% of entries.
    """
    data = check_matrix(data, "data")
    check_positive(k, "k")
    metric = Metric.parse(metric)
    rng = ensure_rng(seed)
    n = data.shape[0]
    if k >= n:
        raise ValueError(f"k={k} must be < n={n}")

    # neighbor lists as (distance, id) arrays kept sorted ascending
    ids = np.empty((n, k), dtype=np.int64)
    for i in range(n):
        choices = rng.choice(n - 1, size=k, replace=False)
        choices[choices >= i] += 1  # skip self
        ids[i] = choices
    dists = np.empty((n, k), dtype=np.float64)
    for i in range(n):
        dists[i] = pairwise_distances(data[i:i + 1], data[ids[i]], metric)[0]
    order = np.argsort(dists, axis=1, kind="stable")
    ids = np.take_along_axis(ids, order, axis=1)
    dists = np.take_along_axis(dists, order, axis=1)

    for _ in range(n_iters):
        updates = 0
        for i in range(n):
            if rng.random() > sample_rate:
                continue
            # candidate pool: neighbors of neighbors (forward direction)
            pool = np.unique(ids[ids[i]].ravel())
            pool = pool[pool != i]
            known = set(ids[i].tolist())
            pool = np.array([c for c in pool.tolist() if c not in known], dtype=np.int64)
            if pool.size == 0:
                continue
            cand_d = pairwise_distances(data[i:i + 1], data[pool], metric)[0]
            worst = dists[i, -1]
            better = cand_d < worst
            if not better.any():
                continue
            merged_ids = np.concatenate([ids[i], pool[better]])
            merged_d = np.concatenate([dists[i], cand_d[better]])
            top = np.argsort(merged_d, kind="stable")[:k]
            new_ids = merged_ids[top]
            updates += int((new_ids != ids[i]).sum())
            ids[i] = new_ids
            dists[i] = merged_d[top]
        if updates < max(1, int(0.001 * n * k)):
            break
    return ids
