"""τ-MNG (Peng et al. 2023) — the title-collision paper's index, as baseline.

τ-MG keeps an edge (u, v) unless an occluder w is closer to v than u is *by a
3τ margin*; the monotonicity margin guarantees greedy search finds the exact
NN of any query within τ of the base data.  τ-MNG approximates τ-MG the same
way NSG approximates MRNG: candidates come from a greedy search around each
node and the τ-rule is applied locally.  Construction is NSG's pipeline with
:func:`repro.graphs.pruning.tau_prune` substituted, which is exactly how the
reference implementation differs from NSG.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric
from repro.graphs.kgraph import brute_force_knn_graph
from repro.graphs.nsg import NSG
from repro.graphs.pruning import tau_prune
from repro.graphs.search import greedy_search


class TauMNG(NSG):
    """τ-Monotonic Neighborhood Graph.

    ``tau`` is expressed in the library's comparison-distance units.  The
    paper recommends dataset-dependent τ around the typical query-to-base
    displacement; :meth:`suggest_tau` estimates that from a query sample.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        R: int = 32,
        L: int = 64,
        knn_k: int = 32,
        tau: float = 0.01,
    ):
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        self.tau = tau
        super().__init__(data, metric, R=R, L=L, knn_k=knn_k)

    def _build(self) -> None:
        knn = brute_force_knn_graph(self.dc.data, self.knn_k, self.metric)

        def knn_neighbors(u: int) -> np.ndarray:
            return knn[u]

        for u in range(self.size):
            result = greedy_search(
                self.dc, knn_neighbors, [self._medoid], self.dc.data[u],
                k=self.L, ef=self.L, visited=self._visited,
                collect_visited=True, prepared=True,
            )
            pool = np.unique(np.concatenate([result.visited_ids, knn[u]]))
            pool = pool[pool != u]
            self.adjacency.set_base_neighbors(
                u, tau_prune(self.dc, u, pool, self.R, tau=self.tau))

        self._inter_insert(tau_prune, tau=self.tau)
        self._ensure_connected(knn)

    @staticmethod
    def suggest_tau(gt_first_distances: np.ndarray) -> float:
        """Heuristic τ: half the median query-to-1NN distance of a sample."""
        return float(np.median(np.asarray(gt_first_distances)) / 2.0)
