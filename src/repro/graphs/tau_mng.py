"""τ-MNG (Peng et al. 2023) — the title-collision paper's index, as baseline.

τ-MG keeps an edge (u, v) unless an occluder w is closer to v than u is *by a
3τ margin*; the monotonicity margin guarantees greedy search finds the exact
NN of any query within τ of the base data.  τ-MNG approximates τ-MG the same
way NSG approximates MRNG: candidates come from a greedy search around each
node and the τ-rule is applied locally.  Construction is NSG's pipeline with
:func:`repro.graphs.pruning.tau_prune` substituted, which is exactly how the
reference implementation differs from NSG.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric
from repro.graphs.nsg import NSG
from repro.graphs.pruning import tau_prune


class TauMNG(NSG):
    """τ-Monotonic Neighborhood Graph.

    ``tau`` is expressed in the library's comparison-distance units.  The
    paper recommends dataset-dependent τ around the typical query-to-base
    displacement; :meth:`suggest_tau` estimates that from a query sample.

    Construction reuses NSG's pipeline wholesale (including its parallel
    candidate-collection stage); only the occlusion rule differs.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        R: int = 32,
        L: int = 64,
        knn_k: int = 32,
        tau: float = 0.01,
        n_workers: int = 1,
    ):
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        self.tau = tau
        super().__init__(data, metric, R=R, L=L, knn_k=knn_k,
                         n_workers=n_workers)

    def _prune_rule(self, u: int, pool) -> list[int]:
        return tau_prune(self.dc, u, pool, self.R, tau=self.tau)

    @staticmethod
    def suggest_tau(gt_first_distances: np.ndarray) -> float:
        """Heuristic τ: half the median query-to-1NN distance of a sample."""
        return float(np.median(np.asarray(gt_first_distances)) / 2.0)
