"""Exact proximity graphs at toy scale, for theory checks and ablations.

These O(n² · degree) constructions are only meant for corpora of a few
hundred points.  They back the paper's theoretical discussion (Sec. 3-4):

- :func:`exact_rng` — undirected Relative Neighborhood Graph (empty-lune
  rule), used by the Fig. 13(c) "reconstruct RNG" ablation.
- :func:`exact_mrng` — directed Monotonic RNG (Fu et al. 2019): per node,
  candidates in ascending distance, kept unless an already-kept neighbor
  lies in the lune.  Greedy search on MRNG provably finds the exact NN of
  any query coinciding with a base point.
- :func:`exact_knn_graph` — thin wrapper over the brute-force k-NN builder.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, pairwise_distances
from repro.graphs.kgraph import brute_force_knn_graph
from repro.utils.validation import check_matrix


def exact_knn_graph(data: np.ndarray, k: int, metric: Metric | str) -> np.ndarray:
    """Exact k-NN lists (alias of the batched brute-force builder)."""
    return brute_force_knn_graph(data, k, metric)


def exact_rng(data: np.ndarray, metric: Metric | str = Metric.L2) -> list[set[int]]:
    """Undirected RNG: edge (u, v) iff no w has max(d(u,w), d(w,v)) < d(u,v)."""
    data = check_matrix(data, "data")
    metric = Metric.parse(metric)
    n = data.shape[0]
    dist = pairwise_distances(data, data, metric)
    edges: list[set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            duv = dist[u, v]
            occluders = np.maximum(dist[u], dist[v]) < duv
            occluders[u] = occluders[v] = False
            if not occluders.any():
                edges[u].add(v)
                edges[v].add(u)
    return edges


def exact_mrng(data: np.ndarray, metric: Metric | str = Metric.L2) -> list[list[int]]:
    """Directed MRNG out-neighbor lists (Fu et al. 2019 Definition 4)."""
    data = check_matrix(data, "data")
    metric = Metric.parse(metric)
    n = data.shape[0]
    dist = pairwise_distances(data, data, metric)
    out: list[list[int]] = []
    for u in range(n):
        order = np.argsort(dist[u], kind="stable")
        kept: list[int] = []
        for v in order:
            v = int(v)
            if v == u:
                continue
            duv = dist[u, v]
            # v is skipped iff some kept w lies strictly inside the lune.
            if any(dist[w, v] < duv and dist[u, w] < duv for w in kept):
                continue
            kept.append(v)
        out.append(kept)
    return out


def delaunay_graph(points: np.ndarray) -> list[set[int]]:
    """Undirected Delaunay adjacency for low-dimensional points (SciPy).

    The theoretical anchor of Sec. 3: greedy search on the Delaunay graph
    provably finds the exact nearest neighbor of *any* query, and Theorem 3
    shows removing any DG edge creates a query whose neighborhood graph
    falls apart — the argument for why per-query (historical) fixing is the
    only tractable route in high dimensions, where DG densifies toward the
    complete graph.
    """
    from scipy.spatial import Delaunay  # imported lazily: only toy scale

    points = check_matrix(points, "points", dtype=np.float64)
    if points.shape[1] > 3:
        raise ValueError("delaunay_graph is for 2-D/3-D theory checks only")
    tri = Delaunay(points)
    edges: list[set[int]] = [set() for _ in range(points.shape[0])]
    for simplex in tri.simplices:
        for i in range(len(simplex)):
            for j in range(i + 1, len(simplex)):
                a, b = int(simplex[i]), int(simplex[j])
                edges[a].add(b)
                edges[b].add(a)
    return edges


def is_strongly_connected(neighbors: list, n: int, start: int = 0) -> bool:
    """True if every node is reachable from ``start`` (directed BFS)."""
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in neighbors[u]:
            if v not in seen:
                seen.add(v)
                stack.append(int(v))
    return len(seen) == n
