"""Frozen CSR snapshot of an :class:`~repro.graphs.adjacency.AdjacencyStore`.

The dynamic store keeps per-node Python lists/dicts so NGFix/RFix can mutate
edges cheaply, but the query hot path only *reads* the graph.  A
:class:`CSRGraphView` packs the combined base+extra adjacency into two
contiguous ``int32`` arrays (``indptr``/``indices``, DiskANN/Vamana style)
plus a parallel per-edge EH-tag array, so

- per-node reads are an O(1) slice (no cache checks, no dict walks), and
- a whole batch frontier is gathered with one :meth:`neighbors_block` call
  instead of one Python call per expanded node.

Neighbor order inside a node is exactly the dynamic store's order (base
edges first, then extra edges in insertion order), which keeps every search
over the view bit-identical to a search over the live store.  The view is a
*snapshot*: mutations to the originating store do not show through — the
store marks its cached view dirty and refreezes on demand (see
``AdjacencyStore.traversal``).
"""

from __future__ import annotations

import numpy as np

_EMPTY_I32 = np.empty(0, dtype=np.int32)


class CSRGraphView:
    """Read-only CSR adjacency: ``indices[indptr[u]:indptr[u+1]]`` = out(u).

    ``edge_eh[e]`` carries the Escape Hardness tag of the extra edge stored
    at ``indices[e]`` (NaN for base edges, which carry no tag).  The view is
    callable with a node id so it can stand in for any ``neighbors_fn``.

    ``store_version`` records the originating store's mutation counter at
    freeze time; the store compares it on every ``csr_view()`` so a snapshot
    that lags the live graph (e.g. across a ``grow``) can never be served.
    """

    __slots__ = ("indptr", "indices", "edge_eh", "n_nodes", "n_edges",
                 "store_version")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 edge_eh: np.ndarray, store_version: int = -1):
        if indptr.ndim != 1 or indptr.shape[0] == 0:
            raise ValueError("indptr must be a non-empty 1-d array")
        if indices.shape[0] != edge_eh.shape[0]:
            raise ValueError("indices and edge_eh must align")
        self.indptr = indptr
        self.indices = indices
        self.edge_eh = edge_eh
        self.n_nodes = indptr.shape[0] - 1
        self.n_edges = indices.shape[0]
        self.store_version = store_version

    def neighbors(self, u: int) -> np.ndarray:
        """Out-neighbors of ``u`` as a zero-copy slice of ``indices``."""
        return self.indices[self.indptr[u]:self.indptr[u + 1]]

    # A view is drop-in for the ``neighbors_fn`` callables search takes.
    __call__ = neighbors

    def neighbors_block(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bulk gather: concatenated out-neighbors of ``nodes`` + per-node counts.

        Returns ``(flat, counts)`` where ``flat`` holds the neighbors of
        ``nodes[0]``, then ``nodes[1]``, … (each in CSR order) and
        ``counts[i]`` is the out-degree of ``nodes[i]``.  One fancy-index
        gather replaces a Python-level call per node.
        """
        starts = self.indptr[nodes]
        counts = (self.indptr[np.asarray(nodes) + 1] - starts).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I32, counts
        # Position e of the output maps to starts[i] + (e - first_out[i]) for
        # the node i owning slot e; np.repeat broadcasts the per-node offset.
        first_out = np.concatenate(([0], np.cumsum(counts)[:-1]))
        flat_pos = np.repeat(starts - first_out, counts) + np.arange(total)
        return self.indices[flat_pos], counts

    def out_degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    def extra_edge_mask(self) -> np.ndarray:
        """Boolean mask over edges: True where the edge carries an EH tag."""
        return ~np.isnan(self.edge_eh)

    def nbytes(self) -> int:
        """Memory footprint of the snapshot arrays."""
        return self.indptr.nbytes + self.indices.nbytes + self.edge_eh.nbytes
