"""NSG (Fu et al. 2019) — Navigating Spreading-out Graph baseline.

Construction follows the paper's pipeline: build a k-NN graph, then for each
node collect candidates by greedy-searching the node's own vector from the
medoid (recording everything visited), apply the MRNG occlusion rule capped
at degree ``R``, and finally grow a spanning tree from the medoid so every
node is reachable.  Search always enters at the medoid.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.distances import Metric
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.kgraph import brute_force_knn_graph
from repro.graphs.pruning import mrng_prune
from repro.graphs.search import greedy_search
from repro.utils.validation import check_positive

_EMPTY = np.empty(0, dtype=np.int64)


class NSG(GraphIndex):
    """Navigating Spreading-out Graph.

    Parameters
    ----------
    R:
        Maximum out-degree of the final graph.
    L:
        Search list size used while collecting pruning candidates.
    knn_k:
        Neighbor count of the bootstrap k-NN graph.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        R: int = 32,
        L: int = 64,
        knn_k: int = 32,
    ):
        check_positive(R, "R")
        check_positive(L, "L")
        super().__init__(data, metric)
        self.R = R
        self.L = max(L, R)
        self.knn_k = min(knn_k, self.size - 1)
        self._medoid = medoid_id(self.dc)
        self._build()

    def _build(self) -> None:
        knn = brute_force_knn_graph(self.dc.data, self.knn_k, self.metric)

        def knn_neighbors(u: int) -> np.ndarray:
            return knn[u]

        # Candidate collection + MRNG pruning per node.
        for u in range(self.size):
            result = greedy_search(
                self.dc, knn_neighbors, [self._medoid], self.dc.data[u],
                k=self.L, ef=self.L, visited=self._visited,
                collect_visited=True, prepared=True,
            )
            pool = np.unique(np.concatenate([result.visited_ids, knn[u]]))
            pool = pool[pool != u]
            self.adjacency.set_base_neighbors(
                u, mrng_prune(self.dc, u, pool, self.R))

        self._inter_insert(mrng_prune)
        self._ensure_connected(knn)

    def _inter_insert(self, prune_fn, **prune_kwargs) -> None:
        """NSG's reverse-edge pass: every selected edge u->v offers u as a
        neighbor of v, re-pruning v's list when it overflows R.  Without
        this pass clustered data yields near-tree graphs with poor recall."""
        for u in range(self.size):
            for v in self.adjacency.base_neighbors(u):
                neigh_v = self.adjacency.base_neighbors(v)
                if u in neigh_v:
                    continue
                if len(neigh_v) < self.R:
                    self.adjacency.add_base_edge(v, u)
                else:
                    merged = prune_fn(self.dc, v, neigh_v + [u], self.R,
                                      **prune_kwargs)
                    if u in merged:
                        self.adjacency.set_base_neighbors(v, merged)

    def _ensure_connected(self, knn: np.ndarray) -> None:
        """Spanning-tree step: link unreachable nodes from their nearest
        reached k-NN (or the medoid as a last resort), then re-expand."""
        reached = np.zeros(self.size, dtype=bool)
        queue = deque([self._medoid])
        reached[self._medoid] = True
        while queue:
            u = queue.popleft()
            for v in self.adjacency.neighbors(u):
                if not reached[v]:
                    reached[v] = True
                    queue.append(int(v))
        for u in range(self.size):
            if reached[u]:
                continue
            anchors = [int(v) for v in knn[u] if reached[v]]
            anchor = anchors[0] if anchors else self._medoid
            self.adjacency.add_base_edge(anchor, u)
            # Everything reachable from u is now reachable from the tree.
            queue = deque([u])
            reached[u] = True
            while queue:
                w = queue.popleft()
                for v in self.adjacency.neighbors(w):
                    if not reached[v]:
                        reached[v] = True
                        queue.append(int(v))

    def medoid(self) -> int:
        """The fixed entry point."""
        return self._medoid

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self._medoid]
