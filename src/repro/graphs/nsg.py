"""NSG (Fu et al. 2019) — Navigating Spreading-out Graph baseline.

Construction follows the paper's pipeline: build a k-NN graph, then for each
node collect candidates by greedy-searching the node's own vector from the
medoid (recording everything visited), apply the MRNG occlusion rule capped
at degree ``R``, and finally grow a spanning tree from the medoid so every
node is reachable.  Search always enters at the medoid.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.distances import Metric
from repro.graphs.base import GraphIndex, medoid_id
from repro.graphs.kgraph import brute_force_knn_graph
from repro.graphs.pruning import mrng_prune
from repro.graphs.search import greedy_search
from repro.utils.parallel import chunk_bounds, effective_workers, parallel_map
from repro.utils.validation import check_positive

_EMPTY = np.empty(0, dtype=np.int64)


class NSG(GraphIndex):
    """Navigating Spreading-out Graph.

    Parameters
    ----------
    R:
        Maximum out-degree of the final graph.
    L:
        Search list size used while collecting pruning candidates.
    knn_k:
        Neighbor count of the bootstrap k-NN graph.
    n_workers:
        Fork-pool width for the per-node candidate-collection stage (the
        bulk of construction time); the built graph is identical for any
        value.  The reverse-edge and connectivity passes mutate the graph
        as they scan and stay serial.
    """

    def __init__(
        self,
        data: np.ndarray,
        metric: Metric | str,
        R: int = 32,
        L: int = 64,
        knn_k: int = 32,
        n_workers: int = 1,
    ):
        check_positive(R, "R")
        check_positive(L, "L")
        super().__init__(data, metric)
        self.R = R
        self.L = max(L, R)
        self.knn_k = min(knn_k, self.size - 1)
        self.n_workers = n_workers
        self._medoid = medoid_id(self.dc)
        self._build()

    def _prune_rule(self, u: int, pool) -> list[int]:
        """Edge-selection rule applied to a node's candidate pool.

        Subclasses swap the occlusion rule (τ-MNG) without re-implementing
        the construction pipeline.
        """
        return mrng_prune(self.dc, u, pool, self.R)

    def _build(self) -> None:
        knn = brute_force_knn_graph(self.dc.data, self.knn_k, self.metric)

        def knn_neighbors(u: int) -> np.ndarray:
            return knn[u]

        # Candidate collection + pruning per node.  Each node searches its
        # own vector over the *static* k-NN graph, so the stage is
        # embarrassingly parallel: chunks run on a fork pool, each returning
        # its neighbor lists plus its distance-count delta (workers restore
        # the counter they touched; the master re-applies deltas in order so
        # NDC accounting matches a serial run exactly).
        def chunk(bounds: tuple[int, int]):
            start, stop = bounds
            ndc0 = self.dc.ndc
            lists = []
            for u in range(start, stop):
                result = greedy_search(
                    self.dc, knn_neighbors, [self._medoid], self.dc.data[u],
                    k=self.L, ef=self.L, visited=self._visited,
                    collect_visited=True, prepared=True,
                )
                pool = np.unique(np.concatenate([result.visited_ids, knn[u]]))
                pool = pool[pool != u]
                lists.append(self._prune_rule(u, pool))
            ndc_delta = self.dc.ndc - ndc0
            self.dc.ndc = ndc0
            return lists, ndc_delta

        workers = effective_workers(self.n_workers)
        size = max(1, -(-self.size // (4 * workers))) if workers > 1 else self.size
        bounds = chunk_bounds(self.size, size)
        for (start, stop), (lists, ndc_delta) in zip(
                bounds, parallel_map(chunk, bounds, n_workers=self.n_workers)):
            self.dc.ndc += ndc_delta
            for u, selected in zip(range(start, stop), lists):
                self.adjacency.set_base_neighbors(u, selected)

        self._inter_insert()
        self._ensure_connected(knn)

    def _inter_insert(self) -> None:
        """NSG's reverse-edge pass: every selected edge u->v offers u as a
        neighbor of v, re-pruning v's list when it overflows R.  Without
        this pass clustered data yields near-tree graphs with poor recall."""
        for u in range(self.size):
            # The body only mutates v's lists (v != u), so iterating u's
            # internal list directly is safe.
            for v in self.adjacency.base_neighbors_ro(u):
                neigh_v = self.adjacency.base_neighbors_ro(v)
                if u in neigh_v:
                    continue
                if len(neigh_v) < self.R:
                    self.adjacency.add_base_edge(v, u)
                else:
                    merged = self._prune_rule(v, neigh_v + [u])
                    if u in merged:
                        self.adjacency.set_base_neighbors(v, merged)

    def _ensure_connected(self, knn: np.ndarray) -> None:
        """Spanning-tree step: link unreachable nodes from their nearest
        reached k-NN (or the medoid as a last resort), then re-expand."""
        reached = np.zeros(self.size, dtype=bool)
        queue = deque([self._medoid])
        reached[self._medoid] = True
        while queue:
            u = queue.popleft()
            for v in self.adjacency.neighbors(u):
                if not reached[v]:
                    reached[v] = True
                    queue.append(int(v))
        for u in range(self.size):
            if reached[u]:
                continue
            anchors = [int(v) for v in knn[u] if reached[v]]
            anchor = anchors[0] if anchors else self._medoid
            self.adjacency.add_base_edge(anchor, u)
            # Everything reachable from u is now reachable from the tree.
            queue = deque([u])
            reached[u] = True
            while queue:
                w = queue.popleft()
                for v in self.adjacency.neighbors(w):
                    if not reached[v]:
                        reached[v] = True
                        queue.append(int(v))

    def medoid(self) -> int:
        """The fixed entry point."""
        return self._medoid

    def entry_points(self, query: np.ndarray) -> list[int]:
        return [self._medoid]
