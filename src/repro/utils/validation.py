"""Argument validation helpers shared across the public API.

Validation failures raise ``ValueError``/``TypeError`` with the offending
argument named, so misuse surfaces at the call site instead of deep inside a
search loop.
"""

from __future__ import annotations

import numpy as np


def check_matrix(x: np.ndarray, name: str, dtype=np.float32) -> np.ndarray:
    """Validate a 2-D numeric matrix and return it as C-contiguous ``dtype``."""
    arr = np.ascontiguousarray(x, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or Inf")
    return arr


def check_vector(x: np.ndarray, name: str, dim: int | None = None, dtype=np.float32) -> np.ndarray:
    """Validate a 1-D vector (optionally of fixed dimension)."""
    arr = np.ascontiguousarray(x, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(f"{name} must have dimension {dim}, got {arr.shape[0]}")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or Inf")
    return arr


def check_positive(value: float, name: str, strict: bool = True) -> None:
    """Require ``value`` > 0 (or >= 0 when ``strict`` is False)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_fraction(value: float, name: str) -> None:
    """Require ``value`` in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
