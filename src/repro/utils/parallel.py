"""Fork-based worker pool for read-only data-parallel offline stages.

The offline pipeline (ground truth, per-node pruning in graph construction,
NGFix preprocessing/EH) is embarrassingly parallel over items that read large
shared arrays (base vectors, a static adjacency snapshot) and return small
results.  Worker processes are created with the ``fork`` start method, so all
inputs are inherited copy-on-write — nothing is pickled *into* workers, and
the mapped callable may be an arbitrary closure.  Only results travel back.

Determinism contract: :func:`parallel_map` returns results in input order and
every chunk is processed by a pure function of its item, so a parallel run is
*bit-identical* to the serial fallback.  Callers that need aligned numerics
(e.g. batched GEMM ground truth) must chunk on the same boundaries serially
and in parallel — :func:`chunk_bounds` is the shared splitter.

Workers never nest: a ``parallel_map`` issued from inside a worker silently
degrades to serial, as does any call when ``fork`` is unavailable (non-POSIX)
or ``n_workers <= 1``.
"""

from __future__ import annotations

import multiprocessing as mp

# The callable being mapped, published for forked workers.  Module-global so
# the fork snapshot carries it; doubles as the nesting/reentrancy guard.
_WORK_FN = None


def _invoke(item):
    return _WORK_FN(item)


def fork_available() -> bool:
    """Whether fork-based pools can run on this platform."""
    return "fork" in mp.get_all_start_methods()


def effective_workers(n_workers: int | None) -> int:
    """The worker count a stage will actually use (1 = serial)."""
    if n_workers is None or n_workers <= 1 or not fork_available():
        return 1
    if _WORK_FN is not None:  # already inside a worker
        return 1
    return int(n_workers)


def chunk_bounds(n_items: int, chunk_size: int) -> list[tuple[int, int]]:
    """Deterministic ``[start, stop)`` chunk boundaries covering ``n_items``.

    The same boundaries must be used by the serial and the parallel code
    path of a stage so per-chunk numerics (batched GEMMs) agree bitwise.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [(start, min(start + chunk_size, n_items))
            for start in range(0, n_items, chunk_size)]


def parallel_map(fn, items, n_workers: int | None = 1) -> list:
    """``[fn(x) for x in items]`` across ``n_workers`` forked processes.

    Results come back in input order regardless of completion order.  With
    ``n_workers <= 1``, a single item, fork unavailable, or when already
    inside a worker, runs serially in-process (no pool, no overhead).

    ``fn`` may close over arbitrarily large state (vectors, graphs): workers
    inherit it via fork and never send it back.  ``fn`` must not *mutate*
    shared state for the master's benefit — mutations stay in the worker.
    Each item is dispatched individually (``chunksize=1``), so ``items``
    should be coarse chunks, not single elements.
    """
    global _WORK_FN
    items = list(items)
    workers = min(effective_workers(n_workers), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    _WORK_FN = fn
    try:
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_invoke, items, chunksize=1)
    finally:
        _WORK_FN = None
