"""Seeded random-number helpers.

Every stochastic component in the library accepts ``seed`` (or an existing
``numpy.random.Generator``) so that index builds, dataset generation, and
benchmarks are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts an existing Generator (returned as-is), an int seed, or ``None``
    (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used where parallel or per-component streams must not correlate (e.g. one
    stream per synthetic cluster).
    """
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.integers(0, 2**63 - 1, size=n)]
