"""Bit-matrix utilities for transitive-closure computations.

The Escape Hardness algorithm (paper Algorithm 2) maintains a boolean
reachability matrix over the top-K neighbors of a query and repeatedly
re-closes it as vertices are added.  The paper's C++ implementation uses
``std::bitset`` rows; here each row is a Python ``int`` used as a bitset,
which gives the same word-parallel OR semantics (and is the fastest pure
Python representation for dense boolean rows of a few hundred bits).
"""

from __future__ import annotations

import numpy as np


class BitMatrix:
    """A square boolean matrix with int-bitset rows.

    ``rows[i]`` has bit ``j`` set iff entry ``(i, j)`` is True.  Supports the
    operations needed by incremental transitive closure: get/set single bits,
    OR-ing one row into another, and a Warshall closure pass.
    """

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = size
        self.rows = [0] * size

    def set(self, i: int, j: int) -> None:
        """Set entry (i, j) to True."""
        self.rows[i] |= 1 << j

    def clear(self, i: int, j: int) -> None:
        """Set entry (i, j) to False."""
        self.rows[i] &= ~(1 << j)

    def get(self, i: int, j: int) -> bool:
        """Return entry (i, j)."""
        return bool((self.rows[i] >> j) & 1)

    def or_row(self, dst: int, src: int) -> bool:
        """OR row ``src`` into row ``dst``; return True if ``dst`` changed."""
        before = self.rows[dst]
        after = before | self.rows[src]
        self.rows[dst] = after
        return after != before

    def row_ones(self, i: int) -> list[int]:
        """Return the column indices set in row ``i`` (ascending)."""
        ones = []
        row = self.rows[i]
        j = 0
        while row:
            if row & 1:
                ones.append(j)
            row >>= 1
            j += 1
        return ones

    def count_row(self, i: int) -> int:
        """Return the number of set bits in row ``i``."""
        return self.rows[i].bit_count()

    def all_set(self, active: list[int] | None = None) -> bool:
        """Return True if every (i, j) pair over ``active`` indices is set.

        ``active`` defaults to all indices.  Diagonal entries are required
        too, so callers should seed ``set(i, i)`` for reflexive relations.
        """
        idx = range(self.size) if active is None else active
        mask = 0
        for j in idx:
            mask |= 1 << j
        return all(self.rows[i] & mask == mask for i in idx)

    def warshall_closure(self, active: list[int] | None = None) -> None:
        """Close the matrix transitively over the ``active`` vertex set.

        Runs the Floyd–Warshall boolean closure: for each pivot ``w``, any row
        that can reach ``w`` absorbs ``w``'s row.  With int-bitset rows each
        absorb is one big-int OR, i.e. O(size / wordsize) machine words.
        """
        idx = list(range(self.size)) if active is None else active
        rows = self.rows
        for w in idx:
            w_bit = 1 << w
            w_row = rows[w]
            for i in idx:
                if i != w and rows[i] & w_bit:
                    rows[i] |= w_row

    def copy(self) -> BitMatrix:
        """Return a deep copy."""
        out = BitMatrix(self.size)
        out.rows = list(self.rows)
        return out

    def to_array(self) -> np.ndarray:
        """Return the matrix as a dense ``(size, size)`` boolean ndarray."""
        out = np.zeros((self.size, self.size), dtype=bool)
        for i in range(self.size):
            row = self.rows[i]
            j = 0
            while row:
                if row & 1:
                    out[i, j] = True
                row >>= 1
                j += 1
        return out

    @classmethod
    def from_array(cls, arr: np.ndarray) -> BitMatrix:
        """Build a BitMatrix from a dense boolean array."""
        arr = np.asarray(arr, dtype=bool)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(f"expected square 2-D array, got shape {arr.shape}")
        out = cls(arr.shape[0])
        for i in range(arr.shape[0]):
            bits = 0
            for j in np.flatnonzero(arr[i]):
                bits |= 1 << int(j)
            out.rows[i] = bits
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self.size == other.size and self.rows == other.rows

    def __repr__(self) -> str:
        return f"BitMatrix(size={self.size}, ones={sum(r.bit_count() for r in self.rows)})"
