"""Shared low-level helpers: bitsets, seeded RNG, validation, index IO."""

from repro.utils.bitset import BitMatrix
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import (
    check_matrix,
    check_vector,
    check_positive,
    check_fraction,
)

__all__ = [
    "BitMatrix",
    "ensure_rng",
    "check_matrix",
    "check_vector",
    "check_positive",
    "check_fraction",
]
