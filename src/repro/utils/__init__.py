"""Shared low-level helpers: bitsets, seeded RNG, validation, parallel map."""

from repro.utils.bitset import BitMatrix
from repro.utils.rng_utils import ensure_rng
from repro.utils.parallel import (
    chunk_bounds,
    effective_workers,
    fork_available,
    parallel_map,
)
from repro.utils.validation import (
    check_matrix,
    check_vector,
    check_positive,
    check_fraction,
)

__all__ = [
    "BitMatrix",
    "ensure_rng",
    "chunk_bounds",
    "effective_workers",
    "fork_available",
    "parallel_map",
    "check_matrix",
    "check_vector",
    "check_positive",
    "check_fraction",
]
