"""The Dataset container shared by examples, tests, and benchmarks."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.distances import Metric


@dataclasses.dataclass
class Dataset:
    """A base corpus plus historical (train) and held-out (test) queries.

    Mirrors the paper's Table 1 layout: each dataset has base vectors, a
    historical query set used to *fix* the graph, and disjoint test queries
    used only for evaluation.  ``id_queries`` optionally carries in-distribution
    queries for the Fig. 10 experiment (ID queries on cross-modal data).
    """

    name: str
    base: np.ndarray
    train_queries: np.ndarray
    test_queries: np.ndarray
    metric: Metric
    modality: str = "synthetic"
    id_queries: np.ndarray | None = None
    extra: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        self.metric = Metric.parse(self.metric)
        for field in ("base", "train_queries", "test_queries"):
            arr = np.ascontiguousarray(getattr(self, field), dtype=np.float32)
            if arr.ndim != 2:
                raise ValueError(f"{field} must be 2-D, got shape {arr.shape}")
            setattr(self, field, arr)
        dims = {self.base.shape[1], self.train_queries.shape[1], self.test_queries.shape[1]}
        if len(dims) != 1:
            raise ValueError(f"dimension mismatch across base/train/test: {dims}")
        if self.id_queries is not None:
            self.id_queries = np.ascontiguousarray(self.id_queries, dtype=np.float32)
            if self.id_queries.shape[1] != self.base.shape[1]:
                raise ValueError("id_queries dimension differs from base")

    @property
    def n(self) -> int:
        """Number of base vectors."""
        return self.base.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self.base.shape[1]

    def subset(self, n_base: int | None = None, n_train: int | None = None,
               n_test: int | None = None) -> "Dataset":
        """A prefix-sliced copy, for quickly shrinking workloads in tests."""
        return Dataset(
            name=self.name,
            base=self.base[: n_base or self.n],
            train_queries=self.train_queries[: n_train or len(self.train_queries)],
            test_queries=self.test_queries[: n_test or len(self.test_queries)],
            metric=self.metric,
            modality=self.modality,
            id_queries=self.id_queries,
            extra=dict(self.extra),
        )

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n={self.n}, dim={self.dim}, "
            f"train={len(self.train_queries)}, test={len(self.test_queries)}, "
            f"metric={self.metric.value}, modality={self.modality!r})"
        )
