"""Named dataset registry mirroring the paper's Table 1 (scaled down).

Each entry maps a registry name to a generator reproducing one paper
dataset's *workload character* (metric, modality, OOD-ness, drift), at a size
a pure-Python substrate can index in seconds.  See DESIGN.md for the
substitution rationale; :func:`dataset_statistics` regenerates the Table 1
rows for the scaled datasets.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.datasets.crossmodal import CrossModalConfig, make_cross_modal_dataset
from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import make_single_modal_dataset
from repro.distances import Metric


def _text2image(seed: int, scale: float) -> Dataset:
    # Paper: Text-to-Image10M, 200-d, inner product, text->image.
    config = CrossModalConfig(
        n_base=int(4000 * scale), n_train=int(1000 * scale), n_test=int(200 * scale),
        dim=32, n_clusters=16, cluster_std=0.15, gap_scale=0.9,
        query_spread=0.45, n_facets=2,
        metric=Metric.INNER_PRODUCT, n_id_queries=int(200 * scale), seed=seed,
    )
    return make_cross_modal_dataset("text2image-sim", config)


def _laion(seed: int, scale: float) -> Dataset:
    # Paper: LAION10M, 512-d CLIP, cosine, text->image.
    config = CrossModalConfig(
        n_base=int(4000 * scale), n_train=int(1000 * scale), n_test=int(200 * scale),
        dim=48, n_clusters=20, cluster_std=0.12, gap_scale=1.0,
        query_spread=0.4, n_facets=3,
        metric=Metric.COSINE, n_id_queries=int(200 * scale), seed=seed + 1,
    )
    return make_cross_modal_dataset("laion-sim", config)


def _webvid(seed: int, scale: float) -> Dataset:
    # Paper: WebVid2.5M, 512-d CLIP, cosine, text->video (smaller corpus).
    config = CrossModalConfig(
        n_base=int(2500 * scale), n_train=int(600 * scale), n_test=int(150 * scale),
        dim=48, n_clusters=12, cluster_std=0.15, gap_scale=0.85,
        query_spread=0.4, n_facets=2,
        metric=Metric.COSINE, seed=seed + 2,
    )
    return make_cross_modal_dataset("webvid-sim", config)


def _mainsearch(seed: int, scale: float) -> Dataset:
    # Paper: MainSearch (e-commerce), 256-d, inner product, limited history,
    # ~10% of newer queries drift away from the older workload.
    config = CrossModalConfig(
        n_base=int(4000 * scale), n_train=int(400 * scale), n_test=int(300 * scale),
        dim=32, n_clusters=24, cluster_std=0.12, gap_scale=1.1,
        query_spread=0.55, n_facets=3,
        metric=Metric.INNER_PRODUCT, drift_fraction=0.1, drift_gap_scale=0.8,
        seed=seed + 3,
    )
    return make_cross_modal_dataset("mainsearch-sim", config)


def _sift(seed: int, scale: float) -> Dataset:
    # Paper: SIFT10M, 128-d, Euclidean, single-modal.
    return make_single_modal_dataset(
        "sift-sim", n=int(4000 * scale), dim=32, n_train=int(400 * scale),
        n_test=int(200 * scale), metric=Metric.L2, n_clusters=24,
        cluster_std=0.3, query_noise=0.1, hard_fraction=0.1, seed=seed + 4,
    )


def _deep(seed: int, scale: float) -> Dataset:
    # Paper: DEEP10M, 96-d GoogLeNet features, cosine, single-modal.
    return make_single_modal_dataset(
        "deep-sim", n=int(4000 * scale), dim=24, n_train=int(400 * scale),
        n_test=int(200 * scale), metric=Metric.COSINE, n_clusters=20,
        cluster_std=0.25, query_noise=0.08, hard_fraction=0.1, seed=seed + 5,
    )


_REGISTRY: dict[str, Callable[[int, float], Dataset]] = {
    "text2image-sim": _text2image,
    "laion-sim": _laion,
    "webvid-sim": _webvid,
    "mainsearch-sim": _mainsearch,
    "sift-sim": _sift,
    "deep-sim": _deep,
}

CROSS_MODAL_NAMES = ("text2image-sim", "laion-sim", "webvid-sim", "mainsearch-sim")
SINGLE_MODAL_NAMES = ("sift-sim", "deep-sim")


def list_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_REGISTRY)


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> Dataset:
    """Generate the named dataset.

    ``scale`` multiplies all corpus/query counts (e.g. ``scale=0.25`` for a
    quick test-sized variant); ``seed`` re-rolls the generation randomness.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return _REGISTRY[name](seed, scale)


@dataclasses.dataclass
class DatasetStats:
    """One Table 1 row."""

    name: str
    n_base: int
    n_test: int
    n_train: int
    dim: int
    metric: str
    modality: str


def dataset_statistics(names: list[str] | None = None, seed: int = 0,
                       scale: float = 1.0) -> list[DatasetStats]:
    """Regenerate Table 1 ("statistics of the datasets") for the registry."""
    rows = []
    for name in names or list_datasets():
        ds = load_dataset(name, seed=seed, scale=scale)
        rows.append(DatasetStats(
            name=ds.name, n_base=ds.n, n_test=len(ds.test_queries),
            n_train=len(ds.train_queries), dim=ds.dim,
            metric=ds.metric.value, modality=ds.modality,
        ))
    return rows
