"""Distribution-gap measurements used to characterize OOD queries.

Section 2 of the paper: the Wasserstein distance measures the gap between the
query and base *distributions*, and the Mahalanobis distance measures how far
an individual vector sits from a distribution.  These are reproduced here so
the synthetic datasets' OOD-ness can be quantified the same way (and asserted
in tests: cross-modal queries must score far higher than held-out base
points).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix


def mahalanobis_to_distribution(
    points: np.ndarray,
    reference: np.ndarray,
    ridge: float = 1e-3,
) -> np.ndarray:
    """Mahalanobis distance of each row of ``points`` to ``reference``'s fit.

    The reference distribution is summarized by its sample mean and (ridge-
    regularized) covariance; the ridge keeps the inverse stable when the
    reference has fewer rows than dimensions.
    """
    points = check_matrix(points, "points")
    reference = check_matrix(reference, "reference")
    mean = reference.mean(axis=0)
    cov = np.cov(reference, rowvar=False).astype(np.float64)
    cov[np.diag_indices_from(cov)] += ridge
    inv = np.linalg.inv(cov)
    centered = points.astype(np.float64) - mean
    sq = np.einsum("ij,jk,ik->i", centered, inv, centered)
    return np.sqrt(np.maximum(sq, 0.0))


def sliced_wasserstein(
    a: np.ndarray,
    b: np.ndarray,
    n_projections: int = 64,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Sliced Wasserstein-1 distance between two empirical distributions.

    High-dimensional Wasserstein is approximated by averaging the 1-D
    Wasserstein distance over random unit projections — the standard sliced
    estimator, adequate for comparing gap magnitudes between workloads.
    """
    a = check_matrix(a, "a")
    b = check_matrix(b, "b")
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
    rng = ensure_rng(seed)
    directions = rng.standard_normal((n_projections, a.shape[1]))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    total = 0.0
    for direction in directions:
        total += stats.wasserstein_distance(a @ direction, b @ direction)
    return total / n_projections


def ood_report(queries: np.ndarray, base: np.ndarray,
               seed: int | np.random.Generator | None = 0) -> dict:
    """Summary of how OOD ``queries`` are relative to ``base``.

    Returns the sliced Wasserstein distance query-vs-base, a same-distribution
    control (base split in half), and mean Mahalanobis scores for queries vs a
    held-out base half.  ``is_ood`` applies the paper's qualitative criterion:
    the query distribution is far from base relative to base-internal spread.
    """
    rng = ensure_rng(seed)
    base = check_matrix(base, "base")
    half = base.shape[0] // 2
    perm = rng.permutation(base.shape[0])
    base_a, base_b = base[perm[:half]], base[perm[half:]]
    w_query = sliced_wasserstein(queries, base, seed=rng)
    w_control = sliced_wasserstein(base_a, base_b, seed=rng)
    m_query = float(np.mean(mahalanobis_to_distribution(queries, base_a)))
    m_control = float(np.mean(mahalanobis_to_distribution(base_b, base_a)))
    return {
        "wasserstein_query_vs_base": w_query,
        "wasserstein_base_control": w_control,
        "mahalanobis_query_mean": m_query,
        "mahalanobis_base_mean": m_control,
        # OOD criterion: the query distribution sits far from base relative to
        # base-internal spread.  Sliced Wasserstein is the primary signal
        # (same-distribution query sets land near 1x the control even with
        # perturbation noise; modality-gap sets land at 5-7x).  Mahalanobis is
        # a weak secondary check because clustered sphere data already gives
        # held-out base points large scores.
        "is_ood": bool(w_query > 4.0 * w_control and m_query > 1.02 * m_control),
    }
