"""Cross-modal dataset simulator with an explicit modality gap.

The paper's central failure mode is cross-modal retrieval: base vectors (one
modality, e.g. images) and query vectors (another modality, e.g. text) are
produced by different encoders and, despite contrastive alignment, sit in two
separated regions of the shared space — the *modality gap* (Liang et al.
2022, who show the gap is approximately a constant offset between two narrow
cones).  This module reproduces that geometry:

- base vectors  = Gaussian mixture on the unit sphere,
- OOD queries   = samples matched to a base cluster, displaced along a fixed
  random gap direction and given extra dispersion, then re-normalized,
- ID queries    = perturbed base points (for the Fig. 10 experiment),
- drifted queries (MainSearch-style) = a fraction of test queries displaced
  along a *second* gap direction, modelling workload drift the paper reports
  (~10% of newer-period queries far from the older workload).

The resulting query distribution is measurably OOD (see
:mod:`repro.datasets.distribution`), and its nearest-neighbor lists in the
base data span multiple clusters — exactly the condition under which greedy
search on base-built graphs under-recalls and NGFix has edges to add.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import make_clustered_data, perturb_base_points
from repro.distances import Metric
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_fraction, check_positive


@dataclasses.dataclass
class CrossModalConfig:
    """Generation parameters for one simulated cross-modal dataset.

    ``gap_scale`` controls how far queries sit from the base manifold (the
    modality gap magnitude); ``query_spread`` controls how dispersed queries
    are around their matched cluster center — larger values scatter a query's
    true NNs across clusters, producing harder queries.
    """

    n_base: int = 4000
    n_train: int = 400
    n_test: int = 200
    dim: int = 32
    n_clusters: int = 12
    cluster_std: float = 0.22
    gap_scale: float = 0.9
    query_spread: float = 0.45
    n_facets: int = 2
    metric: Metric | str = Metric.COSINE
    drift_fraction: float = 0.0
    drift_gap_scale: float = 0.7
    n_id_queries: int = 0
    seed: int = 0

    def __post_init__(self):
        self.metric = Metric.parse(self.metric)
        check_positive(self.n_base, "n_base")
        check_positive(self.dim, "dim")
        check_fraction(self.drift_fraction, "drift_fraction")


def _gap_queries(
    centers: np.ndarray,
    n_queries: int,
    gap_vector: np.ndarray,
    spread: float,
    n_facets: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Queries matched to blends of cluster centers, displaced by the gap.

    ``n_facets`` > 1 anchors each query between several clusters (a text
    query describing multiple visual concepts).  Its true nearest neighbors
    then split across those clusters — precisely the scattered-NN condition
    that makes a query's QNG poorly connected on base-built graphs.
    """
    dim = centers.shape[1]
    anchors = np.empty((n_queries, dim), dtype=np.float32)
    for i in range(n_queries):
        picks = rng.choice(centers.shape[0], size=min(n_facets, centers.shape[0]),
                           replace=False)
        weights = rng.dirichlet(np.full(len(picks), 1.0)).astype(np.float32)
        anchors[i] = weights @ centers[picks]
    noise = spread * rng.standard_normal((n_queries, dim)).astype(np.float32)
    queries = anchors + noise + gap_vector
    queries /= np.maximum(np.linalg.norm(queries, axis=1, keepdims=True), 1e-12)
    return queries.astype(np.float32)


def make_cross_modal_dataset(name: str, config: CrossModalConfig) -> Dataset:
    """Build a cross-modal dataset per ``config``.

    Train and test queries come from the same generative process but disjoint
    random draws (the paper deduplicates test queries against history).  When
    ``config.drift_fraction`` > 0, that fraction of *test* queries uses a
    second gap direction, unseen in the history — the MainSearch workload
    drift scenario.
    """
    rng = ensure_rng(config.seed)
    base = make_clustered_data(
        config.n_base, config.dim, config.n_clusters, config.cluster_std, rng,
        normalize=True,
    )
    # Recover the centers used: regenerate deterministically instead of
    # re-clustering — make_clustered_data draws centers first from the same
    # stream, so draw our own center set here for query matching.
    centers = rng.standard_normal((config.n_clusters, config.dim)).astype(np.float32)
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    # Project centers to the empirical base manifold: snap each to its nearest
    # base point so query NN lists are anchored in real data regions.
    sims = centers @ base.T
    centers = base[np.argmax(sims, axis=1)]

    gap = rng.standard_normal(config.dim).astype(np.float32)
    gap *= config.gap_scale / np.linalg.norm(gap)

    train = _gap_queries(centers, config.n_train, gap, config.query_spread,
                         config.n_facets, rng)
    test = _gap_queries(centers, config.n_test, gap, config.query_spread,
                        config.n_facets, rng)

    n_drift = int(round(config.drift_fraction * config.n_test))
    if n_drift:
        drift_gap = rng.standard_normal(config.dim).astype(np.float32)
        drift_gap *= config.drift_gap_scale / np.linalg.norm(drift_gap)
        drifted = _gap_queries(centers, n_drift, gap + drift_gap,
                               config.query_spread, config.n_facets, rng)
        test = np.vstack([test[: config.n_test - n_drift], drifted])

    id_queries = None
    if config.n_id_queries:
        id_queries = perturb_base_points(base, config.n_id_queries, 0.08, rng)
        id_queries /= np.maximum(np.linalg.norm(id_queries, axis=1, keepdims=True), 1e-12)

    return Dataset(
        name=name,
        base=base,
        train_queries=train,
        test_queries=test,
        metric=config.metric,
        modality="cross-modal",
        id_queries=id_queries,
        extra={"gap_vector": gap, "config": config},
    )
