"""Clustered synthetic vector generators (single-modal workloads).

These stand in for SIFT/DEEP in the paper's single-modal experiments
(Fig. 11): real descriptor datasets are strongly clustered, and queries are
drawn from the same distribution as the base data, so almost all queries are
easy and graph repair should yield only modest gains.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.distances import Metric
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_positive, check_fraction


def make_clustered_data(
    n: int,
    dim: int,
    n_clusters: int = 16,
    cluster_std: float = 0.25,
    seed: int | np.random.Generator | None = 0,
    normalize: bool = False,
) -> np.ndarray:
    """Sample ``n`` points from a Gaussian mixture with random sphere centers.

    Centers are drawn uniformly on the unit sphere; cluster weights are
    Dirichlet-distributed so cluster sizes are uneven, like real descriptor
    data.  With ``normalize=True`` points are pushed back onto the sphere
    (appropriate for cosine/IP datasets).
    """
    check_positive(n, "n")
    check_positive(dim, "dim")
    check_positive(n_clusters, "n_clusters")
    rng = ensure_rng(seed)
    centers = rng.standard_normal((n_clusters, dim)).astype(np.float32)
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    weights = rng.dirichlet(np.full(n_clusters, 2.0))
    assignment = rng.choice(n_clusters, size=n, p=weights)
    points = centers[assignment] + cluster_std * rng.standard_normal((n, dim)).astype(np.float32)
    points = points.astype(np.float32)
    if normalize:
        points /= np.maximum(np.linalg.norm(points, axis=1, keepdims=True), 1e-12)
    return points


def perturb_base_points(
    base: np.ndarray,
    n_queries: int,
    noise_std: float,
    seed: int | np.random.Generator | None = 0,
    hard_fraction: float = 0.0,
    hard_noise_std: float | None = None,
) -> np.ndarray:
    """Queries built by perturbing random base points (in-distribution).

    ``hard_fraction`` of the queries get larger noise (``hard_noise_std``),
    modelling the small population of hard ID queries the paper observes
    (~10% of ID queries have poorly connected neighborhoods, Sec. 4).
    """
    check_positive(n_queries, "n_queries")
    check_fraction(hard_fraction, "hard_fraction")
    rng = ensure_rng(seed)
    base = np.asarray(base, dtype=np.float32)
    picks = rng.integers(0, base.shape[0], size=n_queries)
    stds = np.full(n_queries, noise_std, dtype=np.float32)
    n_hard = int(round(hard_fraction * n_queries))
    if n_hard:
        stds[:n_hard] = hard_noise_std if hard_noise_std is not None else 4.0 * noise_std
        rng.shuffle(stds)
    noise = rng.standard_normal((n_queries, base.shape[1])).astype(np.float32)
    return base[picks] + stds[:, None] * noise


def make_single_modal_dataset(
    name: str,
    n: int,
    dim: int,
    n_train: int,
    n_test: int,
    metric: Metric | str = Metric.L2,
    n_clusters: int = 16,
    cluster_std: float = 0.25,
    query_noise: float = 0.08,
    hard_fraction: float = 0.1,
    seed: int = 0,
) -> Dataset:
    """A SIFT/DEEP-like dataset: queries share the base distribution."""
    rng = ensure_rng(seed)
    metric = Metric.parse(metric)
    normalize = metric is not Metric.L2
    base = make_clustered_data(n, dim, n_clusters, cluster_std, rng, normalize=normalize)
    train = perturb_base_points(base, n_train, query_noise, rng, hard_fraction=hard_fraction)
    test = perturb_base_points(base, n_test, query_noise, rng, hard_fraction=hard_fraction)
    return Dataset(
        name=name,
        base=base,
        train_queries=train,
        test_queries=test,
        metric=metric,
        modality="single-modal",
    )
