"""Synthetic datasets reproducing the paper's workload *shapes*.

The paper evaluates on four cross-modal datasets (Text-to-Image, LAION,
WebVid, MainSearch) and two single-modal ones (SIFT, DEEP), all proprietary
or too large for a pure-Python substrate.  This package generates scaled-down
synthetic equivalents with the property that matters to the paper: cross-modal
queries are *Out-of-Distribution* — displaced from the base manifold along a
modality-gap direction — so that graphs built from the base distribution have
poorly connected neighborhoods around query points.

Use :func:`load_dataset` with a registry name (see :func:`list_datasets`), or
call the generators in :mod:`repro.datasets.crossmodal` /
:mod:`repro.datasets.synthetic` directly for custom workloads.
"""

from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import make_clustered_data, make_single_modal_dataset
from repro.datasets.crossmodal import make_cross_modal_dataset, CrossModalConfig
from repro.datasets.distribution import (
    mahalanobis_to_distribution,
    sliced_wasserstein,
    ood_report,
)
from repro.datasets.registry import load_dataset, list_datasets, dataset_statistics
from repro.datasets.workload import DriftingWorkload, make_drifting_workload
from repro.datasets.vecs_io import read_vecs, write_vecs

__all__ = [
    "Dataset",
    "make_clustered_data",
    "make_single_modal_dataset",
    "make_cross_modal_dataset",
    "CrossModalConfig",
    "mahalanobis_to_distribution",
    "sliced_wasserstein",
    "ood_report",
    "load_dataset",
    "list_datasets",
    "dataset_statistics",
    "DriftingWorkload",
    "make_drifting_workload",
    "read_vecs",
    "write_vecs",
]
