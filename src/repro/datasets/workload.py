"""Drifting query workloads (paper Sec. 1 & 7).

The paper motivates online fixing with production workload drift: comparing
two periods of its e-commerce traffic, ~10% of newer queries sit far from
the older query distribution.  This module generates multi-phase query
streams over one base corpus: each phase samples cross-modal queries whose
modality-gap direction rotates progressively away from phase 0, so indexes
fixed on early history degrade on later phases unless they adapt.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.datasets.crossmodal import CrossModalConfig, _gap_queries
from repro.datasets.synthetic import make_clustered_data
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_positive


@dataclasses.dataclass
class DriftingWorkload:
    """A base corpus plus an ordered sequence of query phases.

    ``phases[t]`` holds phase t's queries; drift grows with t.  The paper's
    scenario corresponds to fixing on ``phases[0]`` and then serving later
    phases.
    """

    base: np.ndarray
    phases: list[np.ndarray]
    metric: str
    gap_angles: list[float]

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def stream(self) -> np.ndarray:
        """All phases concatenated in arrival order."""
        return np.vstack(self.phases)


def make_drifting_workload(
    config: CrossModalConfig,
    n_phases: int = 3,
    queries_per_phase: int = 100,
    drift_per_phase: float = 0.5,
) -> DriftingWorkload:
    """Build a workload whose gap direction rotates ``drift_per_phase``
    radians toward an orthogonal direction each phase.

    Phase 0 uses the configured gap; later phases interpolate between the
    original gap and a random orthogonal one, renormalized to the same
    magnitude — so OOD-ness stays constant while the *region* the queries
    occupy moves.
    """
    check_positive(n_phases, "n_phases")
    check_positive(queries_per_phase, "queries_per_phase")
    rng = ensure_rng(config.seed)
    base = make_clustered_data(config.n_base, config.dim, config.n_clusters,
                               config.cluster_std, rng, normalize=True)
    centers = rng.standard_normal((config.n_clusters, config.dim)).astype(np.float32)
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    centers = base[np.argmax(centers @ base.T, axis=1)]

    gap = rng.standard_normal(config.dim).astype(np.float32)
    gap *= config.gap_scale / np.linalg.norm(gap)
    # Orthogonal drift direction with the same magnitude.
    ortho = rng.standard_normal(config.dim).astype(np.float32)
    ortho -= (ortho @ gap) / (gap @ gap) * gap
    ortho *= config.gap_scale / np.linalg.norm(ortho)

    phases = []
    angles = []
    for t in range(n_phases):
        angle = min(t * drift_per_phase, np.pi / 2)
        phase_gap = np.cos(angle) * gap + np.sin(angle) * ortho
        phases.append(_gap_queries(centers, queries_per_phase, phase_gap,
                                   config.query_spread, config.n_facets, rng))
        angles.append(float(angle))
    return DriftingWorkload(base=base, phases=phases,
                            metric=config.metric.value, gap_angles=angles)
