"""Readers/writers for the standard ANN benchmark vector formats.

SIFT/DEEP/Text-to-Image and the other corpora the paper evaluates ship as
``.fvecs`` / ``.ivecs`` / ``.bvecs`` files: each vector is stored as a
little-endian int32 dimension header followed by that many float32 / int32 /
uint8 components.  These loaders let the library run on the real datasets
when they are available, while the synthetic registry covers offline use.
"""

from __future__ import annotations

import pathlib

import numpy as np

_COMPONENT = {
    ".fvecs": (np.float32, 4),
    ".ivecs": (np.int32, 4),
    ".bvecs": (np.uint8, 1),
}


def _spec_for(path: pathlib.Path):
    try:
        return _COMPONENT[path.suffix]
    except KeyError:
        raise ValueError(
            f"unknown vector-file suffix {path.suffix!r}; expected one of "
            f"{sorted(_COMPONENT)}") from None


def read_vecs(path: str | pathlib.Path, max_vectors: int | None = None) -> np.ndarray:
    """Read an .fvecs/.ivecs/.bvecs file into an (n, d) array.

    ``max_vectors`` truncates the read (useful for sampling huge corpora).
    """
    path = pathlib.Path(path)
    dtype, item_size = _spec_for(path)
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        raise ValueError(f"{path} is empty")
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid dimension header {dim}")
    record = 4 + dim * item_size
    if raw.size % record != 0:
        raise ValueError(f"{path}: size {raw.size} not a multiple of the "
                         f"record size {record} (dim={dim})")
    n = raw.size // record
    if max_vectors is not None:
        n = min(n, max_vectors)
    body = raw[: n * record].reshape(n, record)[:, 4:]
    out = np.frombuffer(body.tobytes(), dtype=dtype).reshape(n, dim)
    # Validate consistent per-record headers on a sample.
    headers = raw[: n * record].reshape(n, record)[:, :4]
    dims = np.frombuffer(headers.tobytes(), dtype="<i4")
    if not (dims == dim).all():
        raise ValueError(f"{path}: inconsistent dimension headers")
    return np.ascontiguousarray(out)


def write_vecs(path: str | pathlib.Path, vectors: np.ndarray) -> pathlib.Path:
    """Write vectors in the format implied by the path suffix."""
    path = pathlib.Path(path)
    dtype, _ = _spec_for(path)
    vectors = np.ascontiguousarray(vectors, dtype=dtype)
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        raise ValueError(f"expected non-empty 2-D array, got {vectors.shape}")
    n, dim = vectors.shape
    header = np.full((n, 1), dim, dtype="<i4")
    with open(path, "wb") as handle:
        for i in range(n):
            handle.write(header[i].tobytes())
            handle.write(vectors[i].tobytes())
    return path
