"""ADC distance computer: the PQ-resident scoring kernel for graph search.

:class:`ADCComputer` is a drop-in for the ``dc`` slot of
:class:`~repro.graphs.search.BatchSearchEngine` (and of the sequential PQ
traversal) that scores candidates with asymmetric-distance table lookups
over a resident uint8 code matrix instead of full-precision rows.  The
full-precision :class:`~repro.distances.DistanceComputer` stays attached as
``base`` and is touched only for query preparation, incremental re-encoding,
and the caller's exact re-rank of the final shortlist — which is the whole
point: the traversal hot path reads ``n * m`` bytes of codes, and the raw
vector matrix can live on disk (see ``DistanceComputer.use_memmap``).

NDC accounting is split: ``ADCComputer.ndc`` counts cheap ADC scorings
(``m`` table lookups each), while exact distance computations keep accruing
on ``base.ndc`` — benches report both, and the paper's expensive-NDC metric
collapses to the re-rank budget.
"""

from __future__ import annotations

import numpy as np

from repro.distances import DistanceComputer
from repro.quantization.pq import ProductQuantizer


class ADCComputer:
    """Distance-computer facade scoring by PQ table lookups.

    Parameters
    ----------
    base:
        The full-precision computer over the same base rows (only consulted
        for query prep and code re-encoding; exact scoring stays with it).
    pq:
        A quantizer; fitted on ``base.data`` when not already fitted.
    Implements the engine-facing protocol (``size``/``dim``/``metric``/
    ``ndc``/``prepare_query``/``to_query``/``block_to_queries``) plus the
    engine's optional ``begin_block`` hook, which precomputes one ADC table
    per query of the block so every subsequent frontier gather is pure
    fancy-indexing over the code matrix.
    """

    def __init__(self, base: DistanceComputer, pq: ProductQuantizer | None = None):
        self.base = base
        if pq is None:
            pq = ProductQuantizer(m=self._default_m(base.dim),
                                  metric=base.metric)
        self.pq = pq
        if not self.pq.is_fitted:
            self.pq.fit(np.asarray(base.data))
        self.codes = self.pq.encode(np.asarray(base.data))
        self.ndc = 0  # cheap ADC scorings (m uint8 lookups each)
        # Per-subspace layout for the hot gather: codes transposed to
        # (m, n) so each subspace's column is contiguous, and flat table
        # offsets so scoring is m one-dimensional `take` calls (measurably
        # faster than one 3-d fancy-index on the same data).
        self._codes_t = np.ascontiguousarray(self.codes.T)
        self._offsets = (np.arange(self.pq.m) * self.pq.ks).astype(np.int64)
        self._flat_tables: np.ndarray | None = None  # (B * m * ks,) per block
        self._table: np.ndarray | None = None        # (m, ks) sequential path

    @staticmethod
    def _default_m(dim: int) -> int:
        for m in (8, 6, 4, 3, 2, 1):
            if dim % m == 0:
                return m
        return 1

    # -- protocol surface ----------------------------------------------------

    @property
    def size(self) -> int:
        return self.base.size

    @property
    def dim(self) -> int:
        return self.base.dim

    @property
    def metric(self):
        return self.base.metric

    @property
    def code_bytes(self) -> int:
        return self.codes.nbytes

    def reset_ndc(self) -> int:
        previous = self.ndc
        self.ndc = 0
        return previous

    def prepare_query(self, query: np.ndarray) -> np.ndarray:
        return self.base.prepare_query(query)

    def prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        return self.base.prepare_queries(queries)

    # -- code maintenance ----------------------------------------------------

    def sync(self) -> int:
        """Encode base rows appended since the last sync; returns new count.

        Incremental re-encode on insert: ``DistanceComputer.append`` lands
        the raw row *before* the graph publishes the node id (HNSW inserts
        data first), so syncing at block/search start guarantees every id a
        pinned view can surface has a code.
        """
        have = self.codes.shape[0]
        total = self.base.size
        if total <= have:
            return 0
        fresh = self.pq.encode(np.asarray(self.base.data[have:total]))
        self.codes = np.ascontiguousarray(np.vstack([self.codes, fresh]))
        self._codes_t = np.ascontiguousarray(self.codes.T)
        return total - have

    # -- block scoring (batch engine) ----------------------------------------

    def begin_block(self, qmat: np.ndarray) -> None:
        """Engine hook: precompute the block's per-query ADC tables."""
        self.sync()
        self._flat_tables = np.ascontiguousarray(
            self.pq.adc_tables(qmat)).reshape(-1)

    def block_to_queries(self, ids: np.ndarray, queries: np.ndarray,
                         owners: np.ndarray) -> np.ndarray:
        """ADC scores of code rows ``ids[i]`` against query ``owners[i]``.

        Requires :meth:`begin_block` for the current query matrix (the
        engine calls it once per block).  Scoring is ``m`` flat ``take``
        gathers over the block's table stack — each subspace reads a
        contiguous code column, which beats a single 3-d fancy-index.
        """
        ids = np.asarray(ids, dtype=np.int64)
        owners = np.asarray(owners, dtype=np.int64)
        if ids.size and int(ids.max()) >= self.codes.shape[0]:
            self.sync()  # id published after begin_block's sync
        self.ndc += ids.shape[0]
        flat, codes_t = self._flat_tables, self._codes_t
        base = owners * self._offsets.shape[0] * self.pq.ks
        acc = flat.take(base + codes_t[0].take(ids))
        for j in range(1, self._offsets.shape[0]):
            acc += flat.take(base + self._offsets[j] + codes_t[j].take(ids))
        return acc

    # -- sequential scoring --------------------------------------------------

    def begin_query(self, q: np.ndarray) -> np.ndarray:
        """Prepare the single-query ADC table (sequential counterpart)."""
        self.sync()
        self._table = self.pq.adc_table(q)
        return self._table

    def to_query(self, ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """ADC scores against the table prepared by :meth:`begin_query`."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and int(ids.max()) >= self.codes.shape[0]:
            self.sync()
        self.ndc += ids.shape[0]
        return self.pq.adc_distances(self.codes[ids], self._table)

    def all_scores(self, table: np.ndarray) -> np.ndarray:
        """ADC scores of every code row against one table (fallback scan)."""
        self.ndc += self.codes.shape[0]
        return self.pq.adc_distances(self.codes, table)
