"""Vector quantization substrate: k-means, Product Quantization, and a
PQ-accelerated graph searcher.

Sec. 3 of the paper notes that graph indexes "can be combined with other
methods to achieve better overall performance", citing quantization+graph
hybrids (SymphonyQG et al.).  This package provides that composition for
the NGFix* index: greedy traversal scored by asymmetric-distance (ADC)
table lookups over PQ codes, followed by exact re-ranking of the shortlist.
"""

from repro.quantization.kmeans import kmeans
from repro.quantization.pq import ProductQuantizer
from repro.quantization.adc import ADCComputer
from repro.quantization.searcher import (PQRerankSearcher, exact_rerank,
                                         fallback_shortlist, pq_greedy_search,
                                         visited_shortlist)
from repro.quantization.ivf import IVFFlat

__all__ = [
    "kmeans",
    "ProductQuantizer",
    "ADCComputer",
    "PQRerankSearcher",
    "pq_greedy_search",
    "exact_rerank",
    "fallback_shortlist",
    "visited_shortlist",
    "IVFFlat",
]
