"""Lloyd's k-means with k-means++ seeding (NumPy, no sklearn).

Used by the product quantizer's per-subspace codebooks and by the
cluster-centroid entry strategy.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix, check_positive


def _kmeanspp_init(data: np.ndarray, k: int,
                   rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]), dtype=np.float64)
    centers[0] = data[rng.integers(n)]
    closest_sq = ((data - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 1e-12:  # all points identical to chosen centers
            centers[j:] = centers[0]
            break
        probs = closest_sq / total
        centers[j] = data[rng.choice(n, p=probs)]
        dist_sq = ((data - centers[j]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def kmeans(
    data: np.ndarray,
    k: int,
    n_iters: int = 25,
    seed: int | np.random.Generator | None = 0,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``data`` into ``k`` centers; returns (centers, assignments).

    Empty clusters are re-seeded from the point farthest from its center,
    so exactly ``k`` centers always come back.
    """
    data = check_matrix(data, "data", dtype=np.float64)
    check_positive(k, "k")
    if k > data.shape[0]:
        raise ValueError(f"k={k} exceeds n={data.shape[0]}")
    rng = ensure_rng(seed)
    centers = _kmeanspp_init(data, k, rng)
    assignments = np.zeros(data.shape[0], dtype=np.int64)
    for _ in range(n_iters):
        # assignment step (blockwise distance computation)
        d = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(-1) \
            if data.shape[0] * k <= 2_000_000 else None
        if d is None:
            d = np.empty((data.shape[0], k))
            for j in range(k):
                d[:, j] = ((data - centers[j]) ** 2).sum(axis=1)
        new_assignments = d.argmin(axis=1)
        shift = 0.0
        for j in range(k):
            members = data[new_assignments == j]
            if members.shape[0] == 0:
                # re-seed from the globally worst-served point
                worst = int(d[np.arange(d.shape[0]), new_assignments].argmax())
                centers[j] = data[worst]
                new_assignments[worst] = j
                continue
            new_center = members.mean(axis=0)
            shift += float(((new_center - centers[j]) ** 2).sum())
            centers[j] = new_center
        assignments = new_assignments
        if shift < tol:
            break
    return centers.astype(np.float32), assignments
