"""PQ-accelerated graph search: ADC-scored traversal + exact re-ranking.

The quantized-graph composition of Sec. 3's hybrids: greedy traversal over
the (possibly NGFix*-fixed) graph scores candidates with ``m`` ADC table
lookups instead of a full d-dimensional distance, then the shortlist is
re-ranked exactly.  Full-precision NDC drops to the re-rank budget; the
cheap lookups are counted separately so benches can report both.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.distances import DistanceComputer
from repro.graphs.search import SearchResult, VisitedTable
from repro.quantization.pq import ProductQuantizer
from repro.utils.validation import check_positive


def pq_greedy_search(
    pq: ProductQuantizer,
    codes: np.ndarray,
    neighbors_fn,
    entry_points,
    table: np.ndarray,
    k: int,
    ef: int,
    visited: VisitedTable | None = None,
    excluded: set[int] | None = None,
) -> tuple[np.ndarray, int]:
    """Greedy beam search scored entirely by ADC lookups.

    Returns (candidate ids best-first, number of ADC scorings).  Distances
    are approximate, so callers re-rank the output exactly.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    ef = max(ef, k)
    if visited is None:
        visited = VisitedTable(codes.shape[0])
    visited.next_epoch()

    entry_ids = np.unique(np.asarray(list(entry_points), dtype=np.int64))
    visited._stamps[entry_ids] = visited._version
    entry_d = pq.adc_distances(codes[entry_ids], table)
    n_scored = int(entry_ids.size)

    candidates: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    for node, dist in zip(entry_ids.tolist(), entry_d.tolist()):
        heapq.heappush(candidates, (dist, node))
        if excluded is None or node not in excluded:
            heapq.heappush(results, (-dist, node))
    while len(results) > ef:
        heapq.heappop(results)

    while candidates:
        dist_u, u = heapq.heappop(candidates)
        if len(results) >= ef and dist_u > -results[0][0]:
            break
        neigh = neighbors_fn(u)
        if neigh.size == 0:
            continue
        fresh = visited.filter_unvisited(neigh)
        if fresh.size == 0:
            continue
        dists = pq.adc_distances(codes[fresh], table)
        n_scored += int(fresh.size)
        for node, dist in zip(fresh.tolist(), dists.tolist()):
            if len(results) >= ef and dist >= -results[0][0]:
                continue
            heapq.heappush(candidates, (dist, node))
            if excluded is None or node not in excluded:
                heapq.heappush(results, (-dist, node))
                if len(results) > ef:
                    heapq.heappop(results)

    ordered = sorted((-d, node) for d, node in results)
    return np.array([node for _, node in ordered], dtype=np.int64), n_scored


class PQRerankSearcher:
    """ADC traversal over a graph index, exact re-rank of the shortlist.

    Parameters
    ----------
    index:
        Any graph index (or fixer) exposing ``adjacency``, ``dc``, and
        ``entry_points``.
    pq:
        A quantizer; fitted on the index's base data if not already.
    rerank:
        Shortlist size re-scored with exact distances (>= k at search).
    """

    def __init__(self, index, pq: ProductQuantizer | None = None,
                 rerank: int = 50):
        check_positive(rerank, "rerank")
        self.index = index
        self.rerank = rerank
        self.pq = pq or ProductQuantizer(
            m=self._default_m(index.dc), metric=index.dc.metric)
        if not self.pq.is_fitted:
            self.pq.fit(index.dc.data)
        self.codes = self.pq.encode(index.dc.data)
        self._visited = VisitedTable(index.dc.size)
        self.adc_scored = 0  # cumulative cheap scorings

    @staticmethod
    def _default_m(dc: DistanceComputer) -> int:
        for m in (8, 6, 4, 3, 2, 1):
            if dc.dim % m == 0:
                return m
        return 1

    @property
    def dc(self):
        return self.index.dc

    def search(self, query: np.ndarray, k: int, ef: int | None = None) -> SearchResult:
        """Approximate traversal, exact re-rank; exact NDC = rerank budget."""
        if ef is None:
            ef = max(k, 10)
        q = self.dc.prepare_query(query)
        table = self.pq.adc_table(q)
        excluded = self.index.adjacency.excluded_ids()
        shortlist, n_scored = pq_greedy_search(
            self.pq, self.codes, self.index.adjacency.neighbors,
            self.index.entry_points(q), table, k=max(self.rerank, k),
            ef=max(ef, self.rerank), visited=self._visited, excluded=excluded)
        self.adc_scored += n_scored
        shortlist = shortlist[: max(self.rerank, k)]
        exact = self.dc.to_query(shortlist, q)
        order = np.argsort(exact, kind="stable")[:k]
        return SearchResult(ids=shortlist[order],
                            distances=exact[order].astype(np.float64))
