"""PQ-accelerated graph search: ADC-scored traversal + exact re-ranking.

The quantized-graph composition of Sec. 3's hybrids: greedy traversal over
the (possibly NGFix*-fixed) graph scores candidates with ``m`` ADC table
lookups instead of a full d-dimensional distance, then the shortlist is
re-ranked exactly.  Full-precision NDC drops to the re-rank budget; the
cheap lookups are counted separately so benches can report both.

Two traversal paths share the machinery: :func:`pq_greedy_search` is the
sequential beam (mirroring :func:`~repro.graphs.search.greedy_search`'s
entry handling, visited bookkeeping, tombstone traversal, and deadline
degradation), and :class:`PQRerankSearcher.search_batch` drives the
lock-step :class:`~repro.graphs.search.BatchSearchEngine` over an
:class:`~repro.quantization.adc.ADCComputer`, so the whole frontier of a
query block is scored with one table gather per hop.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.distances import DistanceComputer
from repro.graphs.search import BatchSearchEngine, SearchResult, VisitedTable
from repro.quantization.adc import ADCComputer
from repro.quantization.pq import ProductQuantizer
from repro.utils.validation import check_positive


def pq_greedy_search(
    pq: ProductQuantizer,
    codes: np.ndarray,
    neighbors_fn,
    entry_points,
    table: np.ndarray,
    k: int,
    ef: int,
    visited: VisitedTable | None = None,
    excluded: set[int] | None = None,
    deadline: float | None = None,
) -> tuple[np.ndarray, int, bool]:
    """Greedy beam search scored entirely by ADC lookups.

    Returns ``(candidate ids best-first, number of ADC scorings,
    degraded)``.  Distances are approximate, so callers re-rank the output
    exactly.  The returned candidates are *every* node the beam scored (not
    just the final ef-pool), ordered by ADC distance: the visited set is a
    strict superset of the pool, so re-ranking a shortlist of it recovers
    recall the approximate ordering lost without widening the beam — the
    OOD-DiskANN recipe.  Entry handling mirrors
    :func:`~repro.graphs.search.greedy_search`: excluded (tombstoned)
    entries still seed the traversal — they navigate but never surface —
    and a reused visited table is regrown to the code matrix before
    stamping, so searches stay valid after incremental inserts.
    ``deadline`` (absolute ``time.perf_counter()``) stops the expansion
    best-so-far once it passes.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    ef = max(ef, k)
    if visited is None:
        visited = VisitedTable(codes.shape[0])
    # A reused table may predate incremental insertion; without this,
    # stamping new node ids raises IndexError (same fix as greedy_search).
    visited.grow(codes.shape[0])
    visited.next_epoch()

    entry_ids = np.unique(np.asarray(list(entry_points), dtype=np.int64))
    if entry_ids.size == 0:
        raise ValueError("at least one entry point is required")
    visited.mark_many(entry_ids)
    entry_d = pq.adc_distances(codes[entry_ids], table)
    n_scored = int(entry_ids.size)
    all_ids, all_d = [entry_ids], [entry_d]

    candidates: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    for node, dist in zip(entry_ids.tolist(), entry_d.tolist()):
        heapq.heappush(candidates, (dist, node))
        if excluded is None or node not in excluded:
            heapq.heappush(results, (-dist, node))
    while len(results) > ef:
        heapq.heappop(results)

    degraded = False
    while candidates:
        if deadline is not None and time.perf_counter() > deadline:
            degraded = True
            break
        dist_u, u = heapq.heappop(candidates)
        if len(results) >= ef and dist_u > -results[0][0]:
            break
        neigh = neighbors_fn(u)
        if neigh.size == 0:
            continue
        fresh = visited.filter_unvisited(neigh)
        if fresh.size == 0:
            continue
        dists = pq.adc_distances(codes[fresh], table)
        n_scored += int(fresh.size)
        all_ids.append(fresh)
        all_d.append(dists)
        for node, dist in zip(fresh.tolist(), dists.tolist()):
            if len(results) >= ef and dist >= -results[0][0]:
                continue
            heapq.heappush(candidates, (dist, node))
            if excluded is None or node not in excluded:
                heapq.heappush(results, (-dist, node))
                if len(results) > ef:
                    heapq.heappop(results)

    ids = np.concatenate(all_ids)
    d = np.concatenate(all_d)
    if excluded:
        keep = np.fromiter((int(i) not in excluded for i in ids),
                           dtype=bool, count=ids.shape[0])
        ids, d = ids[keep], d[keep]
    order = np.lexsort((ids, d))  # distance-then-id, matching the heap order
    return ids[order], n_scored, degraded


def visited_shortlist(ids: np.ndarray, dists: np.ndarray,
                      excluded: set[int] | None, budget: int) -> np.ndarray:
    """Top-``budget`` non-excluded visited nodes by ADC distance.

    The batched counterpart of :func:`pq_greedy_search`'s output: excluded
    (tombstoned/removed) nodes navigated during traversal but must never
    reach the exact re-rank, and of what remains only the ``budget``
    ADC-best are worth full-precision distances.
    """
    if ids is None or ids.size == 0:
        return np.empty(0, dtype=np.int64)
    if excluded:
        keep = np.fromiter((int(i) not in excluded for i in ids),
                           dtype=bool, count=ids.shape[0])
        ids, dists = ids[keep], dists[keep]
        if ids.size == 0:
            return ids.astype(np.int64)
    if ids.size <= budget:
        return ids.astype(np.int64, copy=False)
    part = np.argpartition(dists, budget - 1)[:budget]
    return ids[part].astype(np.int64, copy=False)


def fallback_shortlist(adc: ADCComputer, table: np.ndarray,
                       excluded: set[int] | None, budget: int) -> np.ndarray:
    """Brute-force ADC shortlist for a traversal that surfaced nothing.

    When every entry point is tombstoned/removed *and* edgeless (compaction
    without entry relocation), the beam can terminate empty.  Rather than
    returning nothing, scan the resident code matrix — still no
    full-precision touches — and return the ``budget`` best non-excluded
    ids.  Excluded ids never surface; an all-excluded index yields an empty
    shortlist (nothing is servable).
    """
    scores = adc.all_scores(table)
    if excluded:
        keep = np.ones(scores.shape[0], dtype=bool)
        excl = np.fromiter(excluded, dtype=np.int64, count=len(excluded))
        keep[excl[excl < scores.shape[0]]] = False
        candidates = np.flatnonzero(keep)
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64)
        scores = scores[candidates]
    else:
        candidates = None
    budget = min(budget, scores.shape[0])
    part = np.argpartition(scores, budget - 1)[:budget]
    order = part[np.argsort(scores[part], kind="stable")]
    return (order if candidates is None else candidates[order]).astype(np.int64)


def exact_rerank(dc: DistanceComputer, qmat: np.ndarray,
                 shortlists: list[np.ndarray], k: int,
                 degraded: list[bool] | None = None,
                 hops: list[int] | None = None) -> tuple[list[SearchResult], int]:
    """Exact re-rank of per-query ADC shortlists in one block gather.

    The only full-precision touches of the compressed path: all shortlist
    rows across the block are gathered with a single
    :meth:`~repro.distances.DistanceComputer.block_to_queries` call (one
    lazy page-in pass when ``dc`` is memmap-backed), then each query keeps
    its ``k`` exactly-nearest.  Returns ``(results, exact_ndc)``.
    """
    counts = np.fromiter((s.size for s in shortlists), dtype=np.int64,
                         count=len(shortlists))
    total = int(counts.sum())
    if total == 0:
        empty_i = np.empty(0, dtype=np.int64)
        empty_d = np.empty(0, dtype=np.float64)
        return ([SearchResult(ids=empty_i, distances=empty_d,
                              degraded=bool(degraded[i]) if degraded else False)
                 for i in range(len(shortlists))], 0)
    flat = np.concatenate([s for s in shortlists if s.size])
    owners = np.repeat(np.arange(len(shortlists), dtype=np.int64), counts)
    exact = dc.block_to_queries(flat, qmat, owners).astype(np.float64,
                                                           copy=False)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    out: list[SearchResult] = []
    for i in range(len(shortlists)):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        d, ids_row = exact[lo:hi], flat[lo:hi]
        order = np.argsort(d, kind="stable")[:k]
        out.append(SearchResult(
            ids=ids_row[order], distances=d[order],
            n_hops=int(hops[i]) if hops else 0,
            degraded=bool(degraded[i]) if degraded else False))
    return out, total


class PQRerankSearcher:
    """ADC traversal over a graph index, exact re-rank of the shortlist.

    Parameters
    ----------
    index:
        Any graph index (or fixer) exposing ``adjacency``, ``dc``, and
        ``entry_points``.
    pq:
        A quantizer; fitted on the index's base data if not already.
    rerank:
        Shortlist size re-scored with exact distances (>= k at search).
    beam_width:
        Engine candidates expanded per query per round on the batched path.
        ADC scoring is cheap enough that a wide beam pays: rounds (where the
        lock-step engine's per-round overhead lives) shrink ~beam_width-fold
        while the enlarged visited set feeds the exact re-rank.  Width 1
        reproduces the uncompressed engine's expansion order exactly.

    The searcher stays valid across store mutations: codes are re-encoded
    incrementally (only rows appended since the last search) and the
    visited table regrows, so add → search → delete → search works without
    rebuilding.  Tombstoned/removed ids are excluded from results on both
    the sequential and batched paths.
    """

    def __init__(self, index, pq: ProductQuantizer | None = None,
                 rerank: int = 50, beam_width: int = 4):
        check_positive(rerank, "rerank")
        check_positive(beam_width, "beam_width")
        self.index = index
        self.rerank = rerank
        self.beam_width = beam_width
        if pq is None:
            pq = ProductQuantizer(m=ADCComputer._default_m(index.dc.dim),
                                  metric=index.dc.metric)
        self.adc = ADCComputer(index.dc, pq)
        self.pq = self.adc.pq
        self._visited = VisitedTable(index.dc.size)
        self._engine: BatchSearchEngine | None = None
        self.adc_scored = 0   # cumulative cheap scorings
        self.rerank_ndc = 0   # cumulative exact re-rank distance comps

    @property
    def codes(self) -> np.ndarray:
        """The (incrementally synced) uint8 code matrix."""
        return self.adc.codes

    @property
    def dc(self):
        return self.index.dc

    def sync(self) -> int:
        """Re-encode vectors appended since the last search (incremental)."""
        return self.adc.sync()

    # -- sequential path -----------------------------------------------------

    def search(self, query: np.ndarray, k: int, ef: int | None = None,
               deadline: float | None = None) -> SearchResult:
        """Approximate traversal, exact re-rank; exact NDC = rerank budget."""
        if ef is None:
            ef = max(k, 10)
        q = self.dc.prepare_query(query)
        table = self.adc.begin_query(q)  # syncs codes first
        budget = max(self.rerank, k)
        excluded = self.index.adjacency.excluded_ids()
        # The shortlist draws from everything the beam scored, so the beam
        # itself runs at the caller's ef — the re-rank budget does not
        # widen the traversal.
        shortlist, n_scored, degraded = pq_greedy_search(
            self.pq, self.adc.codes, self.index.adjacency.neighbors,
            self.index.entry_points(q), table, k=k,
            ef=max(ef, k), visited=self._visited, excluded=excluded,
            deadline=deadline)
        self.adc_scored += n_scored
        shortlist = shortlist[:budget]
        if shortlist.size == 0:
            shortlist = fallback_shortlist(self.adc, table, excluded, budget)
            self.adc_scored += self.adc.codes.shape[0]
        if shortlist.size == 0:
            return SearchResult(ids=np.empty(0, dtype=np.int64),
                                distances=np.empty(0, dtype=np.float64),
                                degraded=degraded)
        exact = self.dc.to_query(shortlist, q)
        self.rerank_ndc += int(shortlist.size)
        order = np.argsort(exact, kind="stable")[:k]
        return SearchResult(ids=shortlist[order],
                            distances=exact[order].astype(np.float64),
                            degraded=degraded)

    # -- batched path --------------------------------------------------------

    def _batch_engine(self, batch_size: int) -> BatchSearchEngine:
        engine = self._engine
        if (engine is None or engine.batch_size != batch_size
                or engine.beam_width != self.beam_width):
            engine = BatchSearchEngine(
                self.adc,
                self.index.adjacency.neighbors,
                self.index.entry_points,
                excluded_fn=self.index.adjacency.excluded_ids,
                batch_size=batch_size,
                graph_fn=self.index.adjacency.traversal,
                beam_width=self.beam_width,
            )
            self._engine = engine
        return engine

    def search_batch(self, queries: np.ndarray, k: int, ef: int | None = None,
                     batch_size: int = 32,
                     deadline: float | None = None) -> list[SearchResult]:
        """Batched ADC traversal + one exact re-rank gather per batch.

        The lock-step engine runs entirely over the code matrix (its
        ``begin_block`` hook precomputes the block's ADC tables); the final
        shortlists are re-ranked with a single full-precision block gather.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if ef is None:
            ef = max(k, 10)
        budget = max(self.rerank, k)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        adc0 = self.adc.ndc
        qmat = self.dc.prepare_queries(queries)
        # The beam runs at the caller's ef; the shortlist is carved from the
        # *visited* set (every ADC-scored node), so a large re-rank budget
        # costs exact distance computations, not traversal width.
        approx = self._batch_engine(batch_size).search_batch(
            qmat, k=k, ef=max(ef, k), deadline=deadline,
            collect_visited=True, prepared=True)
        excluded = self.index.adjacency.excluded_ids()
        shortlists = [
            visited_shortlist(r.visited_ids, r.visited_distances,
                              excluded, budget)
            for r in approx]
        empties = [i for i, s in enumerate(shortlists) if s.size == 0]
        if empties:
            for i in empties:
                table = self.pq.adc_table(qmat[i])
                shortlists[i] = fallback_shortlist(self.adc, table,
                                                   excluded, budget)
        results, exact_ndc = exact_rerank(
            self.dc, qmat, shortlists, k,
            degraded=[r.degraded for r in approx],
            hops=[r.n_hops for r in approx])
        self.adc_scored += self.adc.ndc - adc0
        self.rerank_ndc += exact_ndc
        return results

    def search_many(self, queries: np.ndarray, k: int, ef: int | None = None,
                    batch_size: int = 32) -> tuple[np.ndarray, np.ndarray]:
        """Batched search returning padded (ids, distances) arrays."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
        distances = np.full((queries.shape[0], k), np.inf)
        results = self.search_batch(queries, k, ef, batch_size=batch_size)
        for i, result in enumerate(results):
            m = min(k, len(result.ids))
            ids[i, :m] = result.ids[:m]
            distances[i, :m] = result.distances[:m]
        return ids, distances
