"""Product Quantization (Jégou et al. 2011) from scratch.

Vectors are split into ``m`` contiguous subspaces; each subspace gets a
k-means codebook of ``ks`` centroids (ks <= 256, codes fit in uint8).  A
query builds an asymmetric-distance (ADC) table of query-to-centroid
distances per subspace once; any database code's approximate distance is
then ``m`` table lookups — the cheap scoring that quantized-graph hybrids
navigate with.

Supports the library's three comparison metrics: squared L2 sums subspace
squared distances; inner product (and cosine over pre-normalized data) sums
subspace dot products and negates.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric
from repro.quantization.kmeans import kmeans
from repro.utils.rng_utils import ensure_rng
from repro.utils.validation import check_matrix, check_positive


class ProductQuantizer:
    """PQ codec with ADC scoring.

    Parameters
    ----------
    m:
        Number of subspaces (must divide the dimension at :meth:`fit`).
    ks:
        Centroids per subspace codebook (<= 256).
    """

    def __init__(self, m: int = 4, ks: int = 32,
                 metric: Metric | str = Metric.L2,
                 seed: int | np.random.Generator | None = 0):
        check_positive(m, "m")
        check_positive(ks, "ks")
        if ks > 256:
            raise ValueError(f"ks={ks} exceeds uint8 code range")
        self.m = m
        self.ks = ks
        self.metric = Metric.parse(metric)
        self._rng = ensure_rng(seed)
        self.codebooks: np.ndarray | None = None  # (m, ks, d_sub)
        self.dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        return self.codebooks is not None

    def _split(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], self.m, -1)

    def fit(self, data: np.ndarray) -> "ProductQuantizer":
        """Train one codebook per subspace on ``data``."""
        data = check_matrix(data, "data")
        if data.shape[1] % self.m != 0:
            raise ValueError(
                f"dimension {data.shape[1]} not divisible by m={self.m}")
        if data.shape[0] < self.ks:
            raise ValueError(f"need at least ks={self.ks} training vectors")
        self.dim = data.shape[1]
        d_sub = self.dim // self.m
        self.codebooks = np.empty((self.m, self.ks, d_sub), dtype=np.float32)
        sub = self._split(data)
        for j in range(self.m):
            centers, _ = kmeans(sub[:, j, :], self.ks, seed=self._rng)
            self.codebooks[j] = centers
        return self

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("ProductQuantizer must be fit() before use")

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize vectors to (n, m) uint8 codes."""
        self._require_fitted()
        data = check_matrix(data, "data")
        if data.shape[1] != self.dim:
            raise ValueError(f"expected dimension {self.dim}, got {data.shape[1]}")
        sub = self._split(data)
        codes = np.empty((data.shape[0], self.m), dtype=np.uint8)
        for j in range(self.m):
            d = ((sub[:, j, None, :] - self.codebooks[j][None, :, :]) ** 2).sum(-1)
            codes[:, j] = d.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_fitted()
        codes = np.asarray(codes, dtype=np.int64)
        parts = [self.codebooks[j][codes[:, j]] for j in range(self.m)]
        return np.concatenate(parts, axis=1)

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Per-subspace query-to-centroid score table, shape (m, ks).

        Summing table rows over a code's entries yields the comparison
        distance (squared L2, or negated dot for IP/COSINE on normalized
        data).
        """
        self._require_fitted()
        query = np.asarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"expected query of dimension {self.dim}")
        sub_q = query.reshape(self.m, -1)
        table = np.empty((self.m, self.ks), dtype=np.float64)
        for j in range(self.m):
            if self.metric is Metric.L2:
                diff = self.codebooks[j] - sub_q[j]
                table[j] = np.einsum("ij,ij->i", diff, diff)
            else:
                table[j] = -(self.codebooks[j] @ sub_q[j])
        return table

    def adc_tables(self, queries: np.ndarray) -> np.ndarray:
        """ADC tables for a block of prepared queries, shape (B, m, ks).

        The batched counterpart of :meth:`adc_table`: one einsum per metric
        builds every query's per-subspace lookup table at once, which is what
        lets the batch engine amortize table construction over a whole block.
        Row ``b`` equals ``adc_table(queries[b])`` up to floating-point
        accumulation order (the per-subspace reductions run over the same
        ``d_sub`` axis, so in practice the tables agree to float32 rounding).
        """
        self._require_fitted()
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"expected (B, {self.dim}) queries, got shape {queries.shape}")
        sub_q = queries.reshape(queries.shape[0], self.m, -1)  # (B, m, d_sub)
        if self.metric is Metric.L2:
            # (B, m, ks, d_sub) broadcast diff; small because d_sub = dim/m.
            diff = sub_q[:, :, None, :] - self.codebooks[None, :, :, :]
            table = np.einsum("bmkd,bmkd->bmk", diff, diff)
        else:
            table = -np.einsum("bmd,mkd->bmk", sub_q, self.codebooks)
        return table.astype(np.float64, copy=False)

    def adc_distances(self, codes: np.ndarray, table: np.ndarray) -> np.ndarray:
        """Approximate distances of coded vectors to the table's query."""
        codes = np.asarray(codes, dtype=np.int64)
        return table[np.arange(self.m), codes].sum(axis=-1)

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error (diagnostic)."""
        approx = self.decode(self.encode(data))
        return float(((np.asarray(data, dtype=np.float32) - approx) ** 2)
                     .sum(axis=1).mean())
